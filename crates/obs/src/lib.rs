//! Phase-level observability for the farm stack.
//!
//! The paper's Tables I–III are only meaningful because the authors can
//! attribute time to individual *phases* — master-side prepare
//! (load / sload / serialize / pack), wire transfer, NFS reads, and slave
//! compute (§4.2's "it is always better to use the sload method" is a
//! per-phase claim, not a per-total one). This crate provides the
//! machinery to reproduce that attribution from measured events:
//!
//! * [`Event`] / [`EventKind`] — one typed, fixed-size record per
//!   instrumented operation (what, which rank, which job, when, how long,
//!   how many bytes).
//! * [`Recorder`] — a lock-free, per-rank ring-buffer sink. One writer
//!   per rank, wait-free on the hot path, and **zero overhead when
//!   absent**: instrumented code holds an `Option<Arc<Recorder>>` and
//!   takes no timestamp when it is `None`.
//! * [`Breakdown`] / [`PhaseStats`] — post-run aggregation into
//!   per-phase totals, counts, byte volumes, and percentile latencies.
//! * [`BreakdownReport`] / [`StrategyBreakdown`] — a Table-I/II/III
//!   shaped cost-decomposition report with a text renderer and a
//!   hand-rolled JSON writer (no serde, per DESIGN §6).
//!
//! Both the live farm (`minimpi` + `farm`) and the simulator
//! (`clustersim`) emit the *same* event schema, so sim-vs-live divergence
//! is diffable per phase rather than only per total.
//!
//! See `docs/OBSERVABILITY.md` for the full schema and lifecycle.
#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

mod aggregate;
mod event;
mod recorder;
mod report;

pub use aggregate::{percentile, Breakdown, PhaseStats};
pub use event::{Event, EventKind, NO_JOB};
pub use recorder::Recorder;
pub use report::{BreakdownReport, StrategyBreakdown};
