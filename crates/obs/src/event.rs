//! The typed event schema shared by the live farm and the simulator.

/// Sentinel job id meaning "no job attributable" (e.g. shutdown
/// sentinels, barrier traffic, the master's anonymous result probe).
pub const NO_JOB: i64 = -1;

/// What kind of work an [`Event`] measures.
///
/// The first block mirrors the wire primitives of `minimpi::Comm`; the
/// second block mirrors the farm-level phases of the paper's cost model
/// (§4.2); the third block covers the fault/supervision paths added in
/// PR 1. Live runs and simulated runs emit the same kinds so breakdowns
/// are diffable across the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Packing an already-serialized buffer into an MPI send buffer
    /// (master side, loaded strategies).
    Pack,
    /// A point-to-point send (payload handed to the transport).
    Send,
    /// A blocking probe (time spent waiting for a matching message).
    Probe,
    /// A blocking receive (time from call to payload in hand).
    Recv,
    /// Unpacking a received buffer back into a serial form (slave side).
    Unpack,
    /// Full serialization of a materialised object (`full load` prepare,
    /// plus every `send_obj` envelope).
    Serialize,
    /// Serialized-load: reading an on-disk XDR image without
    /// materialising it (`sload` prepare).
    Sload,
    /// A slave-side NFS read of the problem file (NFS strategy).
    NfsRead,
    /// Slave compute: pricing the problem.
    Compute,
    /// Supervisor re-queued a job (bounded-retry path).
    Retry,
    /// Supervisor declared a job past its deadline.
    Deadline,
    /// Supervisor buried a dead slave.
    SlaveDeath,
    /// Problem store served a fetch from its client-side cache
    /// (zero-duration mark; `bytes` = serial size served).
    CacheHit,
    /// Problem store had to go to the backend for a fetch
    /// (zero-duration mark; `bytes` = serial size loaded).
    CacheMiss,
    /// Problem store evicted entries to respect its byte budget
    /// (zero-duration mark; `bytes` = bytes reclaimed).
    Evict,
    /// Wire compression of an outbound payload (master side; `bytes` =
    /// bytes *saved*, i.e. raw − compressed).
    Compress,
    /// Wire decompression of an inbound payload (slave side; `bytes` =
    /// decompressed size).
    Decompress,
    /// Master-side prefetch of a problem into the store ahead of
    /// dispatch (recorded on the prefetcher's own virtual rank).
    Prefetch,
    /// One executed chunk of an intra-slave parallel compute region
    /// (`bytes` = paths the chunk covered). Emitted *after* the parallel
    /// region by the rank's own thread. Diagnostic: its seconds are
    /// worker-CPU time already covered by the enclosing [`Compute`]
    /// span's wall time, so it is excluded from
    /// [`crate::Breakdown::total_s`].
    ///
    /// [`Compute`]: EventKind::Compute
    ComputeChunk,
    /// Work-stealing activity inside a parallel compute region
    /// (zero-duration mark; `bytes` = successful steals). Diagnostic.
    Steal,
    /// A per-message payload copy the comm layer avoided by sharing one
    /// buffer across in-process destinations (zero-duration mark;
    /// `bytes` = bytes *not* copied). Diagnostic.
    CopySaved,
    /// A scheduler dispatch decision: the master handed a job (or batch
    /// head) to a slave (zero-duration mark; `bytes` = batch size).
    /// Emitted by the live drivers only; the wire cost of the dispatch is
    /// already measured by the [`Send`] spans it triggers. Diagnostic.
    ///
    /// [`Send`]: EventKind::Send
    Dispatch,
    /// A SIMD-lane batched, allocation-free compute region ran on this
    /// rank (zero-duration mark; `bytes` = lane width). Emitted once per
    /// compute when the executor's lane width exceeds 1, so breakdowns
    /// can self-check that lane batching was actually on (or off).
    /// Diagnostic.
    LaneBatch,
    /// A serving-session request left the submission queue and entered
    /// the front loop (`job` = request id, `dur_ns` = queue residency,
    /// `bytes` = serialized problem bytes the request carries).
    /// Diagnostic: queue time is wall time spent waiting, not cpu work.
    Enqueue,
    /// A serving-session request was admitted and fully answered
    /// (`job` = request id, `dur_ns` = end-to-end latency from submit to
    /// response, `bytes` = problems in the request). The request
    /// p50/p99 SLO columns are percentiles over these durations.
    /// Diagnostic: the latency overlaps the phase spans it contains.
    Admit,
    /// Admission control rejected or shed a request (zero-duration mark;
    /// `job` = request id, `bytes` = problems turned away). Diagnostic.
    Shed,
    /// A problem was answered from the result memo instead of being
    /// dispatched (zero-duration mark; `job` = request id, `bytes` = 1
    /// per memoised problem). Diagnostic.
    MemoHit,
}

impl EventKind {
    /// Every kind, in declaration (and render) order.
    pub const ALL: [EventKind; 27] = [
        EventKind::Pack,
        EventKind::Send,
        EventKind::Probe,
        EventKind::Recv,
        EventKind::Unpack,
        EventKind::Serialize,
        EventKind::Sload,
        EventKind::NfsRead,
        EventKind::Compute,
        EventKind::Retry,
        EventKind::Deadline,
        EventKind::SlaveDeath,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::Evict,
        EventKind::Compress,
        EventKind::Decompress,
        EventKind::Prefetch,
        EventKind::ComputeChunk,
        EventKind::Steal,
        EventKind::CopySaved,
        EventKind::Dispatch,
        EventKind::LaneBatch,
        EventKind::Enqueue,
        EventKind::Admit,
        EventKind::Shed,
        EventKind::MemoHit,
    ];

    /// Diagnostic kinds: double-counted or purely informational marks
    /// whose seconds/bytes are already represented by a primary phase
    /// (or, for the serving-session kinds, measure wall latency rather
    /// than cpu work). Excluded from [`crate::Breakdown::total_s`]'s
    /// cpu-seconds budget.
    pub const DIAGNOSTIC: [EventKind; 9] = [
        EventKind::ComputeChunk,
        EventKind::Steal,
        EventKind::CopySaved,
        EventKind::Dispatch,
        EventKind::LaneBatch,
        EventKind::Enqueue,
        EventKind::Admit,
        EventKind::Shed,
        EventKind::MemoHit,
    ];

    /// Stable lowercase label used in rendered tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Pack => "pack",
            EventKind::Send => "send",
            EventKind::Probe => "probe",
            EventKind::Recv => "recv",
            EventKind::Unpack => "unpack",
            EventKind::Serialize => "serialize",
            EventKind::Sload => "sload",
            EventKind::NfsRead => "nfs_read",
            EventKind::Compute => "compute",
            EventKind::Retry => "retry",
            EventKind::Deadline => "deadline",
            EventKind::SlaveDeath => "slave_death",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::Evict => "evict",
            EventKind::Compress => "compress",
            EventKind::Decompress => "decompress",
            EventKind::Prefetch => "prefetch",
            EventKind::ComputeChunk => "compute_chunk",
            EventKind::Steal => "steal",
            EventKind::CopySaved => "copy_saved",
            EventKind::Dispatch => "dispatch",
            EventKind::LaneBatch => "lane_batch",
            EventKind::Enqueue => "enqueue",
            EventKind::Admit => "admit",
            EventKind::Shed => "shed",
            EventKind::MemoHit => "memo_hit",
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One measured operation. Fixed-size and `Copy` so the recorder's ring
/// buffer never allocates on the hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Phase kind.
    pub kind: EventKind,
    /// Emitting rank (master is rank 0 in the farm stack).
    pub rank: u16,
    /// Job index this operation serves, or [`NO_JOB`].
    pub job: i64,
    /// Monotonic start timestamp in nanoseconds (recorder epoch for live
    /// runs; simulated-seconds × 1e9 for the simulator).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Payload bytes moved or produced, where meaningful (0 otherwise).
    pub bytes: u64,
}

impl Event {
    /// Duration in seconds.
    pub fn dur_s(&self) -> f64 {
        self.dur_ns as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_cover_all() {
        let mut labels: Vec<&str> = EventKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventKind::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        for k in EventKind::ALL {
            assert_eq!(format!("{k}"), k.label());
        }
    }
}
