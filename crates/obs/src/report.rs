//! Table-shaped cost-decomposition reports with a hand-rolled JSON
//! writer (no serde, per DESIGN §6).

use std::fmt::Write as _;

use crate::aggregate::Breakdown;
#[cfg(test)]
use crate::event::EventKind;

/// One strategy's measured decomposition at one cluster size.
#[derive(Debug, Clone)]
pub struct StrategyBreakdown {
    /// Strategy label (e.g. "serialized load").
    pub strategy: String,
    /// Number of CPUs (ranks) in the run.
    pub cpus: usize,
    /// End-to-end wall time, seconds.
    pub wall_s: f64,
    /// The per-phase decomposition.
    pub breakdown: Breakdown,
    /// Events lost to recorder ring wrap (0 in healthy runs).
    pub dropped: u64,
}

impl StrategyBreakdown {
    /// Sanity check: phase seconds cannot exceed the total CPU-seconds
    /// available (`wall_s × cpus`), every duration is finite and
    /// non-negative, and no events were dropped.
    pub fn check(&self) -> Result<(), String> {
        let total = self.breakdown.total_s();
        if !total.is_finite() || total < 0.0 {
            return Err(format!("{}: non-finite phase total {total}", self.strategy));
        }
        let budget = self.wall_s * self.cpus as f64;
        // Small relative slack for timer granularity on very short runs.
        if total > budget * 1.001 + 1e-6 {
            return Err(format!(
                "{}: phase seconds {:.6} exceed cpu-seconds budget {:.6} ({} cpus × {:.6}s wall)",
                self.strategy, total, budget, self.cpus, self.wall_s
            ));
        }
        if self.dropped > 0 {
            return Err(format!(
                "{}: recorder dropped {} events (increase capacity)",
                self.strategy, self.dropped
            ));
        }
        Ok(())
    }
}

/// A full Table-I/II/III-shaped decomposition report: one
/// [`StrategyBreakdown`] per (strategy, cpus) run.
#[derive(Debug, Clone, Default)]
pub struct BreakdownReport {
    /// Report title (e.g. "table 2 — per-phase decomposition").
    pub title: String,
    /// The runs, in presentation order.
    pub runs: Vec<StrategyBreakdown>,
}

impl BreakdownReport {
    /// New empty report.
    pub fn new(title: impl Into<String>) -> Self {
        BreakdownReport {
            title: title.into(),
            runs: Vec::new(),
        }
    }

    /// Run [`StrategyBreakdown::check`] on every run.
    pub fn check(&self) -> Result<(), String> {
        if self.runs.is_empty() {
            return Err("empty breakdown report".to_string());
        }
        for run in &self.runs {
            run.check()?;
        }
        Ok(())
    }

    /// The run for a given strategy label, if present.
    pub fn run(&self, strategy: &str) -> Option<&StrategyBreakdown> {
        self.runs.iter().find(|r| r.strategy == strategy)
    }

    /// Render the report as a fixed-width text table: one phase block
    /// per run, plus the §4.2 summary rows (prepare / wire / wait /
    /// compute).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(self.title.len().max(8)));
        for run in &self.runs {
            let _ = writeln!(
                out,
                "\n[{}] cpus={} wall={:.6}s events={} dropped={}",
                run.strategy, run.cpus, run.wall_s, run.breakdown.events, run.dropped
            );
            let _ = writeln!(
                out,
                "  {:<12} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "phase", "count", "total(s)", "mean(s)", "p50(s)", "p99(s)", "bytes"
            );
            for p in &run.breakdown.phases {
                let _ = writeln!(
                    out,
                    "  {:<12} {:>8} {:>12.6} {:>12.3e} {:>12.3e} {:>12.3e} {:>12}",
                    p.kind.label(),
                    p.count,
                    p.total_s,
                    p.mean_s,
                    p.p50_s,
                    p.p99_s,
                    p.bytes
                );
            }
            let b = &run.breakdown;
            let _ = writeln!(
                out,
                "  -- prepare={:.6}s wire={:.6}s wait={:.6}s compute={:.6}s store={:.6}s (sum {:.6}s <= {:.6} cpu-s)",
                b.prepare_s(),
                b.wire_s(),
                b.wait_s(),
                b.compute_s(),
                b.store_s(),
                b.total_s(),
                run.wall_s * run.cpus as f64
            );
            if b.parallel_s() > 0.0 {
                let _ = writeln!(
                    out,
                    "  -- intra-slave parallelism x{:.2} ({:.6} chunk-s over {:.6} compute-s, {} chunks, {} steals)",
                    b.parallelism(),
                    b.parallel_s(),
                    b.compute_s(),
                    b.count_of(crate::event::EventKind::ComputeChunk),
                    b.bytes_of(crate::event::EventKind::Steal),
                );
            }
            if b.count_of(crate::event::EventKind::LaneBatch) > 0 {
                let _ = writeln!(
                    out,
                    "  -- simd lanes x{:.0} alloc-free ({} lane-batched computes)",
                    b.lane_width(),
                    b.count_of(crate::event::EventKind::LaneBatch),
                );
            }
            if b.cache_hit_rate() > 0.0 {
                let _ = writeln!(
                    out,
                    "  -- cache hit-rate {:.1}% (hits {} / misses {} / evictions {})",
                    b.cache_hit_rate() * 100.0,
                    b.count_of(crate::event::EventKind::CacheHit),
                    b.count_of(crate::event::EventKind::CacheMiss),
                    b.count_of(crate::event::EventKind::Evict),
                );
            }
            if b.request_count() > 0 {
                let _ = writeln!(
                    out,
                    "  -- request slo p50={:.6}s p99={:.6}s ({} served, {} memo hits, {} shed, hit-rate {:.1}%)",
                    b.request_p50_s(),
                    b.request_p99_s(),
                    b.request_count(),
                    b.memo_hits(),
                    b.shed_count(),
                    b.memo_hit_rate() * 100.0,
                );
            }
        }
        out
    }

    /// Serialize the whole report to JSON. Hand-rolled writer — the
    /// workspace intentionally carries no serde (DESIGN §6).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        json_str(&mut s, "title", &self.title);
        s.push(',');
        s.push_str("\"runs\":[");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            json_str(&mut s, "strategy", &run.strategy);
            let _ = write!(
                s,
                ",\"cpus\":{},\"wall_s\":{},\"events\":{},\"dropped\":{}",
                run.cpus,
                json_f64(run.wall_s),
                run.breakdown.events,
                run.dropped
            );
            let b = &run.breakdown;
            let _ = write!(
                s,
                ",\"prepare_s\":{},\"wire_s\":{},\"wait_s\":{},\"compute_s\":{},\"store_s\":{},\"cache_hit_rate\":{}",
                json_f64(b.prepare_s()),
                json_f64(b.wire_s()),
                json_f64(b.wait_s()),
                json_f64(b.compute_s()),
                json_f64(b.store_s()),
                json_f64(b.cache_hit_rate())
            );
            let _ = write!(
                s,
                ",\"parallel_s\":{},\"parallelism\":{},\"lanes\":{}",
                json_f64(b.parallel_s()),
                json_f64(b.parallelism()),
                json_f64(b.lane_width())
            );
            // Serving SLO columns. Kept ahead of "phases": bench_gate's
            // string parser only reads summary keys before that array.
            let _ = write!(
                s,
                ",\"requests\":{},\"req_p50_s\":{},\"req_p99_s\":{},\"memo_hits\":{},\"memo_hit_rate\":{},\"shed\":{}",
                b.request_count(),
                json_f64(b.request_p50_s()),
                json_f64(b.request_p99_s()),
                b.memo_hits(),
                json_f64(b.memo_hit_rate()),
                b.shed_count()
            );
            s.push_str(",\"phases\":[");
            for (j, p) in b.phases.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push('{');
                json_str(&mut s, "phase", p.kind.label());
                let _ = write!(
                    s,
                    ",\"count\":{},\"total_s\":{},\"mean_s\":{},\"p50_s\":{},\"p90_s\":{},\"p99_s\":{},\"max_s\":{},\"bytes\":{}",
                    p.count,
                    json_f64(p.total_s),
                    json_f64(p.mean_s),
                    json_f64(p.p50_s),
                    json_f64(p.p90_s),
                    json_f64(p.p99_s),
                    json_f64(p.max_s),
                    p.bytes
                );
                s.push('}');
            }
            s.push(']');
            s.push_str(",\"by_class\":[");
            for (j, (class, (count, secs))) in b.by_class.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"class\":{class},\"count\":{count},\"total_s\":{}}}",
                    json_f64(*secs)
                );
            }
            s.push(']');
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Append `"key":"value"` with minimal JSON string escaping.
fn json_str(out: &mut String, key: &str, value: &str) {
    let esc = |s: &str, out: &mut String| {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    };
    esc(key, out);
    out.push(':');
    esc(value, out);
}

/// Render an `f64` as valid JSON (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trippable form.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn sample_report() -> BreakdownReport {
        let events = vec![
            Event {
                kind: EventKind::Sload,
                rank: 0,
                job: 0,
                start_ns: 0,
                dur_ns: 100_000,
                bytes: 96,
            },
            Event {
                kind: EventKind::Send,
                rank: 0,
                job: 0,
                start_ns: 100_000,
                dur_ns: 60_000,
                bytes: 96,
            },
            Event {
                kind: EventKind::Compute,
                rank: 1,
                job: 0,
                start_ns: 200_000,
                dur_ns: 2_000_000,
                bytes: 0,
            },
        ];
        let mut report = BreakdownReport::new("test report");
        report.runs.push(StrategyBreakdown {
            strategy: "serialized load".to_string(),
            cpus: 2,
            wall_s: 0.01,
            breakdown: Breakdown::from_events(&events),
            dropped: 0,
        });
        report
    }

    #[test]
    fn check_passes_for_consistent_run() {
        sample_report().check().unwrap();
    }

    #[test]
    fn check_rejects_phase_overflow() {
        let mut r = sample_report();
        r.runs[0].wall_s = 1e-9; // cpu budget far below phase seconds
        assert!(r.check().is_err());
    }

    #[test]
    fn check_rejects_dropped_events() {
        let mut r = sample_report();
        r.runs[0].dropped = 3;
        assert!(r.check().is_err());
    }

    #[test]
    fn check_rejects_empty_report() {
        assert!(BreakdownReport::new("x").check().is_err());
    }

    #[test]
    fn render_contains_phases_and_summary() {
        let text = sample_report().render();
        assert!(text.contains("serialized load"));
        assert!(text.contains("sload"));
        assert!(text.contains("compute"));
        assert!(text.contains("prepare="));
    }

    #[test]
    fn json_is_well_formed_and_exact() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"title\":\"test report\""));
        assert!(json.contains("\"strategy\":\"serialized load\""));
        assert!(json.contains("\"phase\":\"sload\""));
        assert!(json.contains("\"cpus\":2"));
        // prepare = sload 100µs → 0.0001
        assert!(json.contains("\"prepare_s\":0.0001"), "{json}");
        // Balanced braces/brackets (cheap well-formedness proxy).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn lane_line_rendered_only_when_lane_batches_present() {
        let plain = sample_report();
        assert!(!plain.render().contains("simd lanes"));
        assert!(plain.to_json().contains("\"lanes\":0.0"));

        let mut r = sample_report();
        let mut events = vec![Event {
            kind: EventKind::LaneBatch,
            rank: 1,
            job: 0,
            start_ns: 200_000,
            dur_ns: 0,
            bytes: 8,
        }];
        events.push(Event {
            kind: EventKind::Compute,
            rank: 1,
            job: 0,
            start_ns: 200_000,
            dur_ns: 2_000_000,
            bytes: 0,
        });
        r.runs[0].breakdown = Breakdown::from_events(&events);
        let text = r.render();
        assert!(text.contains("simd lanes x8 alloc-free"), "{text}");
        assert!(r.to_json().contains("\"lanes\":8.0"));
    }

    #[test]
    fn request_slo_line_rendered_only_for_serving_runs() {
        let plain = sample_report();
        assert!(!plain.render().contains("request slo"));
        assert!(
            plain.to_json().contains("\"requests\":0"),
            "{}",
            plain.to_json()
        );

        let mut r = sample_report();
        let mk = |kind, job, dur_ns, bytes| Event {
            kind,
            rank: 0,
            job,
            start_ns: 0,
            dur_ns,
            bytes,
        };
        let events = vec![
            mk(EventKind::Admit, 0, 1_000_000, 2),
            mk(EventKind::Admit, 1, 3_000_000, 2),
            mk(EventKind::MemoHit, 1, 0, 1),
            mk(EventKind::Shed, 2, 0, 2),
            mk(EventKind::Compute, 0, 500_000, 0),
        ];
        r.runs[0].breakdown = Breakdown::from_events(&events);
        let text = r.render();
        assert!(text.contains("request slo"), "{text}");
        assert!(text.contains("2 served, 1 memo hits, 1 shed"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"requests\":2"), "{json}");
        assert!(json.contains("\"req_p50_s\":0.001"), "{json}");
        assert!(json.contains("\"req_p99_s\":0.003"), "{json}");
        assert!(json.contains("\"memo_hits\":1"), "{json}");
        assert!(json.contains("\"shed\":1"), "{json}");
        // SLO columns precede the phases array (bench_gate constraint).
        assert!(json.find("\"req_p99_s\"").unwrap() < json.find("\"phases\"").unwrap());
    }

    #[test]
    fn json_escapes_strings() {
        let mut r = BreakdownReport::new("line\n\"quoted\"\\slash");
        r.runs.push(StrategyBreakdown {
            strategy: "s".into(),
            cpus: 1,
            wall_s: 1.0,
            breakdown: Breakdown::default(),
            dropped: 0,
        });
        let json = r.to_json();
        assert!(json.contains("line\\n\\\"quoted\\\"\\\\slash"));
    }

    #[test]
    fn json_f64_integral_gets_decimal_point() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
