//! Post-run aggregation: events → per-phase statistics.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// Nearest-rank percentile of a **sorted** slice: the smallest element
/// such that at least `q`·n of the sample is ≤ it. `q` in `[0, 1]`.
/// Returns 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Aggregate statistics for one phase ([`EventKind`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// The phase.
    pub kind: EventKind,
    /// Number of events.
    pub count: u64,
    /// Sum of durations, seconds.
    pub total_s: f64,
    /// Sum of byte volumes.
    pub bytes: u64,
    /// Mean duration, seconds.
    pub mean_s: f64,
    /// Median (nearest-rank p50), seconds.
    pub p50_s: f64,
    /// Nearest-rank p90, seconds.
    pub p90_s: f64,
    /// Nearest-rank p99, seconds.
    pub p99_s: f64,
    /// Maximum duration, seconds.
    pub max_s: f64,
}

impl PhaseStats {
    fn from_durations(kind: EventKind, mut durs: Vec<f64>, bytes: u64) -> Self {
        durs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let count = durs.len() as u64;
        let total: f64 = durs.iter().sum();
        PhaseStats {
            kind,
            count,
            total_s: total,
            bytes,
            mean_s: if count > 0 { total / count as f64 } else { 0.0 },
            p50_s: percentile(&durs, 0.50),
            p90_s: percentile(&durs, 0.90),
            p99_s: percentile(&durs, 0.99),
            max_s: durs.last().copied().unwrap_or(0.0),
        }
    }
}

/// A full per-phase cost decomposition of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Breakdown {
    /// Stats per phase, only for phases that occurred, in
    /// [`EventKind::ALL`] order.
    pub phases: Vec<PhaseStats>,
    /// Total event count.
    pub events: u64,
    /// Per-job-class compute totals (class → (count, seconds)). The job
    /// class is `job % classes` when built via
    /// [`Breakdown::from_events_classed`], else a single class 0.
    pub by_class: BTreeMap<u64, (u64, f64)>,
}

impl Breakdown {
    /// Aggregate `events` with all compute attributed to class 0.
    pub fn from_events(events: &[Event]) -> Self {
        Self::from_events_classed(events, 1)
    }

    /// Aggregate `events`; [`EventKind::Compute`] events with a job id
    /// are bucketed into `job % classes` job classes.
    pub fn from_events_classed(events: &[Event], classes: u64) -> Self {
        let classes = classes.max(1);
        Self::from_events_with(events, |job| job as u64 % classes)
    }

    /// Aggregate `events`; [`EventKind::Compute`] events are bucketed by
    /// `class_of[job]` — the typed-workload path, where the caller maps
    /// job ids to real [`crate::Event::job`]-indexed job classes (jobs
    /// outside the table land in class 0). This is how a mixed-class
    /// farm run reports per-class compute seconds.
    pub fn from_events_by_class(events: &[Event], class_of: &[u64]) -> Self {
        Self::from_events_with(events, |job| {
            class_of.get(job as usize).copied().unwrap_or(0)
        })
    }

    fn from_events_with(events: &[Event], class_of: impl Fn(i64) -> u64) -> Self {
        let mut durs: BTreeMap<EventKind, Vec<f64>> = BTreeMap::new();
        let mut bytes: BTreeMap<EventKind, u64> = BTreeMap::new();
        let mut by_class: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
        for ev in events {
            durs.entry(ev.kind).or_default().push(ev.dur_s());
            *bytes.entry(ev.kind).or_insert(0) += ev.bytes;
            if ev.kind == EventKind::Compute {
                let class = if ev.job >= 0 { class_of(ev.job) } else { 0 };
                let slot = by_class.entry(class).or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += ev.dur_s();
            }
        }
        let mut phases = Vec::new();
        for kind in EventKind::ALL {
            if let Some(d) = durs.remove(&kind) {
                let b = bytes.get(&kind).copied().unwrap_or(0);
                phases.push(PhaseStats::from_durations(kind, d, b));
            }
        }
        Breakdown {
            phases,
            events: events.len() as u64,
            by_class,
        }
    }

    /// Stats for one phase, if it occurred.
    pub fn phase(&self, kind: EventKind) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.kind == kind)
    }

    fn total_of(&self, kinds: &[EventKind]) -> f64 {
        kinds
            .iter()
            .filter_map(|k| self.phase(*k))
            .map(|p| p.total_s)
            .sum()
    }

    /// Problem-acquisition ("prepare") seconds, wherever they run:
    /// `Serialize + Sload + Pack + NfsRead`. This is the column §4.2
    /// argues about — for `sload` it is strictly the cheapest of the
    /// three strategies because the master skips materialisation *and*
    /// the slaves skip NFS.
    pub fn prepare_s(&self) -> f64 {
        self.total_of(&[
            EventKind::Serialize,
            EventKind::Sload,
            EventKind::Pack,
            EventKind::NfsRead,
        ])
    }

    /// Wire seconds (`Send`).
    pub fn wire_s(&self) -> f64 {
        self.total_of(&[EventKind::Send])
    }

    /// Wait seconds (`Probe + Recv + Unpack`): time ranks spend blocked
    /// on or handling inbound messages.
    pub fn wait_s(&self) -> f64 {
        self.total_of(&[EventKind::Probe, EventKind::Recv, EventKind::Unpack])
    }

    /// Compute seconds (`Compute`).
    pub fn compute_s(&self) -> f64 {
        self.total_of(&[EventKind::Compute])
    }

    /// Problem-store seconds (`CacheHit + CacheMiss + Evict + Compress +
    /// Decompress + Prefetch`): time spent in the tiered store and the
    /// wire codec. Cache hit/miss/evict marks are zero-duration counters
    /// (their *count* and *bytes* carry the signal); compress, decompress
    /// and prefetch are real timed spans. Zero for runs without a
    /// caching/compressing store.
    pub fn store_s(&self) -> f64 {
        self.total_of(&[
            EventKind::CacheHit,
            EventKind::CacheMiss,
            EventKind::Evict,
            EventKind::Compress,
            EventKind::Decompress,
            EventKind::Prefetch,
        ])
    }

    /// Intra-slave worker-CPU seconds (`ComputeChunk`): the summed
    /// wall-clock of every executed chunk across all workers. With `T`
    /// threads per slave this is ≈ `T ×` [`Self::compute_s`]; it is a
    /// *diagnostic* duplicate of compute work and never counts toward
    /// [`Self::total_s`].
    pub fn parallel_s(&self) -> f64 {
        self.total_of(&[EventKind::ComputeChunk])
    }

    /// Effective intra-slave compute parallelism: `parallel_s /
    /// compute_s` — ≈ 1 for single-threaded kernels, ≈ `T` when `T`
    /// workers kept busy for the whole compute span. 0 when the run
    /// recorded no chunked compute.
    pub fn parallelism(&self) -> f64 {
        let chunk = self.parallel_s();
        let compute = self.compute_s();
        if chunk == 0.0 || compute == 0.0 {
            0.0
        } else {
            chunk / compute
        }
    }

    /// Mean SIMD lane width of the run's compute regions, from
    /// [`EventKind::LaneBatch`] marks (`bytes` = lane width per mark).
    /// 0 when the run recorded no lane-batched compute — i.e. lanes off,
    /// the default.
    pub fn lane_width(&self) -> f64 {
        let n = self.count_of(EventKind::LaneBatch);
        if n == 0 {
            0.0
        } else {
            self.bytes_of(EventKind::LaneBatch) as f64 / n as f64
        }
    }

    /// Number of served requests: [`EventKind::Admit`] marks, each of
    /// which carries one request's end-to-end latency. 0 for non-serving
    /// runs.
    pub fn request_count(&self) -> u64 {
        self.count_of(EventKind::Admit)
    }

    /// Median request latency, seconds (the serving p50 SLO column):
    /// nearest-rank p50 over the per-request submit-to-response wall
    /// durations the `Admit` marks carry.
    pub fn request_p50_s(&self) -> f64 {
        self.phase(EventKind::Admit).map_or(0.0, |p| p.p50_s)
    }

    /// Tail request latency, seconds (the serving p99 SLO column).
    pub fn request_p99_s(&self) -> f64 {
        self.phase(EventKind::Admit).map_or(0.0, |p| p.p99_s)
    }

    /// Problems answered from the result memo ([`EventKind::MemoHit`]
    /// marks). 0 for non-serving runs.
    pub fn memo_hits(&self) -> u64 {
        self.count_of(EventKind::MemoHit)
    }

    /// Requests turned away by admission control ([`EventKind::Shed`]
    /// marks). 0 for non-serving runs.
    pub fn shed_count(&self) -> u64 {
        self.count_of(EventKind::Shed)
    }

    /// Memo hit fraction over `MemoHit` marks + fresh computes (0 when
    /// the run recorded neither).
    pub fn memo_hit_rate(&self) -> f64 {
        let hits = self.memo_hits() as f64;
        let fresh = self.count_of(EventKind::Compute) as f64;
        if hits + fresh == 0.0 {
            0.0
        } else {
            hits / (hits + fresh)
        }
    }

    /// Count of events of one kind (0 if the phase never occurred).
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.phase(kind).map_or(0, |p| p.count)
    }

    /// Summed byte volume of one kind (0 if the phase never occurred).
    pub fn bytes_of(&self, kind: EventKind) -> u64 {
        self.phase(kind).map_or(0, |p| p.bytes)
    }

    /// Cache hit fraction over `CacheHit + CacheMiss` marks (0 when the
    /// run recorded no cache traffic).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.count_of(EventKind::CacheHit) as f64;
        let misses = self.count_of(EventKind::CacheMiss) as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }

    /// Sum of all *primary* phase seconds. Bounded above by makespan ×
    /// ranks (each rank is busy at most the whole run). Diagnostic
    /// kinds ([`EventKind::DIAGNOSTIC`] — per-chunk worker-CPU
    /// duplicates of compute, steal/copy marks) are excluded: a slave
    /// running `T` compute threads does `T ×` wall CPU-seconds, which
    /// would bust a per-rank budget despite being correct.
    pub fn total_s(&self) -> f64 {
        self.phases
            .iter()
            .filter(|p| !EventKind::DIAGNOSTIC.contains(&p.kind))
            .map(|p| p.total_s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_JOB;

    fn ev(kind: EventKind, job: i64, dur_ns: u64, bytes: u64) -> Event {
        Event {
            kind,
            rank: 0,
            job,
            start_ns: 0,
            dur_ns,
            bytes,
        }
    }

    #[test]
    fn percentile_nearest_rank_exact() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.90), 4.0);
        assert_eq!(percentile(&v, 0.25), 1.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn synthetic_stream_exact_numbers() {
        // 3 sends of 100/200/300 µs carrying 10/20/30 bytes,
        // 2 computes of 1 ms / 3 ms on jobs 0 and 1.
        let events = vec![
            ev(EventKind::Send, 0, 100_000, 10),
            ev(EventKind::Send, 1, 200_000, 20),
            ev(EventKind::Send, 2, 300_000, 30),
            ev(EventKind::Compute, 0, 1_000_000, 0),
            ev(EventKind::Compute, 1, 3_000_000, 0),
        ];
        let b = Breakdown::from_events(&events);
        assert_eq!(b.events, 5);

        let send = b.phase(EventKind::Send).unwrap();
        assert_eq!(send.count, 3);
        assert_eq!(send.bytes, 60);
        assert!((send.total_s - 600e-6).abs() < 1e-12);
        assert!((send.mean_s - 200e-6).abs() < 1e-12);
        assert!((send.p50_s - 200e-6).abs() < 1e-12);
        assert!((send.p90_s - 300e-6).abs() < 1e-12);
        assert!((send.max_s - 300e-6).abs() < 1e-12);

        let comp = b.phase(EventKind::Compute).unwrap();
        assert_eq!(comp.count, 2);
        assert!((comp.total_s - 4e-3).abs() < 1e-12);
        assert!((comp.p50_s - 1e-3).abs() < 1e-12);
        assert!((comp.p99_s - 3e-3).abs() < 1e-12);

        assert!((b.wire_s() - 600e-6).abs() < 1e-12);
        assert!((b.compute_s() - 4e-3).abs() < 1e-12);
        assert_eq!(b.prepare_s(), 0.0);
        assert!((b.total_s() - (600e-6 + 4e-3)).abs() < 1e-12);
    }

    #[test]
    fn prepare_groups_acquisition_kinds() {
        let events = vec![
            ev(EventKind::Serialize, 0, 380_000, 0),
            ev(EventKind::Sload, 1, 100_000, 0),
            ev(EventKind::Pack, 1, 5_000, 0),
            ev(EventKind::NfsRead, 2, 1_200_000, 0),
            ev(EventKind::Send, 0, 50_000, 0),
        ];
        let b = Breakdown::from_events(&events);
        assert!((b.prepare_s() - 1_685_000e-9).abs() < 1e-12);
        assert!((b.wire_s() - 50_000e-9).abs() < 1e-12);
    }

    #[test]
    fn job_classes_bucket_compute() {
        let events = vec![
            ev(EventKind::Compute, 0, 1_000_000, 0),
            ev(EventKind::Compute, 1, 2_000_000, 0),
            ev(EventKind::Compute, 2, 4_000_000, 0),
            ev(EventKind::Compute, 3, 8_000_000, 0),
            ev(EventKind::Compute, NO_JOB, 16_000_000, 0),
        ];
        let b = Breakdown::from_events_classed(&events, 2);
        // class 0: jobs 0, 2 and the NO_JOB event; class 1: jobs 1, 3.
        let c0 = b.by_class.get(&0).unwrap();
        let c1 = b.by_class.get(&1).unwrap();
        assert_eq!(c0.0, 3);
        assert!((c0.1 - 21e-3).abs() < 1e-12);
        assert_eq!(c1.0, 2);
        assert!((c1.1 - 10e-3).abs() < 1e-12);
    }

    #[test]
    fn store_bucket_groups_cache_and_codec_kinds() {
        let events = vec![
            ev(EventKind::CacheHit, 0, 0, 96),
            ev(EventKind::CacheHit, 1, 0, 96),
            ev(EventKind::CacheMiss, 2, 0, 96),
            ev(EventKind::Evict, 2, 0, 96),
            ev(EventKind::Compress, 0, 40_000, 30),
            ev(EventKind::Decompress, 0, 20_000, 96),
            ev(EventKind::Prefetch, 3, 100_000, 96),
            ev(EventKind::Sload, 0, 500_000, 96),
        ];
        let b = Breakdown::from_events(&events);
        // Only the timed spans contribute seconds...
        assert!((b.store_s() - 160_000e-9).abs() < 1e-15);
        // ...and sload stays in prepare, not store.
        assert!((b.prepare_s() - 500_000e-9).abs() < 1e-15);
        // Hit-rate over the zero-duration marks.
        assert!((b.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(b.count_of(EventKind::Evict), 1);
        assert_eq!(b.count_of(EventKind::Recv), 0);
    }

    #[test]
    fn diagnostic_kinds_excluded_from_total_but_drive_parallelism() {
        // One 10 ms compute span backed by 4 workers × ~10 ms of chunks.
        let events = vec![
            ev(EventKind::Compute, 0, 10_000_000, 0),
            ev(EventKind::ComputeChunk, 0, 10_000_000, 1024),
            ev(EventKind::ComputeChunk, 0, 10_000_000, 1024),
            ev(EventKind::ComputeChunk, 0, 10_000_000, 1024),
            ev(EventKind::ComputeChunk, 0, 10_000_000, 1024),
            ev(EventKind::Steal, 0, 0, 3),
            ev(EventKind::CopySaved, 0, 0, 4096),
        ];
        let b = Breakdown::from_events(&events);
        // total_s counts only the primary compute span.
        assert!((b.total_s() - 10e-3).abs() < 1e-12, "{}", b.total_s());
        assert!((b.parallel_s() - 40e-3).abs() < 1e-12);
        assert!((b.parallelism() - 4.0).abs() < 1e-12);
        assert_eq!(b.count_of(EventKind::Steal), 1);
        assert_eq!(b.bytes_of(EventKind::Steal), 3);
        assert_eq!(b.bytes_of(EventKind::CopySaved), 4096);
        assert_eq!(b.bytes_of(EventKind::ComputeChunk), 4096);
    }

    #[test]
    fn parallelism_zero_without_chunked_compute() {
        let b = Breakdown::from_events(&[ev(EventKind::Compute, 0, 1_000, 0)]);
        assert_eq!(b.parallel_s(), 0.0);
        assert_eq!(b.parallelism(), 0.0);
    }

    #[test]
    fn lane_width_from_lane_batch_marks() {
        // Off by default: no marks → 0.
        let b = Breakdown::from_events(&[ev(EventKind::Compute, 0, 1_000, 0)]);
        assert_eq!(b.lane_width(), 0.0);
        // Two computes batched 8-wide; marks are diagnostic (no seconds).
        let events = vec![
            ev(EventKind::Compute, 0, 10_000_000, 0),
            ev(EventKind::LaneBatch, 0, 0, 8),
            ev(EventKind::Compute, 1, 10_000_000, 0),
            ev(EventKind::LaneBatch, 1, 0, 8),
        ];
        let b = Breakdown::from_events(&events);
        assert_eq!(b.lane_width(), 8.0);
        assert_eq!(b.count_of(EventKind::LaneBatch), 2);
        assert!((b.total_s() - 20e-3).abs() < 1e-12);
    }

    #[test]
    fn request_slo_from_admit_marks() {
        // Non-serving run: every serving accessor reads as "off".
        let b = Breakdown::from_events(&[ev(EventKind::Compute, 0, 1_000, 0)]);
        assert_eq!(b.request_count(), 0);
        assert_eq!(b.request_p50_s(), 0.0);
        assert_eq!(b.request_p99_s(), 0.0);
        assert_eq!(b.memo_hits(), 0);
        assert_eq!(b.shed_count(), 0);
        assert_eq!(b.memo_hit_rate(), 0.0);

        // Four requests at 1/2/3/10 ms; one shed; two memo hits next to
        // two fresh computes.
        let events = vec![
            ev(EventKind::Admit, 0, 1_000_000, 2),
            ev(EventKind::Admit, 1, 2_000_000, 2),
            ev(EventKind::Admit, 2, 3_000_000, 2),
            ev(EventKind::Admit, 3, 10_000_000, 2),
            ev(EventKind::Shed, 4, 0, 2),
            ev(EventKind::MemoHit, 1, 0, 1),
            ev(EventKind::MemoHit, 2, 0, 1),
            ev(EventKind::Compute, 0, 500_000, 0),
            ev(EventKind::Compute, 3, 500_000, 0),
            ev(EventKind::Enqueue, 0, 20_000, 64),
        ];
        let b = Breakdown::from_events(&events);
        assert_eq!(b.request_count(), 4);
        assert!((b.request_p50_s() - 2e-3).abs() < 1e-12);
        assert!((b.request_p99_s() - 10e-3).abs() < 1e-12);
        assert_eq!(b.memo_hits(), 2);
        assert_eq!(b.shed_count(), 1);
        assert!((b.memo_hit_rate() - 0.5).abs() < 1e-12);
        // All four serving kinds are diagnostic: the latency marks never
        // count toward the cpu-seconds budget.
        assert!((b.total_s() - 1e-3).abs() < 1e-12, "{}", b.total_s());
    }

    #[test]
    fn cache_hit_rate_zero_without_cache_traffic() {
        let b = Breakdown::from_events(&[ev(EventKind::Compute, 0, 1_000, 0)]);
        assert_eq!(b.cache_hit_rate(), 0.0);
        assert_eq!(b.store_s(), 0.0);
    }

    #[test]
    fn phases_render_in_all_order() {
        let events = vec![
            ev(EventKind::Compute, 0, 1, 0),
            ev(EventKind::Pack, 0, 1, 0),
            ev(EventKind::Recv, 0, 1, 0),
        ];
        let b = Breakdown::from_events(&events);
        let kinds: Vec<EventKind> = b.phases.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Pack, EventKind::Recv, EventKind::Compute]
        );
    }

    #[test]
    fn empty_stream_is_empty_breakdown() {
        let b = Breakdown::from_events(&[]);
        assert_eq!(b.events, 0);
        assert!(b.phases.is_empty());
        assert_eq!(b.total_s(), 0.0);
    }
}
