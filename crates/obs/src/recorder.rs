//! Lock-free per-rank ring-buffer event sink.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::event::{Event, EventKind};

/// Default ring capacity per rank (events). 64Ki × 48 B ≈ 3 MiB/rank.
const DEFAULT_CAPACITY: usize = 1 << 16;

/// One rank's ring: a fixed slab of slots plus a monotone write counter.
///
/// Single-writer (the rank's thread), many-reader-after-quiescence: the
/// aggregator only reads once the worker threads have been joined, so the
/// `Release` store on `len` paired with the reader's `Acquire` load is
/// enough to publish the slot contents.
struct Ring {
    slots: Box<[UnsafeCell<Event>]>,
    /// Total events ever written (may exceed `slots.len()` — the ring
    /// wraps and `written - capacity` oldest events are dropped).
    written: AtomicU64,
}

// SAFETY: the single-writer-per-ring contract (documented on
// `Recorder::record`) plus the Release/Acquire pairing on `written`
// makes concurrent use sound: only one thread ever writes a given ring,
// and readers observe fully-written slots.
unsafe impl Sync for Ring {}

impl Ring {
    fn new(capacity: usize) -> Self {
        let zero = Event {
            kind: EventKind::Pack,
            rank: 0,
            job: crate::event::NO_JOB,
            start_ns: 0,
            dur_ns: 0,
            bytes: 0,
        };
        Ring {
            slots: (0..capacity).map(|_| UnsafeCell::new(zero)).collect(),
            written: AtomicU64::new(0),
        }
    }

    /// Append an event. Caller must be the ring's unique writer.
    fn push(&self, ev: Event) {
        let n = self.written.load(Ordering::Relaxed);
        let idx = (n as usize) % self.slots.len();
        // SAFETY: single-writer contract — no other thread writes this
        // ring, and readers only run after the writer thread has been
        // joined (or tolerate torn reads of the in-flight slot, which we
        // exclude by reading at most `written` events post-quiescence).
        unsafe { *self.slots[idx].get() = ev };
        self.written.store(n + 1, Ordering::Release);
    }

    fn snapshot(&self) -> (Vec<Event>, u64) {
        let n = self.written.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let kept = n.min(cap) as usize;
        let mut out = Vec::with_capacity(kept);
        // Oldest surviving event first.
        let first = n.saturating_sub(cap);
        for i in 0..kept as u64 {
            let idx = ((first + i) as usize) % self.slots.len();
            // SAFETY: slots `first..n` were fully written before the
            // Release store we Acquire-loaded above, and the writer is
            // quiescent by the reader contract.
            out.push(unsafe { *self.slots[idx].get() });
        }
        (out, n.saturating_sub(cap))
    }
}

/// A lock-free event sink with one ring buffer per rank.
///
/// # Contract
///
/// * **One writer per rank**: [`Recorder::record`] for a given `rank`
///   must only be called from that rank's thread. The farm stack
///   guarantees this naturally (one thread per rank).
/// * **Read after quiescence**: [`Recorder::events`] and
///   [`Recorder::dropped`] are intended for after the instrumented run
///   has joined its worker threads. (They are memory-safe regardless,
///   but mid-run snapshots may miss in-flight events.)
/// * **Zero overhead when absent**: instrumented code takes
///   `Option<&Recorder>` (or holds `Option<Arc<Recorder>>`) and must not
///   call [`Instant::now`] when it is `None`.
pub struct Recorder {
    rings: Vec<Ring>,
    epoch: Instant,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("ranks", &self.rings.len())
            .field("capacity", &self.rings.first().map_or(0, |r| r.slots.len()))
            .finish()
    }
}

impl Recorder {
    /// A recorder for `ranks` ranks with the default per-rank capacity.
    pub fn new(ranks: usize) -> Self {
        Self::with_capacity(ranks, DEFAULT_CAPACITY)
    }

    /// A recorder for `ranks` ranks keeping at most `capacity` events
    /// per rank (older events are dropped, counted by [`Recorder::dropped`]).
    pub fn with_capacity(ranks: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "recorder capacity must be positive");
        Recorder {
            rings: (0..ranks).map(|_| Ring::new(capacity)).collect(),
            epoch: Instant::now(),
        }
    }

    /// Number of ranks this recorder covers.
    pub fn ranks(&self) -> usize {
        self.rings.len()
    }

    /// Nanoseconds since this recorder's epoch (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Append `ev` to its rank's ring. Must be called from that rank's
    /// thread (single-writer contract). Events for out-of-range ranks
    /// are silently ignored rather than panicking mid-farm.
    pub fn record(&self, ev: Event) {
        if let Some(ring) = self.rings.get(ev.rank as usize) {
            ring.push(ev);
        }
    }

    /// Convenience: record a span that started at `start_ns` (from
    /// [`Recorder::now_ns`]) and ends now.
    pub fn record_span(&self, rank: usize, kind: EventKind, job: i64, start_ns: u64, bytes: u64) {
        let end = self.now_ns();
        self.record(Event {
            kind,
            rank: rank as u16,
            job,
            start_ns,
            dur_ns: end.saturating_sub(start_ns),
            bytes,
        });
    }

    /// All surviving events across every rank, sorted by start time
    /// (ties broken by rank). Intended for after the run has quiesced.
    pub fn events(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for ring in &self.rings {
            let (mut evs, _) = ring.snapshot();
            all.append(&mut evs);
        }
        all.sort_by_key(|e| (e.start_ns, e.rank));
        all
    }

    /// Total events lost to ring wrap-around, across all ranks.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.snapshot().1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_JOB;

    fn ev(rank: u16, kind: EventKind, start: u64) -> Event {
        Event {
            kind,
            rank,
            job: NO_JOB,
            start_ns: start,
            dur_ns: 1,
            bytes: 0,
        }
    }

    #[test]
    fn records_and_sorts_across_ranks() {
        let rec = Recorder::new(2);
        rec.record(ev(1, EventKind::Compute, 20));
        rec.record(ev(0, EventKind::Send, 10));
        rec.record(ev(0, EventKind::Probe, 30));
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let rec = Recorder::with_capacity(1, 4);
        for i in 0..10 {
            rec.record(ev(0, EventKind::Recv, i));
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 4);
        // Oldest surviving is 6 (10 written, capacity 4).
        assert_eq!(
            evs.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn out_of_range_rank_is_ignored() {
        let rec = Recorder::new(1);
        rec.record(ev(7, EventKind::Send, 0));
        assert!(rec.events().is_empty());
    }

    #[test]
    fn record_span_measures_elapsed() {
        let rec = Recorder::new(1);
        let t0 = rec.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.record_span(0, EventKind::Compute, 3, t0, 128);
        let evs = rec.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].job, 3);
        assert_eq!(evs[0].bytes, 128);
        assert!(evs[0].dur_ns >= 1_000_000, "span at least 1ms");
    }

    #[test]
    fn concurrent_writers_one_per_rank() {
        let rec = std::sync::Arc::new(Recorder::new(4));
        std::thread::scope(|s| {
            for rank in 0..4u16 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        rec.record(ev(rank, EventKind::Compute, i));
                    }
                });
            }
        });
        assert_eq!(rec.events().len(), 4000);
        assert_eq!(rec.dropped(), 0);
    }
}
