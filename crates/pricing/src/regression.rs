//! The non-regression test suite — the §4.1 workload.
//!
//! "These non-regression tests consist in a single instance of any pricing
//! problem which can be solved using Premia — a pricing problem corresponds
//! to the choice of a model for the underlying asset, a financial product
//! and a pricing method." This module enumerates one instance of **every
//! supported (model, option, method) combination**, with several parameter
//! sets ("several sets of these tests exist with different parameters"),
//! producing the heterogeneous-cost job list behind Table I.

use crate::problem::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem};

/// How heavy the suite's numerical parameters are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Milliseconds-per-problem parameters, for unit/integration tests.
    Quick,
    /// Seconds-per-problem parameters, for the actual benchmark runs.
    Full,
}

impl SuiteScale {
    fn mc_paths(&self) -> usize {
        match self {
            SuiteScale::Quick => 2_000,
            SuiteScale::Full => 500_000,
        }
    }

    fn mc_steps(&self) -> usize {
        match self {
            SuiteScale::Quick => 10,
            SuiteScale::Full => 100,
        }
    }

    fn pde_steps(&self) -> (usize, usize) {
        match self {
            SuiteScale::Quick => (40, 80),
            SuiteScale::Full => (500, 1000),
        }
    }

    fn tree_steps(&self) -> usize {
        match self {
            SuiteScale::Quick => 100,
            SuiteScale::Full => 4_000,
        }
    }

    fn lsm_paths(&self) -> usize {
        match self {
            SuiteScale::Quick => 1_000,
            SuiteScale::Full => 50_000,
        }
    }

    fn lsm_dates(&self) -> usize {
        match self {
            SuiteScale::Quick => 10,
            SuiteScale::Full => 50,
        }
    }
}

/// Every supported (model, option, method) combination at the given scale,
/// across a few parameter sets (strikes / maturities), each expected to
/// compute successfully. This is the job list parallelised in Table I.
pub fn regression_suite(scale: SuiteScale) -> Vec<PremiaProblem> {
    let mut suite = Vec::new();
    let (pde_t, pde_x) = scale.pde_steps();
    let pde = MethodSpec::Pde {
        time_steps: pde_t,
        space_steps: pde_x,
    };
    let tree = MethodSpec::Tree {
        steps: scale.tree_steps(),
    };
    let mc = MethodSpec::MonteCarlo {
        paths: scale.mc_paths(),
        time_steps: scale.mc_steps(),
        antithetic: true,
        seed: 42,
    };
    let qmc = MethodSpec::QuasiMonteCarlo {
        paths: scale.mc_paths(),
    };
    let lsm = MethodSpec::Lsm {
        paths: scale.lsm_paths(),
        exercise_dates: scale.lsm_dates(),
        basis_degree: 3,
        seed: 42,
    };

    // Parameter sets: (strike, maturity) pairs.
    let param_sets = [(90.0, 0.5), (100.0, 1.0), (110.0, 2.0)];

    for &(strike, maturity) in &param_sets {
        let bs = ModelSpec::by_name("BlackScholes1dim").unwrap();
        let lv = ModelSpec::by_name("LocalVol1dim").unwrap();
        let heston = ModelSpec::by_name("Heston1dim").unwrap();
        let multi7 = ModelSpec::by_name("BlackScholesNdim").unwrap();

        let call = OptionSpec::Call { strike, maturity };
        let put = OptionSpec::Put { strike, maturity };
        let dob = OptionSpec::DownOutCall {
            strike,
            barrier: strike * 0.85,
            maturity,
        };
        let amer = OptionSpec::AmericanPut { strike, maturity };
        let basket = OptionSpec::BasketPut { strike, maturity };
        let basket_amer = OptionSpec::AmericanBasketPut { strike, maturity };

        // BS vanilla: every applicable method.
        for method in [
            MethodSpec::ClosedForm,
            pde.clone(),
            tree.clone(),
            mc.clone(),
            qmc.clone(),
        ] {
            suite.push(PremiaProblem::new(bs.clone(), call.clone(), method.clone()));
            suite.push(PremiaProblem::new(bs.clone(), put.clone(), method));
        }
        // Barrier: closed form + PDE.
        suite.push(PremiaProblem::new(
            bs.clone(),
            dob.clone(),
            MethodSpec::ClosedForm,
        ));
        suite.push(PremiaProblem::new(bs.clone(), dob, pde.clone()));
        // American put: PDE, tree, LSM.
        suite.push(PremiaProblem::new(bs.clone(), amer.clone(), pde.clone()));
        suite.push(PremiaProblem::new(bs.clone(), amer.clone(), tree.clone()));
        suite.push(PremiaProblem::new(bs, amer.clone(), lsm.clone()));
        // Basket: MC + QMC; American basket: LSM.
        suite.push(PremiaProblem::new(
            multi7.clone(),
            basket.clone(),
            mc.clone(),
        ));
        suite.push(PremiaProblem::new(multi7.clone(), basket, qmc.clone()));
        suite.push(PremiaProblem::new(multi7, basket_amer, lsm.clone()));
        // Local vol: MC call and put.
        suite.push(PremiaProblem::new(lv.clone(), call.clone(), mc.clone()));
        suite.push(PremiaProblem::new(lv, put.clone(), mc.clone()));
        // Heston: semi-analytic CF + MC European + LSM American (§3.3
        // example).
        suite.push(PremiaProblem::new(
            heston.clone(),
            call.clone(),
            MethodSpec::ClosedForm,
        ));
        suite.push(PremiaProblem::new(
            heston.clone(),
            put.clone(),
            MethodSpec::ClosedForm,
        ));
        suite.push(PremiaProblem::new(heston.clone(), call, mc.clone()));
        suite.push(PremiaProblem::new(heston.clone(), put, mc.clone()));
        suite.push(PremiaProblem::new(heston, amer, lsm.clone()));
        // Rates (§2 extension): zero-coupon bond CF + MC, bond call CF.
        let vasicek = ModelSpec::by_name("Vasicek1dim").unwrap();
        let zcb = OptionSpec::ZeroCouponBond { maturity };
        let bond_call = OptionSpec::BondCall {
            strike: 0.85,
            maturity: maturity * 0.5,
            bond_maturity: maturity * 0.5 + 4.0,
        };
        suite.push(PremiaProblem::new(
            vasicek.clone(),
            zcb.clone(),
            MethodSpec::ClosedForm,
        ));
        suite.push(PremiaProblem::new(vasicek.clone(), zcb, mc.clone()));
        suite.push(PremiaProblem::new(
            vasicek,
            bond_call,
            MethodSpec::ClosedForm,
        ));
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_expected_size() {
        // 28 combinations × 3 parameter sets.
        let suite = regression_suite(SuiteScale::Quick);
        assert_eq!(suite.len(), 84);
    }

    #[test]
    fn suite_labels_unique_per_param_set() {
        let suite = regression_suite(SuiteScale::Quick);
        // Within one parameter set all 28 labels must be distinct.
        let labels: Vec<String> = suite[..28].iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn every_quick_problem_computes() {
        for p in regression_suite(SuiteScale::Quick) {
            let r = p
                .compute()
                .unwrap_or_else(|e| panic!("{} failed: {e}", p.label()));
            assert!(
                r.price.is_finite() && r.price >= -1e-9,
                "{}: price {}",
                p.label(),
                r.price
            );
        }
    }

    #[test]
    fn every_problem_round_trips_through_xdr() {
        for p in regression_suite(SuiteScale::Quick) {
            let s = xdrser::serialize(&p.to_value());
            let v = xdrser::unserialize(&s).unwrap();
            assert_eq!(PremiaProblem::from_value(&v).unwrap(), p);
        }
    }

    #[test]
    fn full_scale_parameters_are_heavier() {
        let q = regression_suite(SuiteScale::Quick);
        let f = regression_suite(SuiteScale::Full);
        assert_eq!(q.len(), f.len());
        // Find an MC problem and compare path counts.
        let paths = |p: &PremiaProblem| match p.method {
            MethodSpec::MonteCarlo { paths, .. } => Some(paths),
            _ => None,
        };
        let qp = q.iter().find_map(paths).unwrap();
        let fp = f.iter().find_map(paths).unwrap();
        assert!(fp > qp * 10);
    }
}
