//! Pricing-problem descriptors — the `PremiaModel` class of §3.3.
//!
//! "A pricing problem corresponds to the choice of a model for the
//! underlying asset, a financial product and a pricing method" (§4.1). The
//! paper builds such problems in Nsp:
//!
//! ```text
//! P = premia_create()
//! P.set_asset[str="equity"]
//! P.set_model[str="Heston1dim"]
//! P.set_option[str="PutAmer"]
//! P.set_method[str="MC_AM_Alfonsi_LongstaffSchwartz"]
//! save('fic', P)
//! ```
//!
//! [`PremiaProblem`] mirrors that: model/option/method are set by
//! registry name (with sensible default parameters, adjustable afterwards)
//! or constructed directly; problems convert losslessly to and from
//! [`nspval::Value`] hashes, so they can be `save`d, `load`ed, `sload`ed
//! and shipped over `minimpi` exactly as in Figs. 4–5; and
//! [`PremiaProblem::compute`] runs the actual numerical method
//! (`P.compute[]`).

use crate::methods::bermudan::{lsm_max_call, lsm_max_call_exec};
use crate::methods::bond::{bond_option_price, mc_zcb_price, mc_zcb_price_exec};
use crate::methods::bsde::{bsde_picard, BsdeConfig};
use crate::methods::closed_form::{bs_price, down_out_call_price};
use crate::methods::heston_cf::heston_cf_price;
use crate::methods::lsm::{
    lsm_basket, lsm_basket_exec, lsm_heston, lsm_heston_exec, lsm_vanilla_bs, lsm_vanilla_bs_exec,
    LsmConfig,
};
use crate::methods::montecarlo::{
    mc_basket, mc_basket_exec, mc_heston, mc_heston_exec, mc_local_vol, mc_local_vol_exec,
    mc_vanilla_bs, mc_vanilla_bs_exec, qmc_basket, qmc_vanilla_bs, McConfig,
};
use crate::methods::pde::{pde_barrier, pde_vanilla, PdeConfig};
use crate::methods::tree::{tree_vanilla, TreeConfig};
use crate::methods::xva::{xva_cva, xva_cva_exec, TradeSoA, XvaConfig};
use crate::models::{BlackScholes, Heston, LocalVol, MultiBlackScholes, Vasicek};
use crate::options::{Barrier, BasketOption, Exercise, MaxCall, OptionRight, Vanilla};
use exec::ExecPolicy;
use nspval::{Hash, Value};
use numerics::poly::BasisKind;
use std::fmt;

/// Model choice plus parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// One-dimensional Black–Scholes.
    BlackScholes(BlackScholes),
    /// One-dimensional Black–Scholes.
    MultiBlackScholes(MultiBlackScholes),
    /// Parametric local volatility.
    LocalVol(LocalVol),
    /// Heston stochastic volatility.
    Heston(Heston),
    /// Vasicek short-rate model (asset class "rates").
    Vasicek(Vasicek),
}

impl ModelSpec {
    /// Registry constructor by Premia-style name with conventional default
    /// parameters (spot 100, rate 5%, vol 20%).
    pub fn by_name(name: &str) -> Result<ModelSpec, PricingError> {
        match name {
            "BlackScholes1dim" => Ok(ModelSpec::BlackScholes(BlackScholes::new(
                100.0, 0.2, 0.05, 0.0,
            ))),
            "BlackScholesNdim" => Ok(ModelSpec::MultiBlackScholes(MultiBlackScholes::new(
                7, 100.0, 0.2, 0.3, 0.05, 0.0,
            ))),
            "LocalVol1dim" => Ok(ModelSpec::LocalVol(LocalVol::standard(
                100.0, 0.2, 0.05, 0.0,
            ))),
            "Heston1dim" => Ok(ModelSpec::Heston(Heston::standard(100.0, 0.05))),
            "Vasicek1dim" => Ok(ModelSpec::Vasicek(Vasicek::standard())),
            other => Err(PricingError::Unsupported(format!("unknown model {other}"))),
        }
    }

    /// The asset class this model belongs to ("equity" or "rates").
    pub fn asset_class(&self) -> &'static str {
        match self {
            ModelSpec::Vasicek(_) => "rates",
            _ => "equity",
        }
    }

    /// Registry name of this choice.
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::BlackScholes(_) => "BlackScholes1dim",
            ModelSpec::MultiBlackScholes(_) => "BlackScholesNdim",
            ModelSpec::LocalVol(_) => "LocalVol1dim",
            ModelSpec::Heston(_) => "Heston1dim",
            ModelSpec::Vasicek(_) => "Vasicek1dim",
        }
    }
}

/// Product choice plus contract terms.
#[derive(Debug, Clone, PartialEq)]
pub enum OptionSpec {
    /// European call.
    Call {
        /// Strike price.
        strike: f64,
        /// Maturity in years.
        maturity: f64,
    },
    /// European put.
    Put {
        /// Strike price.
        strike: f64,
        /// Maturity in years.
        maturity: f64,
    },
    /// Down-and-out barrier call (§4.3's barrier class).
    DownOutCall {
        /// Strike price.
        strike: f64,
        /// Barrier level.
        barrier: f64,
        /// Maturity in years.
        maturity: f64,
    },
    /// American put.
    AmericanPut {
        /// Strike price.
        strike: f64,
        /// Maturity in years.
        maturity: f64,
    },
    /// European basket put on the arithmetic average.
    BasketPut {
        /// Strike price.
        strike: f64,
        /// Maturity in years.
        maturity: f64,
    },
    /// American basket put.
    AmericanBasketPut {
        /// Strike price.
        strike: f64,
        /// Maturity in years.
        maturity: f64,
    },
    /// Zero-coupon bond paying 1 at `maturity` (rates asset class).
    ZeroCouponBond {
        /// Maturity in years.
        maturity: f64,
    },
    /// European call on a zero-coupon bond: option expiry `maturity`,
    /// bond maturity `bond_maturity`, strike in bond-price units.
    BondCall {
        /// Strike price.
        strike: f64,
        /// Maturity in years.
        maturity: f64,
        /// Maturity in years.
        bond_maturity: f64,
    },
    /// Bermudan call on the **maximum** of the model's assets
    /// (Doan et al. 2008's multi-dimensional benchmark product).
    BermudanMaxCall {
        /// Strike price.
        strike: f64,
        /// Maturity in years.
        maturity: f64,
    },
    /// A netting set of `trades` forward contracts for portfolio-level
    /// XVA aggregation; the book itself is generated deterministically
    /// from the pricing method's seed.
    NettingSet {
        /// Number of forward contracts in the set.
        trades: usize,
        /// Exposure horizon in years (longest trade maturity).
        maturity: f64,
    },
}

impl OptionSpec {
    /// Registry lookup by Premia-style name.
    pub fn by_name(name: &str) -> Result<OptionSpec, PricingError> {
        let (strike, maturity) = (100.0, 1.0);
        match name {
            "CallEuro" => Ok(OptionSpec::Call { strike, maturity }),
            "PutEuro" => Ok(OptionSpec::Put { strike, maturity }),
            "CallDownOut" => Ok(OptionSpec::DownOutCall {
                strike,
                barrier: 85.0,
                maturity,
            }),
            "PutAmer" => Ok(OptionSpec::AmericanPut { strike, maturity }),
            "PutBasket" => Ok(OptionSpec::BasketPut { strike, maturity }),
            "PutBasketAmer" => Ok(OptionSpec::AmericanBasketPut { strike, maturity }),
            "ZCBond" => Ok(OptionSpec::ZeroCouponBond { maturity: 5.0 }),
            "CallBond" => Ok(OptionSpec::BondCall {
                strike: 0.85,
                maturity: 1.0,
                bond_maturity: 5.0,
            }),
            "CallMaxBermuda" => Ok(OptionSpec::BermudanMaxCall { strike, maturity }),
            "NettingSetForward" => Ok(OptionSpec::NettingSet {
                trades: 64,
                maturity,
            }),
            other => Err(PricingError::Unsupported(format!("unknown option {other}"))),
        }
    }

    /// Registry name of this choice.
    pub fn name(&self) -> &'static str {
        match self {
            OptionSpec::Call { .. } => "CallEuro",
            OptionSpec::Put { .. } => "PutEuro",
            OptionSpec::DownOutCall { .. } => "CallDownOut",
            OptionSpec::AmericanPut { .. } => "PutAmer",
            OptionSpec::BasketPut { .. } => "PutBasket",
            OptionSpec::AmericanBasketPut { .. } => "PutBasketAmer",
            OptionSpec::ZeroCouponBond { .. } => "ZCBond",
            OptionSpec::BondCall { .. } => "CallBond",
            OptionSpec::BermudanMaxCall { .. } => "CallMaxBermuda",
            OptionSpec::NettingSet { .. } => "NettingSetForward",
        }
    }

    /// Contract maturity in years.
    pub fn maturity(&self) -> f64 {
        match self {
            OptionSpec::Call { maturity, .. }
            | OptionSpec::Put { maturity, .. }
            | OptionSpec::DownOutCall { maturity, .. }
            | OptionSpec::AmericanPut { maturity, .. }
            | OptionSpec::BasketPut { maturity, .. }
            | OptionSpec::AmericanBasketPut { maturity, .. }
            | OptionSpec::ZeroCouponBond { maturity }
            | OptionSpec::BondCall { maturity, .. }
            | OptionSpec::BermudanMaxCall { maturity, .. }
            | OptionSpec::NettingSet { maturity, .. } => *maturity,
        }
    }

    /// Contract strike (notional for bonds).
    pub fn strike(&self) -> f64 {
        match self {
            OptionSpec::Call { strike, .. }
            | OptionSpec::Put { strike, .. }
            | OptionSpec::DownOutCall { strike, .. }
            | OptionSpec::AmericanPut { strike, .. }
            | OptionSpec::BasketPut { strike, .. }
            | OptionSpec::AmericanBasketPut { strike, .. }
            | OptionSpec::BondCall { strike, .. }
            | OptionSpec::BermudanMaxCall { strike, .. } => *strike,
            // A zero-coupon bond has no strike; return the notional.
            OptionSpec::ZeroCouponBond { .. } => 1.0,
            // A netting set's strikes live per trade; report the spot
            // level the generated book centres on.
            OptionSpec::NettingSet { .. } => 100.0,
        }
    }
}

/// Numerical-method choice plus discretisation parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodSpec {
    /// Analytic formula (vanillas, down-and-out call).
    ClosedForm,
    /// Crank–Nicolson finite differences (PSOR for American).
    Pde {
        /// Number of time steps.
        time_steps: usize,
        /// Number of space intervals.
        space_steps: usize,
    },
    /// CRR binomial tree.
    Tree {
        /// Number of tree steps.
        steps: usize,
    },
    /// Plain Monte-Carlo.
    MonteCarlo {
        /// Number of Monte-Carlo paths.
        paths: usize,
        /// Number of time steps.
        time_steps: usize,
        /// Use antithetic variates.
        antithetic: bool,
        /// RNG seed (problems are deterministic given their spec).
        seed: u64,
    },
    /// Quasi-Monte-Carlo (Sobol/Halton) — ablation extension.
    QuasiMonteCarlo {
        /// Number of low-discrepancy points.
        paths: usize,
    },
    /// Longstaff–Schwartz American Monte-Carlo.
    Lsm {
        /// Number of Monte-Carlo paths.
        paths: usize,
        /// Number of exercise dates (Bermudan grid).
        exercise_dates: usize,
        /// Polynomial degree of the regression basis.
        basis_degree: usize,
        /// RNG seed (problems are deterministic given their spec).
        seed: u64,
    },
    /// BSDE pricing by iterated Picard sweeps (Labart–Lelong 2011): the
    /// two-rate borrowing-spread model whose round `k+1` consumes round
    /// `k`'s answer — the staged farm runs one sweep per round.
    Bsde {
        /// Monte-Carlo paths per sweep.
        paths: usize,
        /// Time discretisation of the driver integral.
        time_steps: usize,
        /// Borrowing spread `R − r` (the driver's Lipschitz constant).
        rate_spread: f64,
        /// Picard iterations to run from `y_prev`.
        picard_rounds: usize,
        /// Starting iterate (patched between farm rounds).
        y_prev: f64,
        /// RNG seed (problems are deterministic given their spec).
        seed: u64,
    },
    /// Portfolio-level CVA over a structure-of-arrays netting set.
    Xva {
        /// Monte-Carlo exposure paths.
        paths: usize,
        /// Exposure dates on the horizon.
        time_steps: usize,
        /// Constant counterparty hazard rate λ.
        hazard: f64,
        /// Loss given default.
        lgd: f64,
        /// RNG seed for the paths and the generated book.
        seed: u64,
    },
}

impl MethodSpec {
    /// Registry lookup by Premia-style name.
    pub fn by_name(name: &str) -> Result<MethodSpec, PricingError> {
        match name {
            "CF" => Ok(MethodSpec::ClosedForm),
            "FD_CrankNicolson" => Ok(MethodSpec::Pde {
                time_steps: 200,
                space_steps: 400,
            }),
            "TR_CoxRossRubinstein" => Ok(MethodSpec::Tree { steps: 500 }),
            "MC_Standard" => Ok(MethodSpec::MonteCarlo {
                paths: 100_000,
                time_steps: 50,
                antithetic: true,
                seed: 42,
            }),
            "MC_Quasi" => Ok(MethodSpec::QuasiMonteCarlo { paths: 65_536 }),
            // The paper's §3.3 example name, kept verbatim in the registry.
            "MC_AM_Alfonsi_LongstaffSchwartz" | "MC_AM_LongstaffSchwartz" => Ok(MethodSpec::Lsm {
                paths: 20_000,
                exercise_dates: 50,
                basis_degree: 3,
                seed: 42,
            }),
            "MC_BSDE_LabartLelong" => Ok(MethodSpec::Bsde {
                paths: 16_384,
                time_steps: 25,
                rate_spread: 0.05,
                picard_rounds: 4,
                y_prev: 0.0,
                seed: 42,
            }),
            "MC_XVA_CVA" => Ok(MethodSpec::Xva {
                paths: 8_192,
                time_steps: 50,
                hazard: 0.02,
                lgd: 0.6,
                seed: 42,
            }),
            other => Err(PricingError::Unsupported(format!("unknown method {other}"))),
        }
    }

    /// Registry name of this choice.
    pub fn name(&self) -> &'static str {
        match self {
            MethodSpec::ClosedForm => "CF",
            MethodSpec::Pde { .. } => "FD_CrankNicolson",
            MethodSpec::Tree { .. } => "TR_CoxRossRubinstein",
            MethodSpec::MonteCarlo { .. } => "MC_Standard",
            MethodSpec::QuasiMonteCarlo { .. } => "MC_Quasi",
            MethodSpec::Lsm { .. } => "MC_AM_LongstaffSchwartz",
            MethodSpec::Bsde { .. } => "MC_BSDE_LabartLelong",
            MethodSpec::Xva { .. } => "MC_XVA_CVA",
        }
    }
}

/// The result of `P.compute[]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PricingResult {
    /// Price estimate.
    pub price: f64,
    /// First derivative w.r.t. spot, when the method produces it (§4.1:
    /// "sometimes also the delta").
    pub delta: Option<f64>,
    /// Monte-Carlo standard error, when applicable.
    pub std_error: Option<f64>,
    /// Name of the method that produced the value.
    pub method: String,
}

/// Errors from building or computing a problem.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingError {
    /// The (model, option, method) triple has no implementation — same
    /// role as Premia's compatibility matrix.
    Unsupported(String),
    /// Parameters failed validation.
    Invalid(String),
    /// A serialized problem could not be decoded.
    Malformed(String),
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::Unsupported(m) => write!(f, "unsupported combination: {m}"),
            PricingError::Invalid(m) => write!(f, "invalid parameters: {m}"),
            PricingError::Malformed(m) => write!(f, "malformed problem: {m}"),
        }
    }
}

impl std::error::Error for PricingError {}

/// A fully specified pricing problem — the paper's `PremiaModel` instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PremiaProblem {
    /// Asset class; the benchmark uses `"equity"` throughout (§4.3:
    /// "we have restricted to equity derivatives for our tests").
    pub asset: String,
    /// Model choice plus parameters.
    pub model: ModelSpec,
    /// Product choice plus contract terms.
    pub option: OptionSpec,
    /// Numerical-method choice.
    pub method: MethodSpec,
}

impl PremiaProblem {
    /// `premia_create()` followed by the §3.3 setters, in one call.
    pub fn create(model: &str, option: &str, method: &str) -> Result<Self, PricingError> {
        let model = ModelSpec::by_name(model)?;
        Ok(PremiaProblem {
            asset: model.asset_class().to_string(),
            model,
            option: OptionSpec::by_name(option)?,
            method: MethodSpec::by_name(method)?,
        })
    }

    /// Direct construction from typed specs.
    pub fn new(model: ModelSpec, option: OptionSpec, method: MethodSpec) -> Self {
        PremiaProblem {
            asset: model.asset_class().to_string(),
            model,
            option,
            method,
        }
    }

    /// A short human-readable identifier (used in logs and the regression
    /// suite listing).
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.model.name(),
            self.option.name(),
            self.method.name()
        )
    }

    /// `P.compute[]`: run the numerical method. Unsupported combinations
    /// return `Err(Unsupported)` — Premia's compatibility matrix.
    ///
    /// Single-threaded; bit-identical to every release since the seed.
    pub fn compute(&self) -> Result<PricingResult, PricingError> {
        self.compute_inner(None)
    }

    /// [`Self::compute`] with intra-problem compute parallelism: the
    /// Monte-Carlo and LSM path loops run on the [`exec`] chunked executor
    /// under `pol`. Prices are bit-identical for any worker count in `pol`
    /// (the chunked kernels draw per-chunk [`exec::stream_seed`] streams),
    /// but are a *different deterministic sample* than [`Self::compute`] —
    /// choose one contract per experiment. Methods without a path loop
    /// (closed form, PDE, tree, QMC) ignore the policy.
    pub fn compute_with(&self, pol: &ExecPolicy) -> Result<PricingResult, PricingError> {
        self.compute_inner(Some(pol))
    }

    fn compute_inner(&self, pol: Option<&ExecPolicy>) -> Result<PricingResult, PricingError> {
        use MethodSpec as M;
        use ModelSpec as Mo;
        use OptionSpec as O;

        let unsupported = || {
            Err(PricingError::Unsupported(format!(
                "{} / {} / {}",
                self.model.name(),
                self.option.name(),
                self.method.name()
            )))
        };

        match (&self.model, &self.option) {
            // ---- 1-D Black–Scholes vanilla -------------------------------
            (Mo::BlackScholes(m), O::Call { strike, maturity })
            | (Mo::BlackScholes(m), O::Put { strike, maturity }) => {
                let right = if matches!(self.option, O::Call { .. }) {
                    OptionRight::Call
                } else {
                    OptionRight::Put
                };
                let opt = Vanilla {
                    right,
                    strike: *strike,
                    maturity: *maturity,
                    exercise: Exercise::European,
                };
                match &self.method {
                    M::ClosedForm => {
                        let q = bs_price(m, &opt);
                        Ok(PricingResult {
                            price: q.price,
                            delta: Some(q.delta),
                            std_error: None,
                            method: self.method.name().into(),
                        })
                    }
                    M::Pde {
                        time_steps,
                        space_steps,
                    } => {
                        let sol = pde_vanilla(
                            m,
                            &opt,
                            &PdeConfig {
                                time_steps: *time_steps,
                                space_steps: *space_steps,
                                ..PdeConfig::default()
                            },
                        );
                        Ok(PricingResult {
                            price: sol.price,
                            delta: Some(sol.delta),
                            std_error: None,
                            method: self.method.name().into(),
                        })
                    }
                    M::Tree { steps } => {
                        let sol = tree_vanilla(m, &opt, &TreeConfig { steps: *steps });
                        Ok(PricingResult {
                            price: sol.price,
                            delta: Some(sol.delta),
                            std_error: None,
                            method: self.method.name().into(),
                        })
                    }
                    M::MonteCarlo {
                        paths,
                        time_steps,
                        antithetic,
                        seed,
                    } => {
                        let cfg = McConfig {
                            paths: *paths,
                            time_steps: *time_steps,
                            antithetic: *antithetic,
                            seed: *seed,
                        };
                        let r = match pol {
                            Some(p) => mc_vanilla_bs_exec(m, &opt, &cfg, p),
                            None => mc_vanilla_bs(m, &opt, &cfg),
                        };
                        Ok(PricingResult {
                            price: r.price,
                            delta: r.delta,
                            std_error: Some(r.std_error),
                            method: self.method.name().into(),
                        })
                    }
                    M::QuasiMonteCarlo { paths } => {
                        let r = qmc_vanilla_bs(m, &opt, *paths);
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: None,
                            method: self.method.name().into(),
                        })
                    }
                    M::Bsde {
                        paths,
                        time_steps,
                        rate_spread,
                        picard_rounds,
                        y_prev,
                        seed,
                    } => {
                        let cfg = BsdeConfig {
                            paths: *paths,
                            time_steps: *time_steps,
                            rate_spread: *rate_spread,
                            picard_rounds: *picard_rounds,
                            y_prev: *y_prev,
                            seed: *seed,
                        };
                        let r = bsde_picard(m, &opt, &cfg, pol);
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: Some(r.std_error),
                            method: self.method.name().into(),
                        })
                    }
                    _ => unsupported(),
                }
            }

            // ---- 1-D Black–Scholes barrier -------------------------------
            (
                Mo::BlackScholes(m),
                O::DownOutCall {
                    strike,
                    barrier,
                    maturity,
                },
            ) => {
                let opt = Barrier::down_out_call(*strike, *barrier, *maturity);
                match &self.method {
                    M::ClosedForm => Ok(PricingResult {
                        price: down_out_call_price(m, &opt),
                        delta: None,
                        std_error: None,
                        method: self.method.name().into(),
                    }),
                    M::Pde {
                        time_steps,
                        space_steps,
                    } => {
                        let sol = pde_barrier(
                            m,
                            &opt,
                            &PdeConfig {
                                time_steps: *time_steps,
                                space_steps: *space_steps,
                                ..PdeConfig::default()
                            },
                        );
                        Ok(PricingResult {
                            price: sol.price,
                            delta: Some(sol.delta),
                            std_error: None,
                            method: self.method.name().into(),
                        })
                    }
                    _ => unsupported(),
                }
            }

            // ---- 1-D Black–Scholes American put --------------------------
            (Mo::BlackScholes(m), O::AmericanPut { strike, maturity }) => {
                let opt = Vanilla::american_put(*strike, *maturity);
                match &self.method {
                    M::Pde {
                        time_steps,
                        space_steps,
                    } => {
                        let sol = pde_vanilla(
                            m,
                            &opt,
                            &PdeConfig {
                                time_steps: *time_steps,
                                space_steps: *space_steps,
                                ..PdeConfig::default()
                            },
                        );
                        Ok(PricingResult {
                            price: sol.price,
                            delta: Some(sol.delta),
                            std_error: None,
                            method: self.method.name().into(),
                        })
                    }
                    M::Tree { steps } => {
                        let sol = tree_vanilla(m, &opt, &TreeConfig { steps: *steps });
                        Ok(PricingResult {
                            price: sol.price,
                            delta: Some(sol.delta),
                            std_error: None,
                            method: self.method.name().into(),
                        })
                    }
                    M::Lsm {
                        paths,
                        exercise_dates,
                        basis_degree,
                        seed,
                    } => {
                        let cfg = LsmConfig {
                            paths: *paths,
                            exercise_dates: *exercise_dates,
                            basis_degree: *basis_degree,
                            basis: BasisKind::Monomial,
                            seed: *seed,
                        };
                        let r = match pol {
                            Some(p) => lsm_vanilla_bs_exec(m, &opt, &cfg, p),
                            None => lsm_vanilla_bs(m, &opt, &cfg),
                        };
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: Some(r.std_error),
                            method: self.method.name().into(),
                        })
                    }
                    _ => unsupported(),
                }
            }

            // ---- multi-asset basket --------------------------------------
            (Mo::MultiBlackScholes(m), O::BasketPut { strike, maturity }) => {
                let opt = BasketOption::european_put(*strike, *maturity);
                match &self.method {
                    M::MonteCarlo {
                        paths,
                        time_steps,
                        antithetic,
                        seed,
                    } => {
                        let cfg = McConfig {
                            paths: *paths,
                            time_steps: *time_steps,
                            antithetic: *antithetic,
                            seed: *seed,
                        };
                        let r = match pol {
                            Some(p) => mc_basket_exec(m, &opt, &cfg, p),
                            None => mc_basket(m, &opt, &cfg),
                        };
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: Some(r.std_error),
                            method: self.method.name().into(),
                        })
                    }
                    M::QuasiMonteCarlo { paths } => {
                        let r = qmc_basket(m, &opt, *paths);
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: None,
                            method: self.method.name().into(),
                        })
                    }
                    _ => unsupported(),
                }
            }
            (Mo::MultiBlackScholes(m), O::AmericanBasketPut { strike, maturity }) => {
                let opt = BasketOption::american_put(*strike, *maturity);
                match &self.method {
                    M::Lsm {
                        paths,
                        exercise_dates,
                        basis_degree,
                        seed,
                    } => {
                        let cfg = LsmConfig {
                            paths: *paths,
                            exercise_dates: *exercise_dates,
                            basis_degree: *basis_degree,
                            basis: BasisKind::Monomial,
                            seed: *seed,
                        };
                        let r = match pol {
                            Some(p) => lsm_basket_exec(m, &opt, &cfg, p),
                            None => lsm_basket(m, &opt, &cfg),
                        };
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: Some(r.std_error),
                            method: self.method.name().into(),
                        })
                    }
                    _ => unsupported(),
                }
            }

            // ---- multi-asset Bermudan max-call (Doan et al.) -------------
            (Mo::MultiBlackScholes(m), O::BermudanMaxCall { strike, maturity }) => {
                let opt = MaxCall::bermudan(*strike, *maturity);
                match &self.method {
                    M::Lsm {
                        paths,
                        exercise_dates,
                        basis_degree,
                        seed,
                    } => {
                        let cfg = LsmConfig {
                            paths: *paths,
                            exercise_dates: *exercise_dates,
                            basis_degree: *basis_degree,
                            basis: BasisKind::Monomial,
                            seed: *seed,
                        };
                        let r = match pol {
                            Some(p) => lsm_max_call_exec(m, &opt, &cfg, p),
                            None => lsm_max_call(m, &opt, &cfg),
                        };
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: Some(r.std_error),
                            method: self.method.name().into(),
                        })
                    }
                    _ => unsupported(),
                }
            }

            // ---- portfolio-level XVA -------------------------------------
            (Mo::BlackScholes(m), O::NettingSet { trades, maturity }) => match &self.method {
                M::Xva {
                    paths,
                    time_steps,
                    hazard,
                    lgd,
                    seed,
                } => {
                    let cfg = XvaConfig {
                        paths: *paths,
                        time_steps: *time_steps,
                        hazard: *hazard,
                        lgd: *lgd,
                        seed: *seed,
                    };
                    // The book is part of the problem: a pure function of
                    // (trades, seed), so the same spec always aggregates
                    // the same netting set.
                    let book = TradeSoA::generate(*trades, m.spot, *maturity, *seed);
                    let r = match pol {
                        Some(p) => xva_cva_exec(m, &book, *maturity, &cfg, p),
                        None => xva_cva(m, &book, *maturity, &cfg),
                    };
                    Ok(PricingResult {
                        price: r.price,
                        delta: None,
                        std_error: Some(r.std_error),
                        method: self.method.name().into(),
                    })
                }
                _ => unsupported(),
            },

            // ---- local volatility ----------------------------------------
            (Mo::LocalVol(m), O::Call { strike, maturity })
            | (Mo::LocalVol(m), O::Put { strike, maturity }) => {
                let right = if matches!(self.option, O::Call { .. }) {
                    OptionRight::Call
                } else {
                    OptionRight::Put
                };
                let opt = Vanilla {
                    right,
                    strike: *strike,
                    maturity: *maturity,
                    exercise: Exercise::European,
                };
                match &self.method {
                    M::MonteCarlo {
                        paths,
                        time_steps,
                        antithetic,
                        seed,
                    } => {
                        let cfg = McConfig {
                            paths: *paths,
                            time_steps: *time_steps,
                            antithetic: *antithetic,
                            seed: *seed,
                        };
                        let r = match pol {
                            Some(p) => mc_local_vol_exec(m, &opt, &cfg, p),
                            None => mc_local_vol(m, &opt, &cfg),
                        };
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: Some(r.std_error),
                            method: self.method.name().into(),
                        })
                    }
                    _ => unsupported(),
                }
            }

            // ---- Heston --------------------------------------------------
            (Mo::Heston(m), O::Call { strike, maturity })
            | (Mo::Heston(m), O::Put { strike, maturity }) => {
                let right = if matches!(self.option, O::Call { .. }) {
                    OptionRight::Call
                } else {
                    OptionRight::Put
                };
                let opt = Vanilla {
                    right,
                    strike: *strike,
                    maturity: *maturity,
                    exercise: Exercise::European,
                };
                match &self.method {
                    M::ClosedForm => Ok(PricingResult {
                        price: heston_cf_price(m, &opt),
                        delta: None,
                        std_error: None,
                        method: self.method.name().into(),
                    }),
                    M::MonteCarlo {
                        paths,
                        time_steps,
                        antithetic,
                        seed,
                    } => {
                        let cfg = McConfig {
                            paths: *paths,
                            time_steps: *time_steps,
                            antithetic: *antithetic,
                            seed: *seed,
                        };
                        let r = match pol {
                            Some(p) => mc_heston_exec(m, &opt, &cfg, p),
                            None => mc_heston(m, &opt, &cfg),
                        };
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: Some(r.std_error),
                            method: self.method.name().into(),
                        })
                    }
                    _ => unsupported(),
                }
            }
            (Mo::Heston(m), O::AmericanPut { strike, maturity }) => {
                let opt = Vanilla::american_put(*strike, *maturity);
                match &self.method {
                    M::Lsm {
                        paths,
                        exercise_dates,
                        basis_degree,
                        seed,
                    } => {
                        let cfg = LsmConfig {
                            paths: *paths,
                            exercise_dates: *exercise_dates,
                            basis_degree: *basis_degree,
                            basis: BasisKind::Monomial,
                            seed: *seed,
                        };
                        let r = match pol {
                            Some(p) => lsm_heston_exec(m, &opt, &cfg, p),
                            None => lsm_heston(m, &opt, &cfg),
                        };
                        Ok(PricingResult {
                            price: r.price,
                            delta: None,
                            std_error: Some(r.std_error),
                            method: self.method.name().into(),
                        })
                    }
                    _ => unsupported(),
                }
            }

            // ---- Vasicek rates ------------------------------------------
            (Mo::Vasicek(m), O::ZeroCouponBond { maturity }) => match &self.method {
                M::ClosedForm => Ok(PricingResult {
                    price: m.zcb_price(*maturity),
                    delta: None,
                    std_error: None,
                    method: self.method.name().into(),
                }),
                M::MonteCarlo {
                    paths,
                    time_steps,
                    antithetic,
                    seed,
                } => {
                    let cfg = McConfig {
                        paths: *paths,
                        time_steps: *time_steps,
                        antithetic: *antithetic,
                        seed: *seed,
                    };
                    let r = match pol {
                        Some(p) => mc_zcb_price_exec(m, *maturity, &cfg, p),
                        None => mc_zcb_price(m, *maturity, &cfg),
                    };
                    Ok(PricingResult {
                        price: r.price,
                        delta: None,
                        std_error: Some(r.std_error),
                        method: self.method.name().into(),
                    })
                }
                _ => unsupported(),
            },
            (
                Mo::Vasicek(m),
                O::BondCall {
                    strike,
                    maturity,
                    bond_maturity,
                },
            ) => match &self.method {
                M::ClosedForm => Ok(PricingResult {
                    price: bond_option_price(
                        m,
                        OptionRight::Call,
                        *strike,
                        *maturity,
                        *bond_maturity,
                    ),
                    delta: None,
                    std_error: None,
                    method: self.method.name().into(),
                }),
                _ => unsupported(),
            },

            _ => unsupported(),
        }
    }
}

// ---------------------------------------------------------------------------
// Value (XDR) encoding
// ---------------------------------------------------------------------------

fn hash_get_f64(h: &Hash, key: &str) -> Result<f64, PricingError> {
    h.get(key)
        .and_then(|v| v.as_scalar())
        .ok_or_else(|| PricingError::Malformed(format!("missing scalar field {key}")))
}

fn hash_get_str<'a>(h: &'a Hash, key: &str) -> Result<&'a str, PricingError> {
    h.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| PricingError::Malformed(format!("missing string field {key}")))
}

fn hash_get_usize(h: &Hash, key: &str) -> Result<usize, PricingError> {
    let x = hash_get_f64(h, key)?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(PricingError::Malformed(format!(
            "field {key} is not a count: {x}"
        )));
    }
    Ok(x as usize)
}

fn hash_get_bool(h: &Hash, key: &str) -> Result<bool, PricingError> {
    h.get(key)
        .and_then(|v| v.as_bool())
        .ok_or_else(|| PricingError::Malformed(format!("missing boolean field {key}")))
}

impl ModelSpec {
    fn to_value(&self) -> Value {
        let mut h = Hash::new();
        h.set("name", Value::string(self.name()));
        match self {
            ModelSpec::BlackScholes(m) => {
                h.set("spot", Value::scalar(m.spot));
                h.set("sigma", Value::scalar(m.sigma));
                h.set("rate", Value::scalar(m.rate));
                h.set("dividend", Value::scalar(m.dividend));
            }
            ModelSpec::MultiBlackScholes(m) => {
                h.set("dim", Value::scalar(m.dim as f64));
                h.set("spot", Value::scalar(m.spot));
                h.set("sigma", Value::scalar(m.sigma));
                h.set("rho", Value::scalar(m.rho));
                h.set("rate", Value::scalar(m.rate));
                h.set("dividend", Value::scalar(m.dividend));
            }
            ModelSpec::LocalVol(m) => {
                h.set("spot", Value::scalar(m.spot));
                h.set("sigma0", Value::scalar(m.sigma0));
                h.set("term_amp", Value::scalar(m.term_amp));
                h.set("term_tau", Value::scalar(m.term_tau));
                h.set("skew_amp", Value::scalar(m.skew_amp));
                h.set("skew_width", Value::scalar(m.skew_width));
                h.set("rate", Value::scalar(m.rate));
                h.set("dividend", Value::scalar(m.dividend));
            }
            ModelSpec::Heston(m) => {
                h.set("spot", Value::scalar(m.spot));
                h.set("v0", Value::scalar(m.v0));
                h.set("kappa", Value::scalar(m.kappa));
                h.set("theta", Value::scalar(m.theta));
                h.set("xi", Value::scalar(m.xi));
                h.set("rho", Value::scalar(m.rho));
                h.set("rate", Value::scalar(m.rate));
                h.set("dividend", Value::scalar(m.dividend));
            }
            ModelSpec::Vasicek(m) => {
                h.set("r0", Value::scalar(m.r0));
                h.set("kappa", Value::scalar(m.kappa));
                h.set("theta", Value::scalar(m.theta));
                h.set("sigma", Value::scalar(m.sigma));
            }
        }
        Value::Hash(h)
    }

    fn from_value(v: &Value) -> Result<ModelSpec, PricingError> {
        let h = v
            .as_hash()
            .ok_or_else(|| PricingError::Malformed("model is not a hash".into()))?;
        match hash_get_str(h, "name")? {
            "BlackScholes1dim" => Ok(ModelSpec::BlackScholes(BlackScholes {
                spot: hash_get_f64(h, "spot")?,
                sigma: hash_get_f64(h, "sigma")?,
                rate: hash_get_f64(h, "rate")?,
                dividend: hash_get_f64(h, "dividend")?,
            })),
            "BlackScholesNdim" => Ok(ModelSpec::MultiBlackScholes(MultiBlackScholes {
                dim: hash_get_usize(h, "dim")?,
                spot: hash_get_f64(h, "spot")?,
                sigma: hash_get_f64(h, "sigma")?,
                rho: hash_get_f64(h, "rho")?,
                rate: hash_get_f64(h, "rate")?,
                dividend: hash_get_f64(h, "dividend")?,
            })),
            "LocalVol1dim" => Ok(ModelSpec::LocalVol(LocalVol {
                spot: hash_get_f64(h, "spot")?,
                sigma0: hash_get_f64(h, "sigma0")?,
                term_amp: hash_get_f64(h, "term_amp")?,
                term_tau: hash_get_f64(h, "term_tau")?,
                skew_amp: hash_get_f64(h, "skew_amp")?,
                skew_width: hash_get_f64(h, "skew_width")?,
                rate: hash_get_f64(h, "rate")?,
                dividend: hash_get_f64(h, "dividend")?,
            })),
            "Heston1dim" => Ok(ModelSpec::Heston(Heston {
                spot: hash_get_f64(h, "spot")?,
                v0: hash_get_f64(h, "v0")?,
                kappa: hash_get_f64(h, "kappa")?,
                theta: hash_get_f64(h, "theta")?,
                xi: hash_get_f64(h, "xi")?,
                rho: hash_get_f64(h, "rho")?,
                rate: hash_get_f64(h, "rate")?,
                dividend: hash_get_f64(h, "dividend")?,
            })),
            "Vasicek1dim" => Ok(ModelSpec::Vasicek(Vasicek {
                r0: hash_get_f64(h, "r0")?,
                kappa: hash_get_f64(h, "kappa")?,
                theta: hash_get_f64(h, "theta")?,
                sigma: hash_get_f64(h, "sigma")?,
            })),
            other => Err(PricingError::Malformed(format!("unknown model {other}"))),
        }
    }
}

impl OptionSpec {
    fn to_value(&self) -> Value {
        let mut h = Hash::new();
        h.set("name", Value::string(self.name()));
        h.set("strike", Value::scalar(self.strike()));
        h.set("maturity", Value::scalar(self.maturity()));
        if let OptionSpec::DownOutCall { barrier, .. } = self {
            h.set("barrier", Value::scalar(*barrier));
        }
        if let OptionSpec::BondCall { bond_maturity, .. } = self {
            h.set("bond_maturity", Value::scalar(*bond_maturity));
        }
        if let OptionSpec::NettingSet { trades, .. } = self {
            h.set("trades", Value::scalar(*trades as f64));
        }
        Value::Hash(h)
    }

    fn from_value(v: &Value) -> Result<OptionSpec, PricingError> {
        let h = v
            .as_hash()
            .ok_or_else(|| PricingError::Malformed("option is not a hash".into()))?;
        let strike = hash_get_f64(h, "strike")?;
        let maturity = hash_get_f64(h, "maturity")?;
        match hash_get_str(h, "name")? {
            "CallEuro" => Ok(OptionSpec::Call { strike, maturity }),
            "PutEuro" => Ok(OptionSpec::Put { strike, maturity }),
            "CallDownOut" => Ok(OptionSpec::DownOutCall {
                strike,
                barrier: hash_get_f64(h, "barrier")?,
                maturity,
            }),
            "PutAmer" => Ok(OptionSpec::AmericanPut { strike, maturity }),
            "PutBasket" => Ok(OptionSpec::BasketPut { strike, maturity }),
            "PutBasketAmer" => Ok(OptionSpec::AmericanBasketPut { strike, maturity }),
            "ZCBond" => Ok(OptionSpec::ZeroCouponBond { maturity }),
            "CallBond" => Ok(OptionSpec::BondCall {
                strike,
                maturity,
                bond_maturity: hash_get_f64(h, "bond_maturity")?,
            }),
            "CallMaxBermuda" => Ok(OptionSpec::BermudanMaxCall { strike, maturity }),
            "NettingSetForward" => Ok(OptionSpec::NettingSet {
                trades: hash_get_usize(h, "trades")?,
                maturity,
            }),
            other => Err(PricingError::Malformed(format!("unknown option {other}"))),
        }
    }
}

impl MethodSpec {
    fn to_value(&self) -> Value {
        let mut h = Hash::new();
        h.set("name", Value::string(self.name()));
        match self {
            MethodSpec::ClosedForm => {}
            MethodSpec::Pde {
                time_steps,
                space_steps,
            } => {
                h.set("time_steps", Value::scalar(*time_steps as f64));
                h.set("space_steps", Value::scalar(*space_steps as f64));
            }
            MethodSpec::Tree { steps } => {
                h.set("steps", Value::scalar(*steps as f64));
            }
            MethodSpec::MonteCarlo {
                paths,
                time_steps,
                antithetic,
                seed,
            } => {
                h.set("paths", Value::scalar(*paths as f64));
                h.set("time_steps", Value::scalar(*time_steps as f64));
                h.set("antithetic", Value::boolean(*antithetic));
                h.set("seed", Value::scalar(*seed as f64));
            }
            MethodSpec::QuasiMonteCarlo { paths } => {
                h.set("paths", Value::scalar(*paths as f64));
            }
            MethodSpec::Lsm {
                paths,
                exercise_dates,
                basis_degree,
                seed,
            } => {
                h.set("paths", Value::scalar(*paths as f64));
                h.set("exercise_dates", Value::scalar(*exercise_dates as f64));
                h.set("basis_degree", Value::scalar(*basis_degree as f64));
                h.set("seed", Value::scalar(*seed as f64));
            }
            MethodSpec::Bsde {
                paths,
                time_steps,
                rate_spread,
                picard_rounds,
                y_prev,
                seed,
            } => {
                h.set("paths", Value::scalar(*paths as f64));
                h.set("time_steps", Value::scalar(*time_steps as f64));
                h.set("rate_spread", Value::scalar(*rate_spread));
                h.set("picard_rounds", Value::scalar(*picard_rounds as f64));
                h.set("y_prev", Value::scalar(*y_prev));
                h.set("seed", Value::scalar(*seed as f64));
            }
            MethodSpec::Xva {
                paths,
                time_steps,
                hazard,
                lgd,
                seed,
            } => {
                h.set("paths", Value::scalar(*paths as f64));
                h.set("time_steps", Value::scalar(*time_steps as f64));
                h.set("hazard", Value::scalar(*hazard));
                h.set("lgd", Value::scalar(*lgd));
                h.set("seed", Value::scalar(*seed as f64));
            }
        }
        Value::Hash(h)
    }

    fn from_value(v: &Value) -> Result<MethodSpec, PricingError> {
        let h = v
            .as_hash()
            .ok_or_else(|| PricingError::Malformed("method is not a hash".into()))?;
        match hash_get_str(h, "name")? {
            "CF" => Ok(MethodSpec::ClosedForm),
            "FD_CrankNicolson" => Ok(MethodSpec::Pde {
                time_steps: hash_get_usize(h, "time_steps")?,
                space_steps: hash_get_usize(h, "space_steps")?,
            }),
            "TR_CoxRossRubinstein" => Ok(MethodSpec::Tree {
                steps: hash_get_usize(h, "steps")?,
            }),
            "MC_Standard" => Ok(MethodSpec::MonteCarlo {
                paths: hash_get_usize(h, "paths")?,
                time_steps: hash_get_usize(h, "time_steps")?,
                antithetic: hash_get_bool(h, "antithetic")?,
                seed: hash_get_usize(h, "seed")? as u64,
            }),
            "MC_Quasi" => Ok(MethodSpec::QuasiMonteCarlo {
                paths: hash_get_usize(h, "paths")?,
            }),
            "MC_AM_LongstaffSchwartz" | "MC_AM_Alfonsi_LongstaffSchwartz" => Ok(MethodSpec::Lsm {
                paths: hash_get_usize(h, "paths")?,
                exercise_dates: hash_get_usize(h, "exercise_dates")?,
                basis_degree: hash_get_usize(h, "basis_degree")?,
                seed: hash_get_usize(h, "seed")? as u64,
            }),
            "MC_BSDE_LabartLelong" => Ok(MethodSpec::Bsde {
                paths: hash_get_usize(h, "paths")?,
                time_steps: hash_get_usize(h, "time_steps")?,
                rate_spread: hash_get_f64(h, "rate_spread")?,
                picard_rounds: hash_get_usize(h, "picard_rounds")?,
                y_prev: hash_get_f64(h, "y_prev")?,
                seed: hash_get_usize(h, "seed")? as u64,
            }),
            "MC_XVA_CVA" => Ok(MethodSpec::Xva {
                paths: hash_get_usize(h, "paths")?,
                time_steps: hash_get_usize(h, "time_steps")?,
                hazard: hash_get_f64(h, "hazard")?,
                lgd: hash_get_f64(h, "lgd")?,
                seed: hash_get_usize(h, "seed")? as u64,
            }),
            other => Err(PricingError::Malformed(format!("unknown method {other}"))),
        }
    }
}

impl PremiaProblem {
    /// Encode as an Nsp hash value, ready for `save`/`serialize`.
    pub fn to_value(&self) -> Value {
        let mut h = Hash::new();
        h.set("class", Value::string("PremiaModel"));
        h.set("asset", Value::string(self.asset.clone()));
        h.set("model", self.model.to_value());
        h.set("option", self.option.to_value());
        h.set("method", self.method.to_value());
        Value::Hash(h)
    }

    /// Decode from an Nsp hash value (as produced by [`Self::to_value`]).
    pub fn from_value(v: &Value) -> Result<Self, PricingError> {
        let h = v
            .as_hash()
            .ok_or_else(|| PricingError::Malformed("problem is not a hash".into()))?;
        if hash_get_str(h, "class")? != "PremiaModel" {
            return Err(PricingError::Malformed("not a PremiaModel".into()));
        }
        Ok(PremiaProblem {
            asset: hash_get_str(h, "asset")?.to_string(),
            model: ModelSpec::from_value(
                h.get("model")
                    .ok_or_else(|| PricingError::Malformed("missing model".into()))?,
            )?,
            option: OptionSpec::from_value(
                h.get("option")
                    .ok_or_else(|| PricingError::Malformed("missing option".into()))?,
            )?,
            method: MethodSpec::from_value(
                h.get("method")
                    .ok_or_else(|| PricingError::Malformed("missing method".into()))?,
            )?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section_3_3_example_builds_and_computes() {
        // P.set_model[str="Heston1dim"]; P.set_option[str="PutAmer"];
        // P.set_method[str="MC_AM_Alfonsi_LongstaffSchwartz"]
        let mut p =
            PremiaProblem::create("Heston1dim", "PutAmer", "MC_AM_Alfonsi_LongstaffSchwartz")
                .unwrap();
        // Shrink for test runtime.
        p.method = MethodSpec::Lsm {
            paths: 2_000,
            exercise_dates: 10,
            basis_degree: 3,
            seed: 1,
        };
        let r = p.compute().unwrap();
        assert!(r.price > 0.0 && r.price < 100.0);
        assert!(r.std_error.is_some());
    }

    #[test]
    fn closed_form_problem() {
        let p = PremiaProblem::create("BlackScholes1dim", "CallEuro", "CF").unwrap();
        let r = p.compute().unwrap();
        assert!((r.price - 10.4506).abs() < 1e-3);
        assert!(r.delta.is_some());
    }

    #[test]
    fn unsupported_combination_rejected() {
        // American put has no closed form.
        let p = PremiaProblem::create("BlackScholes1dim", "PutAmer", "CF").unwrap();
        assert!(matches!(p.compute(), Err(PricingError::Unsupported(_))));
        // Basket with a tree is unsupported.
        let p =
            PremiaProblem::create("BlackScholesNdim", "PutBasket", "TR_CoxRossRubinstein").unwrap();
        assert!(matches!(p.compute(), Err(PricingError::Unsupported(_))));
        // BSDE only prices European vanillas; XVA needs a netting set.
        let p = PremiaProblem::create("BlackScholes1dim", "PutAmer", "MC_BSDE_LabartLelong")
            .unwrap();
        assert!(matches!(p.compute(), Err(PricingError::Unsupported(_))));
        let p = PremiaProblem::create("BlackScholes1dim", "CallEuro", "MC_XVA_CVA").unwrap();
        assert!(matches!(p.compute(), Err(PricingError::Unsupported(_))));
    }

    #[test]
    fn new_workload_classes_compute_and_round_trip() {
        // BSDE Picard on a European call.
        let mut p =
            PremiaProblem::create("BlackScholes1dim", "CallEuro", "MC_BSDE_LabartLelong").unwrap();
        p.method = MethodSpec::Bsde {
            paths: 2_000,
            time_steps: 10,
            rate_spread: 0.05,
            picard_rounds: 2,
            y_prev: 0.0,
            seed: 7,
        };
        let r = p.compute().unwrap();
        assert!(r.price > 0.0 && r.std_error.is_some());
        let back = PremiaProblem::from_value(&p.to_value()).unwrap();
        assert_eq!(p, back);

        // Bermudan max-call on the multi-asset model.
        let mut p = PremiaProblem::create(
            "BlackScholesNdim",
            "CallMaxBermuda",
            "MC_AM_LongstaffSchwartz",
        )
        .unwrap();
        p.method = MethodSpec::Lsm {
            paths: 1_000,
            exercise_dates: 5,
            basis_degree: 2,
            seed: 7,
        };
        let r = p.compute_with(&ExecPolicy::new(2)).unwrap();
        assert!(r.price > 0.0);

        // Portfolio CVA over a generated netting set.
        let mut p =
            PremiaProblem::create("BlackScholes1dim", "NettingSetForward", "MC_XVA_CVA").unwrap();
        p.method = MethodSpec::Xva {
            paths: 2_000,
            time_steps: 10,
            hazard: 0.02,
            lgd: 0.6,
            seed: 7,
        };
        let seq = p.compute().unwrap();
        assert!(seq.price >= 0.0);
        let a = p.compute_with(&ExecPolicy::new(1)).unwrap();
        let b = p.compute_with(&ExecPolicy::new(8)).unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(PremiaProblem::create("NoSuchModel", "CallEuro", "CF").is_err());
        assert!(PremiaProblem::create("BlackScholes1dim", "NoSuchOpt", "CF").is_err());
        assert!(PremiaProblem::create("BlackScholes1dim", "CallEuro", "NoSuchMethod").is_err());
    }

    #[test]
    fn value_round_trip_every_model_and_method() {
        let models = [
            "BlackScholes1dim",
            "BlackScholesNdim",
            "LocalVol1dim",
            "Heston1dim",
            "Vasicek1dim",
        ];
        let options = [
            "CallEuro",
            "PutEuro",
            "CallDownOut",
            "PutAmer",
            "PutBasket",
            "PutBasketAmer",
            "ZCBond",
            "CallBond",
            "CallMaxBermuda",
            "NettingSetForward",
        ];
        let methods = [
            "CF",
            "FD_CrankNicolson",
            "TR_CoxRossRubinstein",
            "MC_Standard",
            "MC_Quasi",
            "MC_AM_LongstaffSchwartz",
            "MC_BSDE_LabartLelong",
            "MC_XVA_CVA",
        ];
        for m in models {
            for o in options {
                for me in methods {
                    let p = PremiaProblem::create(m, o, me).unwrap();
                    let v = p.to_value();
                    let back = PremiaProblem::from_value(&v).unwrap();
                    assert_eq!(p, back, "{m}/{o}/{me}");
                }
            }
        }
    }

    #[test]
    fn xdr_file_round_trip_like_section_3_3() {
        // save('fic', P); P2 = load('fic')
        let dir = std::env::temp_dir().join("premia_problem_save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fic");
        let p = PremiaProblem::create("Heston1dim", "PutAmer", "MC_AM_LongstaffSchwartz").unwrap();
        xdrser::save(&path, &p.to_value()).unwrap();
        let back = PremiaProblem::from_value(&xdrser::load(&path).unwrap()).unwrap();
        assert_eq!(p, back);
        // And the sload fast path yields the same problem after unseal.
        let s = xdrser::sload(&path).unwrap();
        let v = xdrser::unserialize(&s).unwrap();
        assert_eq!(PremiaProblem::from_value(&v).unwrap(), p);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_value_rejected() {
        assert!(PremiaProblem::from_value(&Value::scalar(1.0)).is_err());
        let mut h = Hash::new();
        h.set("class", Value::string("SomethingElse"));
        assert!(PremiaProblem::from_value(&Value::Hash(h)).is_err());
    }

    #[test]
    fn rates_problems_compute_and_round_trip() {
        // The §2 "interest rate … models and derivatives" extension.
        let zcb = PremiaProblem::create("Vasicek1dim", "ZCBond", "CF").unwrap();
        assert_eq!(zcb.asset, "rates");
        let p_zcb = zcb.compute().unwrap().price;
        assert!(p_zcb > 0.0 && p_zcb < 1.0);

        let mut zcb_mc = PremiaProblem::create("Vasicek1dim", "ZCBond", "MC_Standard").unwrap();
        zcb_mc.method = MethodSpec::MonteCarlo {
            paths: 20_000,
            time_steps: 50,
            antithetic: true,
            seed: 4,
        };
        let r = zcb_mc.compute().unwrap();
        assert!(
            (r.price - p_zcb).abs() < 4.0 * r.std_error.unwrap() + 1e-4,
            "mc {} exact {p_zcb}",
            r.price
        );

        let call = PremiaProblem::create("Vasicek1dim", "CallBond", "CF").unwrap();
        let c = call.compute().unwrap().price;
        assert!(c > 0.0 && c < 1.0);

        // XDR round trip of a rates problem.
        let v = call.to_value();
        let back = PremiaProblem::from_value(&v).unwrap();
        assert_eq!(back, call);

        // Equity methods on rates products are rejected.
        let bad = PremiaProblem::create("Vasicek1dim", "CallEuro", "CF").unwrap();
        assert!(matches!(bad.compute(), Err(PricingError::Unsupported(_))));
    }

    #[test]
    fn compute_with_is_bit_identical_across_worker_counts() {
        let mut p =
            PremiaProblem::create("Heston1dim", "PutAmer", "MC_AM_LongstaffSchwartz").unwrap();
        p.method = MethodSpec::Lsm {
            paths: 2_000,
            exercise_dates: 10,
            basis_degree: 3,
            seed: 1,
        };
        let r1 = p.compute_with(&ExecPolicy::new(1)).unwrap();
        let r8 = p.compute_with(&ExecPolicy::new(8)).unwrap();
        assert_eq!(r1.price.to_bits(), r8.price.to_bits());

        // Methods without a path loop ignore the policy entirely.
        let cf = PremiaProblem::create("BlackScholes1dim", "CallEuro", "CF").unwrap();
        assert_eq!(
            cf.compute().unwrap().price.to_bits(),
            cf.compute_with(&ExecPolicy::new(8))
                .unwrap()
                .price
                .to_bits()
        );
    }

    #[test]
    fn label_is_informative() {
        let p = PremiaProblem::create("BlackScholes1dim", "CallEuro", "CF").unwrap();
        assert_eq!(p.label(), "BlackScholes1dim/CallEuro/CF");
    }

    #[test]
    fn pde_and_tree_agree_through_problem_interface() {
        let mut p1 =
            PremiaProblem::create("BlackScholes1dim", "PutAmer", "FD_CrankNicolson").unwrap();
        p1.method = MethodSpec::Pde {
            time_steps: 200,
            space_steps: 400,
        };
        let mut p2 =
            PremiaProblem::create("BlackScholes1dim", "PutAmer", "TR_CoxRossRubinstein").unwrap();
        p2.method = MethodSpec::Tree { steps: 1000 };
        let r1 = p1.compute().unwrap().price;
        let r2 = p2.compute().unwrap().price;
        assert!((r1 - r2).abs() < 0.05, "pde {r1} tree {r2}");
    }
}
