//! Monte-Carlo pricing of European claims.
//!
//! §4.3 uses Monte-Carlo for the 40-dimensional basket puts ("we usually
//! use 10⁶ samples") and for the local-volatility calls. This module
//! provides:
//!
//! * exact-transition GBM sampling for vanilla options (with pathwise
//!   deltas and antithetic variance reduction),
//! * one-step correlated terminal sampling for basket options,
//! * Euler path simulation for the local-volatility model,
//! * full-truncation simulation for Heston,
//! * a quasi-Monte-Carlo (Sobol/Halton + inverse-CDF) variant used by the
//!   ablation benchmarks.
//!
//! Every plain-MC pricer also has a `*_exec` variant that runs the path
//! loop through the [`exec`] chunked executor: the path space is split
//! into fixed-size chunks, each chunk draws from its own
//! [`exec::stream_seed`]-derived RNG stream, and chunk partials are
//! merged in chunk order — so the price is **bit-identical for any
//! worker count** (see `docs/PARALLEL.md`). The chunked result is a
//! different (equally valid) sample than the legacy single-stream loop,
//! which therefore stays as the default path.

use crate::lanes::F64s;
use crate::models::{BlackScholes, Heston, LocalVol, MultiBlackScholes};
use crate::options::{BasketOption, Exercise, Vanilla};
use exec::{stream_seed, Chunk, ExecPolicy, PathWorkspace};
use numerics::norm_inv_cdf;
use numerics::rng::NormalGen;
use numerics::sobol::{Halton, Sobol};
use numerics::stats::RunningStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Monte-Carlo run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of payoff samples (antithetic pairs count as one sample).
    pub paths: usize,
    /// Time discretisation for path-dependent models (ignored by the
    /// exact GBM samplers).
    pub time_steps: usize,
    /// Antithetic variates.
    pub antithetic: bool,
    /// RNG seed — pricing problems are deterministic given their spec,
    /// as required for a reproducible benchmark.
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            paths: 100_000,
            time_steps: 50,
            antithetic: true,
            seed: 42,
        }
    }
}

impl McConfig {
    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.paths == 0 {
            return Err("paths must be positive".into());
        }
        if self.time_steps == 0 {
            return Err("time_steps must be positive".into());
        }
        Ok(())
    }
}

/// Monte-Carlo estimate: price, its standard error, and (when the
/// pathwise estimator applies) the delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McResult {
    /// Price estimate.
    pub price: f64,
    /// Monte-Carlo standard error of the price.
    pub std_error: f64,
    /// First derivative of the price w.r.t. spot.
    pub delta: Option<f64>,
}

fn assert_european(ex: Exercise) {
    assert!(
        ex == Exercise::European,
        "plain Monte-Carlo prices European claims; American claims use LSM"
    );
}

/// Vanilla European option under Black–Scholes, exact terminal sampling.
pub fn mc_vanilla_bs(m: &BlackScholes, option: &Vanilla, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let t = option.maturity;
    let df = m.discount(t);
    let mut stats = RunningStats::new();
    let mut delta_stats = RunningStats::new();
    let sign = option.right.sign();
    for _ in 0..cfg.paths {
        let z = gen.sample(&mut rng);
        let (pay, dlt) = vanilla_sample(m, option, t, z, sign);
        if cfg.antithetic {
            let (pay2, dlt2) = vanilla_sample(m, option, t, -z, sign);
            stats.push(df * 0.5 * (pay + pay2));
            delta_stats.push(df * 0.5 * (dlt + dlt2));
        } else {
            stats.push(df * pay);
            delta_stats.push(df * dlt);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: Some(delta_stats.mean()),
    }
}

/// Chunked-deterministic variant of [`mc_vanilla_bs`]: each chunk of
/// paths draws from its own [`stream_seed`]-derived stream and the
/// per-chunk statistics are merged in chunk order, so the result is
/// bit-identical for any worker count in `pol`.
pub fn mc_vanilla_bs_exec(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &McConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let sign = option.right.sign();
    let parts = match pol.lane_width() {
        4 => pol.run(cfg.paths, |c| {
            vanilla_chunk_lanes::<4>(m, option, cfg, t, df, sign, c)
        }),
        8 => pol.run(cfg.paths, |c| {
            vanilla_chunk_lanes::<8>(m, option, cfg, t, df, sign, c)
        }),
        _ => pol.run(cfg.paths, |c| {
            vanilla_chunk_scalar(m, option, cfg, t, df, sign, c)
        }),
    };
    let mut stats = RunningStats::new();
    let mut delta_stats = RunningStats::new();
    for (s, d) in &parts {
        stats.merge(s);
        delta_stats.merge(d);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: Some(delta_stats.mean()),
    }
}

/// Scalar (lanes = 1) chunk body — the pre-lane kernel, preserved
/// verbatim so lanes-off results never move.
fn vanilla_chunk_scalar(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &McConfig,
    t: f64,
    df: f64,
    sign: f64,
    c: &Chunk,
) -> (RunningStats, RunningStats) {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut stats = RunningStats::new();
    let mut delta_stats = RunningStats::new();
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for _ in c.start..c.end {
        let z = gen.sample(&mut rng);
        let (pay, dlt) = vanilla_sample(m, option, t, z, sign);
        if cfg.antithetic {
            let (pay2, dlt2) = vanilla_sample(m, option, t, -z, sign);
            stats.push(df * 0.5 * (pay + pay2));
            delta_stats.push(df * 0.5 * (dlt + dlt2));
        } else {
            stats.push(df * pay);
            delta_stats.push(df * dlt);
        }
    }
    // ALLOC-FREE-END
    (stats, delta_stats)
}

/// `L`-wide chunk body: `L` paths advance per loop iteration, normals
/// drawn in `(group, lane)` order, terminal levels computed with fused
/// `mul_add` (so lane prices are a distinct — equally valid — sample
/// from the scalar kernel even where the draw order coincides). The
/// remainder `c.len() % L` paths run scalar-style, continuing the same
/// chunk stream.
fn vanilla_chunk_lanes<const L: usize>(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &McConfig,
    t: f64,
    df: f64,
    sign: f64,
    c: &Chunk,
) -> (RunningStats, RunningStats) {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut stats = RunningStats::new();
    let mut delta_stats = RunningStats::new();
    let drift = F64s::<L>::splat(m.log_drift() * t);
    let volt = F64s::<L>::splat(m.sigma * t.sqrt());
    let spot = F64s::<L>::splat(m.spot);
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for _ in 0..groups {
        let z = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
        let st = z.mul_add(volt, drift).exp() * spot;
        if cfg.antithetic {
            let st2 = (-z).mul_add(volt, drift).exp() * spot;
            for l in 0..L {
                let (pay, dlt) = payoff_delta(st.0[l], option.strike, sign, m.spot);
                let (pay2, dlt2) = payoff_delta(st2.0[l], option.strike, sign, m.spot);
                stats.push(df * 0.5 * (pay + pay2));
                delta_stats.push(df * 0.5 * (dlt + dlt2));
            }
        } else {
            for l in 0..L {
                let (pay, dlt) = payoff_delta(st.0[l], option.strike, sign, m.spot);
                stats.push(df * pay);
                delta_stats.push(df * dlt);
            }
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for _ in c.start + groups * L..c.end {
        let z = gen.sample(&mut rng);
        let (pay, dlt) = vanilla_sample(m, option, t, z, sign);
        if cfg.antithetic {
            let (pay2, dlt2) = vanilla_sample(m, option, t, -z, sign);
            stats.push(df * 0.5 * (pay + pay2));
            delta_stats.push(df * 0.5 * (dlt + dlt2));
        } else {
            stats.push(df * pay);
            delta_stats.push(df * dlt);
        }
    }
    // ALLOC-FREE-END
    (stats, delta_stats)
}

#[inline]
fn vanilla_sample(m: &BlackScholes, option: &Vanilla, t: f64, z: f64, sign: f64) -> (f64, f64) {
    payoff_delta(m.terminal(t, z), option.strike, sign, m.spot)
}

#[inline]
fn payoff_delta(st: f64, strike: f64, sign: f64, spot: f64) -> (f64, f64) {
    let pay = (sign * (st - strike)).max(0.0);
    // Pathwise delta: ∂payoff/∂S₀ = 1{exercised} · sign · S_T/S₀.
    let dlt = if pay > 0.0 { sign * st / spot } else { 0.0 };
    (pay, dlt)
}

/// Quasi-Monte-Carlo variant of [`mc_vanilla_bs`] (Sobol + Moro inverse
/// CDF, no antithetics, no meaningful standard error — QMC error is not
/// estimated by the sample variance).
pub fn qmc_vanilla_bs(m: &BlackScholes, option: &Vanilla, paths: usize) -> McResult {
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let mut sobol = Sobol::new(1);
    let mut p = [0.0];
    let sign = option.right.sign();
    let mut acc = 0.0;
    for _ in 0..paths {
        sobol.next_point(&mut p);
        let z = norm_inv_cdf(p[0]);
        let st = m.terminal(t, z);
        acc += (sign * (st - option.strike)).max(0.0);
    }
    McResult {
        price: df * acc / paths as f64,
        std_error: 0.0,
        delta: None,
    }
}

/// European basket option under multi-asset Black–Scholes: exact
/// one-step correlated terminal sampling (the payoff is path-independent).
pub fn mc_basket(m: &MultiBlackScholes, option: &BasketOption, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut corr = m.correlator();
    let t = option.maturity;
    let df = m.discount(t);
    let mut z = vec![0.0; m.dim];
    let mut s = vec![0.0; m.dim];
    let mut stats = RunningStats::new();
    for _ in 0..cfg.paths {
        corr.sample(&mut rng, &mut z);
        m.terminal(t, &z, &mut s);
        let pay = option.payoff(&s);
        if cfg.antithetic {
            for zi in z.iter_mut() {
                *zi = -*zi;
            }
            m.terminal(t, &z, &mut s);
            stats.push(df * 0.5 * (pay + option.payoff(&s)));
        } else {
            stats.push(df * pay);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`mc_basket`] (per-chunk correlated
/// streams, chunk-order merge — bit-identical for any worker count).
pub fn mc_basket_exec(
    m: &MultiBlackScholes,
    option: &BasketOption,
    cfg: &McConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let parts = match pol.lane_width() {
        4 => pol.run_ws(cfg.paths, |c, ws| {
            basket_chunk_lanes::<4>(m, option, cfg, t, df, c, ws)
        }),
        8 => pol.run_ws(cfg.paths, |c, ws| {
            basket_chunk_lanes::<8>(m, option, cfg, t, df, c, ws)
        }),
        _ => pol.run_ws(cfg.paths, |c, ws| {
            basket_chunk_scalar(m, option, cfg, t, df, c, ws)
        }),
    };
    let mut stats = RunningStats::new();
    for p in &parts {
        stats.merge(p);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Scalar (lanes = 1) chunk body. The per-chunk `z`/`s` scratch now
/// comes from the per-worker [`PathWorkspace`] pool instead of fresh
/// `vec!`s — `take` zero-fills, so the numbers are unchanged and
/// steady-state pricing stops allocating.
fn basket_chunk_scalar(
    m: &MultiBlackScholes,
    option: &BasketOption,
    cfg: &McConfig,
    t: f64,
    df: f64,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut corr = m.correlator();
    let mut z = ws.take(m.dim);
    let mut s = ws.take(m.dim);
    let mut stats = RunningStats::new();
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for _ in c.start..c.end {
        corr.sample(&mut rng, &mut z);
        m.terminal(t, &z, &mut s);
        let pay = option.payoff(&s);
        if cfg.antithetic {
            for zi in z.iter_mut() {
                *zi = -*zi;
            }
            m.terminal(t, &z, &mut s);
            stats.push(df * 0.5 * (pay + option.payoff(&s)));
        } else {
            stats.push(df * pay);
        }
    }
    // ALLOC-FREE-END
    ws.put(s);
    ws.put(z);
    stats
}

/// `L`-wide chunk body: lanes hold `L` paths' correlated draws and
/// terminal levels in lane-major scratch (`buf[l*dim..][..dim]` is lane
/// `l`). Correlated vectors are drawn per lane in lane order — the same
/// consumption order as `L` consecutive scalar paths — and the terminal
/// map vectorises across lanes per asset with fused `mul_add`.
fn basket_chunk_lanes<const L: usize>(
    m: &MultiBlackScholes,
    option: &BasketOption,
    cfg: &McConfig,
    t: f64,
    df: f64,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> RunningStats {
    let dim = m.dim;
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut corr = m.correlator();
    let mut zbuf = ws.take(L * dim);
    let mut sbuf = ws.take(L * dim);
    let mut s2buf = ws.take(L * dim);
    let mut stats = RunningStats::new();
    let drift = F64s::<L>::splat(m.log_drift() * t);
    let volt = F64s::<L>::splat(m.sigma * t.sqrt());
    let spot = F64s::<L>::splat(m.spot);
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for _ in 0..groups {
        for l in 0..L {
            corr.sample(&mut rng, &mut zbuf[l * dim..(l + 1) * dim]);
        }
        for i in 0..dim {
            let z = F64s::<L>::from_fn(|l| zbuf[l * dim + i]);
            let st = z.mul_add(volt, drift).exp() * spot;
            for l in 0..L {
                sbuf[l * dim + i] = st.0[l];
            }
            if cfg.antithetic {
                let st2 = (-z).mul_add(volt, drift).exp() * spot;
                for l in 0..L {
                    s2buf[l * dim + i] = st2.0[l];
                }
            }
        }
        for l in 0..L {
            let pay = option.payoff(&sbuf[l * dim..(l + 1) * dim]);
            if cfg.antithetic {
                let pay2 = option.payoff(&s2buf[l * dim..(l + 1) * dim]);
                stats.push(df * 0.5 * (pay + pay2));
            } else {
                stats.push(df * pay);
            }
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for _ in c.start + groups * L..c.end {
        let z = &mut zbuf[..dim];
        let s = &mut sbuf[..dim];
        corr.sample(&mut rng, z);
        m.terminal(t, z, s);
        let pay = option.payoff(s);
        if cfg.antithetic {
            for zi in z.iter_mut() {
                *zi = -*zi;
            }
            m.terminal(t, z, s);
            stats.push(df * 0.5 * (pay + option.payoff(s)));
        } else {
            stats.push(df * pay);
        }
    }
    // ALLOC-FREE-END
    ws.put(s2buf);
    ws.put(sbuf);
    ws.put(zbuf);
    stats
}

/// Halton-sequence QMC variant of [`mc_basket`] for moderate dimensions
/// (ablation benchmarks).
pub fn qmc_basket(m: &MultiBlackScholes, option: &BasketOption, paths: usize) -> McResult {
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let corr = m.correlator();
    let mut halton = Halton::new(m.dim);
    let mut u = vec![0.0; m.dim];
    let mut z = vec![0.0; m.dim];
    let mut s = vec![0.0; m.dim];
    let mut acc = 0.0;
    for _ in 0..paths {
        halton.next_point(&mut u);
        for i in 0..m.dim {
            z[i] = norm_inv_cdf(u[i]);
        }
        corr.correlate_in_place(&mut z);
        m.terminal(t, &z, &mut s);
        acc += option.payoff(&s);
    }
    McResult {
        price: df * acc / paths as f64,
        std_error: 0.0,
        delta: None,
    }
}

/// European vanilla option under the local-volatility model, log-Euler
/// paths with `cfg.time_steps` steps.
pub fn mc_local_vol(m: &LocalVol, option: &Vanilla, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let t = option.maturity;
    let df = m.discount(t);
    let dt = t / cfg.time_steps as f64;
    let mut stats = RunningStats::new();
    let mut zbuf = vec![0.0; cfg.time_steps];
    for _ in 0..cfg.paths {
        gen.fill(&mut rng, &mut zbuf);
        let pay = local_vol_path(m, option, dt, &zbuf);
        if cfg.antithetic {
            for z in zbuf.iter_mut() {
                *z = -*z;
            }
            let pay2 = local_vol_path(m, option, dt, &zbuf);
            stats.push(df * 0.5 * (pay + pay2));
        } else {
            stats.push(df * pay);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`mc_local_vol`].
pub fn mc_local_vol_exec(
    m: &LocalVol,
    option: &Vanilla,
    cfg: &McConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let dt = t / cfg.time_steps as f64;
    let parts = match pol.lane_width() {
        4 => pol.run_ws(cfg.paths, |c, ws| {
            local_vol_chunk_lanes::<4>(m, option, cfg, df, dt, c, ws)
        }),
        8 => pol.run_ws(cfg.paths, |c, ws| {
            local_vol_chunk_lanes::<8>(m, option, cfg, df, dt, c, ws)
        }),
        _ => pol.run_ws(cfg.paths, |c, ws| {
            local_vol_chunk_scalar(m, option, cfg, df, dt, c, ws)
        }),
    };
    let mut stats = RunningStats::new();
    for p in &parts {
        stats.merge(p);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Scalar (lanes = 1) chunk body; `zbuf` comes from the per-worker
/// [`PathWorkspace`] pool (zero-filled, numerically identical to the
/// old `vec!`).
fn local_vol_chunk_scalar(
    m: &LocalVol,
    option: &Vanilla,
    cfg: &McConfig,
    df: f64,
    dt: f64,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut zbuf = ws.take(cfg.time_steps);
    let mut stats = RunningStats::new();
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for _ in c.start..c.end {
        gen.fill(&mut rng, &mut zbuf);
        let pay = local_vol_path(m, option, dt, &zbuf);
        if cfg.antithetic {
            for z in zbuf.iter_mut() {
                *z = -*z;
            }
            let pay2 = local_vol_path(m, option, dt, &zbuf);
            stats.push(df * 0.5 * (pay + pay2));
        } else {
            stats.push(df * pay);
        }
    }
    // ALLOC-FREE-END
    ws.put(zbuf);
    stats
}

/// `L`-wide chunk body: `L` Euler paths advance in lockstep, one normal
/// group per time step, so the draw order is `(group, step, lane)` —
/// distinct from the scalar per-path `fill`. The time-dependent term
/// factor of the vol surface is scalar per step (shared by all lanes);
/// the spot-dependent skew is per-lane `tanh`.
fn local_vol_chunk_lanes<const L: usize>(
    m: &LocalVol,
    option: &Vanilla,
    cfg: &McConfig,
    df: f64,
    dt: f64,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut zbuf = ws.take(cfg.time_steps);
    let mut stats = RunningStats::new();
    let spot = F64s::<L>::splat(m.spot);
    let sqdt = dt.sqrt();
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for _ in 0..groups {
        let mut s = spot;
        let mut s2 = spot;
        let mut tt = 0.0;
        for _ in 0..cfg.time_steps {
            let term = 1.0 + m.term_amp * (-tt / m.term_tau).exp();
            let z = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
            s = lv_step_lanes(m, term, dt, sqdt, s, z);
            if cfg.antithetic {
                s2 = lv_step_lanes(m, term, dt, sqdt, s2, -z);
            }
            tt += dt;
        }
        for l in 0..L {
            let pay = option.payoff(s.0[l]);
            if cfg.antithetic {
                stats.push(df * 0.5 * (pay + option.payoff(s2.0[l])));
            } else {
                stats.push(df * pay);
            }
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for _ in c.start + groups * L..c.end {
        gen.fill(&mut rng, &mut zbuf);
        let pay = local_vol_path(m, option, dt, &zbuf);
        if cfg.antithetic {
            for z in zbuf.iter_mut() {
                *z = -*z;
            }
            let pay2 = local_vol_path(m, option, dt, &zbuf);
            stats.push(df * 0.5 * (pay + pay2));
        } else {
            stats.push(df * pay);
        }
    }
    // ALLOC-FREE-END
    ws.put(zbuf);
    stats
}

/// One lane-wide log-Euler step of the local-vol model: `term` is the
/// (scalar) time factor of the surface, the skew factor is per-lane.
#[inline]
fn lv_step_lanes<const L: usize>(
    m: &LocalVol,
    term: f64,
    dt: f64,
    sqdt: f64,
    s: F64s<L>,
    z: F64s<L>,
) -> F64s<L> {
    let inv_w = 1.0 / (m.skew_width * m.spot);
    let arg = (F64s::<L>::splat(m.spot) - s) * F64s::splat(inv_w);
    let base = m.sigma0 * term;
    let sig = arg
        .map(f64::tanh)
        .mul_add(F64s::splat(base * m.skew_amp), F64s::splat(base));
    let drift = (sig * sig).mul_add(
        F64s::splat(-0.5 * dt),
        F64s::splat((m.rate - m.dividend) * dt),
    );
    let expo = (sig * z).mul_add(F64s::splat(sqdt), drift);
    s * expo.exp()
}

#[inline]
fn local_vol_path(m: &LocalVol, option: &Vanilla, dt: f64, zs: &[f64]) -> f64 {
    let mut s = m.spot;
    let mut t = 0.0;
    for &z in zs {
        s = m.step(t, s, dt, z);
        t += dt;
    }
    option.payoff(s)
}

/// European vanilla option under Heston, full-truncation Euler paths.
pub fn mc_heston(m: &Heston, option: &Vanilla, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let t = option.maturity;
    let df = m.discount(t);
    let dt = t / cfg.time_steps as f64;
    let mut stats = RunningStats::new();
    let mut z1 = vec![0.0; cfg.time_steps];
    let mut z2 = vec![0.0; cfg.time_steps];
    for _ in 0..cfg.paths {
        gen.fill(&mut rng, &mut z1);
        gen.fill(&mut rng, &mut z2);
        let pay = heston_path(m, option, dt, &z1, &z2);
        if cfg.antithetic {
            for z in z1.iter_mut() {
                *z = -*z;
            }
            for z in z2.iter_mut() {
                *z = -*z;
            }
            let pay2 = heston_path(m, option, dt, &z1, &z2);
            stats.push(df * 0.5 * (pay + pay2));
        } else {
            stats.push(df * pay);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`mc_heston`].
pub fn mc_heston_exec(m: &Heston, option: &Vanilla, cfg: &McConfig, pol: &ExecPolicy) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let dt = t / cfg.time_steps as f64;
    let parts = match pol.lane_width() {
        4 => pol.run_ws(cfg.paths, |c, ws| {
            heston_chunk_lanes::<4>(m, option, cfg, df, dt, c, ws)
        }),
        8 => pol.run_ws(cfg.paths, |c, ws| {
            heston_chunk_lanes::<8>(m, option, cfg, df, dt, c, ws)
        }),
        _ => pol.run_ws(cfg.paths, |c, ws| {
            heston_chunk_scalar(m, option, cfg, df, dt, c, ws)
        }),
    };
    let mut stats = RunningStats::new();
    for p in &parts {
        stats.merge(p);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Scalar (lanes = 1) chunk body; `z1`/`z2` come from the per-worker
/// [`PathWorkspace`] pool.
fn heston_chunk_scalar(
    m: &Heston,
    option: &Vanilla,
    cfg: &McConfig,
    df: f64,
    dt: f64,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut z1 = ws.take(cfg.time_steps);
    let mut z2 = ws.take(cfg.time_steps);
    let mut stats = RunningStats::new();
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for _ in c.start..c.end {
        gen.fill(&mut rng, &mut z1);
        gen.fill(&mut rng, &mut z2);
        let pay = heston_path(m, option, dt, &z1, &z2);
        if cfg.antithetic {
            for z in z1.iter_mut() {
                *z = -*z;
            }
            for z in z2.iter_mut() {
                *z = -*z;
            }
            let pay2 = heston_path(m, option, dt, &z1, &z2);
            stats.push(df * 0.5 * (pay + pay2));
        } else {
            stats.push(df * pay);
        }
    }
    // ALLOC-FREE-END
    ws.put(z2);
    ws.put(z1);
    stats
}

/// `L`-wide chunk body: `L` full-truncation Euler paths advance in
/// lockstep. Per step the spot normals `z1` are drawn for all lanes,
/// then the variance normals `z2` — so the draw order is
/// `(group, step, z1 lanes, z2 lanes)`, distinct from the scalar
/// per-path double `fill`.
fn heston_chunk_lanes<const L: usize>(
    m: &Heston,
    option: &Vanilla,
    cfg: &McConfig,
    df: f64,
    dt: f64,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut zb1 = ws.take(cfg.time_steps);
    let mut zb2 = ws.take(cfg.time_steps);
    let mut stats = RunningStats::new();
    let spot = F64s::<L>::splat(m.spot);
    let v0 = F64s::<L>::splat(m.v0);
    let sqdt = dt.sqrt();
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for _ in 0..groups {
        let mut s = spot;
        let mut v = v0;
        let mut s2 = spot;
        let mut v2 = v0;
        for _ in 0..cfg.time_steps {
            let z1 = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
            let z2 = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
            let (sn, vn) = heston_step_lanes(m, dt, sqdt, s, v, z1, z2);
            s = sn;
            v = vn;
            if cfg.antithetic {
                let (sn2, vn2) = heston_step_lanes(m, dt, sqdt, s2, v2, -z1, -z2);
                s2 = sn2;
                v2 = vn2;
            }
        }
        for l in 0..L {
            let pay = option.payoff(s.0[l]);
            if cfg.antithetic {
                stats.push(df * 0.5 * (pay + option.payoff(s2.0[l])));
            } else {
                stats.push(df * pay);
            }
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for _ in c.start + groups * L..c.end {
        gen.fill(&mut rng, &mut zb1);
        gen.fill(&mut rng, &mut zb2);
        let pay = heston_path(m, option, dt, &zb1, &zb2);
        if cfg.antithetic {
            for z in zb1.iter_mut() {
                *z = -*z;
            }
            for z in zb2.iter_mut() {
                *z = -*z;
            }
            let pay2 = heston_path(m, option, dt, &zb1, &zb2);
            stats.push(df * 0.5 * (pay + pay2));
        } else {
            stats.push(df * pay);
        }
    }
    // ALLOC-FREE-END
    ws.put(zb2);
    ws.put(zb1);
    stats
}

/// One lane-wide full-truncation Euler step of the `(s, v)` pair
/// (shared with the LSM Heston path generator).
#[inline]
pub(crate) fn heston_step_lanes<const L: usize>(
    m: &Heston,
    dt: f64,
    sqdt: f64,
    s: F64s<L>,
    v: F64s<L>,
    z1: F64s<L>,
    z2: F64s<L>,
) -> (F64s<L>, F64s<L>) {
    let vp = v.max(F64s::splat(0.0));
    let rho2 = (1.0 - m.rho * m.rho).sqrt();
    let zv = z2.mul_add(F64s::splat(rho2), z1 * F64s::splat(m.rho));
    let sqvp = vp.sqrt();
    let v_next = (F64s::<L>::splat(m.theta) - vp).mul_add(F64s::splat(m.kappa * dt), v)
        + sqvp * zv * F64s::splat(m.xi * sqdt);
    let expo = vp.mul_add(
        F64s::splat(-0.5 * dt),
        F64s::splat((m.rate - m.dividend) * dt),
    ) + sqvp * z1 * F64s::splat(sqdt);
    (s * expo.exp(), v_next)
}

#[inline]
fn heston_path(m: &Heston, option: &Vanilla, dt: f64, z1: &[f64], z2: &[f64]) -> f64 {
    let mut s = m.spot;
    let mut v = m.v0;
    for i in 0..z1.len() {
        let (s2, v2) = m.step(s, v, dt, z1[i], z2[i]);
        s = s2;
        v = v2;
    }
    option.payoff(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::closed_form::bs_price;

    fn model() -> BlackScholes {
        BlackScholes::new(100.0, 0.2, 0.05, 0.0)
    }

    #[test]
    fn vanilla_mc_within_confidence_interval() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let exact = bs_price(&m, &opt);
        let mc = mc_vanilla_bs(&m, &opt, &McConfig::default());
        assert!(
            (mc.price - exact.price).abs() < 4.0 * mc.std_error,
            "mc {} ± {} exact {}",
            mc.price,
            mc.std_error,
            exact.price
        );
        let delta = mc.delta.unwrap();
        assert!((delta - exact.delta).abs() < 0.01, "delta {delta}");
    }

    #[test]
    fn vanilla_put_mc() {
        let m = model();
        let opt = Vanilla::european_put(110.0, 0.5);
        let exact = bs_price(&m, &opt).price;
        let mc = mc_vanilla_bs(&m, &opt, &McConfig::default());
        assert!((mc.price - exact).abs() < 4.0 * mc.std_error);
        assert!(mc.delta.unwrap() < 0.0);
    }

    #[test]
    fn antithetic_reduces_variance() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let base = McConfig {
            paths: 20_000,
            antithetic: false,
            ..McConfig::default()
        };
        let anti = McConfig {
            antithetic: true,
            ..base
        };
        let plain = mc_vanilla_bs(&m, &opt, &base);
        let av = mc_vanilla_bs(&m, &opt, &anti);
        assert!(
            av.std_error < plain.std_error,
            "antithetic {} !< plain {}",
            av.std_error,
            plain.std_error
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let cfg = McConfig {
            paths: 5_000,
            ..McConfig::default()
        };
        let a = mc_vanilla_bs(&m, &opt, &cfg);
        let b = mc_vanilla_bs(&m, &opt, &cfg);
        assert_eq!(a.price, b.price);
        let c = mc_vanilla_bs(&m, &opt, &McConfig { seed: 7, ..cfg });
        assert_ne!(a.price, c.price);
    }

    #[test]
    fn qmc_beats_mc_at_equal_budget() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let exact = bs_price(&m, &opt).price;
        let qmc = qmc_vanilla_bs(&m, &opt, 16_384);
        let mc = mc_vanilla_bs(
            &m,
            &opt,
            &McConfig {
                paths: 16_384,
                antithetic: false,
                ..McConfig::default()
            },
        );
        assert!(
            (qmc.price - exact).abs() <= (mc.price - exact).abs() + 1e-3,
            "qmc err {} mc err {}",
            (qmc.price - exact).abs(),
            (mc.price - exact).abs()
        );
        assert!((qmc.price - exact).abs() < 0.05);
    }

    #[test]
    fn basket_dim1_matches_vanilla_put() {
        let multi = MultiBlackScholes::new(1, 100.0, 0.2, 0.0, 0.05, 0.0);
        let basket = BasketOption::european_put(100.0, 1.0);
        let exact = bs_price(&model(), &Vanilla::european_put(100.0, 1.0)).price;
        let mc = mc_basket(&multi, &basket, &McConfig::default());
        assert!(
            (mc.price - exact).abs() < 4.0 * mc.std_error.max(1e-3),
            "basket {} exact {exact}",
            mc.price
        );
    }

    #[test]
    fn basket_price_decreases_with_dimension() {
        // Averaging uncorrelated assets reduces variance of the basket,
        // so an ATM basket put loses value as dim grows (ρ fixed small).
        let basket = BasketOption::european_put(100.0, 1.0);
        let cfg = McConfig {
            paths: 40_000,
            ..McConfig::default()
        };
        let p1 = mc_basket(
            &MultiBlackScholes::new(1, 100.0, 0.2, 0.1, 0.05, 0.0),
            &basket,
            &cfg,
        )
        .price;
        let p10 = mc_basket(
            &MultiBlackScholes::new(10, 100.0, 0.2, 0.1, 0.05, 0.0),
            &basket,
            &cfg,
        )
        .price;
        assert!(p10 < p1, "dim10 {p10} !< dim1 {p1}");
    }

    #[test]
    fn basket_40_dim_runs() {
        // The paper's largest product: 40-dimensional basket put.
        let m = MultiBlackScholes::new(40, 100.0, 0.2, 0.3, 0.05, 0.0);
        let basket = BasketOption::european_put(100.0, 1.0);
        let mc = mc_basket(
            &m,
            &basket,
            &McConfig {
                paths: 20_000,
                ..McConfig::default()
            },
        );
        assert!(mc.price > 0.0 && mc.price < 100.0);
        assert!(mc.std_error > 0.0);
    }

    #[test]
    fn qmc_basket_agrees_with_mc() {
        let m = MultiBlackScholes::new(5, 100.0, 0.2, 0.3, 0.05, 0.0);
        let basket = BasketOption::european_put(100.0, 1.0);
        let mc = mc_basket(
            &m,
            &basket,
            &McConfig {
                paths: 100_000,
                ..McConfig::default()
            },
        );
        let qmc = qmc_basket(&m, &basket, 32_768);
        assert!(
            (qmc.price - mc.price).abs() < 5.0 * mc.std_error.max(2e-3),
            "qmc {} mc {} ± {}",
            qmc.price,
            mc.price,
            mc.std_error
        );
    }

    #[test]
    fn local_vol_reduces_to_bs_when_flat() {
        let flat = LocalVol {
            spot: 100.0,
            sigma0: 0.2,
            term_amp: 0.0,
            term_tau: 1.0,
            skew_amp: 0.0,
            skew_width: 0.5,
            rate: 0.05,
            dividend: 0.0,
        };
        let opt = Vanilla::european_call(100.0, 1.0);
        let exact = bs_price(&model(), &opt).price;
        let mc = mc_local_vol(
            &flat,
            &opt,
            &McConfig {
                paths: 50_000,
                time_steps: 50,
                ..McConfig::default()
            },
        );
        // Euler bias + MC error: generous but binding tolerance.
        assert!(
            (mc.price - exact).abs() < 0.15,
            "mc {} exact {exact}",
            mc.price
        );
    }

    #[test]
    fn local_vol_skew_raises_otm_put_value() {
        // The downward skew pumps volatility below the spot, so OTM puts
        // are worth more than flat-vol puts.
        let skewed = LocalVol::standard(100.0, 0.2, 0.05, 0.0);
        let flat = LocalVol {
            term_amp: 0.0,
            skew_amp: 0.0,
            ..skewed
        };
        let opt = Vanilla::european_put(80.0, 1.0);
        let cfg = McConfig {
            paths: 50_000,
            time_steps: 50,
            ..McConfig::default()
        };
        let ps = mc_local_vol(&skewed, &opt, &cfg).price;
        let pf = mc_local_vol(&flat, &opt, &cfg).price;
        assert!(ps > pf, "skewed {ps} !> flat {pf}");
    }

    #[test]
    fn heston_matches_bs_when_vol_of_vol_tiny() {
        // ξ→0 with v constant (κ huge, θ=v₀) degenerates to BS with
        // σ=√v₀.
        let h = Heston::new(100.0, 0.04, 5.0, 0.04, 0.01, 0.0, 0.05, 0.0);
        let opt = Vanilla::european_call(100.0, 1.0);
        let exact = bs_price(&model(), &opt).price; // σ = 0.2 = √0.04
        let mc = mc_heston(
            &h,
            &opt,
            &McConfig {
                paths: 50_000,
                time_steps: 50,
                ..McConfig::default()
            },
        );
        assert!(
            (mc.price - exact).abs() < 0.2,
            "heston {} bs {exact}",
            mc.price
        );
    }

    #[test]
    fn exec_variants_bit_identical_across_worker_counts() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let cfg = McConfig {
            paths: 20_000,
            ..McConfig::default()
        };
        let p1 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
        let p2 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2));
        let p8 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8));
        assert_eq!(p1.price.to_bits(), p2.price.to_bits());
        assert_eq!(p1.price.to_bits(), p8.price.to_bits());
        assert_eq!(p1.std_error.to_bits(), p8.std_error.to_bits());
        assert_eq!(p1.delta.unwrap().to_bits(), p8.delta.unwrap().to_bits());
        // And the chunked estimate is still a valid price.
        let exact = bs_price(&m, &opt).price;
        assert!((p1.price - exact).abs() < 4.0 * p1.std_error);
    }

    #[test]
    fn exec_basket_and_heston_agree_with_sequential_statistically() {
        let pol = ExecPolicy::new(4);
        let multi = MultiBlackScholes::new(5, 100.0, 0.2, 0.3, 0.05, 0.0);
        let basket = BasketOption::european_put(100.0, 1.0);
        let cfg = McConfig {
            paths: 20_000,
            ..McConfig::default()
        };
        let seq = mc_basket(&multi, &basket, &cfg);
        let par = mc_basket_exec(&multi, &basket, &cfg, &pol);
        assert!(
            (par.price - seq.price).abs() < 4.0 * (par.std_error + seq.std_error),
            "basket exec {} seq {}",
            par.price,
            seq.price
        );
        let h = Heston::standard(100.0, 0.05);
        let opt = Vanilla::european_put(100.0, 1.0);
        let hcfg = McConfig {
            paths: 10_000,
            time_steps: 20,
            ..McConfig::default()
        };
        let hseq = mc_heston(&h, &opt, &hcfg);
        let hpar = mc_heston_exec(&h, &opt, &hcfg, &pol);
        assert!(
            (hpar.price - hseq.price).abs() < 4.0 * (hpar.std_error + hseq.std_error),
            "heston exec {} seq {}",
            hpar.price,
            hseq.price
        );
    }

    #[test]
    fn exec_chunk_size_changes_sample_thread_count_does_not() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let cfg = McConfig {
            paths: 8_192,
            ..McConfig::default()
        };
        let a = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2).chunk(512));
        let b = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(7).chunk(512));
        let c = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2).chunk(1024));
        assert_eq!(a.price.to_bits(), b.price.to_bits());
        assert_ne!(a.price.to_bits(), c.price.to_bits());
    }

    #[test]
    #[should_panic]
    fn american_rejected_by_plain_mc() {
        mc_vanilla_bs(
            &model(),
            &Vanilla::american_put(100.0, 1.0),
            &McConfig::default(),
        );
    }
}
