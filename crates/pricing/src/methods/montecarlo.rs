//! Monte-Carlo pricing of European claims.
//!
//! §4.3 uses Monte-Carlo for the 40-dimensional basket puts ("we usually
//! use 10⁶ samples") and for the local-volatility calls. This module
//! provides:
//!
//! * exact-transition GBM sampling for vanilla options (with pathwise
//!   deltas and antithetic variance reduction),
//! * one-step correlated terminal sampling for basket options,
//! * Euler path simulation for the local-volatility model,
//! * full-truncation simulation for Heston,
//! * a quasi-Monte-Carlo (Sobol/Halton + inverse-CDF) variant used by the
//!   ablation benchmarks.
//!
//! Every plain-MC pricer also has a `*_exec` variant that runs the path
//! loop through the [`exec`] chunked executor: the path space is split
//! into fixed-size chunks, each chunk draws from its own
//! [`exec::stream_seed`]-derived RNG stream, and chunk partials are
//! merged in chunk order — so the price is **bit-identical for any
//! worker count** (see `docs/PARALLEL.md`). The chunked result is a
//! different (equally valid) sample than the legacy single-stream loop,
//! which therefore stays as the default path.

use crate::models::{BlackScholes, Heston, LocalVol, MultiBlackScholes};
use crate::options::{BasketOption, Exercise, Vanilla};
use exec::{stream_seed, ExecPolicy};
use numerics::rng::NormalGen;
use numerics::sobol::{Halton, Sobol};
use numerics::stats::RunningStats;
use numerics::norm_inv_cdf;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Monte-Carlo run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of payoff samples (antithetic pairs count as one sample).
    pub paths: usize,
    /// Time discretisation for path-dependent models (ignored by the
    /// exact GBM samplers).
    pub time_steps: usize,
    /// Antithetic variates.
    pub antithetic: bool,
    /// RNG seed — pricing problems are deterministic given their spec,
    /// as required for a reproducible benchmark.
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            paths: 100_000,
            time_steps: 50,
            antithetic: true,
            seed: 42,
        }
    }
}

impl McConfig {
    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.paths == 0 {
            return Err("paths must be positive".into());
        }
        if self.time_steps == 0 {
            return Err("time_steps must be positive".into());
        }
        Ok(())
    }
}

/// Monte-Carlo estimate: price, its standard error, and (when the
/// pathwise estimator applies) the delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McResult {
    /// Price estimate.
    pub price: f64,
    /// Monte-Carlo standard error of the price.
    pub std_error: f64,
    /// First derivative of the price w.r.t. spot.
    pub delta: Option<f64>,
}

fn assert_european(ex: Exercise) {
    assert!(
        ex == Exercise::European,
        "plain Monte-Carlo prices European claims; American claims use LSM"
    );
}

/// Vanilla European option under Black–Scholes, exact terminal sampling.
pub fn mc_vanilla_bs(m: &BlackScholes, option: &Vanilla, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let t = option.maturity;
    let df = m.discount(t);
    let mut stats = RunningStats::new();
    let mut delta_stats = RunningStats::new();
    let sign = option.right.sign();
    for _ in 0..cfg.paths {
        let z = gen.sample(&mut rng);
        let (pay, dlt) = vanilla_sample(m, option, t, z, sign);
        if cfg.antithetic {
            let (pay2, dlt2) = vanilla_sample(m, option, t, -z, sign);
            stats.push(df * 0.5 * (pay + pay2));
            delta_stats.push(df * 0.5 * (dlt + dlt2));
        } else {
            stats.push(df * pay);
            delta_stats.push(df * dlt);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: Some(delta_stats.mean()),
    }
}

/// Chunked-deterministic variant of [`mc_vanilla_bs`]: each chunk of
/// paths draws from its own [`stream_seed`]-derived stream and the
/// per-chunk statistics are merged in chunk order, so the result is
/// bit-identical for any worker count in `pol`.
pub fn mc_vanilla_bs_exec(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &McConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let sign = option.right.sign();
    let parts = pol.run(cfg.paths, |c| {
        let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
        let mut gen = NormalGen::new();
        let mut stats = RunningStats::new();
        let mut delta_stats = RunningStats::new();
        for _ in c.start..c.end {
            let z = gen.sample(&mut rng);
            let (pay, dlt) = vanilla_sample(m, option, t, z, sign);
            if cfg.antithetic {
                let (pay2, dlt2) = vanilla_sample(m, option, t, -z, sign);
                stats.push(df * 0.5 * (pay + pay2));
                delta_stats.push(df * 0.5 * (dlt + dlt2));
            } else {
                stats.push(df * pay);
                delta_stats.push(df * dlt);
            }
        }
        (stats, delta_stats)
    });
    let mut stats = RunningStats::new();
    let mut delta_stats = RunningStats::new();
    for (s, d) in &parts {
        stats.merge(s);
        delta_stats.merge(d);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: Some(delta_stats.mean()),
    }
}

#[inline]
fn vanilla_sample(m: &BlackScholes, option: &Vanilla, t: f64, z: f64, sign: f64) -> (f64, f64) {
    let st = m.terminal(t, z);
    let pay = (sign * (st - option.strike)).max(0.0);
    // Pathwise delta: ∂payoff/∂S₀ = 1{exercised} · sign · S_T/S₀.
    let dlt = if pay > 0.0 { sign * st / m.spot } else { 0.0 };
    (pay, dlt)
}

/// Quasi-Monte-Carlo variant of [`mc_vanilla_bs`] (Sobol + Moro inverse
/// CDF, no antithetics, no meaningful standard error — QMC error is not
/// estimated by the sample variance).
pub fn qmc_vanilla_bs(m: &BlackScholes, option: &Vanilla, paths: usize) -> McResult {
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let mut sobol = Sobol::new(1);
    let mut p = [0.0];
    let sign = option.right.sign();
    let mut acc = 0.0;
    for _ in 0..paths {
        sobol.next_point(&mut p);
        let z = norm_inv_cdf(p[0]);
        let st = m.terminal(t, z);
        acc += (sign * (st - option.strike)).max(0.0);
    }
    McResult {
        price: df * acc / paths as f64,
        std_error: 0.0,
        delta: None,
    }
}

/// European basket option under multi-asset Black–Scholes: exact
/// one-step correlated terminal sampling (the payoff is path-independent).
pub fn mc_basket(m: &MultiBlackScholes, option: &BasketOption, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut corr = m.correlator();
    let t = option.maturity;
    let df = m.discount(t);
    let mut z = vec![0.0; m.dim];
    let mut s = vec![0.0; m.dim];
    let mut stats = RunningStats::new();
    for _ in 0..cfg.paths {
        corr.sample(&mut rng, &mut z);
        m.terminal(t, &z, &mut s);
        let pay = option.payoff(&s);
        if cfg.antithetic {
            for zi in z.iter_mut() {
                *zi = -*zi;
            }
            m.terminal(t, &z, &mut s);
            stats.push(df * 0.5 * (pay + option.payoff(&s)));
        } else {
            stats.push(df * pay);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`mc_basket`] (per-chunk correlated
/// streams, chunk-order merge — bit-identical for any worker count).
pub fn mc_basket_exec(
    m: &MultiBlackScholes,
    option: &BasketOption,
    cfg: &McConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let parts = pol.run(cfg.paths, |c| {
        let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
        let mut corr = m.correlator();
        let mut z = vec![0.0; m.dim];
        let mut s = vec![0.0; m.dim];
        let mut stats = RunningStats::new();
        for _ in c.start..c.end {
            corr.sample(&mut rng, &mut z);
            m.terminal(t, &z, &mut s);
            let pay = option.payoff(&s);
            if cfg.antithetic {
                for zi in z.iter_mut() {
                    *zi = -*zi;
                }
                m.terminal(t, &z, &mut s);
                stats.push(df * 0.5 * (pay + option.payoff(&s)));
            } else {
                stats.push(df * pay);
            }
        }
        stats
    });
    let mut stats = RunningStats::new();
    for p in &parts {
        stats.merge(p);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Halton-sequence QMC variant of [`mc_basket`] for moderate dimensions
/// (ablation benchmarks).
pub fn qmc_basket(m: &MultiBlackScholes, option: &BasketOption, paths: usize) -> McResult {
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let corr = m.correlator();
    let mut halton = Halton::new(m.dim);
    let mut u = vec![0.0; m.dim];
    let mut z = vec![0.0; m.dim];
    let mut s = vec![0.0; m.dim];
    let mut acc = 0.0;
    for _ in 0..paths {
        halton.next_point(&mut u);
        for i in 0..m.dim {
            z[i] = norm_inv_cdf(u[i]);
        }
        corr.correlate_in_place(&mut z);
        m.terminal(t, &z, &mut s);
        acc += option.payoff(&s);
    }
    McResult {
        price: df * acc / paths as f64,
        std_error: 0.0,
        delta: None,
    }
}

/// European vanilla option under the local-volatility model, log-Euler
/// paths with `cfg.time_steps` steps.
pub fn mc_local_vol(m: &LocalVol, option: &Vanilla, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let t = option.maturity;
    let df = m.discount(t);
    let dt = t / cfg.time_steps as f64;
    let mut stats = RunningStats::new();
    let mut zbuf = vec![0.0; cfg.time_steps];
    for _ in 0..cfg.paths {
        gen.fill(&mut rng, &mut zbuf);
        let pay = local_vol_path(m, option, dt, &zbuf);
        if cfg.antithetic {
            for z in zbuf.iter_mut() {
                *z = -*z;
            }
            let pay2 = local_vol_path(m, option, dt, &zbuf);
            stats.push(df * 0.5 * (pay + pay2));
        } else {
            stats.push(df * pay);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`mc_local_vol`].
pub fn mc_local_vol_exec(
    m: &LocalVol,
    option: &Vanilla,
    cfg: &McConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let dt = t / cfg.time_steps as f64;
    let parts = pol.run(cfg.paths, |c| {
        let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
        let mut gen = NormalGen::new();
        let mut zbuf = vec![0.0; cfg.time_steps];
        let mut stats = RunningStats::new();
        for _ in c.start..c.end {
            gen.fill(&mut rng, &mut zbuf);
            let pay = local_vol_path(m, option, dt, &zbuf);
            if cfg.antithetic {
                for z in zbuf.iter_mut() {
                    *z = -*z;
                }
                let pay2 = local_vol_path(m, option, dt, &zbuf);
                stats.push(df * 0.5 * (pay + pay2));
            } else {
                stats.push(df * pay);
            }
        }
        stats
    });
    let mut stats = RunningStats::new();
    for p in &parts {
        stats.merge(p);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

#[inline]
fn local_vol_path(m: &LocalVol, option: &Vanilla, dt: f64, zs: &[f64]) -> f64 {
    let mut s = m.spot;
    let mut t = 0.0;
    for &z in zs {
        s = m.step(t, s, dt, z);
        t += dt;
    }
    option.payoff(s)
}

/// European vanilla option under Heston, full-truncation Euler paths.
pub fn mc_heston(m: &Heston, option: &Vanilla, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let t = option.maturity;
    let df = m.discount(t);
    let dt = t / cfg.time_steps as f64;
    let mut stats = RunningStats::new();
    let mut z1 = vec![0.0; cfg.time_steps];
    let mut z2 = vec![0.0; cfg.time_steps];
    for _ in 0..cfg.paths {
        gen.fill(&mut rng, &mut z1);
        gen.fill(&mut rng, &mut z2);
        let pay = heston_path(m, option, dt, &z1, &z2);
        if cfg.antithetic {
            for z in z1.iter_mut() {
                *z = -*z;
            }
            for z in z2.iter_mut() {
                *z = -*z;
            }
            let pay2 = heston_path(m, option, dt, &z1, &z2);
            stats.push(df * 0.5 * (pay + pay2));
        } else {
            stats.push(df * pay);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`mc_heston`].
pub fn mc_heston_exec(
    m: &Heston,
    option: &Vanilla,
    cfg: &McConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid MC config");
    option.validate().expect("invalid option");
    assert_european(option.exercise);
    let t = option.maturity;
    let df = m.discount(t);
    let dt = t / cfg.time_steps as f64;
    let parts = pol.run(cfg.paths, |c| {
        let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
        let mut gen = NormalGen::new();
        let mut z1 = vec![0.0; cfg.time_steps];
        let mut z2 = vec![0.0; cfg.time_steps];
        let mut stats = RunningStats::new();
        for _ in c.start..c.end {
            gen.fill(&mut rng, &mut z1);
            gen.fill(&mut rng, &mut z2);
            let pay = heston_path(m, option, dt, &z1, &z2);
            if cfg.antithetic {
                for z in z1.iter_mut() {
                    *z = -*z;
                }
                for z in z2.iter_mut() {
                    *z = -*z;
                }
                let pay2 = heston_path(m, option, dt, &z1, &z2);
                stats.push(df * 0.5 * (pay + pay2));
            } else {
                stats.push(df * pay);
            }
        }
        stats
    });
    let mut stats = RunningStats::new();
    for p in &parts {
        stats.merge(p);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

#[inline]
fn heston_path(m: &Heston, option: &Vanilla, dt: f64, z1: &[f64], z2: &[f64]) -> f64 {
    let mut s = m.spot;
    let mut v = m.v0;
    for i in 0..z1.len() {
        let (s2, v2) = m.step(s, v, dt, z1[i], z2[i]);
        s = s2;
        v = v2;
    }
    option.payoff(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::closed_form::bs_price;

    fn model() -> BlackScholes {
        BlackScholes::new(100.0, 0.2, 0.05, 0.0)
    }

    #[test]
    fn vanilla_mc_within_confidence_interval() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let exact = bs_price(&m, &opt);
        let mc = mc_vanilla_bs(&m, &opt, &McConfig::default());
        assert!(
            (mc.price - exact.price).abs() < 4.0 * mc.std_error,
            "mc {} ± {} exact {}",
            mc.price,
            mc.std_error,
            exact.price
        );
        let delta = mc.delta.unwrap();
        assert!((delta - exact.delta).abs() < 0.01, "delta {delta}");
    }

    #[test]
    fn vanilla_put_mc() {
        let m = model();
        let opt = Vanilla::european_put(110.0, 0.5);
        let exact = bs_price(&m, &opt).price;
        let mc = mc_vanilla_bs(&m, &opt, &McConfig::default());
        assert!((mc.price - exact).abs() < 4.0 * mc.std_error);
        assert!(mc.delta.unwrap() < 0.0);
    }

    #[test]
    fn antithetic_reduces_variance() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let base = McConfig {
            paths: 20_000,
            antithetic: false,
            ..McConfig::default()
        };
        let anti = McConfig {
            antithetic: true,
            ..base
        };
        let plain = mc_vanilla_bs(&m, &opt, &base);
        let av = mc_vanilla_bs(&m, &opt, &anti);
        assert!(
            av.std_error < plain.std_error,
            "antithetic {} !< plain {}",
            av.std_error,
            plain.std_error
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let cfg = McConfig {
            paths: 5_000,
            ..McConfig::default()
        };
        let a = mc_vanilla_bs(&m, &opt, &cfg);
        let b = mc_vanilla_bs(&m, &opt, &cfg);
        assert_eq!(a.price, b.price);
        let c = mc_vanilla_bs(&m, &opt, &McConfig { seed: 7, ..cfg });
        assert_ne!(a.price, c.price);
    }

    #[test]
    fn qmc_beats_mc_at_equal_budget() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let exact = bs_price(&m, &opt).price;
        let qmc = qmc_vanilla_bs(&m, &opt, 16_384);
        let mc = mc_vanilla_bs(
            &m,
            &opt,
            &McConfig {
                paths: 16_384,
                antithetic: false,
                ..McConfig::default()
            },
        );
        assert!(
            (qmc.price - exact).abs() <= (mc.price - exact).abs() + 1e-3,
            "qmc err {} mc err {}",
            (qmc.price - exact).abs(),
            (mc.price - exact).abs()
        );
        assert!((qmc.price - exact).abs() < 0.05);
    }

    #[test]
    fn basket_dim1_matches_vanilla_put() {
        let multi = MultiBlackScholes::new(1, 100.0, 0.2, 0.0, 0.05, 0.0);
        let basket = BasketOption::european_put(100.0, 1.0);
        let exact = bs_price(&model(), &Vanilla::european_put(100.0, 1.0)).price;
        let mc = mc_basket(&multi, &basket, &McConfig::default());
        assert!(
            (mc.price - exact).abs() < 4.0 * mc.std_error.max(1e-3),
            "basket {} exact {exact}",
            mc.price
        );
    }

    #[test]
    fn basket_price_decreases_with_dimension() {
        // Averaging uncorrelated assets reduces variance of the basket,
        // so an ATM basket put loses value as dim grows (ρ fixed small).
        let basket = BasketOption::european_put(100.0, 1.0);
        let cfg = McConfig {
            paths: 40_000,
            ..McConfig::default()
        };
        let p1 = mc_basket(
            &MultiBlackScholes::new(1, 100.0, 0.2, 0.1, 0.05, 0.0),
            &basket,
            &cfg,
        )
        .price;
        let p10 = mc_basket(
            &MultiBlackScholes::new(10, 100.0, 0.2, 0.1, 0.05, 0.0),
            &basket,
            &cfg,
        )
        .price;
        assert!(p10 < p1, "dim10 {p10} !< dim1 {p1}");
    }

    #[test]
    fn basket_40_dim_runs() {
        // The paper's largest product: 40-dimensional basket put.
        let m = MultiBlackScholes::new(40, 100.0, 0.2, 0.3, 0.05, 0.0);
        let basket = BasketOption::european_put(100.0, 1.0);
        let mc = mc_basket(
            &m,
            &basket,
            &McConfig {
                paths: 20_000,
                ..McConfig::default()
            },
        );
        assert!(mc.price > 0.0 && mc.price < 100.0);
        assert!(mc.std_error > 0.0);
    }

    #[test]
    fn qmc_basket_agrees_with_mc() {
        let m = MultiBlackScholes::new(5, 100.0, 0.2, 0.3, 0.05, 0.0);
        let basket = BasketOption::european_put(100.0, 1.0);
        let mc = mc_basket(
            &m,
            &basket,
            &McConfig {
                paths: 100_000,
                ..McConfig::default()
            },
        );
        let qmc = qmc_basket(&m, &basket, 32_768);
        assert!(
            (qmc.price - mc.price).abs() < 5.0 * mc.std_error.max(2e-3),
            "qmc {} mc {} ± {}",
            qmc.price,
            mc.price,
            mc.std_error
        );
    }

    #[test]
    fn local_vol_reduces_to_bs_when_flat() {
        let flat = LocalVol {
            spot: 100.0,
            sigma0: 0.2,
            term_amp: 0.0,
            term_tau: 1.0,
            skew_amp: 0.0,
            skew_width: 0.5,
            rate: 0.05,
            dividend: 0.0,
        };
        let opt = Vanilla::european_call(100.0, 1.0);
        let exact = bs_price(&model(), &opt).price;
        let mc = mc_local_vol(
            &flat,
            &opt,
            &McConfig {
                paths: 50_000,
                time_steps: 50,
                ..McConfig::default()
            },
        );
        // Euler bias + MC error: generous but binding tolerance.
        assert!(
            (mc.price - exact).abs() < 0.15,
            "mc {} exact {exact}",
            mc.price
        );
    }

    #[test]
    fn local_vol_skew_raises_otm_put_value() {
        // The downward skew pumps volatility below the spot, so OTM puts
        // are worth more than flat-vol puts.
        let skewed = LocalVol::standard(100.0, 0.2, 0.05, 0.0);
        let flat = LocalVol {
            term_amp: 0.0,
            skew_amp: 0.0,
            ..skewed
        };
        let opt = Vanilla::european_put(80.0, 1.0);
        let cfg = McConfig {
            paths: 50_000,
            time_steps: 50,
            ..McConfig::default()
        };
        let ps = mc_local_vol(&skewed, &opt, &cfg).price;
        let pf = mc_local_vol(&flat, &opt, &cfg).price;
        assert!(ps > pf, "skewed {ps} !> flat {pf}");
    }

    #[test]
    fn heston_matches_bs_when_vol_of_vol_tiny() {
        // ξ→0 with v constant (κ huge, θ=v₀) degenerates to BS with
        // σ=√v₀.
        let h = Heston::new(100.0, 0.04, 5.0, 0.04, 0.01, 0.0, 0.05, 0.0);
        let opt = Vanilla::european_call(100.0, 1.0);
        let exact = bs_price(&model(), &opt).price; // σ = 0.2 = √0.04
        let mc = mc_heston(
            &h,
            &opt,
            &McConfig {
                paths: 50_000,
                time_steps: 50,
                ..McConfig::default()
            },
        );
        assert!(
            (mc.price - exact).abs() < 0.2,
            "heston {} bs {exact}",
            mc.price
        );
    }

    #[test]
    fn exec_variants_bit_identical_across_worker_counts() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let cfg = McConfig {
            paths: 20_000,
            ..McConfig::default()
        };
        let p1 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(1));
        let p2 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2));
        let p8 = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(8));
        assert_eq!(p1.price.to_bits(), p2.price.to_bits());
        assert_eq!(p1.price.to_bits(), p8.price.to_bits());
        assert_eq!(p1.std_error.to_bits(), p8.std_error.to_bits());
        assert_eq!(
            p1.delta.unwrap().to_bits(),
            p8.delta.unwrap().to_bits()
        );
        // And the chunked estimate is still a valid price.
        let exact = bs_price(&m, &opt).price;
        assert!((p1.price - exact).abs() < 4.0 * p1.std_error);
    }

    #[test]
    fn exec_basket_and_heston_agree_with_sequential_statistically() {
        let pol = ExecPolicy::new(4);
        let multi = MultiBlackScholes::new(5, 100.0, 0.2, 0.3, 0.05, 0.0);
        let basket = BasketOption::european_put(100.0, 1.0);
        let cfg = McConfig {
            paths: 20_000,
            ..McConfig::default()
        };
        let seq = mc_basket(&multi, &basket, &cfg);
        let par = mc_basket_exec(&multi, &basket, &cfg, &pol);
        assert!(
            (par.price - seq.price).abs() < 4.0 * (par.std_error + seq.std_error),
            "basket exec {} seq {}",
            par.price,
            seq.price
        );
        let h = Heston::standard(100.0, 0.05);
        let opt = Vanilla::european_put(100.0, 1.0);
        let hcfg = McConfig {
            paths: 10_000,
            time_steps: 20,
            ..McConfig::default()
        };
        let hseq = mc_heston(&h, &opt, &hcfg);
        let hpar = mc_heston_exec(&h, &opt, &hcfg, &pol);
        assert!(
            (hpar.price - hseq.price).abs() < 4.0 * (hpar.std_error + hseq.std_error),
            "heston exec {} seq {}",
            hpar.price,
            hseq.price
        );
    }

    #[test]
    fn exec_chunk_size_changes_sample_thread_count_does_not() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let cfg = McConfig {
            paths: 8_192,
            ..McConfig::default()
        };
        let a = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2).chunk(512));
        let b = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(7).chunk(512));
        let c = mc_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(2).chunk(1024));
        assert_eq!(a.price.to_bits(), b.price.to_bits());
        assert_ne!(a.price.to_bits(), c.price.to_bits());
    }

    #[test]
    #[should_panic]
    fn american_rejected_by_plain_mc() {
        mc_vanilla_bs(
            &model(),
            &Vanilla::american_put(100.0, 1.0),
            &McConfig::default(),
        );
    }
}
