//! Portfolio-level XVA (CVA) aggregation over a structure-of-arrays
//! trade layout.
//!
//! A netting set of forward contracts on one underlying is valued at a
//! grid of exposure dates along simulated paths; the credit valuation
//! adjustment integrates the discounted expected *positive* exposure
//! against the counterparty default density (constant hazard rate):
//!
//! `CVA = LGD · Σ_j e^{-r t_j} E[(V_{t_j})⁺] · (e^{-λ t_{j-1}} − e^{-λ t_j})`
//!
//! Trades live in a [`TradeSoA`] — parallel `notional` / `strike` /
//! `direction` / `maturity` arrays generated deterministically from a
//! seed, the layout the aggregation pass streams through. Because every
//! trade is *linear* in the one underlying, the per-date netted value
//! collapses to `V_j = a_j·S_j − b_j` where `(a_j, b_j)` are per-date
//! reductions over the SoA (computed once, outside the path loop); the
//! hot per-path loop is then alloc-free and lane-vectorisable while the
//! trade dimension is paid exactly once.
//!
//! The `*_exec` variant parallelises over path chunks with
//! [`exec::stream_seed`]-derived streams and merges per-chunk statistics
//! in chunk order — bit-identical for any worker count.

use crate::lanes::F64s;
use crate::models::BlackScholes;
use exec::{stream_seed, Chunk, ExecPolicy};
use numerics::rng::NormalGen;
use numerics::stats::RunningStats;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use super::montecarlo::McResult;

/// A netting set of forward contracts in structure-of-arrays layout:
/// field `i` of every array describes trade `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeSoA {
    /// Contract notionals (units of the underlying).
    pub notional: Vec<f64>,
    /// Delivery prices.
    pub strike: Vec<f64>,
    /// +1 long / −1 short the forward.
    pub direction: Vec<f64>,
    /// Delivery dates in years.
    pub maturity: Vec<f64>,
}

impl TradeSoA {
    /// Deterministic book generation: `trades` forwards with strikes
    /// around `spot`, notionals in `[0.5, 1.5]`, alternating directions
    /// biased long (so the set carries positive exposure), maturities in
    /// `(0, horizon]`. The book is a pure function of `(trades, seed)`.
    pub fn generate(trades: usize, spot: f64, horizon: f64, seed: u64) -> TradeSoA {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut book = TradeSoA {
            notional: Vec::with_capacity(trades),
            strike: Vec::with_capacity(trades),
            direction: Vec::with_capacity(trades),
            maturity: Vec::with_capacity(trades),
        };
        for i in 0..trades {
            book.notional.push(0.5 + rng.gen_f64());
            book.strike.push(spot * (0.8 + 0.4 * rng.gen_f64()));
            // Two of three trades long: a directional book nets to
            // non-trivial positive exposure.
            book.direction.push(if i % 3 == 2 { -1.0 } else { 1.0 });
            book.maturity.push(horizon * (0.1 + 0.9 * rng.gen_f64()));
        }
        book
    }

    /// Number of trades in the set.
    pub fn len(&self) -> usize {
        self.notional.len()
    }

    /// Is the netting set empty?
    pub fn is_empty(&self) -> bool {
        self.notional.is_empty()
    }

    /// Per-date collapse of the (linear) netted book: at exposure date
    /// `t`, the set's value along a path is `a·S_t − b` with
    /// `a = Σ_alive dir·notional` and
    /// `b = Σ_alive dir·notional·K·e^{-r(T_i − t)}` — one streaming pass
    /// over the SoA per date.
    pub fn collapse_at(&self, t: f64, rate: f64) -> (f64, f64) {
        let mut a = 0.0;
        let mut b = 0.0;
        for i in 0..self.len() {
            if self.maturity[i] > t {
                let w = self.direction[i] * self.notional[i];
                a += w;
                b += w * self.strike[i] * (-rate * (self.maturity[i] - t)).exp();
            }
        }
        (a, b)
    }
}

/// CVA parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XvaConfig {
    /// Monte-Carlo paths of the underlying.
    pub paths: usize,
    /// Exposure dates on `(0, horizon]`.
    pub time_steps: usize,
    /// Constant default hazard rate λ of the counterparty.
    pub hazard: f64,
    /// Loss given default (1 − recovery).
    pub lgd: f64,
    /// RNG seed for the exposure paths (the book has its own seed).
    pub seed: u64,
}

impl Default for XvaConfig {
    fn default() -> Self {
        XvaConfig {
            paths: 8192,
            time_steps: 50,
            hazard: 0.02,
            lgd: 0.6,
            seed: 42,
        }
    }
}

impl XvaConfig {
    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.paths == 0 {
            return Err("paths must be positive".into());
        }
        if self.time_steps == 0 {
            return Err("time_steps must be positive".into());
        }
        if !(self.hazard >= 0.0) {
            return Err("hazard must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.lgd) {
            return Err("lgd must lie in [0, 1]".into());
        }
        Ok(())
    }
}

/// Per-date constants of the CVA integrand, reduced from the SoA once
/// before the path loop: value coefficients `(a_j, b_j)` and the weight
/// `w_j = LGD · e^{-r t_j} · (e^{-λ t_{j-1}} − e^{-λ t_j})`.
fn date_tables(
    m: &BlackScholes,
    book: &TradeSoA,
    horizon: f64,
    cfg: &XvaConfig,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let dt = horizon / cfg.time_steps as f64;
    let mut a = Vec::with_capacity(cfg.time_steps);
    let mut b = Vec::with_capacity(cfg.time_steps);
    let mut w = Vec::with_capacity(cfg.time_steps);
    for j in 0..cfg.time_steps {
        let t0 = j as f64 * dt;
        let t1 = (j + 1) as f64 * dt;
        let (aj, bj) = book.collapse_at(t1, m.rate);
        a.push(aj);
        b.push(bj);
        w.push(cfg.lgd * m.discount(t1) * ((-cfg.hazard * t0).exp() - (-cfg.hazard * t1).exp()));
    }
    (a, b, w)
}

/// CVA of the netting set, sequential reference implementation. The
/// returned `price` is the CVA (a charge, ≥ 0); `std_error` is the
/// Monte-Carlo error of the pathwise CVA estimator.
pub fn xva_cva(m: &BlackScholes, book: &TradeSoA, horizon: f64, cfg: &XvaConfig) -> McResult {
    cfg.validate().expect("invalid XVA config");
    assert!(!book.is_empty(), "netting set must contain trades");
    let (a, b, w) = date_tables(m, book, horizon, cfg);
    let dt = horizon / cfg.time_steps as f64;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let mut stats = RunningStats::new();
    for _ in 0..cfg.paths {
        let mut s = m.spot;
        let mut cva = 0.0;
        for j in 0..cfg.time_steps {
            s = m.step(s, dt, gen.sample(&mut rng));
            cva += w[j] * (a[j] * s - b[j]).max(0.0);
        }
        stats.push(cva);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`xva_cva`]: each chunk of paths
/// draws from its own [`stream_seed`]-derived stream and per-chunk
/// statistics merge in chunk order — bit-identical for any worker count.
pub fn xva_cva_exec(
    m: &BlackScholes,
    book: &TradeSoA,
    horizon: f64,
    cfg: &XvaConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid XVA config");
    assert!(!book.is_empty(), "netting set must contain trades");
    let (a, b, w) = date_tables(m, book, horizon, cfg);
    let dt = horizon / cfg.time_steps as f64;
    let parts = match pol.lane_width() {
        4 => pol.run(cfg.paths, |c| xva_chunk_lanes::<4>(m, cfg, dt, &a, &b, &w, c)),
        8 => pol.run(cfg.paths, |c| xva_chunk_lanes::<8>(m, cfg, dt, &a, &b, &w, c)),
        _ => pol.run(cfg.paths, |c| xva_chunk_scalar(m, cfg, dt, &a, &b, &w, c)),
    };
    let mut stats = RunningStats::new();
    for s in &parts {
        stats.merge(s);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Scalar (lanes = 1) chunk body — the sequential kernel on one chunk's
/// stream.
fn xva_chunk_scalar(
    m: &BlackScholes,
    cfg: &XvaConfig,
    dt: f64,
    a: &[f64],
    b: &[f64],
    w: &[f64],
    c: &Chunk,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut stats = RunningStats::new();
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for _ in c.start..c.end {
        let mut s = m.spot;
        let mut cva = 0.0;
        for j in 0..cfg.time_steps {
            s = m.step(s, dt, gen.sample(&mut rng));
            cva += w[j] * (a[j] * s - b[j]).max(0.0);
        }
        stats.push(cva);
    }
    // ALLOC-FREE-END
    stats
}

/// `L`-wide chunk body: `L` paths advance per loop iteration, normals
/// drawn in `(step, lane)` order, the log-Euler step and the exposure
/// positive-part vectorised with fused `mul_add`. The remainder
/// `c.len() % L` paths run scalar-style, continuing the same chunk
/// stream.
fn xva_chunk_lanes<const L: usize>(
    m: &BlackScholes,
    cfg: &XvaConfig,
    dt: f64,
    a: &[f64],
    b: &[f64],
    w: &[f64],
    c: &Chunk,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut stats = RunningStats::new();
    let drift = F64s::<L>::splat(m.log_drift() * dt);
    let volt = F64s::<L>::splat(m.sigma * dt.sqrt());
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for _ in 0..groups {
        let mut s = F64s::<L>::splat(m.spot);
        let mut cva = F64s::<L>::splat(0.0);
        for j in 0..cfg.time_steps {
            let z = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
            s = s * z.mul_add(volt, drift).exp();
            for l in 0..L {
                cva.0[l] += w[j] * (a[j] * s.0[l] - b[j]).max(0.0);
            }
        }
        for l in 0..L {
            stats.push(cva.0[l]);
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for _ in c.start + groups * L..c.end {
        let mut s = m.spot;
        let mut cva = 0.0;
        for j in 0..cfg.time_steps {
            s = m.step(s, dt, gen.sample(&mut rng));
            cva += w[j] * (a[j] * s - b[j]).max(0.0);
        }
        stats.push(cva);
    }
    // ALLOC-FREE-END
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BlackScholes {
        BlackScholes::new(100.0, 0.2, 0.05, 0.0)
    }

    fn quick() -> XvaConfig {
        XvaConfig {
            paths: 4000,
            time_steps: 20,
            ..XvaConfig::default()
        }
    }

    #[test]
    fn book_generation_is_deterministic() {
        let a = TradeSoA::generate(32, 100.0, 1.0, 7);
        let b = TradeSoA::generate(32, 100.0, 1.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let c = TradeSoA::generate(32, 100.0, 1.0, 8);
        assert_ne!(a, c, "different seeds must give different books");
    }

    #[test]
    fn exec_cva_is_bit_identical_across_worker_counts() {
        let m = model();
        let book = TradeSoA::generate(48, m.spot, 1.0, 7);
        let cfg = quick();
        let base = xva_cva_exec(&m, &book, 1.0, &cfg, &ExecPolicy::new(1));
        for workers in [2, 4, 8] {
            let r = xva_cva_exec(&m, &book, 1.0, &cfg, &ExecPolicy::new(workers));
            assert_eq!(r.price.to_bits(), base.price.to_bits());
            assert_eq!(r.std_error.to_bits(), base.std_error.to_bits());
        }
    }

    #[test]
    fn cva_is_a_nonnegative_charge_scaling_with_hazard_and_lgd() {
        let m = model();
        let book = TradeSoA::generate(48, m.spot, 1.0, 7);
        let cfg = quick();
        let cva = xva_cva_exec(&m, &book, 1.0, &cfg, &ExecPolicy::new(4)).price;
        assert!(cva >= 0.0);
        let riskier = XvaConfig {
            hazard: cfg.hazard * 4.0,
            ..cfg
        };
        let cva_hi = xva_cva_exec(&m, &book, 1.0, &riskier, &ExecPolicy::new(4)).price;
        assert!(
            cva_hi > cva,
            "quadrupled hazard must raise CVA: {cva} -> {cva_hi}"
        );
        let no_loss = XvaConfig { lgd: 0.0, ..cfg };
        let zero = xva_cva_exec(&m, &book, 1.0, &no_loss, &ExecPolicy::new(4)).price;
        assert_eq!(zero, 0.0, "zero LGD means zero CVA");
    }

    #[test]
    fn collapse_matches_brute_force_valuation() {
        let book = TradeSoA::generate(16, 100.0, 1.0, 11);
        let rate = 0.05;
        let t = 0.4;
        let (a, b) = book.collapse_at(t, rate);
        for s in [60.0, 100.0, 140.0] {
            let direct: f64 = (0..book.len())
                .filter(|&i| book.maturity[i] > t)
                .map(|i| {
                    book.direction[i]
                        * book.notional[i]
                        * (s - book.strike[i] * (-rate * (book.maturity[i] - t)).exp())
                })
                .sum();
            assert!(
                (a * s - b - direct).abs() < 1e-9,
                "collapse mismatch at spot {s}"
            );
        }
    }
}
