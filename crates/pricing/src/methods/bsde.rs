//! BSDE pricing/hedging via iterated Picard sweeps (Labart–Lelong 2011).
//!
//! Labart & Lelong parallelise the pricing of a claim whose value solves
//! a backward stochastic differential equation by Picard iteration: each
//! iterate is a Monte-Carlo expectation functional of the *previous*
//! iterate, so round `k+1` cannot start before round `k`'s answers are in
//! — exactly the cross-round dependency shape the staged scheduler
//! expresses. The concrete claim here is a European vanilla under
//! Black–Scholes with a **borrowing spread**: the replicating portfolio
//! borrows at `r + rate_spread` whenever the hedge position exceeds the
//! portfolio value (Bergman's two-rate model), giving the driver
//!
//! `f(t, S, y) = spread · (hedge(S) − y)⁺`
//!
//! with the digital hedge proxy `hedge(S) = S · 1{S > K}` (calls) /
//! `−S · 1{S < K}` shorted stock (puts). One **sweep** maps the scalar
//! iterate `y_prev` to
//!
//! `y_next = E[ e^{-rT} Φ(S_T) + Σ_j Δt e^{-r t_j} f(t_j, S_j, y_prev) ]`
//!
//! whose derivative in `y_prev` is bounded by `spread · T < 1` — a
//! contraction, so the iterates converge geometrically to the two-rate
//! price (≥ the Black–Scholes price, with equality at zero spread).
//!
//! The `*_exec` sweep parallelises over path chunks with
//! [`exec::stream_seed`]-derived streams and merges per-chunk statistics
//! in chunk order, so every iterate is bit-identical for any worker
//! count — the property the farm's round-staged execution relies on.

use crate::lanes::F64s;
use crate::models::BlackScholes;
use crate::options::{Exercise, Vanilla};
use exec::{stream_seed, Chunk, ExecPolicy};
use numerics::rng::NormalGen;
use numerics::stats::RunningStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::montecarlo::McResult;

/// One Picard sweep's parameters. A standalone pricing run iterates
/// `picard_rounds` sweeps internally; the staged farm runs sweeps as
/// separate round jobs, patching `y_prev` with the previous round's
/// averaged answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsdeConfig {
    /// Number of Monte-Carlo paths per sweep.
    pub paths: usize,
    /// Time discretisation of the driver integral.
    pub time_steps: usize,
    /// Borrowing spread `R − r` of the two-rate model (the driver's
    /// Lipschitz constant; `spread · maturity` must stay below 1 for the
    /// Picard map to contract).
    pub rate_spread: f64,
    /// Picard iterations to run from `y_prev` (≥ 1).
    pub picard_rounds: usize,
    /// Starting iterate `Y_0^{(0)}` (0 for a fresh fixed-point run; the
    /// staged farm patches in the previous round's answer).
    pub y_prev: f64,
    /// RNG seed (problems are deterministic given their spec).
    pub seed: u64,
}

impl Default for BsdeConfig {
    fn default() -> Self {
        BsdeConfig {
            paths: 16_384,
            time_steps: 25,
            rate_spread: 0.05,
            picard_rounds: 4,
            y_prev: 0.0,
            seed: 42,
        }
    }
}

impl BsdeConfig {
    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.paths == 0 {
            return Err("paths must be positive".into());
        }
        if self.time_steps == 0 {
            return Err("time_steps must be positive".into());
        }
        if self.picard_rounds == 0 {
            return Err("picard_rounds must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.rate_spread) {
            return Err("rate_spread must lie in [0, 1)".into());
        }
        Ok(())
    }
}

fn assert_bsde_option(option: &Vanilla) {
    option.validate().expect("invalid option");
    assert!(
        option.exercise == Exercise::European,
        "the BSDE Picard solver prices European claims"
    );
}

/// Digital hedge proxy: the stock leg of the replicating portfolio.
#[inline]
fn hedge_position(s: f64, strike: f64, sign: f64) -> f64 {
    if sign * (s - strike) > 0.0 {
        sign * s
    } else {
        0.0
    }
}

/// One Picard sweep, sequential reference implementation: maps
/// `cfg.y_prev` to the next iterate.
pub fn bsde_sweep(m: &BlackScholes, option: &Vanilla, cfg: &BsdeConfig) -> McResult {
    cfg.validate().expect("invalid BSDE config");
    assert_bsde_option(option);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let mut stats = RunningStats::new();
    let dt = option.maturity / cfg.time_steps as f64;
    let sign = option.right.sign();
    for _ in 0..cfg.paths {
        let mut s = m.spot;
        let mut driver = 0.0;
        for j in 0..cfg.time_steps {
            s = m.step(s, dt, gen.sample(&mut rng));
            let t = (j + 1) as f64 * dt;
            let shortfall = (hedge_position(s, option.strike, sign) - cfg.y_prev).max(0.0);
            driver += dt * m.discount(t) * cfg.rate_spread * shortfall;
        }
        let payoff = (sign * (s - option.strike)).max(0.0);
        stats.push(m.discount(option.maturity) * payoff + driver);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`bsde_sweep`]: each chunk of paths
/// draws from its own [`stream_seed`]-derived stream and per-chunk
/// statistics merge in chunk order — bit-identical for any worker count.
pub fn bsde_sweep_exec(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &BsdeConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid BSDE config");
    assert_bsde_option(option);
    let dt = option.maturity / cfg.time_steps as f64;
    let sign = option.right.sign();
    let parts = match pol.lane_width() {
        4 => pol.run(cfg.paths, |c| bsde_chunk_lanes::<4>(m, option, cfg, dt, sign, c)),
        8 => pol.run(cfg.paths, |c| bsde_chunk_lanes::<8>(m, option, cfg, dt, sign, c)),
        _ => pol.run(cfg.paths, |c| bsde_chunk_scalar(m, option, cfg, dt, sign, c)),
    };
    let mut stats = RunningStats::new();
    for s in &parts {
        stats.merge(s);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Scalar (lanes = 1) chunk body — the sequential kernel on one chunk's
/// stream.
fn bsde_chunk_scalar(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &BsdeConfig,
    dt: f64,
    sign: f64,
    c: &Chunk,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut stats = RunningStats::new();
    let df_t = m.discount(option.maturity);
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for _ in c.start..c.end {
        let mut s = m.spot;
        let mut driver = 0.0;
        for j in 0..cfg.time_steps {
            s = m.step(s, dt, gen.sample(&mut rng));
            let t = (j + 1) as f64 * dt;
            let shortfall = (hedge_position(s, option.strike, sign) - cfg.y_prev).max(0.0);
            driver += dt * m.discount(t) * cfg.rate_spread * shortfall;
        }
        let payoff = (sign * (s - option.strike)).max(0.0);
        stats.push(df_t * payoff + driver);
    }
    // ALLOC-FREE-END
    stats
}

/// `L`-wide chunk body: `L` paths advance per loop iteration, normals
/// drawn in `(step, lane)` order, the log-Euler step vectorised with
/// fused `mul_add`; the driver integrand branches per lane (the digital
/// hedge is a comparison, not worth masking). The remainder
/// `c.len() % L` paths run scalar-style, continuing the same chunk
/// stream.
fn bsde_chunk_lanes<const L: usize>(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &BsdeConfig,
    dt: f64,
    sign: f64,
    c: &Chunk,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut stats = RunningStats::new();
    let df_t = m.discount(option.maturity);
    let drift = F64s::<L>::splat(m.log_drift() * dt);
    let volt = F64s::<L>::splat(m.sigma * dt.sqrt());
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for _ in 0..groups {
        let mut s = F64s::<L>::splat(m.spot);
        let mut driver = F64s::<L>::splat(0.0);
        for j in 0..cfg.time_steps {
            let z = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
            s = s * z.mul_add(volt, drift).exp();
            let t = (j + 1) as f64 * dt;
            let w = dt * m.discount(t) * cfg.rate_spread;
            for l in 0..L {
                let shortfall = (hedge_position(s.0[l], option.strike, sign) - cfg.y_prev).max(0.0);
                driver.0[l] += w * shortfall;
            }
        }
        for l in 0..L {
            let payoff = (sign * (s.0[l] - option.strike)).max(0.0);
            stats.push(df_t * payoff + driver.0[l]);
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for _ in c.start + groups * L..c.end {
        let mut s = m.spot;
        let mut driver = 0.0;
        for j in 0..cfg.time_steps {
            s = m.step(s, dt, gen.sample(&mut rng));
            let t = (j + 1) as f64 * dt;
            let shortfall = (hedge_position(s, option.strike, sign) - cfg.y_prev).max(0.0);
            driver += dt * m.discount(t) * cfg.rate_spread * shortfall;
        }
        let payoff = (sign * (s - option.strike)).max(0.0);
        stats.push(df_t * payoff + driver);
    }
    // ALLOC-FREE-END
    stats
}

/// Full fixed-point run: iterate `cfg.picard_rounds` sweeps from
/// `cfg.y_prev`, feeding each sweep's price into the next sweep's
/// `y_prev`. Returns the sweep iterates in order (the last one is the
/// price); every iterate is bit-identical for any worker count when
/// `pol` is given.
pub fn bsde_picard_iterates(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &BsdeConfig,
    pol: Option<&ExecPolicy>,
) -> Vec<McResult> {
    cfg.validate().expect("invalid BSDE config");
    let mut sweep_cfg = *cfg;
    let mut out = Vec::with_capacity(cfg.picard_rounds);
    for _ in 0..cfg.picard_rounds {
        let r = match pol {
            Some(p) => bsde_sweep_exec(m, option, &sweep_cfg, p),
            None => bsde_sweep(m, option, &sweep_cfg),
        };
        sweep_cfg.y_prev = r.price;
        out.push(r);
    }
    out
}

/// Convenience wrapper returning only the final iterate.
pub fn bsde_picard(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &BsdeConfig,
    pol: Option<&ExecPolicy>,
) -> McResult {
    bsde_picard_iterates(m, option, cfg, pol)
        .pop()
        .expect("picard_rounds >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::closed_form::bs_price;

    fn model() -> BlackScholes {
        BlackScholes::new(100.0, 0.2, 0.05, 0.0)
    }

    fn call() -> Vanilla {
        Vanilla::european_call(100.0, 1.0)
    }

    fn quick() -> BsdeConfig {
        BsdeConfig {
            paths: 4000,
            time_steps: 12,
            ..BsdeConfig::default()
        }
    }

    #[test]
    fn exec_matches_sequential_stats_shape() {
        let m = model();
        let o = call();
        let cfg = quick();
        let seq = bsde_sweep(&m, &o, &cfg);
        assert!(seq.price.is_finite() && seq.std_error > 0.0);
    }

    #[test]
    fn exec_price_is_bit_identical_across_worker_counts() {
        let m = model();
        let o = call();
        let cfg = quick();
        let base = bsde_sweep_exec(&m, &o, &cfg, &ExecPolicy::new(1));
        for workers in [2, 4, 8] {
            let r = bsde_sweep_exec(&m, &o, &cfg, &ExecPolicy::new(workers));
            assert_eq!(r.price.to_bits(), base.price.to_bits());
            assert_eq!(r.std_error.to_bits(), base.std_error.to_bits());
        }
    }

    #[test]
    fn picard_iterates_contract_geometrically() {
        let m = model();
        let o = call();
        let cfg = BsdeConfig {
            picard_rounds: 6,
            ..quick()
        };
        let iters = bsde_picard_iterates(&m, &o, &cfg, Some(&ExecPolicy::new(4)));
        assert_eq!(iters.len(), 6);
        // Successive differences shrink (same paths each sweep, so the
        // only change between iterates is the contraction in y_prev).
        let d1 = (iters[1].price - iters[0].price).abs();
        let d4 = (iters[5].price - iters[4].price).abs();
        assert!(d4 < d1, "Picard map failed to contract: {d1} -> {d4}");
        assert!(d4 < 1e-4, "iterates not converged: last delta {d4}");
    }

    #[test]
    fn spread_raises_the_price_above_black_scholes() {
        let m = model();
        let o = call();
        let cfg = BsdeConfig {
            paths: 20_000,
            ..quick()
        };
        let two_rate = bsde_picard(&m, &o, &cfg, Some(&ExecPolicy::new(4)));
        let zero = BsdeConfig {
            rate_spread: 0.0,
            ..cfg
        };
        let plain = bsde_picard(&m, &o, &zero, Some(&ExecPolicy::new(4)));
        assert!(
            two_rate.price > plain.price,
            "borrowing spread must cost something: {} <= {}",
            two_rate.price,
            plain.price
        );
        // And the zero-spread sweep is plain discounted-payoff MC, close
        // to the closed form.
        let cf = bs_price(&model(), &call()).price;
        assert!(
            (plain.price - cf).abs() < 4.0 * plain.std_error + 1e-9,
            "zero-spread BSDE {} too far from BS closed form {}",
            plain.price,
            cf
        );
    }

    #[test]
    fn put_hedge_is_short_stock() {
        let m = model();
        let o = Vanilla::european_put(100.0, 1.0);
        let cfg = quick();
        let r = bsde_picard(&m, &o, &cfg, Some(&ExecPolicy::new(2)));
        assert!(r.price.is_finite() && r.price > 0.0);
    }
}
