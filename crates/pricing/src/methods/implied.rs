//! Implied volatility: invert the Black–Scholes formula.
//!
//! Risk systems quote and compare options in implied-vol space, and
//! Premia's calibration utilities need the inversion. We use a
//! safeguarded Newton iteration (vega-based steps inside a maintained
//! bisection bracket), which converges globally for any arbitrage-free
//! price.

use crate::methods::closed_form::bs_price;
use crate::models::BlackScholes;
use crate::options::{OptionRight, Vanilla};

/// Errors from the inversion.
#[derive(Debug, Clone, PartialEq)]
pub enum ImpliedVolError {
    /// Price below intrinsic/discounted lower bound — no volatility can
    /// produce it.
    PriceBelowArbitrageBound,
    /// Price at or above the trivial upper bound (spot for calls,
    /// discounted strike for puts).
    PriceAboveArbitrageBound,
}

impl std::fmt::Display for ImpliedVolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImpliedVolError::PriceBelowArbitrageBound => {
                write!(f, "price below the arbitrage lower bound")
            }
            ImpliedVolError::PriceAboveArbitrageBound => {
                write!(f, "price above the arbitrage upper bound")
            }
        }
    }
}

impl std::error::Error for ImpliedVolError {}

/// Converged inversion with solver diagnostics.
///
/// Calibration sweeps (a whole smile per maturity, per bump scenario)
/// invert thousands of prices; the iteration count is the natural unit
/// for profiling them, exactly as the per-phase spans are for the farm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpliedVol {
    /// The implied volatility σ*.
    pub sigma: f64,
    /// Newton/bisection iterations actually spent (0 for degenerate
    /// intrinsic prices that short-circuit).
    pub iterations: usize,
    /// |BS(σ*) − price| at exit.
    pub residual: f64,
}

/// Iteration cap. The safeguarded Newton iteration converges in well
/// under 20 steps for any arbitrage-free price; the cap only guards
/// against pathological floating-point cycling.
const MAX_ITER: usize = 100;

/// Invert Black–Scholes: find σ such that `BS(σ) = price`.
///
/// `market` supplies spot, rate and dividend; its `sigma` field is
/// ignored. Accuracy: |BS(σ*) − price| < 1e-12 · spot.
pub fn implied_vol(
    market: &BlackScholes,
    option: &Vanilla,
    price: f64,
) -> Result<f64, ImpliedVolError> {
    implied_vol_diagnostic(market, option, price).map(|iv| iv.sigma)
}

/// [`implied_vol`], returning the full [`ImpliedVol`] diagnostic.
///
/// The solver stops on the **first** of three conditions rather than
/// always burning a fixed iteration budget:
///
/// 1. price convergence: |BS(σ) − price| < 1e-12 · spot;
/// 2. bracket collapse: the maintained bisection bracket `[lo, hi]`
///    narrows below floating-point resolution around σ — the answer
///    cannot improve further even when the price tolerance is
///    unreachable (deep in/out-of-the-money, vega ≈ 0);
/// 3. the [`MAX_ITER`] safety cap.
pub fn implied_vol_diagnostic(
    market: &BlackScholes,
    option: &Vanilla,
    price: f64,
) -> Result<ImpliedVol, ImpliedVolError> {
    option.validate().expect("invalid option");
    let t = option.maturity;
    let k = option.strike;
    let df_r = (-market.rate * t).exp();
    let df_q = (-market.dividend * t).exp();
    let (lower, upper) = match option.right {
        OptionRight::Call => ((market.spot * df_q - k * df_r).max(0.0), market.spot * df_q),
        OptionRight::Put => ((k * df_r - market.spot * df_q).max(0.0), k * df_r),
    };
    if price < lower - 1e-12 {
        return Err(ImpliedVolError::PriceBelowArbitrageBound);
    }
    if price >= upper {
        return Err(ImpliedVolError::PriceAboveArbitrageBound);
    }
    // Degenerate: price exactly intrinsic ⇒ σ → 0.
    if price <= lower + 1e-14 {
        return Ok(ImpliedVol {
            sigma: 1e-8,
            iterations: 0,
            residual: 0.0,
        });
    }

    let f = |sigma: f64| -> (f64, f64) {
        let m = BlackScholes { sigma, ..*market };
        let q = bs_price(&m, option);
        (q.price - price, q.vega)
    };

    // Bracket: BS price is strictly increasing in σ.
    let mut lo = 1e-6;
    let mut hi = 5.0;
    // Expand hi if needed (extreme prices).
    while f(hi).0 < 0.0 && hi < 100.0 {
        hi *= 2.0;
    }
    let mut sigma = 0.2; // conventional start
    let tol = 1e-12 * market.spot.max(1.0);
    let mut diff = 0.0;
    for iterations in 1..=MAX_ITER {
        let vega;
        (diff, vega) = f(sigma);
        if diff.abs() < tol {
            // Price converged.
            return Ok(ImpliedVol {
                sigma,
                iterations,
                residual: diff.abs(),
            });
        }
        if diff > 0.0 {
            hi = sigma;
        } else {
            lo = sigma;
        }
        if hi - lo < 1e-12 * sigma.max(1.0) {
            // Bracket collapsed to floating-point resolution around σ:
            // more iterations cannot move the answer (typically a
            // vega ≈ 0 corner where the price tolerance is unreachable).
            return Ok(ImpliedVol {
                sigma,
                iterations,
                residual: diff.abs(),
            });
        }
        // Newton step, safeguarded by the bracket.
        let newton = sigma - diff / vega.max(1e-12);
        sigma = if newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
    }
    Ok(ImpliedVol {
        sigma,
        iterations: MAX_ITER,
        residual: diff.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> BlackScholes {
        BlackScholes::new(100.0, 0.999, 0.05, 0.01) // sigma ignored
    }

    #[test]
    fn recovers_known_volatility() {
        let m = market();
        for &sigma in &[0.05, 0.1, 0.2, 0.5, 1.2] {
            for &k in &[70.0, 100.0, 140.0] {
                for &t in &[0.1, 1.0, 5.0] {
                    let opt = Vanilla::european_call(k, t);
                    let price = bs_price(&BlackScholes { sigma, ..m }, &opt).price;
                    let lower =
                        (m.spot * (-m.dividend * t).exp() - k * (-m.rate * t).exp()).max(0.0);
                    if price < 1e-6 || price - lower < 1e-6 {
                        // Sub-micro-cent OTM price, or deep-ITM price at
                        // intrinsic: vega is so small the price carries
                        // no usable vol information.
                        continue;
                    }
                    let iv = implied_vol(&m, &opt, price).unwrap();
                    // σ-accuracy is price-tolerance divided by vega; deep
                    // ITM low-vol corners have vega ~1e-4, so allow 1e-5.
                    assert!(
                        (iv - sigma).abs() < 1e-5,
                        "σ={sigma} k={k} t={t}: recovered {iv}"
                    );
                }
            }
        }
    }

    #[test]
    fn recovers_put_volatility() {
        let m = market();
        let opt = Vanilla::european_put(95.0, 0.75);
        let price = bs_price(&BlackScholes { sigma: 0.33, ..m }, &opt).price;
        let iv = implied_vol(&m, &opt, price).unwrap();
        assert!((iv - 0.33).abs() < 1e-8, "recovered {iv}");
    }

    #[test]
    fn diagnostic_reports_fast_convergence_on_known_vol() {
        let m = market();
        let opt = Vanilla::european_call(105.0, 1.0);
        let price = bs_price(&BlackScholes { sigma: 0.27, ..m }, &opt).price;
        let iv = implied_vol_diagnostic(&m, &opt, price).unwrap();
        assert!((iv.sigma - 0.27).abs() < 1e-10, "recovered {}", iv.sigma);
        // Safeguarded Newton on a near-the-money option is quadratic:
        // single-digit iterations, never the 100-step budget.
        assert!(
            (1..=10).contains(&iv.iterations),
            "took {} iterations",
            iv.iterations
        );
        assert!(iv.residual < 1e-12 * m.spot);
        // The scalar entry point agrees with the diagnostic one.
        assert_eq!(implied_vol(&m, &opt, price).unwrap(), iv.sigma);
    }

    #[test]
    fn bracket_collapse_terminates_vega_starved_corners() {
        // Deep ITM, tiny maturity: vega is ~0 and the 1e-12·spot price
        // tolerance can be unreachable. The bracket-collapse exit must
        // still terminate well under the iteration cap with the bracket
        // at floating-point resolution.
        let m = market();
        let opt = Vanilla::european_call(40.0, 0.05);
        let price = bs_price(&BlackScholes { sigma: 0.15, ..m }, &opt).price;
        let iv = implied_vol_diagnostic(&m, &opt, price).unwrap();
        assert!(iv.iterations < 100, "hit the cap: {}", iv.iterations);
        // Whatever σ it settles on must reproduce the price to far
        // better than a basis point of spot.
        let back = bs_price(
            &BlackScholes {
                sigma: iv.sigma,
                ..m
            },
            &opt,
        )
        .price;
        assert!((back - price).abs() < 1e-8 * m.spot);
    }

    #[test]
    fn degenerate_intrinsic_price_reports_zero_iterations() {
        let m = market();
        let opt = Vanilla::european_call(80.0, 1.0);
        let t = opt.maturity;
        let intrinsic = m.spot * (-m.dividend * t).exp() - opt.strike * (-m.rate * t).exp();
        let iv = implied_vol_diagnostic(&m, &opt, intrinsic).unwrap();
        assert_eq!(iv.iterations, 0);
        assert!(iv.sigma < 1e-6);
    }

    #[test]
    fn rejects_arbitrage_violations() {
        let m = market();
        let opt = Vanilla::european_call(100.0, 1.0);
        // Below intrinsic-forward bound.
        assert_eq!(
            implied_vol(&m, &opt, -0.5),
            Err(ImpliedVolError::PriceBelowArbitrageBound)
        );
        // Above the spot.
        assert_eq!(
            implied_vol(&m, &opt, 100.0),
            Err(ImpliedVolError::PriceAboveArbitrageBound)
        );
    }

    #[test]
    fn intrinsic_price_gives_tiny_vol() {
        let m = market();
        let opt = Vanilla::european_call(80.0, 1.0);
        let t = opt.maturity;
        let intrinsic = m.spot * (-m.dividend * t).exp() - opt.strike * (-m.rate * t).exp();
        let iv = implied_vol(&m, &opt, intrinsic).unwrap();
        assert!(iv < 1e-6);
    }

    #[test]
    fn heston_smile_has_equity_skew() {
        // Price OTM puts/calls under Heston (ρ<0), invert to implied
        // vols: the put wing must sit above the call wing — the smile the
        // local-vol model of §4.3 is built to capture.
        use crate::methods::heston_cf::heston_cf_price;
        use crate::models::Heston;
        let h = Heston::standard(100.0, 0.05);
        let m = BlackScholes::new(100.0, 0.2, 0.05, 0.0);
        let put = Vanilla::european_put(80.0, 1.0);
        let call = Vanilla::european_call(120.0, 1.0);
        let iv_put = implied_vol(&m, &put, heston_cf_price(&h, &put)).unwrap();
        let iv_call = implied_vol(&m, &call, heston_cf_price(&h, &call)).unwrap();
        assert!(
            iv_put > iv_call + 0.01,
            "no skew: put wing {iv_put} call wing {iv_call}"
        );
    }

    #[test]
    fn high_volatility_inverts() {
        let m = market();
        let opt = Vanilla::european_call(100.0, 0.5);
        let price = bs_price(&BlackScholes { sigma: 4.0, ..m }, &opt).price;
        let iv = implied_vol(&m, &opt, price).unwrap();
        assert!((iv - 4.0).abs() < 1e-6, "recovered {iv}");
    }
}
