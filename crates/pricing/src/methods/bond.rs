//! Interest-rate derivatives under Vasicek: zero-coupon bonds and
//! European options on them (Jamshidian's closed form), with a
//! Monte-Carlo cross-check pricer.

use crate::models::Vasicek;
use crate::options::OptionRight;
use exec::{stream_seed, ExecPolicy};
use numerics::norm_cdf;
use numerics::rng::NormalGen;
use numerics::stats::RunningStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::montecarlo::{McConfig, McResult};

/// Jamshidian's closed form for a European option (expiry `t_opt`) on a
/// zero-coupon bond maturing at `t_bond > t_opt`, strike `strike` (price
/// of the bond at expiry):
///
/// ```text
/// σ_P = σ B(t_opt, t_bond) √((1 − e^{-2κ t_opt})/(2κ))
/// h   = ln(P(0,t_bond)/(K·P(0,t_opt)))/σ_P + σ_P/2
/// C   = P(0,t_bond) N(h) − K P(0,t_opt) N(h − σ_P)
/// ```
pub fn bond_option_price(
    m: &Vasicek,
    right: OptionRight,
    strike: f64,
    t_opt: f64,
    t_bond: f64,
) -> f64 {
    assert!(t_bond > t_opt && t_opt > 0.0, "need t_bond > t_opt > 0");
    assert!(strike > 0.0, "strike must be positive");
    let p_bond = m.zcb_price(t_bond);
    let p_opt = m.zcb_price(t_opt);
    let sigma_p = m.sigma
        * m.b_factor(t_bond - t_opt)
        * ((1.0 - (-2.0 * m.kappa * t_opt).exp()) / (2.0 * m.kappa)).sqrt();
    let h = (p_bond / (strike * p_opt)).ln() / sigma_p + 0.5 * sigma_p;
    let call = p_bond * norm_cdf(h) - strike * p_opt * norm_cdf(h - sigma_p);
    match right {
        OptionRight::Call => call.max(0.0),
        // Parity: C − P = P(0,S) − K·P(0,T).
        OptionRight::Put => (call - p_bond + strike * p_opt).max(0.0),
    }
}

/// Monte-Carlo zero-coupon bond price `E[e^{-∫₀ᵀ r dt}]` with exact OU
/// transitions and trapezoidal rate integration — the cross-validation
/// pricer for the closed form, and the "rates" workload generator for the
/// farm.
pub fn mc_zcb_price(m: &Vasicek, maturity: f64, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    assert!(maturity > 0.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let dt = maturity / cfg.time_steps as f64;
    let mut stats = RunningStats::new();
    let mut zs = vec![0.0; cfg.time_steps];
    for _ in 0..cfg.paths {
        gen.fill(&mut rng, &mut zs);
        let d1 = discount_path(m, dt, &zs);
        if cfg.antithetic {
            for z in zs.iter_mut() {
                *z = -*z;
            }
            let d2 = discount_path(m, dt, &zs);
            stats.push(0.5 * (d1 + d2));
        } else {
            stats.push(d1);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`mc_zcb_price`]: per-chunk
/// [`stream_seed`]-derived OU streams, chunk-order merge — bit-identical
/// for any worker count in `pol`.
pub fn mc_zcb_price_exec(
    m: &Vasicek,
    maturity: f64,
    cfg: &McConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid MC config");
    assert!(maturity > 0.0);
    let dt = maturity / cfg.time_steps as f64;
    let parts = pol.run(cfg.paths, |c| {
        let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
        let mut gen = NormalGen::new();
        let mut zs = vec![0.0; cfg.time_steps];
        let mut stats = RunningStats::new();
        for _ in c.start..c.end {
            gen.fill(&mut rng, &mut zs);
            let d1 = discount_path(m, dt, &zs);
            if cfg.antithetic {
                for z in zs.iter_mut() {
                    *z = -*z;
                }
                let d2 = discount_path(m, dt, &zs);
                stats.push(0.5 * (d1 + d2));
            } else {
                stats.push(d1);
            }
        }
        stats
    });
    let mut stats = RunningStats::new();
    for p in &parts {
        stats.merge(p);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

#[inline]
fn discount_path(m: &Vasicek, dt: f64, zs: &[f64]) -> f64 {
    let mut r = m.r0;
    let mut integral = 0.0;
    for &z in zs {
        let r2 = m.step(r, dt, z);
        integral += 0.5 * (r + r2) * dt;
        r = r2;
    }
    (-integral).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Vasicek {
        Vasicek::standard()
    }

    #[test]
    fn bond_call_put_parity() {
        let m = model();
        let (t_opt, t_bond) = (1.0, 3.0);
        for strike in [0.80, 0.90, 0.95] {
            let c = bond_option_price(&m, OptionRight::Call, strike, t_opt, t_bond);
            let p = bond_option_price(&m, OptionRight::Put, strike, t_opt, t_bond);
            let parity = m.zcb_price(t_bond) - strike * m.zcb_price(t_opt);
            assert!((c - p - parity).abs() < 1e-12, "K={strike}");
        }
    }

    #[test]
    fn bond_call_bounds() {
        let m = model();
        let c = bond_option_price(&m, OptionRight::Call, 0.9, 1.0, 3.0);
        assert!(c >= (m.zcb_price(3.0) - 0.9 * m.zcb_price(1.0)).max(0.0) - 1e-14);
        assert!(c <= m.zcb_price(3.0));
        assert!(c > 0.0);
    }

    #[test]
    fn bond_option_increases_with_rate_vol() {
        let mut prev = 0.0;
        for sigma in [0.002, 0.005, 0.01, 0.02, 0.04] {
            let m = Vasicek::new(0.05, 0.8, 0.05, sigma);
            // ATM-forward strike so the option is pure optionality.
            let strike = m.zcb_price(3.0) / m.zcb_price(1.0);
            let c = bond_option_price(&m, OptionRight::Call, strike, 1.0, 3.0);
            assert!(c > prev, "σ={sigma}: {c} !> {prev}");
            prev = c;
        }
    }

    #[test]
    fn bond_option_matches_monte_carlo() {
        // MC: simulate r to t_opt (exact transition), value the bond at
        // expiry with the affine formula, discount along the path.
        let m = model();
        let (t_opt, t_bond, strike) = (1.0, 3.0, 0.90);
        let exact = bond_option_price(&m, OptionRight::Call, strike, t_opt, t_bond);
        let steps = 200;
        let dt = t_opt / steps as f64;
        let mut rng = StdRng::seed_from_u64(5);
        let mut gen = NormalGen::new();
        let mut stats = RunningStats::new();
        for _ in 0..40_000 {
            let mut r = m.r0;
            let mut integral = 0.0;
            for _ in 0..steps {
                let r2 = m.step(r, dt, gen.sample(&mut rng));
                integral += 0.5 * (r + r2) * dt;
                r = r2;
            }
            // P(t_opt, t_bond) with short rate r at expiry.
            let shifted = Vasicek { r0: r, ..m };
            let bond = shifted.zcb_price(t_bond - t_opt);
            stats.push((-integral).exp() * (bond - strike).max(0.0));
        }
        assert!(
            (stats.mean() - exact).abs() < 4.0 * stats.std_error() + 2e-5,
            "mc {} ± {} exact {exact}",
            stats.mean(),
            stats.std_error()
        );
    }

    #[test]
    fn mc_zcb_agrees_with_closed_form() {
        let m = model();
        let cfg = McConfig {
            paths: 30_000,
            time_steps: 50,
            antithetic: true,
            seed: 9,
        };
        for t in [0.5, 2.0, 5.0] {
            let mc = mc_zcb_price(&m, t, &cfg);
            let exact = m.zcb_price(t);
            assert!(
                (mc.price - exact).abs() < 4.0 * mc.std_error + 1e-4,
                "T={t}: mc {} ± {} exact {exact}",
                mc.price,
                mc.std_error
            );
        }
    }

    #[test]
    fn exec_zcb_bit_identical_across_worker_counts_and_valid() {
        let m = model();
        let cfg = McConfig {
            paths: 20_000,
            time_steps: 50,
            antithetic: true,
            seed: 9,
        };
        let p1 = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(1));
        let p2 = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(2));
        let p8 = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(8));
        assert_eq!(p1.price.to_bits(), p2.price.to_bits());
        assert_eq!(p1.price.to_bits(), p8.price.to_bits());
        assert_eq!(p1.std_error.to_bits(), p8.std_error.to_bits());
        let exact = m.zcb_price(2.0);
        assert!(
            (p1.price - exact).abs() < 4.0 * p1.std_error + 1e-4,
            "exec zcb {} exact {exact}",
            p1.price
        );
    }

    #[test]
    fn antithetic_helps_for_bonds_too() {
        let m = model();
        let base = McConfig {
            paths: 10_000,
            time_steps: 20,
            antithetic: false,
            seed: 3,
        };
        let plain = mc_zcb_price(&m, 2.0, &base);
        let anti = mc_zcb_price(
            &m,
            2.0,
            &McConfig {
                antithetic: true,
                ..base
            },
        );
        assert!(anti.std_error < plain.std_error);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_maturities() {
        bond_option_price(&model(), OptionRight::Call, 0.9, 3.0, 1.0);
    }
}
