//! Interest-rate derivatives under Vasicek: zero-coupon bonds and
//! European options on them (Jamshidian's closed form), with a
//! Monte-Carlo cross-check pricer.

use crate::lanes::F64s;
use crate::models::Vasicek;
use crate::options::OptionRight;
use exec::{stream_seed, Chunk, ExecPolicy, PathWorkspace};
use numerics::norm_cdf;
use numerics::rng::NormalGen;
use numerics::stats::RunningStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::montecarlo::{McConfig, McResult};

/// Jamshidian's closed form for a European option (expiry `t_opt`) on a
/// zero-coupon bond maturing at `t_bond > t_opt`, strike `strike` (price
/// of the bond at expiry):
///
/// ```text
/// σ_P = σ B(t_opt, t_bond) √((1 − e^{-2κ t_opt})/(2κ))
/// h   = ln(P(0,t_bond)/(K·P(0,t_opt)))/σ_P + σ_P/2
/// C   = P(0,t_bond) N(h) − K P(0,t_opt) N(h − σ_P)
/// ```
pub fn bond_option_price(
    m: &Vasicek,
    right: OptionRight,
    strike: f64,
    t_opt: f64,
    t_bond: f64,
) -> f64 {
    assert!(t_bond > t_opt && t_opt > 0.0, "need t_bond > t_opt > 0");
    assert!(strike > 0.0, "strike must be positive");
    let p_bond = m.zcb_price(t_bond);
    let p_opt = m.zcb_price(t_opt);
    let sigma_p = m.sigma
        * m.b_factor(t_bond - t_opt)
        * ((1.0 - (-2.0 * m.kappa * t_opt).exp()) / (2.0 * m.kappa)).sqrt();
    let h = (p_bond / (strike * p_opt)).ln() / sigma_p + 0.5 * sigma_p;
    let call = p_bond * norm_cdf(h) - strike * p_opt * norm_cdf(h - sigma_p);
    match right {
        OptionRight::Call => call.max(0.0),
        // Parity: C − P = P(0,S) − K·P(0,T).
        OptionRight::Put => (call - p_bond + strike * p_opt).max(0.0),
    }
}

/// Monte-Carlo zero-coupon bond price `E[e^{-∫₀ᵀ r dt}]` with exact OU
/// transitions and trapezoidal rate integration — the cross-validation
/// pricer for the closed form, and the "rates" workload generator for the
/// farm.
pub fn mc_zcb_price(m: &Vasicek, maturity: f64, cfg: &McConfig) -> McResult {
    cfg.validate().expect("invalid MC config");
    assert!(maturity > 0.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let dt = maturity / cfg.time_steps as f64;
    let mut stats = RunningStats::new();
    let mut zs = vec![0.0; cfg.time_steps];
    for _ in 0..cfg.paths {
        gen.fill(&mut rng, &mut zs);
        let d1 = discount_path(m, dt, &zs);
        if cfg.antithetic {
            for z in zs.iter_mut() {
                *z = -*z;
            }
            let d2 = discount_path(m, dt, &zs);
            stats.push(0.5 * (d1 + d2));
        } else {
            stats.push(d1);
        }
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Chunked-deterministic variant of [`mc_zcb_price`]: per-chunk
/// [`stream_seed`]-derived OU streams, chunk-order merge — bit-identical
/// for any worker count in `pol`.
pub fn mc_zcb_price_exec(m: &Vasicek, maturity: f64, cfg: &McConfig, pol: &ExecPolicy) -> McResult {
    cfg.validate().expect("invalid MC config");
    assert!(maturity > 0.0);
    let dt = maturity / cfg.time_steps as f64;
    let parts = match pol.lane_width() {
        4 => pol.run_ws(cfg.paths, |c, ws| zcb_chunk_lanes::<4>(m, cfg, dt, c, ws)),
        8 => pol.run_ws(cfg.paths, |c, ws| zcb_chunk_lanes::<8>(m, cfg, dt, c, ws)),
        _ => pol.run_ws(cfg.paths, |c, ws| zcb_chunk_scalar(m, cfg, dt, c, ws)),
    };
    let mut stats = RunningStats::new();
    for p in &parts {
        stats.merge(p);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Scalar (lanes = 1) chunk body; `zs` comes from the per-worker
/// [`PathWorkspace`] pool (zero-filled, numerically identical to the
/// old `vec!`).
fn zcb_chunk_scalar(
    m: &Vasicek,
    cfg: &McConfig,
    dt: f64,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut zs = ws.take(cfg.time_steps);
    let mut stats = RunningStats::new();
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for _ in c.start..c.end {
        gen.fill(&mut rng, &mut zs);
        let d1 = discount_path(m, dt, &zs);
        if cfg.antithetic {
            for z in zs.iter_mut() {
                *z = -*z;
            }
            let d2 = discount_path(m, dt, &zs);
            stats.push(0.5 * (d1 + d2));
        } else {
            stats.push(d1);
        }
    }
    // ALLOC-FREE-END
    ws.put(zs);
    stats
}

/// `L`-wide chunk body: `L` exact OU paths advance in lockstep with one
/// normal group per time step (`(group, step, lane)` draw order) and the
/// trapezoidal rate integral accumulates per lane with fused `mul_add`.
fn zcb_chunk_lanes<const L: usize>(
    m: &Vasicek,
    cfg: &McConfig,
    dt: f64,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> RunningStats {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut zs = ws.take(cfg.time_steps);
    let mut stats = RunningStats::new();
    // Exact OU transition constants: r' = θ + (r − θ)e^{-κΔ} + sd·z.
    let e = (-m.kappa * dt).exp();
    let sd = (m.sigma * m.sigma * (1.0 - e * e) / (2.0 * m.kappa)).sqrt();
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for _ in 0..groups {
        let mut r = F64s::<L>::splat(m.r0);
        let mut r2 = r;
        let mut integral = F64s::<L>::splat(0.0);
        let mut integral2 = integral;
        for _ in 0..cfg.time_steps {
            let z = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
            let rn = ou_step_lanes(m, e, sd, r, z);
            integral = (r + rn).mul_add(F64s::splat(0.5 * dt), integral);
            r = rn;
            if cfg.antithetic {
                let rn2 = ou_step_lanes(m, e, sd, r2, -z);
                integral2 = (r2 + rn2).mul_add(F64s::splat(0.5 * dt), integral2);
                r2 = rn2;
            }
        }
        let d1 = (-integral).exp();
        if cfg.antithetic {
            let d2 = (-integral2).exp();
            for l in 0..L {
                stats.push(0.5 * (d1.0[l] + d2.0[l]));
            }
        } else {
            for l in 0..L {
                stats.push(d1.0[l]);
            }
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for _ in c.start + groups * L..c.end {
        gen.fill(&mut rng, &mut zs);
        let d1 = discount_path(m, dt, &zs);
        if cfg.antithetic {
            for z in zs.iter_mut() {
                *z = -*z;
            }
            let d2 = discount_path(m, dt, &zs);
            stats.push(0.5 * (d1 + d2));
        } else {
            stats.push(d1);
        }
    }
    // ALLOC-FREE-END
    ws.put(zs);
    stats
}

/// One lane-wide exact OU step with precomputed decay `e` and noise
/// scale `sd`.
#[inline]
fn ou_step_lanes<const L: usize>(m: &Vasicek, e: f64, sd: f64, r: F64s<L>, z: F64s<L>) -> F64s<L> {
    let theta = F64s::<L>::splat(m.theta);
    (r - theta).mul_add(F64s::splat(e), z.mul_add(F64s::splat(sd), theta))
}

#[inline]
fn discount_path(m: &Vasicek, dt: f64, zs: &[f64]) -> f64 {
    let mut r = m.r0;
    let mut integral = 0.0;
    for &z in zs {
        let r2 = m.step(r, dt, z);
        integral += 0.5 * (r + r2) * dt;
        r = r2;
    }
    (-integral).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Vasicek {
        Vasicek::standard()
    }

    #[test]
    fn bond_call_put_parity() {
        let m = model();
        let (t_opt, t_bond) = (1.0, 3.0);
        for strike in [0.80, 0.90, 0.95] {
            let c = bond_option_price(&m, OptionRight::Call, strike, t_opt, t_bond);
            let p = bond_option_price(&m, OptionRight::Put, strike, t_opt, t_bond);
            let parity = m.zcb_price(t_bond) - strike * m.zcb_price(t_opt);
            assert!((c - p - parity).abs() < 1e-12, "K={strike}");
        }
    }

    #[test]
    fn bond_call_bounds() {
        let m = model();
        let c = bond_option_price(&m, OptionRight::Call, 0.9, 1.0, 3.0);
        assert!(c >= (m.zcb_price(3.0) - 0.9 * m.zcb_price(1.0)).max(0.0) - 1e-14);
        assert!(c <= m.zcb_price(3.0));
        assert!(c > 0.0);
    }

    #[test]
    fn bond_option_increases_with_rate_vol() {
        let mut prev = 0.0;
        for sigma in [0.002, 0.005, 0.01, 0.02, 0.04] {
            let m = Vasicek::new(0.05, 0.8, 0.05, sigma);
            // ATM-forward strike so the option is pure optionality.
            let strike = m.zcb_price(3.0) / m.zcb_price(1.0);
            let c = bond_option_price(&m, OptionRight::Call, strike, 1.0, 3.0);
            assert!(c > prev, "σ={sigma}: {c} !> {prev}");
            prev = c;
        }
    }

    #[test]
    fn bond_option_matches_monte_carlo() {
        // MC: simulate r to t_opt (exact transition), value the bond at
        // expiry with the affine formula, discount along the path.
        let m = model();
        let (t_opt, t_bond, strike) = (1.0, 3.0, 0.90);
        let exact = bond_option_price(&m, OptionRight::Call, strike, t_opt, t_bond);
        let steps = 200;
        let dt = t_opt / steps as f64;
        let mut rng = StdRng::seed_from_u64(5);
        let mut gen = NormalGen::new();
        let mut stats = RunningStats::new();
        for _ in 0..40_000 {
            let mut r = m.r0;
            let mut integral = 0.0;
            for _ in 0..steps {
                let r2 = m.step(r, dt, gen.sample(&mut rng));
                integral += 0.5 * (r + r2) * dt;
                r = r2;
            }
            // P(t_opt, t_bond) with short rate r at expiry.
            let shifted = Vasicek { r0: r, ..m };
            let bond = shifted.zcb_price(t_bond - t_opt);
            stats.push((-integral).exp() * (bond - strike).max(0.0));
        }
        assert!(
            (stats.mean() - exact).abs() < 4.0 * stats.std_error() + 2e-5,
            "mc {} ± {} exact {exact}",
            stats.mean(),
            stats.std_error()
        );
    }

    #[test]
    fn mc_zcb_agrees_with_closed_form() {
        let m = model();
        let cfg = McConfig {
            paths: 30_000,
            time_steps: 50,
            antithetic: true,
            seed: 9,
        };
        for t in [0.5, 2.0, 5.0] {
            let mc = mc_zcb_price(&m, t, &cfg);
            let exact = m.zcb_price(t);
            assert!(
                (mc.price - exact).abs() < 4.0 * mc.std_error + 1e-4,
                "T={t}: mc {} ± {} exact {exact}",
                mc.price,
                mc.std_error
            );
        }
    }

    #[test]
    fn exec_zcb_bit_identical_across_worker_counts_and_valid() {
        let m = model();
        let cfg = McConfig {
            paths: 20_000,
            time_steps: 50,
            antithetic: true,
            seed: 9,
        };
        let p1 = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(1));
        let p2 = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(2));
        let p8 = mc_zcb_price_exec(&m, 2.0, &cfg, &ExecPolicy::new(8));
        assert_eq!(p1.price.to_bits(), p2.price.to_bits());
        assert_eq!(p1.price.to_bits(), p8.price.to_bits());
        assert_eq!(p1.std_error.to_bits(), p8.std_error.to_bits());
        let exact = m.zcb_price(2.0);
        assert!(
            (p1.price - exact).abs() < 4.0 * p1.std_error + 1e-4,
            "exec zcb {} exact {exact}",
            p1.price
        );
    }

    #[test]
    fn antithetic_helps_for_bonds_too() {
        let m = model();
        let base = McConfig {
            paths: 10_000,
            time_steps: 20,
            antithetic: false,
            seed: 3,
        };
        let plain = mc_zcb_price(&m, 2.0, &base);
        let anti = mc_zcb_price(
            &m,
            2.0,
            &McConfig {
                antithetic: true,
                ..base
            },
        );
        assert!(anti.std_error < plain.std_error);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_maturities() {
        bond_option_price(&model(), OptionRight::Call, 0.9, 3.0, 1.0);
    }
}
