//! Finite-difference (PDE) pricing in the Black–Scholes model.
//!
//! §4.3 prices the down-and-out barrier calls and the American puts with
//! "partial differential equation techniques"; this module is that engine:
//! a θ-scheme (Crank–Nicolson with a Rannacher implicit start) on the
//! log-spot heat-like equation
//!
//! ```text
//! V_t + (r − q − σ²/2) V_x + (σ²/2) V_xx − r V = 0,   x = ln S
//! ```
//!
//! solved backward from the payoff. Knock-out barriers become Dirichlet
//! boundaries placed exactly on `ln H` (the paper notes the barrier clause
//! forces "a very thin time step, namely one time step every 2 days" —
//! the benchmark uses the same density). American exercise is handled with
//! projected SOR (PSOR) on the implicit system.

use crate::models::BlackScholes;
use crate::options::{Barrier, BarrierKind, Exercise, OptionRight, Vanilla};
use numerics::interp;
use numerics::linalg::{solve_tridiagonal, Tridiagonal};

/// Discretisation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdeConfig {
    /// Number of time steps between valuation date and maturity.
    pub time_steps: usize,
    /// Number of space intervals (grid has `space_steps + 1` nodes).
    pub space_steps: usize,
    /// Half-width of the log-space domain in units of `σ√T`.
    pub width_std_devs: f64,
    /// Replace the first two Crank–Nicolson steps by four implicit
    /// half-steps (Rannacher smoothing of the kinked payoff).
    pub rannacher: bool,
}

impl Default for PdeConfig {
    fn default() -> Self {
        PdeConfig {
            time_steps: 200,
            space_steps: 400,
            width_std_devs: 5.0,
            rannacher: true,
        }
    }
}

impl PdeConfig {
    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.time_steps < 1 || self.space_steps < 3 {
            return Err("PDE grid too small".into());
        }
        if !(self.width_std_devs > 0.0) {
            return Err("domain width must be positive".into());
        }
        Ok(())
    }
}

/// A Dirichlet boundary condition as a function of time-to-maturity.
type BcFn<'a> = Box<dyn Fn(f64) -> f64 + 'a>;

/// Price (and delta read off the grid) from a PDE solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdeSolution {
    /// Price estimate.
    pub price: f64,
    /// First derivative of the price w.r.t. spot.
    pub delta: f64,
}

/// Internal: backward θ-scheme over a fixed log-grid with Dirichlet
/// boundaries and an optional early-exercise obstacle.
struct Solver<'a> {
    model: &'a BlackScholes,
    xs: Vec<f64>,
    dx: f64,
    dt: f64,
    maturity: f64,
    /// payoff(S) at every node, the terminal condition and PSOR obstacle.
    payoff: Vec<f64>,
    /// Boundary values as functions of time-to-maturity τ.
    lower_bc: Box<dyn Fn(f64) -> f64 + 'a>,
    upper_bc: Box<dyn Fn(f64) -> f64 + 'a>,
}

impl<'a> Solver<'a> {
    /// One backward step with the given θ; `v` holds V(τ) and receives
    /// V(τ + dt). `obstacle` enables the American projection.
    fn step(&self, v: &mut [f64], tau_next: f64, theta: f64, dt: f64, obstacle: bool) {
        let n = self.xs.len();
        let m = self.model;
        let a = 0.5 * m.sigma * m.sigma; // diffusion
        let b = m.rate - m.dividend - 0.5 * m.sigma * m.sigma; // drift
        let r = m.rate;
        let dx = self.dx;

        // Spatial operator stencil on interior nodes:
        // L = a D_xx + b D_x - r I.
        let lo = a / (dx * dx) - b / (2.0 * dx);
        let mid = -2.0 * a / (dx * dx) - r;
        let hi = a / (dx * dx) + b / (2.0 * dx);

        // RHS: (I + (1-θ) dt L) v  on interior nodes.
        let mut rhs = vec![0.0; n - 2];
        for i in 1..n - 1 {
            let lv = lo * v[i - 1] + mid * v[i] + hi * v[i + 1];
            rhs[i - 1] = v[i] + (1.0 - theta) * dt * lv;
        }
        // New boundary values (Dirichlet).
        let vl = (self.lower_bc)(tau_next);
        let vu = (self.upper_bc)(tau_next);
        // Move the boundary terms of the implicit operator to the RHS.
        rhs[0] += theta * dt * lo * vl;
        rhs[n - 3] += theta * dt * hi * vu;

        let sub = vec![-theta * dt * lo; n - 3];
        let diag = vec![1.0 - theta * dt * mid; n - 2];
        let sup = vec![-theta * dt * hi; n - 3];

        if !obstacle {
            let tri = Tridiagonal::new(sub, diag, sup);
            let sol =
                solve_tridiagonal(&tri, &rhs).expect("θ-scheme system is diagonally dominant");
            v[0] = vl;
            v[n - 1] = vu;
            v[1..n - 1].copy_from_slice(&sol);
        } else {
            // PSOR: solve the linear complementarity problem
            // min(A v - rhs, v - payoff) = 0.
            let omega = 1.3;
            let tol = 1e-9;
            let max_iter = 2000;
            let dlo = -theta * dt * lo;
            let dmid = 1.0 - theta * dt * mid;
            let dhi = -theta * dt * hi;
            // Warm start from the current values projected on the payoff.
            let mut w: Vec<f64> = (1..n - 1).map(|i| v[i].max(self.payoff[i])).collect();
            for _ in 0..max_iter {
                let mut err: f64 = 0.0;
                for i in 0..n - 2 {
                    let left = if i == 0 { vl } else { w[i - 1] };
                    let right = if i == n - 3 { vu } else { w[i + 1] };
                    let gs = (rhs[i] - dlo * left - dhi * right) / dmid;
                    let cand = w[i] + omega * (gs - w[i]);
                    let proj = cand.max(self.payoff[i + 1]);
                    err = err.max((proj - w[i]).abs());
                    w[i] = proj;
                }
                if err < tol {
                    break;
                }
            }
            v[0] = vl.max(self.payoff[0]);
            v[n - 1] = vu.max(self.payoff[n - 1]);
            v[1..n - 1].copy_from_slice(&w);
        }
    }

    /// Run the full backward induction and return the value surface at
    /// τ = T (valuation date).
    fn solve(&self, cfg: &PdeConfig, obstacle: bool) -> Vec<f64> {
        let mut v = self.payoff.clone();
        let mut tau = 0.0;
        let mut steps_left = cfg.time_steps;
        if cfg.rannacher && cfg.time_steps > 2 {
            // Four implicit half-steps over the first two step intervals.
            for _ in 0..4 {
                let dt = self.dt / 2.0;
                tau += dt;
                self.step(&mut v, tau, 1.0, dt, obstacle);
            }
            steps_left -= 2;
        }
        for _ in 0..steps_left {
            tau += self.dt;
            self.step(&mut v, tau, 0.5, self.dt, obstacle);
        }
        debug_assert!((tau - self.maturity).abs() < 1e-9 * self.maturity.max(1.0));
        v
    }

    /// Read price and delta at the spot.
    fn read(&self, v: &[f64]) -> PdeSolution {
        let x0 = self.model.spot.ln();
        let price = interp::linear(&self.xs, v, x0);
        // dV/dS = (dV/dx) / S.
        let dvdx = interp::derivative(&self.xs, v, x0);
        PdeSolution {
            price,
            delta: dvdx / self.model.spot,
        }
    }
}

fn uniform_grid(x_min: f64, x_max: f64, n: usize) -> (Vec<f64>, f64) {
    let dx = (x_max - x_min) / n as f64;
    ((0..=n).map(|i| x_min + i as f64 * dx).collect(), dx)
}

/// Price a European or American vanilla option by finite differences.
pub fn pde_vanilla(m: &BlackScholes, option: &Vanilla, cfg: &PdeConfig) -> PdeSolution {
    cfg.validate().expect("invalid PDE config");
    option.validate().expect("invalid option");
    let t = option.maturity;
    let k = option.strike;
    let half_width =
        cfg.width_std_devs * m.sigma * t.sqrt() + (m.rate - m.dividend).abs() * t + 1e-9;
    let center = m.spot.ln().min(k.ln());
    let center_hi = m.spot.ln().max(k.ln());
    let (xs, dx) = uniform_grid(center - half_width, center_hi + half_width, cfg.space_steps);
    let payoff: Vec<f64> = xs.iter().map(|&x| option.payoff(x.exp())).collect();

    let s_min = xs[0].exp();
    let s_max = xs[xs.len() - 1].exp();
    let (lower_bc, upper_bc): (BcFn<'_>, BcFn<'_>) = match (option.right, option.exercise) {
        (OptionRight::Call, _) => (
            Box::new(move |_tau: f64| 0.0),
            Box::new(move |tau: f64| s_max * (-m.dividend * tau).exp() - k * (-m.rate * tau).exp()),
        ),
        (OptionRight::Put, Exercise::European) => (
            Box::new(move |tau: f64| k * (-m.rate * tau).exp() - s_min * (-m.dividend * tau).exp()),
            Box::new(move |_tau: f64| 0.0),
        ),
        (OptionRight::Put, Exercise::American) => (
            // Deep in the money an American put is exercised: V = K - S.
            Box::new(move |_tau: f64| k - s_min),
            Box::new(move |_tau: f64| 0.0),
        ),
    };

    let solver = Solver {
        model: m,
        xs,
        dx,
        dt: t / cfg.time_steps as f64,
        maturity: t,
        payoff,
        lower_bc,
        upper_bc,
    };
    let obstacle = option.exercise == Exercise::American;
    let v = solver.solve(cfg, obstacle);
    solver.read(&v)
}

/// Price a continuously monitored knock-out barrier option by finite
/// differences, with the knocked-out boundary placed exactly on `ln H`.
pub fn pde_barrier(m: &BlackScholes, option: &Barrier, cfg: &PdeConfig) -> PdeSolution {
    cfg.validate().expect("invalid PDE config");
    option.validate().expect("invalid option");
    if option.knocked_out(m.spot) {
        return PdeSolution {
            price: option.rebate,
            delta: 0.0,
        };
    }
    let t = option.maturity;
    let k = option.strike;
    let rebate = option.rebate;
    let half_width =
        cfg.width_std_devs * m.sigma * t.sqrt() + (m.rate - m.dividend).abs() * t + 1e-9;

    let (x_min, x_max) = match option.kind {
        BarrierKind::DownOut => (option.barrier.ln(), m.spot.ln().max(k.ln()) + half_width),
        BarrierKind::UpOut => (m.spot.ln().min(k.ln()) - half_width, option.barrier.ln()),
    };
    let (xs, dx) = uniform_grid(x_min, x_max, cfg.space_steps);
    let payoff: Vec<f64> = xs
        .iter()
        .map(|&x| {
            let s = x.exp();
            if option.knocked_out(s) {
                rebate
            } else {
                option.payoff(s)
            }
        })
        .collect();

    let s_min = xs[0].exp();
    let s_max = xs[xs.len() - 1].exp();
    let (lower_bc, upper_bc): (BcFn<'_>, BcFn<'_>) = match option.kind {
        BarrierKind::DownOut => (
            Box::new(move |_tau: f64| rebate),
            Box::new(move |tau: f64| match option.right {
                // Far above strike and barrier the option behaves like a
                // forward.
                OptionRight::Call => s_max * (-m.dividend * tau).exp() - k * (-m.rate * tau).exp(),
                OptionRight::Put => 0.0,
            }),
        ),
        BarrierKind::UpOut => (
            Box::new(move |tau: f64| match option.right {
                OptionRight::Put => k * (-m.rate * tau).exp() - s_min * (-m.dividend * tau).exp(),
                OptionRight::Call => 0.0,
            }),
            Box::new(move |_tau: f64| rebate),
        ),
    };

    let solver = Solver {
        model: m,
        xs,
        dx,
        dt: t / cfg.time_steps as f64,
        maturity: t,
        payoff,
        lower_bc,
        upper_bc,
    };
    let v = solver.solve(cfg, false);
    solver.read(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::closed_form::{bs_price, down_out_call_price};

    fn model() -> BlackScholes {
        BlackScholes::new(100.0, 0.2, 0.05, 0.0)
    }

    fn cfg() -> PdeConfig {
        PdeConfig::default()
    }

    #[test]
    fn european_call_matches_closed_form() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let pde = pde_vanilla(&m, &opt, &cfg());
        let exact = bs_price(&m, &opt);
        assert!(
            (pde.price - exact.price).abs() < 0.01,
            "pde {} exact {}",
            pde.price,
            exact.price
        );
        assert!((pde.delta - exact.delta).abs() < 0.005);
    }

    #[test]
    fn european_put_matches_closed_form() {
        let m = model();
        for k in [80.0, 100.0, 120.0] {
            let opt = Vanilla::european_put(k, 0.5);
            let pde = pde_vanilla(&m, &opt, &cfg());
            let exact = bs_price(&m, &opt).price;
            assert!(
                (pde.price - exact).abs() < 0.01,
                "k={k}: pde {} exact {exact}",
                pde.price
            );
        }
    }

    #[test]
    fn convergence_under_refinement() {
        let m = model();
        let opt = Vanilla::european_call(105.0, 1.0);
        let exact = bs_price(&m, &opt).price;
        let coarse = pde_vanilla(
            &m,
            &opt,
            &PdeConfig {
                time_steps: 25,
                space_steps: 50,
                ..cfg()
            },
        )
        .price;
        let fine = pde_vanilla(
            &m,
            &opt,
            &PdeConfig {
                time_steps: 400,
                space_steps: 800,
                ..cfg()
            },
        )
        .price;
        assert!((fine - exact).abs() < (coarse - exact).abs());
        assert!((fine - exact).abs() < 2e-3);
    }

    #[test]
    fn american_put_reference_value() {
        // S=K=100, r=0.05, σ=0.2, T=1: American put ≈ 6.0903 (e.g.
        // binomial with 10⁴ steps / PSOR benchmarks quote 6.086–6.093).
        let m = model();
        let opt = Vanilla::american_put(100.0, 1.0);
        let pde = pde_vanilla(
            &m,
            &opt,
            &PdeConfig {
                time_steps: 400,
                space_steps: 800,
                ..cfg()
            },
        );
        assert!(
            (pde.price - 6.090).abs() < 0.02,
            "american put {}",
            pde.price
        );
    }

    #[test]
    fn american_put_dominates_european() {
        let m = model();
        for k in [80.0, 100.0, 120.0] {
            let eur = bs_price(&m, &Vanilla::european_put(k, 1.0)).price;
            let amer = pde_vanilla(&m, &Vanilla::american_put(k, 1.0), &cfg()).price;
            assert!(
                amer >= eur - 5e-3,
                "k={k}: american {amer} < european {eur}"
            );
        }
    }

    #[test]
    fn american_put_at_least_intrinsic() {
        let m = BlackScholes::new(70.0, 0.2, 0.05, 0.0);
        let amer = pde_vanilla(&m, &Vanilla::american_put(100.0, 1.0), &cfg()).price;
        // Grid interpolation leaves a sub-millicent wiggle below the
        // obstacle; intrinsic must hold up to that discretisation error.
        assert!(amer >= 30.0 - 1e-3, "price {amer} below intrinsic 30");
    }

    #[test]
    fn barrier_matches_closed_form() {
        let m = model();
        let opt = Barrier::down_out_call(100.0, 85.0, 1.0);
        let exact = down_out_call_price(&m, &opt);
        let pde = pde_barrier(
            &m,
            &opt,
            &PdeConfig {
                time_steps: 400,
                space_steps: 800,
                ..cfg()
            },
        );
        assert!(
            (pde.price - exact).abs() < 0.02,
            "pde {} exact {exact}",
            pde.price
        );
    }

    #[test]
    fn barrier_knocked_out_at_start() {
        let m = BlackScholes::new(80.0, 0.2, 0.05, 0.0);
        let opt = Barrier::down_out_call(100.0, 85.0, 1.0);
        let pde = pde_barrier(&m, &opt, &cfg());
        assert_eq!(pde.price, 0.0);
    }

    #[test]
    fn barrier_below_vanilla_and_positive() {
        let m = model();
        let vanilla = bs_price(&m, &Vanilla::european_call(100.0, 1.0)).price;
        let pde = pde_barrier(&m, &Barrier::down_out_call(100.0, 90.0, 1.0), &cfg());
        assert!(pde.price > 0.0 && pde.price < vanilla);
        // Delta of a down-and-out call near the barrier exceeds vanilla
        // delta (value must fall to zero at H).
        assert!(pde.delta > 0.0);
    }

    #[test]
    fn up_out_put_priced() {
        let m = model();
        let opt = Barrier {
            right: OptionRight::Put,
            kind: BarrierKind::UpOut,
            strike: 100.0,
            barrier: 130.0,
            maturity: 1.0,
            rebate: 0.0,
        };
        let p = pde_barrier(&m, &opt, &cfg());
        let vanilla = bs_price(&m, &Vanilla::european_put(100.0, 1.0)).price;
        assert!(p.price > 0.0 && p.price < vanilla);
    }

    #[test]
    fn thin_time_steps_like_paper_barrier_spec() {
        // §4.3: barrier PDE uses one time step every 2 days → T=1 means
        // ~180 steps. Check it runs and stays accurate.
        let m = model();
        let opt = Barrier::down_out_call(100.0, 85.0, 1.0);
        let exact = down_out_call_price(&m, &opt);
        let pde = pde_barrier(
            &m,
            &opt,
            &PdeConfig {
                time_steps: 180,
                space_steps: 400,
                ..cfg()
            },
        );
        assert!((pde.price - exact).abs() < 0.05);
    }
}
