//! Numerical pricing methods: closed form, PDE (finite differences),
//! binomial trees, Monte-Carlo, and Longstaff–Schwartz American
//! Monte-Carlo — the method families Premia ships (§2).

pub mod bond;
pub mod closed_form;
pub mod heston_cf;
pub mod implied;
pub mod lsm;
pub mod montecarlo;
pub mod pde;
pub mod tree;
