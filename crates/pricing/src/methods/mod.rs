//! Numerical pricing methods: closed form, PDE (finite differences),
//! binomial trees, Monte-Carlo, Longstaff–Schwartz American
//! Monte-Carlo — the method families Premia ships (§2) — plus the
//! heterogeneous workload classes of the staged benchmark: BSDE Picard
//! sweeps, multi-dimensional Bermudan max-calls, and portfolio-level
//! XVA aggregation.

pub mod bermudan;
pub mod bond;
pub mod bsde;
pub mod closed_form;
pub mod heston_cf;
pub mod implied;
pub mod lsm;
pub mod montecarlo;
pub mod pde;
pub mod tree;
pub mod xva;
