//! Multi-dimensional Bermudan max-calls via LSM (Doan et al. 2008).
//!
//! Doan, Gaikwad, Hall, Bossy et al. benchmark multi-dimensional
//! Bermudan/American Monte-Carlo on a grid: the path-generation stage
//! farms perfectly while the regression stage is a cross-path reduction.
//! The product here is the classic max-call on `dim` correlated
//! Black–Scholes assets — the payoff `(max_i S_i − K)⁺` keeps every
//! coordinate relevant (unlike the basket average), which is what makes
//! the high-dimensional regression interesting.
//!
//! The kernel deliberately adds **no new hot loop**: path generation
//! reuses [`super::lsm`]'s chunked/laned basket bodies (the state
//! simulation is payoff-agnostic), so the `*_exec` variant inherits the
//! bit-identical-for-any-worker-count property and the ALLOC-FREE gates
//! of the existing LSM path.

use crate::models::MultiBlackScholes;
use crate::options::{Exercise, MaxCall};
use exec::ExecPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::lsm::{lsm_backward, lsm_basket_chunk_lanes, lsm_basket_chunk_scalar, scatter_blocks};
use super::lsm::LsmConfig;
use super::montecarlo::McResult;

fn assert_bermudan(option: &MaxCall) {
    option.validate().expect("invalid option");
    assert!(
        option.exercise == Exercise::American,
        "LSM prices Bermudan/American claims"
    );
}

/// Bermudan max-call under multi-asset Black–Scholes via LSM,
/// sequential reference implementation.
pub fn lsm_max_call(m: &MultiBlackScholes, option: &MaxCall, cfg: &LsmConfig) -> McResult {
    cfg.validate().expect("invalid LSM config");
    assert_bermudan(option);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut corr = m.correlator();
    let dt = option.maturity / cfg.exercise_dates as f64;
    let mut states = vec![vec![vec![0.0; m.dim]; cfg.paths]; cfg.exercise_dates];
    let mut z = vec![0.0; m.dim];
    for p in 0..cfg.paths {
        let mut s = vec![m.spot; m.dim];
        for d in 0..cfg.exercise_dates {
            corr.sample(&mut rng, &mut z);
            m.step(&mut s, dt, &z);
            states[d][p].copy_from_slice(&s);
        }
    }
    let k = option.strike;
    lsm_backward(
        &states,
        &move |st: &[f64]| {
            let best = st.iter().fold(f64::NEG_INFINITY, |a, &s| a.max(s));
            (best - k).max(0.0)
        },
        dt,
        m.rate,
        m.spot,
        cfg,
    )
}

/// Chunked-deterministic variant of [`lsm_max_call`]: path generation
/// runs through the *same* chunk bodies as [`super::lsm::lsm_basket_exec`]
/// (per-chunk correlated streams, chunk-order scatter), so the price is
/// bit-identical for any worker count in `pol`.
pub fn lsm_max_call_exec(
    m: &MultiBlackScholes,
    option: &MaxCall,
    cfg: &LsmConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid LSM config");
    assert_bermudan(option);
    let dt = option.maturity / cfg.exercise_dates as f64;
    let dates = cfg.exercise_dates;
    let blocks = match pol.lane_width() {
        4 => pol.run_ws(cfg.paths, |c, ws| {
            lsm_basket_chunk_lanes::<4>(m, cfg, dt, dates, c, ws)
        }),
        8 => pol.run_ws(cfg.paths, |c, ws| {
            lsm_basket_chunk_lanes::<8>(m, cfg, dt, dates, c, ws)
        }),
        _ => pol.run_ws(cfg.paths, |c, ws| {
            lsm_basket_chunk_scalar(m, cfg, dt, dates, c, ws)
        }),
    };
    let states = scatter_blocks(&blocks, cfg.paths, dates, m.dim);
    let k = option.strike;
    lsm_backward(
        &states,
        &move |st: &[f64]| {
            let best = st.iter().fold(f64::NEG_INFINITY, |a, &s| a.max(s));
            (best - k).max(0.0)
        },
        dt,
        m.rate,
        m.spot,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(dim: usize) -> MultiBlackScholes {
        MultiBlackScholes::new(dim, 100.0, 0.2, 0.3, 0.05, 0.1)
    }

    fn quick() -> LsmConfig {
        LsmConfig {
            paths: 2000,
            exercise_dates: 9,
            basis_degree: 2,
            ..LsmConfig::default()
        }
    }

    #[test]
    fn exec_price_is_bit_identical_across_worker_counts() {
        let m = model(3);
        let o = MaxCall::bermudan(100.0, 1.0);
        let cfg = quick();
        let base = lsm_max_call_exec(&m, &o, &cfg, &ExecPolicy::new(1));
        for workers in [2, 8] {
            let r = lsm_max_call_exec(&m, &o, &cfg, &ExecPolicy::new(workers));
            assert_eq!(r.price.to_bits(), base.price.to_bits());
        }
    }

    #[test]
    fn bermudan_max_call_dominates_european_lower_bound() {
        // With a dividend yield early exercise has value; at the very
        // least the Bermudan price must beat the discounted intrinsic of
        // holding to maturity on any single asset (European max-call is
        // harder to get in closed form; the LSM price must also beat 0).
        let m = model(2);
        let o = MaxCall::bermudan(100.0, 1.0);
        let r = lsm_max_call_exec(&m, &o, &quick(), &ExecPolicy::new(4));
        assert!(r.price > 0.0, "max-call worth something: {}", r.price);
        assert!(r.price < m.spot * 2.0, "sanity upper bound: {}", r.price);
    }

    #[test]
    fn more_assets_are_worth_more() {
        // The max over more (exchangeable) assets stochastically
        // dominates the max over fewer.
        let cfg = quick();
        let o = MaxCall::bermudan(100.0, 1.0);
        let p2 = lsm_max_call_exec(&model(2), &o, &cfg, &ExecPolicy::new(4)).price;
        let p5 = lsm_max_call_exec(&model(5), &o, &cfg, &ExecPolicy::new(4)).price;
        assert!(p5 > p2, "5-asset max-call {p5} should exceed 2-asset {p2}");
    }
}
