//! Cox–Ross–Rubinstein binomial trees.
//!
//! Premia "contains finite difference algorithms, **tree methods** and
//! Monte Carlo methods" (§2); the CRR tree is the canonical member of the
//! tree family and doubles as an independent cross-check of the PDE and
//! closed-form prices in the regression suite.

use crate::models::BlackScholes;
use crate::options::{Exercise, Vanilla};

/// Tree discretisation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Number of tree steps.
    pub steps: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { steps: 500 }
    }
}

/// Price (and first-step delta) from a binomial tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeSolution {
    /// Price estimate.
    pub price: f64,
    /// First derivative of the price w.r.t. spot.
    pub delta: f64,
}

/// Price a vanilla (European or American) option on a CRR tree:
/// `u = e^{σ√Δt}`, `d = 1/u`, risk-neutral probability
/// `p = (e^{(r−q)Δt} − d)/(u − d)`.
pub fn tree_vanilla(m: &BlackScholes, option: &Vanilla, cfg: &TreeConfig) -> TreeSolution {
    assert!(cfg.steps >= 2, "tree needs at least 2 steps");
    option.validate().expect("invalid option");
    let n = cfg.steps;
    let t = option.maturity;
    let dt = t / n as f64;
    let u = (m.sigma * dt.sqrt()).exp();
    let d = 1.0 / u;
    let growth = ((m.rate - m.dividend) * dt).exp();
    let p = (growth - d) / (u - d);
    assert!(
        (0.0..=1.0).contains(&p),
        "risk-neutral probability {p} outside [0,1]: increase tree steps"
    );
    let disc = (-m.rate * dt).exp();

    // Terminal layer: node j has price S u^j d^{n-j}.
    let mut values: Vec<f64> = (0..=n)
        .map(|j| {
            let s = m.spot * u.powi(j as i32) * d.powi((n - j) as i32);
            option.payoff(s)
        })
        .collect();

    let american = option.exercise == Exercise::American;
    // For the delta we keep the two nodes of the first step.
    let mut first_step: [f64; 2] = [0.0, 0.0];
    for step in (0..n).rev() {
        for j in 0..=step {
            let cont = disc * (p * values[j + 1] + (1.0 - p) * values[j]);
            values[j] = if american {
                let s = m.spot * u.powi(j as i32) * d.powi((step - j) as i32);
                cont.max(option.payoff(s))
            } else {
                cont
            };
        }
        if step == 1 {
            first_step = [values[0], values[1]];
        }
    }
    let s_up = m.spot * u;
    let s_dn = m.spot * d;
    TreeSolution {
        price: values[0],
        delta: (first_step[1] - first_step[0]) / (s_up - s_dn),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::closed_form::bs_price;
    use crate::methods::pde::{pde_vanilla, PdeConfig};

    fn model() -> BlackScholes {
        BlackScholes::new(100.0, 0.2, 0.05, 0.0)
    }

    #[test]
    fn european_call_converges_to_black_scholes() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let exact = bs_price(&m, &opt);
        let tree = tree_vanilla(&m, &opt, &TreeConfig { steps: 2000 });
        assert!(
            (tree.price - exact.price).abs() < 5e-3,
            "tree {} exact {}",
            tree.price,
            exact.price
        );
        assert!((tree.delta - exact.delta).abs() < 5e-3);
    }

    #[test]
    fn european_put_converges() {
        let m = model();
        let opt = Vanilla::european_put(110.0, 0.5);
        let exact = bs_price(&m, &opt).price;
        let tree = tree_vanilla(&m, &opt, &TreeConfig { steps: 2000 }).price;
        assert!((tree - exact).abs() < 5e-3);
    }

    #[test]
    fn richardson_like_error_decay() {
        let m = model();
        let opt = Vanilla::european_call(95.0, 1.0);
        let exact = bs_price(&m, &opt).price;
        let e100 = (tree_vanilla(&m, &opt, &TreeConfig { steps: 100 }).price - exact).abs();
        let e1600 = (tree_vanilla(&m, &opt, &TreeConfig { steps: 1600 }).price - exact).abs();
        assert!(e1600 < e100, "no convergence: {e100} -> {e1600}");
    }

    #[test]
    fn american_put_agrees_with_pde() {
        let m = model();
        let opt = Vanilla::american_put(100.0, 1.0);
        let tree = tree_vanilla(&m, &opt, &TreeConfig { steps: 2000 }).price;
        let pde = pde_vanilla(
            &m,
            &opt,
            &PdeConfig {
                time_steps: 400,
                space_steps: 800,
                ..PdeConfig::default()
            },
        )
        .price;
        assert!((tree - pde).abs() < 0.02, "tree {tree} pde {pde}");
        assert!((tree - 6.090).abs() < 0.02, "reference value: {tree}");
    }

    #[test]
    fn american_call_no_dividend_equals_european() {
        // Without dividends early exercise of a call is never optimal.
        let m = model();
        let eur = Vanilla::european_call(100.0, 1.0);
        let amer = Vanilla {
            exercise: Exercise::American,
            ..eur
        };
        let te = tree_vanilla(&m, &eur, &TreeConfig { steps: 800 }).price;
        let ta = tree_vanilla(&m, &amer, &TreeConfig { steps: 800 }).price;
        assert!((te - ta).abs() < 1e-9);
    }

    #[test]
    fn american_dominates_european_put() {
        let m = model();
        let e = tree_vanilla(
            &m,
            &Vanilla::european_put(100.0, 1.0),
            &TreeConfig { steps: 500 },
        );
        let a = tree_vanilla(
            &m,
            &Vanilla::american_put(100.0, 1.0),
            &TreeConfig { steps: 500 },
        );
        assert!(a.price > e.price);
        // Put deltas negative.
        assert!(a.delta < 0.0 && e.delta < 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_tree() {
        tree_vanilla(
            &model(),
            &Vanilla::european_call(100.0, 1.0),
            &TreeConfig { steps: 1 },
        );
    }
}
