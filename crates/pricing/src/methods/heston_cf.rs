//! Semi-analytic European pricing in the Heston model.
//!
//! Premia carries closed/semi-closed formulas for the stochastic
//! volatility models; we implement the standard characteristic-function
//! representation with the Albrecher et al. ("little Heston trap")
//! branch-stable formulation:
//!
//! ```text
//! C = S e^{-qT} P₁ − K e^{-rT} P₂
//! Pⱼ = 1/2 + (1/π) ∫₀^∞ Re[ e^{-iu ln K} φⱼ(u) / (iu) ] du
//! ```
//!
//! where `φⱼ` are the two risk-neutral characteristic functions of
//! `ln S_T`. The integral is evaluated with composite Gauss–Legendre
//! panels on a truncated domain, which is plenty for benchmark-grade
//! accuracy (~1e-6 for conventional parameter ranges).

use crate::models::Heston;
use crate::options::{OptionRight, Vanilla};

/// Minimal complex arithmetic — enough for the Heston integrand, kept
/// local so the crate stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq)]
struct C64 {
    re: f64,
    im: f64,
}

impl C64 {
    const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    fn i_times(u: f64) -> C64 {
        C64 { re: 0.0, im: u }
    }

    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn scale(self, k: f64) -> C64 {
        C64::new(self.re * k, self.im * k)
    }

    fn div(self, o: C64) -> C64 {
        let d = o.re * o.re + o.im * o.im;
        C64::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }

    fn sqrt(self) -> C64 {
        let r = (self.re * self.re + self.im * self.im).sqrt();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im = ((r - self.re) / 2.0).max(0.0).sqrt();
        C64::new(re, if self.im < 0.0 { -im } else { im })
    }

    fn exp(self) -> C64 {
        let e = self.re.exp();
        C64::new(e * self.im.cos(), e * self.im.sin())
    }

    fn ln(self) -> C64 {
        let r = (self.re * self.re + self.im * self.im).sqrt();
        C64::new(r.ln(), self.im.atan2(self.re))
    }
}

/// Characteristic function φⱼ(u) of ln S_T under the two Heston measures
/// (j = 1: share measure, j = 2: risk-neutral), little-trap formulation.
fn heston_cf(m: &Heston, t: f64, u: f64, j: u8) -> C64 {
    let (uj, bj) = match j {
        1 => (0.5, m.kappa - m.rho * m.xi),
        _ => (-0.5, m.kappa),
    };
    let a = m.kappa * m.theta;
    let iu = C64::i_times(u);
    let rho_xi_iu = C64::i_times(m.rho * m.xi * u);
    // d = sqrt((ρξiu − b)² − ξ²(2 uⱼ iu − u²))
    let b_minus = C64::new(bj, 0.0).sub(rho_xi_iu);
    let inner = b_minus
        .mul(b_minus)
        .sub(C64::new(-u * u, 2.0 * uj * u).scale(m.xi * m.xi));
    let d = inner.sqrt();
    // Little trap: g2 = (b − ρξiu − d)/(b − ρξiu + d), use exp(−dT).
    let g2 = b_minus.sub(d).div(b_minus.add(d));
    let e_dt = d.scale(-t).exp();
    let one_minus_ge = C64::ONE.sub(g2.mul(e_dt));
    let one_minus_g = C64::ONE.sub(g2);
    // C = (r−q) iu T + a/ξ² [ (b − ρξiu − d) T − 2 ln((1−g e^{−dT})/(1−g)) ]
    let log_term = one_minus_ge.div(one_minus_g).ln();
    let big_c = iu.scale((m.rate - m.dividend) * t).add(
        b_minus
            .sub(d)
            .scale(t)
            .sub(log_term.scale(2.0))
            .scale(a / (m.xi * m.xi)),
    );
    // D = (b − ρξiu − d)/ξ² · (1 − e^{−dT})/(1 − g e^{−dT})
    let big_d = b_minus
        .sub(d)
        .scale(1.0 / (m.xi * m.xi))
        .mul(C64::ONE.sub(e_dt))
        .div(one_minus_ge);
    // φ = exp(C + D v₀ + iu ln S₀)
    big_c
        .add(big_d.scale(m.v0))
        .add(iu.scale(m.spot.ln()))
        .exp()
}

/// 16-point Gauss–Legendre nodes/weights on [-1, 1].
const GL_X: [f64; 8] = [
    0.0950125098376374,
    0.2816035507792589,
    0.4580167776572274,
    0.6178762444026438,
    0.755404408355003,
    0.8656312023878318,
    0.9445750230732326,
    0.9894009349916499,
];
const GL_W: [f64; 8] = [
    0.1894506104550685,
    0.1826034150449236,
    0.1691565193950025,
    0.1495959888165767,
    0.1246289712555339,
    0.0951585116824928,
    0.0622535239386479,
    0.0271524594117541,
];

/// ∫_a^b f(u) du with one 16-point Gauss–Legendre panel.
fn gl_panel(a: f64, b: f64, f: &dyn Fn(f64) -> f64) -> f64 {
    let c = 0.5 * (a + b);
    let h = 0.5 * (b - a);
    let mut acc = 0.0;
    for k in 0..8 {
        acc += GL_W[k] * (f(c + h * GL_X[k]) + f(c - h * GL_X[k]));
    }
    acc * h
}

/// The in-the-money probability Pⱼ.
fn heston_prob(m: &Heston, strike: f64, t: f64, j: u8) -> f64 {
    let lnk = strike.ln();
    let integrand = |u: f64| -> f64 {
        if u < 1e-10 {
            return 0.0;
        }
        let phi = heston_cf(m, t, u, j);
        let num = C64::new((u * lnk).cos(), -(u * lnk).sin()).mul(phi);
        // Re[num / (iu)] = Im[num] / u
        num.im / u
    };
    // The integrand decays like e^{-cu}; 100 is far past machine noise
    // for benchmark parameters. 64 panels of width ~1.5 resolve the
    // oscillation comfortably.
    let upper = 100.0;
    let panels = 64;
    let mut total = 0.0;
    for p in 0..panels {
        let a = upper * p as f64 / panels as f64;
        let b = upper * (p + 1) as f64 / panels as f64;
        total += gl_panel(a, b, &integrand);
    }
    0.5 + total / std::f64::consts::PI
}

/// Semi-analytic price of a European vanilla option under Heston.
pub fn heston_cf_price(m: &Heston, option: &Vanilla) -> f64 {
    option.validate().expect("invalid option");
    assert!(
        option.exercise == crate::options::Exercise::European,
        "characteristic-function pricing is European"
    );
    let t = option.maturity;
    let k = option.strike;
    let p1 = heston_prob(m, k, t, 1).clamp(0.0, 1.0);
    let p2 = heston_prob(m, k, t, 2).clamp(0.0, 1.0);
    let call = m.spot * (-m.dividend * t).exp() * p1 - k * (-m.rate * t).exp() * p2;
    match option.right {
        OptionRight::Call => call.max(0.0),
        // Put–call parity.
        OptionRight::Put => {
            (call - m.spot * (-m.dividend * t).exp() + k * (-m.rate * t).exp()).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::closed_form::bs_price;
    use crate::methods::montecarlo::{mc_heston, McConfig};
    use crate::models::BlackScholes;

    #[test]
    fn degenerates_to_black_scholes_for_small_vol_of_vol() {
        // ξ→0, v ≡ θ = v₀: Heston collapses to BS with σ = √v₀. (ξ much
        // below 0.01 makes the C-term κθ/ξ² ill-conditioned — a known
        // limitation of the closed-form representation, so the test uses
        // a small-but-safe ξ and a correspondingly relaxed tolerance.)
        let m = Heston::new(100.0, 0.04, 5.0, 0.04, 0.01, 0.0, 0.05, 0.0);
        let bs = BlackScholes::new(100.0, 0.2, 0.05, 0.0);
        for k in [80.0, 100.0, 120.0] {
            let opt = Vanilla::european_call(k, 1.0);
            let h = heston_cf_price(&m, &opt);
            let b = bs_price(&bs, &opt).price;
            assert!((h - b).abs() < 5e-3, "k={k}: heston {h} bs {b}");
        }
    }

    #[test]
    fn put_call_parity_holds() {
        let m = Heston::standard(100.0, 0.05);
        for k in [85.0, 100.0, 115.0] {
            for t in [0.5, 1.0, 3.0] {
                let c = heston_cf_price(&m, &Vanilla::european_call(k, t));
                let p = heston_cf_price(&m, &Vanilla::european_put(k, t));
                let forward = m.spot * (-m.dividend * t).exp() - k * (-m.rate * t).exp();
                assert!((c - p - forward).abs() < 1e-6, "k={k} t={t}: c={c} p={p}");
            }
        }
    }

    #[test]
    fn matches_monte_carlo_within_error() {
        let m = Heston::standard(100.0, 0.05);
        let opt = Vanilla::european_call(100.0, 1.0);
        let cf = heston_cf_price(&m, &opt);
        let mc = mc_heston(
            &m,
            &opt,
            &McConfig {
                paths: 100_000,
                time_steps: 100,
                antithetic: true,
                seed: 3,
            },
        );
        // MC carries Euler bias on top of sampling error; allow both.
        assert!(
            (cf - mc.price).abs() < 4.0 * mc.std_error + 0.08,
            "cf {cf} mc {} ± {}",
            mc.price,
            mc.std_error
        );
    }

    #[test]
    fn negative_correlation_cheapens_otm_calls() {
        // Equity-like ρ<0 creates left skew: OTM calls are cheaper than
        // under ρ>0 (and the reverse for OTM puts).
        let base = Heston::standard(100.0, 0.05);
        let pos = Heston { rho: 0.7, ..base };
        let otm_call = Vanilla::european_call(130.0, 1.0);
        let c_neg = heston_cf_price(&base, &otm_call);
        let c_pos = heston_cf_price(&pos, &otm_call);
        assert!(c_neg < c_pos, "neg-rho {c_neg} !< pos-rho {c_pos}");
    }

    #[test]
    fn prices_are_arbitrage_bounded() {
        let m = Heston::standard(100.0, 0.05);
        for k in [50.0, 100.0, 200.0] {
            let t = 2.0;
            let c = heston_cf_price(&m, &Vanilla::european_call(k, t));
            let lower = (m.spot * (-m.dividend * t).exp() - k * (-m.rate * t).exp()).max(0.0);
            assert!(c >= lower - 1e-8, "k={k}: {c} < lower bound {lower}");
            assert!(c <= m.spot, "k={k}: {c} above spot");
        }
    }

    #[test]
    fn price_increases_with_maturity_for_atm_calls() {
        let m = Heston::standard(100.0, 0.05);
        let mut prev = 0.0;
        for t in [0.25, 0.5, 1.0, 2.0, 5.0] {
            let c = heston_cf_price(&m, &Vanilla::european_call(100.0, t));
            assert!(c > prev, "t={t}: {c} !> {prev}");
            prev = c;
        }
    }

    #[test]
    fn complex_helpers_are_correct() {
        let a = C64::new(3.0, 4.0);
        let s = a.sqrt();
        let s2 = s.mul(s);
        assert!((s2.re - 3.0).abs() < 1e-12 && (s2.im - 4.0).abs() < 1e-12);
        let e = C64::new(0.0, std::f64::consts::PI).exp();
        assert!((e.re + 1.0).abs() < 1e-12 && e.im.abs() < 1e-12);
        let l = C64::new(1.0, 1.0).ln();
        assert!((l.re - 0.5 * 2.0_f64.ln()).abs() < 1e-12);
        assert!((l.im - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        let q = a.div(C64::new(1.0, -2.0));
        let back = q.mul(C64::new(1.0, -2.0));
        assert!((back.re - 3.0).abs() < 1e-12 && (back.im - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_legendre_integrates_polynomials_exactly() {
        // Degree-15 polynomial is exact for 16-point GL.
        let f = |x: f64| x.powi(15) + 3.0 * x.powi(7) - x;
        let got = gl_panel(0.0, 1.0, &f);
        let exact = 1.0 / 16.0 + 3.0 / 8.0 - 0.5;
        assert!((got - exact).abs() < 1e-13);
    }
}
