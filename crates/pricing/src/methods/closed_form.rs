//! Closed-form (analytic) prices and Greeks in the Black–Scholes model.
//!
//! Covers the §4.3 "plain vanilla options … closed-form formulas are
//! available for their evaluations" class, plus the Reiner–Rubinstein
//! formula for continuously monitored down-and-out calls used to validate
//! the barrier PDE pricer. Greeks (delta, gamma, vega) are included since
//! the paper's risk runs evaluate "the price (or other risk features such
//! as delta, gamma, vega …)".

use crate::models::BlackScholes;
use crate::options::{Barrier, BarrierKind, OptionRight, Vanilla};
use numerics::{norm_cdf, norm_pdf};

/// Price and first-order Greeks of a vanilla European option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsQuote {
    /// Price estimate.
    pub price: f64,
    /// First derivative of the price w.r.t. spot.
    pub delta: f64,
    /// Second derivative of the price w.r.t. spot.
    pub gamma: f64,
    /// Derivative of the price w.r.t. volatility.
    pub vega: f64,
}

/// The Black–Scholes `d₁`, `d₂` pair.
fn d1_d2(m: &BlackScholes, strike: f64, t: f64) -> (f64, f64) {
    let volt = m.sigma * t.sqrt();
    let d1 = ((m.spot / strike).ln() + (m.rate - m.dividend + 0.5 * m.sigma * m.sigma) * t) / volt;
    (d1, d1 - volt)
}

/// Black–Scholes price and Greeks for a European vanilla option.
///
/// `option.exercise` must be European — American claims have no closed
/// form; the caller routes those to the PDE/tree/LSM methods.
pub fn bs_price(m: &BlackScholes, option: &Vanilla) -> BsQuote {
    debug_assert!(matches!(
        option.exercise,
        crate::options::Exercise::European
    ));
    let t = option.maturity;
    let k = option.strike;
    let (d1, d2) = d1_d2(m, k, t);
    let df_r = (-m.rate * t).exp();
    let df_q = (-m.dividend * t).exp();
    let volt = m.sigma * t.sqrt();
    let gamma = df_q * norm_pdf(d1) / (m.spot * volt);
    let vega = m.spot * df_q * norm_pdf(d1) * t.sqrt();
    match option.right {
        OptionRight::Call => BsQuote {
            price: m.spot * df_q * norm_cdf(d1) - k * df_r * norm_cdf(d2),
            delta: df_q * norm_cdf(d1),
            gamma,
            vega,
        },
        OptionRight::Put => BsQuote {
            price: k * df_r * norm_cdf(-d2) - m.spot * df_q * norm_cdf(-d1),
            delta: -df_q * norm_cdf(-d1),
            gamma,
            vega,
        },
    }
}

/// Reiner–Rubinstein closed form for a continuously monitored
/// **down-and-out call** with barrier `H ≤ K` and no rebate.
///
/// Uses the in–out parity `C_do = C − C_di` with
///
/// ```text
/// C_di = S e^{-qT} (H/S)^{2λ} N(y) − K e^{-rT} (H/S)^{2λ-2} N(y − σ√T)
/// λ = (r − q + σ²/2)/σ²,  y = ln(H²/(S·K))/(σ√T) + λ σ√T
/// ```
///
/// Returns 0 when the spot starts at or below the barrier (already
/// knocked out).
pub fn down_out_call_price(m: &BlackScholes, option: &Barrier) -> f64 {
    assert_eq!(option.kind, BarrierKind::DownOut);
    assert_eq!(option.right, OptionRight::Call);
    assert!(
        option.barrier <= option.strike,
        "closed form implemented for H <= K (the portfolio's regime)"
    );
    if m.spot <= option.barrier {
        return option.rebate;
    }
    let t = option.maturity;
    let k = option.strike;
    let h = option.barrier;
    let vanilla = bs_price(m, &Vanilla::european_call(k, t)).price;
    let volt = m.sigma * t.sqrt();
    let lambda = (m.rate - m.dividend + 0.5 * m.sigma * m.sigma) / (m.sigma * m.sigma);
    let y = ((h * h) / (m.spot * k)).ln() / volt + lambda * volt;
    let hs = h / m.spot;
    let c_di = m.spot * (-m.dividend * t).exp() * hs.powf(2.0 * lambda) * norm_cdf(y)
        - k * (-m.rate * t).exp() * hs.powf(2.0 * lambda - 2.0) * norm_cdf(y - volt);
    (vanilla - c_di).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BlackScholes {
        BlackScholes::new(100.0, 0.2, 0.05, 0.0)
    }

    #[test]
    fn hull_textbook_call_value() {
        // S=42, K=40, r=0.10, σ=0.2, T=0.5 → C ≈ 4.759 (Hull, ch. 13).
        let m = BlackScholes::new(42.0, 0.2, 0.10, 0.0);
        let q = bs_price(&m, &Vanilla::european_call(40.0, 0.5));
        assert!((q.price - 4.759).abs() < 2e-3, "price {}", q.price);
    }

    #[test]
    fn hull_textbook_put_value() {
        let m = BlackScholes::new(42.0, 0.2, 0.10, 0.0);
        let q = bs_price(&m, &Vanilla::european_put(40.0, 0.5));
        assert!((q.price - 0.808).abs() < 2e-3, "price {}", q.price);
    }

    #[test]
    fn atm_one_year_reference() {
        // S=K=100, r=0.05, σ=0.2, T=1: C=10.4506, P=5.5735 (standard
        // reference values).
        let m = model();
        let c = bs_price(&m, &Vanilla::european_call(100.0, 1.0)).price;
        let p = bs_price(&m, &Vanilla::european_put(100.0, 1.0)).price;
        assert!((c - 10.4506).abs() < 1e-4, "call {c}");
        assert!((p - 5.5735).abs() < 1e-4, "put {p}");
    }

    #[test]
    fn put_call_parity() {
        let m = model();
        for k in [70.0, 100.0, 130.0] {
            for t in [0.25, 1.0, 8.0] {
                let c = bs_price(&m, &Vanilla::european_call(k, t)).price;
                let p = bs_price(&m, &Vanilla::european_put(k, t)).price;
                let forward = m.spot * (-m.dividend * t).exp() - k * (-m.rate * t).exp();
                assert!((c - p - forward).abs() < 1e-10, "k={k} t={t}");
            }
        }
    }

    #[test]
    fn delta_matches_finite_difference() {
        let m = model();
        let opt = Vanilla::european_call(110.0, 2.0);
        let q = bs_price(&m, &opt);
        let h = 1e-4;
        let up = bs_price(
            &BlackScholes {
                spot: m.spot + h,
                ..m
            },
            &opt,
        )
        .price;
        let dn = bs_price(
            &BlackScholes {
                spot: m.spot - h,
                ..m
            },
            &opt,
        )
        .price;
        assert!((q.delta - (up - dn) / (2.0 * h)).abs() < 1e-6);
    }

    #[test]
    fn gamma_matches_finite_difference() {
        let m = model();
        let opt = Vanilla::european_put(95.0, 1.5);
        let q = bs_price(&m, &opt);
        let h = 1e-3;
        let up = bs_price(
            &BlackScholes {
                spot: m.spot + h,
                ..m
            },
            &opt,
        )
        .price;
        let mid = q.price;
        let dn = bs_price(
            &BlackScholes {
                spot: m.spot - h,
                ..m
            },
            &opt,
        )
        .price;
        assert!((q.gamma - (up - 2.0 * mid + dn) / (h * h)).abs() < 1e-5);
    }

    #[test]
    fn vega_matches_finite_difference() {
        let m = model();
        let opt = Vanilla::european_call(100.0, 1.0);
        let q = bs_price(&m, &opt);
        let h = 1e-5;
        let up = bs_price(
            &BlackScholes {
                sigma: m.sigma + h,
                ..m
            },
            &opt,
        )
        .price;
        let dn = bs_price(
            &BlackScholes {
                sigma: m.sigma - h,
                ..m
            },
            &opt,
        )
        .price;
        assert!((q.vega - (up - dn) / (2.0 * h)).abs() < 1e-5);
    }

    #[test]
    fn call_price_increasing_in_spot_decreasing_in_strike() {
        let t = 1.0;
        let mut prev = 0.0;
        for spot in [60.0, 80.0, 100.0, 120.0] {
            let m = BlackScholes::new(spot, 0.2, 0.05, 0.0);
            let c = bs_price(&m, &Vanilla::european_call(100.0, t)).price;
            assert!(c >= prev);
            prev = c;
        }
        let m = model();
        let mut prev = f64::MAX;
        for k in [70.0, 90.0, 110.0, 130.0] {
            let c = bs_price(&m, &Vanilla::european_call(k, t)).price;
            assert!(c <= prev);
            prev = c;
        }
    }

    #[test]
    fn price_increasing_in_volatility() {
        let mut prev = 0.0;
        for sigma in [0.05, 0.1, 0.2, 0.4, 0.8] {
            let m = BlackScholes::new(100.0, sigma, 0.05, 0.0);
            let c = bs_price(&m, &Vanilla::european_call(100.0, 1.0)).price;
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn down_out_call_below_vanilla() {
        let m = model();
        let t = 1.0;
        let k = 100.0;
        let vanilla = bs_price(&m, &Vanilla::european_call(k, t)).price;
        let dob = down_out_call_price(&m, &Barrier::down_out_call(k, 80.0, t));
        assert!(dob > 0.0 && dob < vanilla, "dob {dob} vanilla {vanilla}");
    }

    #[test]
    fn down_out_call_approaches_vanilla_as_barrier_drops() {
        let m = model();
        let k = 100.0;
        let t = 1.0;
        let vanilla = bs_price(&m, &Vanilla::european_call(k, t)).price;
        let far = down_out_call_price(&m, &Barrier::down_out_call(k, 20.0, t));
        assert!((far - vanilla).abs() < 1e-4, "far {far} vanilla {vanilla}");
        // Monotone in the barrier level.
        let mut prev = vanilla;
        for h in [40.0, 60.0, 80.0, 95.0] {
            let p = down_out_call_price(&m, &Barrier::down_out_call(k, h, t));
            assert!(p <= prev + 1e-12, "H={h}");
            prev = p;
        }
    }

    #[test]
    fn down_out_call_zero_when_knocked() {
        let m = BlackScholes::new(75.0, 0.2, 0.05, 0.0);
        let p = down_out_call_price(&m, &Barrier::down_out_call(100.0, 80.0, 1.0));
        assert_eq!(p, 0.0);
    }

    #[test]
    fn down_out_call_known_value() {
        // Hand-evaluated Reiner–Rubinstein value: S=100, K=100, H=95,
        // T=0.5, r=0.08, q=0.04, σ=0.25. Vanilla C ≈ 7.846,
        // C_di ≈ 3.333 ⇒ C_do ≈ 4.513 (independent evaluation of the
        // formula with tabulated N(·) values).
        let m = BlackScholes::new(100.0, 0.25, 0.08, 0.04);
        let p = down_out_call_price(&m, &Barrier::down_out_call(100.0, 95.0, 0.5));
        assert!((p - 4.513).abs() < 5e-3, "price {p}");
    }

    #[test]
    fn down_out_call_consistent_with_in_out_parity_via_reflection() {
        // For r = q = 0 the reflection principle gives λ = 1/2 and the
        // knock-in call collapses to C_di = (S/H)·C(S'=H²/S, K) evaluated
        // at the reflected spot. Check in-out parity numerically.
        let m = BlackScholes::new(100.0, 0.3, 0.0, 0.0);
        let k = 100.0;
        let h = 85.0;
        let t = 2.0;
        let c = bs_price(&m, &Vanilla::european_call(k, t)).price;
        let c_do = down_out_call_price(&m, &Barrier::down_out_call(k, h, t));
        let reflected = BlackScholes::new(h * h / m.spot, 0.3, 0.0, 0.0);
        let c_di = (m.spot / h) * bs_price(&reflected, &Vanilla::european_call(k, t)).price;
        assert!(
            (c - c_do - c_di).abs() < 1e-10,
            "parity violated: C {c} C_do {c_do} C_di {c_di}"
        );
    }
}
