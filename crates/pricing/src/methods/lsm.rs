//! Longstaff–Schwartz American Monte-Carlo (LSM).
//!
//! §4.3's 7-dimensional American basket puts "are priced using American
//! Monte-Carlo techniques", and §3.3's example is
//! `MC_AM_Alfonsi_LongstaffSchwartz` on 1-D Heston. This module implements
//! the Longstaff–Schwartz (2001) regression method: simulate paths on the
//! exercise grid, then walk backward regressing the discounted future
//! cashflow of in-the-money paths on a polynomial basis of the current
//! state to estimate the continuation value, exercising when intrinsic
//! value beats it.

//! The `*_exec` variants parallelise the **path-generation** stage (the
//! dominant cost) through the [`exec`] chunked executor: each chunk of
//! paths simulates from its own [`exec::stream_seed`]-derived stream and
//! the per-chunk state blocks are scattered back in chunk order, so the
//! generated state matrix — and therefore the regression and the price —
//! is bit-identical for any worker count. The backward induction stays
//! sequential (it is a cross-path regression per date).

use crate::lanes::F64s;
use crate::models::{BlackScholes, Heston, MultiBlackScholes};
use crate::options::{BasketOption, Exercise, OptionRight, Vanilla};
use exec::{stream_seed, Chunk, ExecPolicy, PathWorkspace};
use numerics::linalg::lstsq;
use numerics::poly::{BasisKind, RegressionBasis};
use numerics::rng::NormalGen;
use numerics::stats::RunningStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::montecarlo::{heston_step_lanes, McResult};

/// LSM parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmConfig {
    /// Number of Monte-Carlo paths.
    pub paths: usize,
    /// Number of exercise dates (Bermudan approximation of the American
    /// right; 50 dates/year is the conventional density).
    pub exercise_dates: usize,
    /// Polynomial degree of the regression basis.
    pub basis_degree: usize,
    /// Basis family (Longstaff–Schwartz used weighted Laguerre).
    pub basis: BasisKind,
    /// RNG seed (problems are deterministic given their spec).
    pub seed: u64,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            paths: 20_000,
            exercise_dates: 50,
            basis_degree: 3,
            basis: BasisKind::Monomial,
            seed: 42,
        }
    }
}

impl LsmConfig {
    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.paths < 100 {
            return Err("LSM needs at least 100 paths".into());
        }
        if self.exercise_dates < 2 {
            return Err("LSM needs at least 2 exercise dates".into());
        }
        if self.basis_degree == 0 {
            return Err("basis degree must be at least 1".into());
        }
        Ok(())
    }
}

/// Generic LSM backward induction over pre-simulated states.
///
/// `states[d]` holds the state vector of every path at exercise date
/// `d+1` (date 0 is the deterministic valuation date and never optimal to
/// exercise for an OTM start); `payoff` maps a path state to intrinsic
/// value; `dt` is the exercise-grid spacing; `rate` discounts between
/// dates; `scale` normalises the regression feature.
pub(crate) fn lsm_backward(
    states: &[Vec<Vec<f64>>],
    payoff: &dyn Fn(&[f64]) -> f64,
    dt: f64,
    rate: f64,
    scale: f64,
    cfg: &LsmConfig,
) -> McResult {
    let n_dates = states.len();
    let n_paths = states[0].len();
    let disc = (-rate * dt).exp();
    let basis = RegressionBasis::new(cfg.basis, cfg.basis_degree);
    let nb = basis.len();

    // Cashflow value (already discounted to the *current* date in the
    // backward walk) per path.
    let mut cash: Vec<f64> = states[n_dates - 1].iter().map(|s| payoff(s)).collect();

    let mut feat = vec![0.0; nb];
    for d in (0..n_dates - 1).rev() {
        // Discount everything one step back.
        for c in cash.iter_mut() {
            *c *= disc;
        }
        // Regress continuation value on ITM paths.
        let itm: Vec<usize> = (0..n_paths)
            .filter(|&p| payoff(&states[d][p]) > 0.0)
            .collect();
        if itm.len() < nb * 2 {
            continue; // too few ITM paths for a stable regression
        }
        let mut a = Vec::with_capacity(itm.len() * nb);
        let mut b = Vec::with_capacity(itm.len());
        for &p in &itm {
            basis.eval(&states[d][p], scale, &mut feat);
            a.extend_from_slice(&feat);
            b.push(cash[p]);
        }
        let coeffs = match lstsq(&a, itm.len(), nb, &b) {
            Some(c) => c,
            None => continue, // degenerate basis this date; keep holding
        };
        for &p in &itm {
            basis.eval(&states[d][p], scale, &mut feat);
            let continuation: f64 = feat.iter().zip(&coeffs).map(|(f, c)| f * c).sum();
            let intrinsic = payoff(&states[d][p]);
            if intrinsic >= continuation {
                cash[p] = intrinsic;
            }
        }
    }
    // One more discount step back to the valuation date.
    let mut stats = RunningStats::new();
    for c in &cash {
        stats.push(c * disc);
    }
    McResult {
        price: stats.mean(),
        std_error: stats.std_error(),
        delta: None,
    }
}

/// Reassemble chunk-generated path blocks into the `states[d][p]` matrix
/// the backward induction consumes. Each block is paths-major
/// (`c.len() × dates × dim` flat), blocks arrive in chunk order, so the
/// scatter is a pure function of the chunk partition.
pub(crate) fn scatter_blocks(
    blocks: &[Vec<f64>],
    paths: usize,
    dates: usize,
    dim: usize,
) -> Vec<Vec<Vec<f64>>> {
    let mut states = vec![vec![vec![0.0; dim]; paths]; dates];
    let row_len = dates * dim;
    let mut p0 = 0usize;
    for block in blocks {
        let n = block.len() / row_len;
        for pi in 0..n {
            let row = &block[pi * row_len..(pi + 1) * row_len];
            for d in 0..dates {
                states[d][p0 + pi].copy_from_slice(&row[d * dim..(d + 1) * dim]);
            }
        }
        p0 += n;
    }
    debug_assert_eq!(p0, paths);
    states
}

/// American put under Black–Scholes via LSM.
pub fn lsm_vanilla_bs(m: &BlackScholes, option: &Vanilla, cfg: &LsmConfig) -> McResult {
    cfg.validate().expect("invalid LSM config");
    option.validate().expect("invalid option");
    assert!(
        option.exercise == Exercise::American,
        "LSM prices American claims"
    );
    assert!(
        option.right == OptionRight::Put,
        "American calls without dividends are European; benchmark uses puts"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let dt = option.maturity / cfg.exercise_dates as f64;
    // states[d][p] = [S] at date d+1.
    let mut states = vec![vec![vec![0.0; 1]; cfg.paths]; cfg.exercise_dates];
    for p in 0..cfg.paths {
        let mut s = m.spot;
        for d in 0..cfg.exercise_dates {
            s = m.step(s, dt, gen.sample(&mut rng));
            states[d][p][0] = s;
        }
    }
    let k = option.strike;
    lsm_backward(
        &states,
        &|st: &[f64]| (k - st[0]).max(0.0),
        dt,
        m.rate,
        m.spot,
        cfg,
    )
}

/// American basket put under multi-asset Black–Scholes via LSM
/// (the regression feature is the basket average — the payoff variable).
pub fn lsm_basket(m: &MultiBlackScholes, option: &BasketOption, cfg: &LsmConfig) -> McResult {
    cfg.validate().expect("invalid LSM config");
    option.validate().expect("invalid option");
    assert!(
        option.exercise == Exercise::American,
        "LSM prices American claims"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut corr = m.correlator();
    let dt = option.maturity / cfg.exercise_dates as f64;
    let mut states = vec![vec![vec![0.0; m.dim]; cfg.paths]; cfg.exercise_dates];
    let mut z = vec![0.0; m.dim];
    for p in 0..cfg.paths {
        let mut s = vec![m.spot; m.dim];
        for d in 0..cfg.exercise_dates {
            corr.sample(&mut rng, &mut z);
            m.step(&mut s, dt, &z);
            states[d][p].copy_from_slice(&s);
        }
    }
    let k = option.strike;
    lsm_backward(
        &states,
        &move |st: &[f64]| {
            let avg = st.iter().sum::<f64>() / st.len() as f64;
            (k - avg).max(0.0)
        },
        dt,
        m.rate,
        m.spot,
        cfg,
    )
}

/// Chunked-deterministic variant of [`lsm_basket`]: per-chunk correlated
/// streams, chunk-order scatter — bit-identical for any worker count.
pub fn lsm_basket_exec(
    m: &MultiBlackScholes,
    option: &BasketOption,
    cfg: &LsmConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid LSM config");
    option.validate().expect("invalid option");
    assert!(
        option.exercise == Exercise::American,
        "LSM prices American claims"
    );
    let dt = option.maturity / cfg.exercise_dates as f64;
    let dates = cfg.exercise_dates;
    let dim = m.dim;
    let blocks = match pol.lane_width() {
        4 => pol.run_ws(cfg.paths, |c, ws| {
            lsm_basket_chunk_lanes::<4>(m, cfg, dt, dates, c, ws)
        }),
        8 => pol.run_ws(cfg.paths, |c, ws| {
            lsm_basket_chunk_lanes::<8>(m, cfg, dt, dates, c, ws)
        }),
        _ => pol.run_ws(cfg.paths, |c, ws| {
            lsm_basket_chunk_scalar(m, cfg, dt, dates, c, ws)
        }),
    };
    let states = scatter_blocks(&blocks, cfg.paths, dates, dim);
    let k = option.strike;
    lsm_backward(
        &states,
        &move |st: &[f64]| {
            let avg = st.iter().sum::<f64>() / st.len() as f64;
            (k - avg).max(0.0)
        },
        dt,
        m.rate,
        m.spot,
        cfg,
    )
}

/// Scalar (lanes = 1) basket path-generation chunk. The per-path state
/// vector and the correlated-draw scratch come from the per-worker
/// [`PathWorkspace`] pool (the state is re-initialised to `spot` per
/// path, numerically identical to the old fresh `vec![m.spot; dim]`);
/// the returned block is the chunk's result, allocated once per chunk.
pub(crate) fn lsm_basket_chunk_scalar(
    m: &MultiBlackScholes,
    cfg: &LsmConfig,
    dt: f64,
    dates: usize,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> Vec<f64> {
    let dim = m.dim;
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut corr = m.correlator();
    let mut z = ws.take(dim);
    let mut s = ws.take(dim);
    let mut block = vec![0.0; c.len() * dates * dim];
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for pi in 0..c.len() {
        let row = &mut block[pi * dates * dim..(pi + 1) * dates * dim];
        for si in s.iter_mut() {
            *si = m.spot;
        }
        for d in 0..dates {
            corr.sample(&mut rng, &mut z);
            m.step(&mut s, dt, &z);
            row[d * dim..(d + 1) * dim].copy_from_slice(&s);
        }
    }
    // ALLOC-FREE-END
    ws.put(s);
    ws.put(z);
    block
}

/// `L`-wide basket path-generation chunk: `L` paths advance in lockstep
/// with lane-major state/draw scratch (`buf[l*dim..][..dim]` is lane
/// `l`), correlated vectors drawn per lane in lane order per date —
/// `(group, date, lane)` consumption — and the per-asset step vectorised
/// across lanes with fused `mul_add`.
pub(crate) fn lsm_basket_chunk_lanes<const L: usize>(
    m: &MultiBlackScholes,
    cfg: &LsmConfig,
    dt: f64,
    dates: usize,
    c: &Chunk,
    ws: &mut PathWorkspace,
) -> Vec<f64> {
    let dim = m.dim;
    let row_len = dates * dim;
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut corr = m.correlator();
    let mut zbuf = ws.take(L * dim);
    let mut sbuf = ws.take(L * dim);
    let mut block = vec![0.0; c.len() * row_len];
    let drift = F64s::<L>::splat(m.log_drift() * dt);
    let volt = F64s::<L>::splat(m.sigma * dt.sqrt());
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for g in 0..groups {
        let p0 = g * L;
        for si in sbuf.iter_mut() {
            *si = m.spot;
        }
        for d in 0..dates {
            for l in 0..L {
                corr.sample(&mut rng, &mut zbuf[l * dim..(l + 1) * dim]);
            }
            for i in 0..dim {
                let z = F64s::<L>::from_fn(|l| zbuf[l * dim + i]);
                let s = F64s::<L>::from_fn(|l| sbuf[l * dim + i]);
                let sn = s * z.mul_add(volt, drift).exp();
                for l in 0..L {
                    sbuf[l * dim + i] = sn.0[l];
                    block[(p0 + l) * row_len + d * dim + i] = sn.0[l];
                }
            }
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for pi in groups * L..c.len() {
        let row = &mut block[pi * row_len..(pi + 1) * row_len];
        let z = &mut zbuf[..dim];
        let s = &mut sbuf[..dim];
        for si in s.iter_mut() {
            *si = m.spot;
        }
        for d in 0..dates {
            corr.sample(&mut rng, z);
            m.step(s, dt, z);
            row[d * dim..(d + 1) * dim].copy_from_slice(s);
        }
    }
    // ALLOC-FREE-END
    ws.put(sbuf);
    ws.put(zbuf);
    block
}

/// Chunked-deterministic variant of [`lsm_vanilla_bs`]: path generation
/// runs on the [`exec`] executor with per-chunk [`stream_seed`]-derived
/// streams, so the price is bit-identical for any worker count in `pol`.
pub fn lsm_vanilla_bs_exec(
    m: &BlackScholes,
    option: &Vanilla,
    cfg: &LsmConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid LSM config");
    option.validate().expect("invalid option");
    assert!(
        option.exercise == Exercise::American,
        "LSM prices American claims"
    );
    assert!(
        option.right == OptionRight::Put,
        "American calls without dividends are European; benchmark uses puts"
    );
    let dt = option.maturity / cfg.exercise_dates as f64;
    let dates = cfg.exercise_dates;
    let blocks = match pol.lane_width() {
        4 => pol.run(cfg.paths, |c| {
            lsm_vanilla_chunk_lanes::<4>(m, cfg, dt, dates, c)
        }),
        8 => pol.run(cfg.paths, |c| {
            lsm_vanilla_chunk_lanes::<8>(m, cfg, dt, dates, c)
        }),
        _ => pol.run(cfg.paths, |c| {
            lsm_vanilla_chunk_scalar(m, cfg, dt, dates, c)
        }),
    };
    let states = scatter_blocks(&blocks, cfg.paths, dates, 1);
    let k = option.strike;
    lsm_backward(
        &states,
        &|st: &[f64]| (k - st[0]).max(0.0),
        dt,
        m.rate,
        m.spot,
        cfg,
    )
}

/// Scalar (lanes = 1) vanilla-BS path-generation chunk — the pre-lane
/// kernel, preserved verbatim (the path state is a single `f64`, so no
/// workspace scratch is needed; the block is the chunk result).
fn lsm_vanilla_chunk_scalar(
    m: &BlackScholes,
    cfg: &LsmConfig,
    dt: f64,
    dates: usize,
    c: &Chunk,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut block = vec![0.0; c.len() * dates];
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for pi in 0..c.len() {
        let row = &mut block[pi * dates..(pi + 1) * dates];
        let mut s = m.spot;
        for slot in row.iter_mut() {
            s = m.step(s, dt, gen.sample(&mut rng));
            *slot = s;
        }
    }
    // ALLOC-FREE-END
    block
}

/// `L`-wide vanilla-BS path-generation chunk: `L` paths advance in
/// lockstep, one normal group per exercise date (`(group, date, lane)`
/// draw order), exact GBM transitions with fused `mul_add`.
fn lsm_vanilla_chunk_lanes<const L: usize>(
    m: &BlackScholes,
    cfg: &LsmConfig,
    dt: f64,
    dates: usize,
    c: &Chunk,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut block = vec![0.0; c.len() * dates];
    let drift = F64s::<L>::splat(m.log_drift() * dt);
    let volt = F64s::<L>::splat(m.sigma * dt.sqrt());
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for g in 0..groups {
        let p0 = g * L;
        let mut s = F64s::<L>::splat(m.spot);
        for d in 0..dates {
            let z = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
            s = s * z.mul_add(volt, drift).exp();
            for l in 0..L {
                block[(p0 + l) * dates + d] = s.0[l];
            }
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for pi in groups * L..c.len() {
        let row = &mut block[pi * dates..(pi + 1) * dates];
        let mut s = m.spot;
        for slot in row.iter_mut() {
            s = m.step(s, dt, gen.sample(&mut rng));
            *slot = s;
        }
    }
    // ALLOC-FREE-END
    block
}

/// American put under Heston via LSM — the §3.3 example
/// (`Heston1dim` + `MC_AM_*_LongstaffSchwartz`). The regression state is
/// `(S, v)`; we regress on the polynomial basis of `S` augmented with a
/// linear variance term, the usual low-order choice.
pub fn lsm_heston(m: &Heston, option: &Vanilla, cfg: &LsmConfig) -> McResult {
    cfg.validate().expect("invalid LSM config");
    option.validate().expect("invalid option");
    assert!(
        option.exercise == Exercise::American,
        "LSM prices American claims"
    );
    assert!(
        option.right == OptionRight::Put,
        "benchmark uses American puts"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = NormalGen::new();
    let dt = option.maturity / cfg.exercise_dates as f64;
    // State per path/date: [S, v]; only S feeds the polynomial basis and v
    // enters linearly through the mean trick is *not* appropriate here, so
    // we keep S alone as feature (documented simplification; price checks
    // against European lower bound and PDE-style upper bound in tests).
    let mut states = vec![vec![vec![0.0; 1]; cfg.paths]; cfg.exercise_dates];
    for p in 0..cfg.paths {
        let mut s = m.spot;
        let mut v = m.v0;
        for d in 0..cfg.exercise_dates {
            let (s2, v2) = m.step(s, v, dt, gen.sample(&mut rng), gen.sample(&mut rng));
            s = s2;
            v = v2;
            states[d][p][0] = s;
        }
    }
    let k = option.strike;
    lsm_backward(
        &states,
        &move |st: &[f64]| (k - st[0]).max(0.0),
        dt,
        m.rate,
        m.spot,
        cfg,
    )
}

/// Chunked-deterministic variant of [`lsm_heston`]: per-chunk `(S, v)`
/// streams, chunk-order scatter — bit-identical for any worker count.
pub fn lsm_heston_exec(
    m: &Heston,
    option: &Vanilla,
    cfg: &LsmConfig,
    pol: &ExecPolicy,
) -> McResult {
    cfg.validate().expect("invalid LSM config");
    option.validate().expect("invalid option");
    assert!(
        option.exercise == Exercise::American,
        "LSM prices American claims"
    );
    assert!(
        option.right == OptionRight::Put,
        "benchmark uses American puts"
    );
    let dt = option.maturity / cfg.exercise_dates as f64;
    let dates = cfg.exercise_dates;
    let blocks = match pol.lane_width() {
        4 => pol.run(cfg.paths, |c| {
            lsm_heston_chunk_lanes::<4>(m, cfg, dt, dates, c)
        }),
        8 => pol.run(cfg.paths, |c| {
            lsm_heston_chunk_lanes::<8>(m, cfg, dt, dates, c)
        }),
        _ => pol.run(cfg.paths, |c| lsm_heston_chunk_scalar(m, cfg, dt, dates, c)),
    };
    let states = scatter_blocks(&blocks, cfg.paths, dates, 1);
    let k = option.strike;
    lsm_backward(
        &states,
        &move |st: &[f64]| (k - st[0]).max(0.0),
        dt,
        m.rate,
        m.spot,
        cfg,
    )
}

/// Scalar (lanes = 1) Heston path-generation chunk — the pre-lane
/// kernel, preserved verbatim.
fn lsm_heston_chunk_scalar(
    m: &Heston,
    cfg: &LsmConfig,
    dt: f64,
    dates: usize,
    c: &Chunk,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut block = vec![0.0; c.len() * dates];
    // ALLOC-FREE-BEGIN: per-path loop must not allocate (gated by ci.sh).
    for pi in 0..c.len() {
        let row = &mut block[pi * dates..(pi + 1) * dates];
        let mut s = m.spot;
        let mut v = m.v0;
        for slot in row.iter_mut() {
            let (s2, v2) = m.step(s, v, dt, gen.sample(&mut rng), gen.sample(&mut rng));
            s = s2;
            v = v2;
            *slot = s;
        }
    }
    // ALLOC-FREE-END
    block
}

/// `L`-wide Heston path-generation chunk: `L` `(S, v)` pairs advance in
/// lockstep; per date the spot normals are drawn for all lanes, then the
/// variance normals — `(group, date, z1 lanes, z2 lanes)` draw order.
fn lsm_heston_chunk_lanes<const L: usize>(
    m: &Heston,
    cfg: &LsmConfig,
    dt: f64,
    dates: usize,
    c: &Chunk,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, c.index));
    let mut gen = NormalGen::new();
    let mut block = vec![0.0; c.len() * dates];
    let sqdt = dt.sqrt();
    let groups = c.len() / L;
    // ALLOC-FREE-BEGIN: per-group loop must not allocate (gated by ci.sh).
    for g in 0..groups {
        let p0 = g * L;
        let mut s = F64s::<L>::splat(m.spot);
        let mut v = F64s::<L>::splat(m.v0);
        for d in 0..dates {
            let z1 = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
            let z2 = F64s::<L>::from_fn(|_| gen.sample(&mut rng));
            let (sn, vn) = heston_step_lanes(m, dt, sqdt, s, v, z1, z2);
            s = sn;
            v = vn;
            for l in 0..L {
                block[(p0 + l) * dates + d] = s.0[l];
            }
        }
    }
    // Tail: remainder paths continue the same chunk stream scalar-style.
    for pi in groups * L..c.len() {
        let row = &mut block[pi * dates..(pi + 1) * dates];
        let mut s = m.spot;
        let mut v = m.v0;
        for slot in row.iter_mut() {
            let (s2, v2) = m.step(s, v, dt, gen.sample(&mut rng), gen.sample(&mut rng));
            s = s2;
            v = v2;
            *slot = s;
        }
    }
    // ALLOC-FREE-END
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::closed_form::bs_price;
    use crate::methods::montecarlo::{mc_basket, mc_heston, McConfig};
    use crate::methods::pde::{pde_vanilla, PdeConfig};

    fn model() -> BlackScholes {
        BlackScholes::new(100.0, 0.2, 0.05, 0.0)
    }

    fn quick_cfg() -> LsmConfig {
        LsmConfig {
            paths: 20_000,
            exercise_dates: 50,
            ..LsmConfig::default()
        }
    }

    #[test]
    fn american_put_close_to_pde_reference() {
        let m = model();
        let opt = Vanilla::american_put(100.0, 1.0);
        let lsm = lsm_vanilla_bs(&m, &opt, &quick_cfg());
        let pde = pde_vanilla(&m, &opt, &PdeConfig::default()).price;
        // LSM is low-biased (suboptimal policy) but should be within a
        // few standard errors + small policy bias of the PDE value.
        assert!(
            (lsm.price - pde).abs() < 0.15,
            "lsm {} pde {pde}",
            lsm.price
        );
    }

    #[test]
    fn american_put_bracketed_by_european_and_intrinsic_plus() {
        let m = model();
        let opt = Vanilla::american_put(100.0, 1.0);
        let lsm = lsm_vanilla_bs(&m, &opt, &quick_cfg()).price;
        let eur = bs_price(&m, &Vanilla::european_put(100.0, 1.0)).price;
        assert!(lsm >= eur - 0.05, "lsm {lsm} below european {eur}");
        assert!(lsm < eur + 2.0, "lsm {lsm} implausibly high");
    }

    #[test]
    fn laguerre_and_monomial_bases_agree() {
        let m = model();
        let opt = Vanilla::american_put(100.0, 1.0);
        let mono = lsm_vanilla_bs(&m, &opt, &quick_cfg()).price;
        let lag = lsm_vanilla_bs(
            &m,
            &opt,
            &LsmConfig {
                basis: BasisKind::Laguerre,
                ..quick_cfg()
            },
        )
        .price;
        assert!((mono - lag).abs() < 0.1, "monomial {mono} laguerre {lag}");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model();
        let opt = Vanilla::american_put(100.0, 1.0);
        let cfg = LsmConfig {
            paths: 2_000,
            exercise_dates: 10,
            ..LsmConfig::default()
        };
        assert_eq!(
            lsm_vanilla_bs(&m, &opt, &cfg).price,
            lsm_vanilla_bs(&m, &opt, &cfg).price
        );
    }

    #[test]
    fn basket_american_dominates_european() {
        // 7-dim American basket put (the paper's §4.3 class).
        let m = MultiBlackScholes::new(7, 100.0, 0.2, 0.3, 0.05, 0.0);
        let amer = BasketOption::american_put(100.0, 1.0);
        let eur = BasketOption::european_put(100.0, 1.0);
        let lsm = lsm_basket(
            &m,
            &amer,
            &LsmConfig {
                paths: 10_000,
                exercise_dates: 20,
                ..LsmConfig::default()
            },
        );
        let mc = mc_basket(
            &m,
            &eur,
            &McConfig {
                paths: 40_000,
                ..McConfig::default()
            },
        );
        assert!(
            lsm.price >= mc.price - 3.0 * (lsm.std_error + mc.std_error),
            "american basket {} < european {}",
            lsm.price,
            mc.price
        );
        assert!(lsm.price < mc.price + 5.0, "implausible premium");
    }

    #[test]
    fn heston_american_put_dominates_european() {
        let m = Heston::standard(100.0, 0.05);
        let amer = Vanilla::american_put(100.0, 1.0);
        let eur = Vanilla::european_put(100.0, 1.0);
        let lsm = lsm_heston(
            &m,
            &amer,
            &LsmConfig {
                paths: 10_000,
                exercise_dates: 20,
                ..LsmConfig::default()
            },
        );
        let mc = mc_heston(
            &m,
            &eur,
            &McConfig {
                paths: 20_000,
                time_steps: 20,
                ..McConfig::default()
            },
        );
        assert!(
            lsm.price >= mc.price - 3.0 * (lsm.std_error + mc.std_error),
            "heston american {} < european {}",
            lsm.price,
            mc.price
        );
    }

    #[test]
    fn deep_itm_put_prices_near_intrinsic() {
        let m = BlackScholes::new(50.0, 0.2, 0.05, 0.0);
        let opt = Vanilla::american_put(100.0, 1.0);
        let lsm = lsm_vanilla_bs(&m, &opt, &quick_cfg()).price;
        assert!(lsm >= 49.5, "deep ITM american put {lsm} << intrinsic 50");
    }

    #[test]
    fn exec_lsm_bit_identical_across_worker_counts() {
        let cfg = LsmConfig {
            paths: 4_000,
            exercise_dates: 12,
            ..LsmConfig::default()
        };
        let bs = model();
        let put = Vanilla::american_put(100.0, 1.0);
        let multi = MultiBlackScholes::new(4, 100.0, 0.2, 0.3, 0.05, 0.0);
        let basket = BasketOption::american_put(100.0, 1.0);
        let hes = Heston::standard(100.0, 0.05);
        for (label, run) in [
            (
                "vanilla",
                Box::new(|w: usize| lsm_vanilla_bs_exec(&bs, &put, &cfg, &ExecPolicy::new(w)).price)
                    as Box<dyn Fn(usize) -> f64>,
            ),
            (
                "basket",
                Box::new(|w: usize| {
                    lsm_basket_exec(&multi, &basket, &cfg, &ExecPolicy::new(w)).price
                }),
            ),
            (
                "heston",
                Box::new(|w: usize| lsm_heston_exec(&hes, &put, &cfg, &ExecPolicy::new(w)).price),
            ),
        ] {
            let p1 = run(1);
            let p2 = run(2);
            let p8 = run(8);
            assert_eq!(p1.to_bits(), p2.to_bits(), "{label}: 1 vs 2 workers");
            assert_eq!(p1.to_bits(), p8.to_bits(), "{label}: 1 vs 8 workers");
        }
    }

    #[test]
    fn exec_lsm_agrees_with_sequential_statistically() {
        // The chunked variant draws a *different* (equally valid) sample
        // than the legacy sequential kernel, so prices agree statistically.
        let m = model();
        let opt = Vanilla::american_put(100.0, 1.0);
        let cfg = quick_cfg();
        let seq = lsm_vanilla_bs(&m, &opt, &cfg);
        let par = lsm_vanilla_bs_exec(&m, &opt, &cfg, &ExecPolicy::new(4));
        assert!(
            (seq.price - par.price).abs() < 4.0 * (seq.std_error + par.std_error) + 0.05,
            "seq {} par {}",
            seq.price,
            par.price
        );
    }

    #[test]
    fn config_validation() {
        assert!(LsmConfig {
            paths: 10,
            ..LsmConfig::default()
        }
        .validate()
        .is_err());
        assert!(LsmConfig {
            exercise_dates: 1,
            ..LsmConfig::default()
        }
        .validate()
        .is_err());
        assert!(LsmConfig {
            basis_degree: 0,
            ..LsmConfig::default()
        }
        .validate()
        .is_err());
    }
}
