//! Hand-rolled SIMD lane structs for batched path generation.
//!
//! The lane kernels advance `N` Monte-Carlo paths per loop iteration
//! through [`F64s`] — a plain `[f64; N]` newtype with lane-wise
//! operator impls and `mul_add`/`exp` helpers. No nightly `std::simd` and no
//! external crates (the shim allowlist is closed): the arrays are laid
//! out so LLVM's autovectorizer turns the element-wise loops into
//! packed SSE/AVX arithmetic, and the transcendental calls
//! (`exp`, `tanh`) stay per-lane `f64` calls so every lane is
//! bit-identical to the same scalar operation sequence on that lane's
//! values.
//!
//! Determinism: lane structs hold *values*, not randomness. The draw
//! order of the normals feeding them is fixed by the kernels
//! (`(group, step, lane)` within a chunk — see `docs/SIMD.md`), which
//! is why the lane width is part of the result contract exactly like
//! the chunk size.

/// `N` lanes of `f64`, one Monte-Carlo path per lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64s<const N: usize>(pub [f64; N]);

/// Four-wide lane group.
pub type F64x4 = F64s<4>;
/// Eight-wide lane group.
pub type F64x8 = F64s<8>;

impl<const N: usize> F64s<N> {
    /// All lanes set to `v`.
    pub const fn splat(v: f64) -> Self {
        F64s([v; N])
    }

    /// Build lanes from a function of the lane index, called in lane
    /// order — this is the one constructor the kernels feed RNG draws
    /// through, so the draw order is the lane order by construction.
    pub fn from_fn(f: impl FnMut(usize) -> f64) -> Self {
        F64s(std::array::from_fn(f))
    }

    /// Lane-wise fused `self * a + b` (`f64::mul_add` per lane).
    pub fn mul_add(mut self, a: Self, b: Self) -> Self {
        for i in 0..N {
            self.0[i] = self.0[i].mul_add(a.0[i], b.0[i]);
        }
        self
    }

    /// Lane-wise `e^x`.
    pub fn exp(self) -> Self {
        self.map(f64::exp)
    }

    /// Lane-wise square root.
    pub fn sqrt(self) -> Self {
        self.map(f64::sqrt)
    }

    /// Lane-wise maximum with `o`.
    pub fn max(mut self, o: Self) -> Self {
        for i in 0..N {
            self.0[i] = self.0[i].max(o.0[i]);
        }
        self
    }

    /// Apply `f` to every lane (for the rare per-lane transcendental —
    /// `tanh` in the local-vol surface — that has no helper of its own).
    pub fn map(mut self, mut f: impl FnMut(f64) -> f64) -> Self {
        for x in self.0.iter_mut() {
            *x = f(*x);
        }
        self
    }
}

impl<const N: usize> std::ops::Add for F64s<N> {
    type Output = Self;
    /// Lane-wise `self + o`.
    fn add(mut self, o: Self) -> Self {
        for i in 0..N {
            self.0[i] += o.0[i];
        }
        self
    }
}

impl<const N: usize> std::ops::Sub for F64s<N> {
    type Output = Self;
    /// Lane-wise `self - o`.
    fn sub(mut self, o: Self) -> Self {
        for i in 0..N {
            self.0[i] -= o.0[i];
        }
        self
    }
}

impl<const N: usize> std::ops::Mul for F64s<N> {
    type Output = Self;
    /// Lane-wise `self * o`.
    fn mul(mut self, o: Self) -> Self {
        for i in 0..N {
            self.0[i] *= o.0[i];
        }
        self
    }
}

impl<const N: usize> std::ops::Neg for F64s<N> {
    type Output = Self;
    /// Lane-wise negation.
    fn neg(mut self) -> Self {
        for i in 0..N {
            self.0[i] = -self.0[i];
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_match_scalar_ops_bitwise() {
        let a = F64x4::from_fn(|i| 1.5 + i as f64);
        let b = F64s::<4>::splat(0.25);
        for i in 0..4 {
            let x = 1.5 + i as f64;
            assert_eq!((a + b).0[i].to_bits(), (x + 0.25).to_bits());
            assert_eq!((a - b).0[i].to_bits(), (x - 0.25).to_bits());
            assert_eq!((a * b).0[i].to_bits(), (x * 0.25).to_bits());
            assert_eq!(a.mul_add(b, a).0[i].to_bits(), x.mul_add(0.25, x).to_bits());
            assert_eq!(a.exp().0[i].to_bits(), x.exp().to_bits());
            assert_eq!(a.sqrt().0[i].to_bits(), x.sqrt().to_bits());
            assert_eq!((-a).0[i].to_bits(), (-x).to_bits());
            assert_eq!(a.map(f64::tanh).0[i].to_bits(), x.tanh().to_bits());
        }
        let lo = F64x8::splat(-1.0);
        assert_eq!(lo.max(F64s::splat(0.0)), F64s::splat(0.0));
    }

    #[test]
    fn from_fn_is_called_in_lane_order() {
        let mut order = Vec::new();
        let v = F64s::<8>::from_fn(|i| {
            order.push(i);
            i as f64
        });
        assert_eq!(order, (0..8).collect::<Vec<_>>());
        assert_eq!(v.0[7], 7.0);
    }
}
