//! Financial products (contingent claims) and their payoffs.
//!
//! The paper's realistic portfolio (§4.3) is composed of five product
//! classes on equities: plain vanilla calls, down-and-out barrier calls,
//! high-dimensional basket puts, local-volatility calls, and American puts
//! (single-name and basket). The types here describe the contract terms;
//! the numerical methods live in [`crate::methods`].

pub mod payoff;

pub use payoff::{american_put_payoff, basket_put_payoff, call_payoff, put_payoff, OptionRight};

/// Exercise style of a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exercise {
    /// Exercisable only at maturity.
    European,
    /// Exercisable at any time up to maturity.
    American,
}

/// A single-underlying vanilla option contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vanilla {
    /// Call or put.
    pub right: OptionRight,
    /// Strike price.
    pub strike: f64,
    /// Maturity in years.
    pub maturity: f64,
    /// European or American exercise.
    pub exercise: Exercise,
}

impl Vanilla {
    /// A European call with the given strike and maturity.
    pub fn european_call(strike: f64, maturity: f64) -> Self {
        Vanilla {
            right: OptionRight::Call,
            strike,
            maturity,
            exercise: Exercise::European,
        }
    }

    /// A European put with the given strike and maturity.
    pub fn european_put(strike: f64, maturity: f64) -> Self {
        Vanilla {
            right: OptionRight::Put,
            strike,
            maturity,
            exercise: Exercise::European,
        }
    }

    /// An American put with the given strike and maturity.
    pub fn american_put(strike: f64, maturity: f64) -> Self {
        Vanilla {
            right: OptionRight::Put,
            strike,
            maturity,
            exercise: Exercise::American,
        }
    }

    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.strike > 0.0) {
            return Err("strike must be positive".into());
        }
        if !(self.maturity > 0.0) {
            return Err("maturity must be positive".into());
        }
        Ok(())
    }

    /// Intrinsic value at spot `s`.
    pub fn payoff(&self, s: f64) -> f64 {
        match self.right {
            OptionRight::Call => call_payoff(s, self.strike),
            OptionRight::Put => put_payoff(s, self.strike),
        }
    }
}

/// Which side of the barrier knocks the option out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// Knocked out when the spot touches the barrier from above
    /// (`barrier < spot`), the §4.3 "down and out call".
    DownOut,
    /// Knocked out when the spot touches the barrier from below.
    UpOut,
}

/// A continuously monitored barrier option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Barrier {
    /// Call or put.
    pub right: OptionRight,
    /// Knock-out direction.
    pub kind: BarrierKind,
    /// Strike price.
    pub strike: f64,
    /// Barrier level.
    pub barrier: f64,
    /// Maturity in years.
    pub maturity: f64,
    /// Paid immediately on knock-out (0 for the paper's products).
    pub rebate: f64,
}

impl Barrier {
    /// §4.3's product: down-and-out call.
    pub fn down_out_call(strike: f64, barrier: f64, maturity: f64) -> Self {
        Barrier {
            right: OptionRight::Call,
            kind: BarrierKind::DownOut,
            strike,
            barrier,
            maturity,
            rebate: 0.0,
        }
    }

    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.strike > 0.0 && self.barrier > 0.0 && self.maturity > 0.0) {
            return Err("strike, barrier and maturity must be positive".into());
        }
        if self.rebate < 0.0 {
            return Err("rebate must be non-negative".into());
        }
        Ok(())
    }

    /// Is the option already knocked out at spot `s`?
    pub fn knocked_out(&self, s: f64) -> bool {
        match self.kind {
            BarrierKind::DownOut => s <= self.barrier,
            BarrierKind::UpOut => s >= self.barrier,
        }
    }

    /// Terminal payoff assuming the barrier was never touched.
    pub fn payoff(&self, s: f64) -> f64 {
        match self.right {
            OptionRight::Call => call_payoff(s, self.strike),
            OptionRight::Put => put_payoff(s, self.strike),
        }
    }
}

/// A basket option on the arithmetic average of `dim` assets —
/// §4.3's 40-dimensional European puts and 7-dimensional American puts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasketOption {
    /// Call or put.
    pub right: OptionRight,
    /// Strike price.
    pub strike: f64,
    /// Maturity in years.
    pub maturity: f64,
    /// European or American exercise.
    pub exercise: Exercise,
}

impl BasketOption {
    /// A European put with the given strike and maturity.
    pub fn european_put(strike: f64, maturity: f64) -> Self {
        BasketOption {
            right: OptionRight::Put,
            strike,
            maturity,
            exercise: Exercise::European,
        }
    }

    /// An American put with the given strike and maturity.
    pub fn american_put(strike: f64, maturity: f64) -> Self {
        BasketOption {
            right: OptionRight::Put,
            strike,
            maturity,
            exercise: Exercise::American,
        }
    }

    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.strike > 0.0 && self.maturity > 0.0) {
            return Err("strike and maturity must be positive".into());
        }
        Ok(())
    }

    /// Payoff on the arithmetic average of the terminal asset prices.
    pub fn payoff(&self, spots: &[f64]) -> f64 {
        let avg = spots.iter().sum::<f64>() / spots.len() as f64;
        match self.right {
            OptionRight::Call => call_payoff(avg, self.strike),
            OptionRight::Put => put_payoff(avg, self.strike),
        }
    }
}

/// A call on the **maximum** of `dim` assets — the multi-dimensional
/// Bermudan benchmark of Doan et al. 2008 (and the classic
/// Broadie–Glasserman max-call test case). Bermudan exercise is the
/// discrete grid the LSM method prices on, so the type carries the
/// `American` exercise flag like [`BasketOption`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxCall {
    /// Strike price.
    pub strike: f64,
    /// Maturity in years.
    pub maturity: f64,
    /// European or American/Bermudan exercise.
    pub exercise: Exercise,
}

impl MaxCall {
    /// A Bermudan max-call with the given strike and maturity.
    pub fn bermudan(strike: f64, maturity: f64) -> Self {
        MaxCall {
            strike,
            maturity,
            exercise: Exercise::American,
        }
    }

    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.strike > 0.0 && self.maturity > 0.0) {
            return Err("strike and maturity must be positive".into());
        }
        Ok(())
    }

    /// Payoff on the maximum of the terminal asset prices.
    pub fn payoff(&self, spots: &[f64]) -> f64 {
        let best = spots.iter().fold(f64::NEG_INFINITY, |a, &s| a.max(s));
        call_payoff(best, self.strike)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_payoffs() {
        let c = Vanilla::european_call(100.0, 1.0);
        assert_eq!(c.payoff(120.0), 20.0);
        assert_eq!(c.payoff(80.0), 0.0);
        let p = Vanilla::european_put(100.0, 1.0);
        assert_eq!(p.payoff(80.0), 20.0);
        assert_eq!(p.payoff(120.0), 0.0);
    }

    #[test]
    fn american_put_constructor() {
        let a = Vanilla::american_put(90.0, 2.0);
        assert_eq!(a.exercise, Exercise::American);
        assert_eq!(a.right, OptionRight::Put);
    }

    #[test]
    fn barrier_knockout_logic() {
        let b = Barrier::down_out_call(100.0, 80.0, 1.0);
        assert!(b.knocked_out(80.0));
        assert!(b.knocked_out(75.0));
        assert!(!b.knocked_out(81.0));
        let u = Barrier {
            kind: BarrierKind::UpOut,
            ..b
        };
        assert!(u.knocked_out(80.0));
        assert!(!u.knocked_out(79.0));
    }

    #[test]
    fn basket_payoff_uses_average() {
        let b = BasketOption::european_put(100.0, 1.0);
        assert_eq!(b.payoff(&[90.0, 110.0]), 0.0); // avg 100
        assert_eq!(b.payoff(&[80.0, 100.0]), 10.0); // avg 90
    }

    #[test]
    fn max_call_payoff_uses_best_asset() {
        let m = MaxCall::bermudan(100.0, 1.0);
        assert_eq!(m.payoff(&[90.0, 110.0, 95.0]), 10.0);
        assert_eq!(m.payoff(&[90.0, 95.0]), 0.0);
        assert_eq!(m.exercise, Exercise::American);
    }

    #[test]
    fn validation() {
        assert!(Vanilla::european_call(0.0, 1.0).validate().is_err());
        assert!(Vanilla::european_call(100.0, -1.0).validate().is_err());
        assert!(Barrier::down_out_call(100.0, 80.0, 1.0).validate().is_ok());
        let mut b = Barrier::down_out_call(100.0, 80.0, 1.0);
        b.rebate = -1.0;
        assert!(b.validate().is_err());
        assert!(BasketOption::european_put(100.0, 0.0).validate().is_err());
    }
}
