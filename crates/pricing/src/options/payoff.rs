//! Elementary payoff functions.

/// Call or put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionRight {
    /// Call.
    Call,
    /// Put.
    Put,
}

impl OptionRight {
    /// +1 for calls, -1 for puts — the sign flip in Black–Scholes
    /// formulas.
    pub fn sign(&self) -> f64 {
        match self {
            OptionRight::Call => 1.0,
            OptionRight::Put => -1.0,
        }
    }
}

/// `(s - k)⁺`.
#[inline]
pub fn call_payoff(s: f64, k: f64) -> f64 {
    (s - k).max(0.0)
}

/// `(k - s)⁺`.
#[inline]
pub fn put_payoff(s: f64, k: f64) -> f64 {
    (k - s).max(0.0)
}

/// American put intrinsic value (alias, kept for call-site readability in
/// the exercise-decision code).
#[inline]
pub fn american_put_payoff(s: f64, k: f64) -> f64 {
    put_payoff(s, k)
}

/// Arithmetic-basket put payoff `(k - mean(s))⁺`.
#[inline]
pub fn basket_put_payoff(spots: &[f64], k: f64) -> f64 {
    let avg = spots.iter().sum::<f64>() / spots.len() as f64;
    put_payoff(avg, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs() {
        assert_eq!(OptionRight::Call.sign(), 1.0);
        assert_eq!(OptionRight::Put.sign(), -1.0);
    }

    #[test]
    fn payoffs_nonnegative() {
        for s in [0.0, 50.0, 100.0, 150.0] {
            assert!(call_payoff(s, 100.0) >= 0.0);
            assert!(put_payoff(s, 100.0) >= 0.0);
        }
    }

    #[test]
    fn put_call_intrinsic_parity() {
        // call - put = s - k pointwise.
        for s in [10.0, 90.0, 100.0, 250.0] {
            assert!((call_payoff(s, 100.0) - put_payoff(s, 100.0) - (s - 100.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn basket_put_average() {
        assert_eq!(basket_put_payoff(&[50.0, 150.0], 120.0), 20.0);
        assert_eq!(basket_put_payoff(&[200.0], 120.0), 0.0);
        assert_eq!(american_put_payoff(80.0, 100.0), 20.0);
    }
}
