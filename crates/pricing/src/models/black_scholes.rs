//! The Black–Scholes model: geometric Brownian motion under the
//! risk-neutral measure,
//! `dS = S ((r - q) dt + σ dW)`.

/// Black–Scholes model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlackScholes {
    /// Spot price `S₀`.
    pub spot: f64,
    /// Volatility `σ` (annualised).
    pub sigma: f64,
    /// Risk-free rate `r` (continuously compounded).
    pub rate: f64,
    /// Continuous dividend yield `q`.
    pub dividend: f64,
}

impl BlackScholes {
    /// Construct with validation; panics on invalid parameters.
    pub fn new(spot: f64, sigma: f64, rate: f64, dividend: f64) -> Self {
        let m = BlackScholes {
            spot,
            sigma,
            rate,
            dividend,
        };
        m.validate().expect("invalid Black-Scholes parameters");
        m
    }

    /// Parameter sanity: positive spot and volatility, finite rates.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.spot > 0.0) {
            return Err(format!("spot must be positive, got {}", self.spot));
        }
        if !(self.sigma > 0.0) {
            return Err(format!("sigma must be positive, got {}", self.sigma));
        }
        if !self.rate.is_finite() || !self.dividend.is_finite() {
            return Err("rate/dividend must be finite".into());
        }
        Ok(())
    }

    /// Risk-neutral drift of `ln S`.
    pub fn log_drift(&self) -> f64 {
        self.rate - self.dividend - 0.5 * self.sigma * self.sigma
    }

    /// Exact terminal sample: `S_T = S₀ exp(log_drift·T + σ√T z)` with
    /// `z ~ N(0,1)`. GBM has an exact transition density, so European
    /// payoffs need a single step.
    pub fn terminal(&self, t: f64, z: f64) -> f64 {
        self.spot * (self.log_drift() * t + self.sigma * t.sqrt() * z).exp()
    }

    /// One exact transition step from `s` over `dt`.
    pub fn step(&self, s: f64, dt: f64, z: f64) -> f64 {
        s * (self.log_drift() * dt + self.sigma * dt.sqrt() * z).exp()
    }

    /// Discount factor `e^{-rT}`.
    pub fn discount(&self, t: f64) -> f64 {
        (-self.rate * t).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_at_zero_noise_is_forward_adjusted() {
        let m = BlackScholes::new(100.0, 0.2, 0.05, 0.0);
        let t = 1.0;
        let s = m.terminal(t, 0.0);
        // exp((r - σ²/2) T) factor
        assert!((s - 100.0 * ((0.05 - 0.02) * t).exp()).abs() < 1e-10);
    }

    #[test]
    fn step_composition_matches_terminal() {
        let m = BlackScholes::new(50.0, 0.3, 0.02, 0.01);
        // Two half-steps with z/√2 each equal one full step with z
        // (Brownian scaling).
        let z = 0.7;
        let one = m.terminal(1.0, z);
        let half = m.step(m.spot, 0.5, z / 2f64.sqrt());
        let two = m.step(half, 0.5, z / 2f64.sqrt());
        assert!((one - two).abs() < 1e-9);
    }

    #[test]
    fn discount_factor() {
        let m = BlackScholes::new(100.0, 0.2, 0.05, 0.0);
        assert!((m.discount(2.0) - (-0.1f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(BlackScholes {
            spot: -1.0,
            sigma: 0.2,
            rate: 0.0,
            dividend: 0.0
        }
        .validate()
        .is_err());
        assert!(BlackScholes {
            spot: 1.0,
            sigma: 0.0,
            rate: 0.0,
            dividend: 0.0
        }
        .validate()
        .is_err());
        assert!(BlackScholes {
            spot: 1.0,
            sigma: 0.1,
            rate: f64::NAN,
            dividend: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic]
    fn new_panics_on_invalid() {
        BlackScholes::new(0.0, 0.2, 0.05, 0.0);
    }
}
