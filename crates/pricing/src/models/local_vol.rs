//! A parametric local-volatility model.
//!
//! §4.3: "the local volatility models … are very close to the Black &
//! Scholes model but in which the volatility is not constant anymore but
//! rather depends on the current time and stock price. In these models,
//! there are no closed-form formula anymore and Monte-Carlo methods are
//! used instead."
//!
//! We use a smooth, bounded parametric surface
//!
//! ```text
//! σ(t, S) = σ₀ · (1 + a·e^{-t/τ}) · (1 + b·tanh((S₀ − S)/(c·S₀)))
//! ```
//!
//! which reproduces the two first-order empirical features local-vol models
//! capture — a term structure (`a`, `τ`) and a downward skew (`b`, `c`,
//! higher vol when the spot falls) — while staying strictly positive and
//! bounded for `|b| < 1`, so the Euler scheme is well behaved.

/// Parametric local-volatility model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalVol {
    /// Spot price of the underlying.
    pub spot: f64,
    /// Base volatility level σ₀.
    pub sigma0: f64,
    /// Term-structure amplitude `a` (σ is `(1+a)σ₀` at t=0 decaying to σ₀).
    pub term_amp: f64,
    /// Term-structure decay time τ (years).
    pub term_tau: f64,
    /// Skew amplitude `b` (must satisfy |b| < 1).
    pub skew_amp: f64,
    /// Skew width `c` relative to spot.
    pub skew_width: f64,
    /// Risk-free rate (continuously compounded).
    pub rate: f64,
    /// Continuous dividend yield.
    pub dividend: f64,
}

impl LocalVol {
    /// A conventional calibration: mild term structure, equity-like skew.
    pub fn standard(spot: f64, sigma0: f64, rate: f64, dividend: f64) -> Self {
        let m = LocalVol {
            spot,
            sigma0,
            term_amp: 0.2,
            term_tau: 1.0,
            skew_amp: 0.3,
            skew_width: 0.5,
            rate,
            dividend,
        };
        m.validate().expect("invalid local-vol parameters");
        m
    }

    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.spot > 0.0 && self.sigma0 > 0.0) {
            return Err("spot and sigma0 must be positive".into());
        }
        if self.skew_amp.abs() >= 1.0 {
            return Err("skew amplitude must satisfy |b| < 1".into());
        }
        if !(self.term_tau > 0.0 && self.skew_width > 0.0) {
            return Err("term tau and skew width must be positive".into());
        }
        if !self.rate.is_finite() || !self.dividend.is_finite() {
            return Err("rate/dividend must be finite".into());
        }
        Ok(())
    }

    /// The local volatility σ(t, S).
    pub fn sigma(&self, t: f64, s: f64) -> f64 {
        let term = 1.0 + self.term_amp * (-t / self.term_tau).exp();
        let skew = 1.0 + self.skew_amp * ((self.spot - s) / (self.skew_width * self.spot)).tanh();
        self.sigma0 * term * skew
    }

    /// One Euler–Maruyama step on `ln S` (log-Euler keeps the path
    /// positive):
    /// `ln S ← ln S + (r − q − σ²(t,S)/2) dt + σ(t,S) √dt z`.
    pub fn step(&self, t: f64, s: f64, dt: f64, z: f64) -> f64 {
        let sig = self.sigma(t, s);
        s * ((self.rate - self.dividend - 0.5 * sig * sig) * dt + sig * dt.sqrt() * z).exp()
    }

    /// Discount factor `e^{-rT}`.
    pub fn discount(&self, t: f64) -> f64 {
        (-self.rate * t).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LocalVol {
        LocalVol::standard(100.0, 0.2, 0.05, 0.0)
    }

    #[test]
    fn surface_positive_and_bounded() {
        let m = model();
        let max = m.sigma0 * (1.0 + m.term_amp) * (1.0 + m.skew_amp);
        for i in 0..50 {
            for j in 1..50 {
                let t = i as f64 * 0.2;
                let s = j as f64 * 10.0;
                let sig = m.sigma(t, s);
                assert!(sig > 0.0, "σ({t},{s}) = {sig}");
                assert!(sig <= max + 1e-12);
            }
        }
    }

    #[test]
    fn skew_is_downward() {
        // Lower spot ⇒ higher vol (equity skew).
        let m = model();
        assert!(m.sigma(0.5, 80.0) > m.sigma(0.5, 100.0));
        assert!(m.sigma(0.5, 100.0) > m.sigma(0.5, 120.0));
    }

    #[test]
    fn term_structure_decays() {
        let m = model();
        assert!(m.sigma(0.0, 100.0) > m.sigma(2.0, 100.0));
        // Far maturity tends to σ₀ at the money exactly (tanh(0)=0).
        assert!((m.sigma(100.0, 100.0) - m.sigma0).abs() < 1e-6);
    }

    #[test]
    fn step_positive() {
        let m = model();
        let mut s = 100.0;
        for k in 0..100 {
            s = m.step(
                k as f64 * 0.01,
                s,
                0.01,
                if k % 2 == 0 { 2.0 } else { -2.0 },
            );
            assert!(s > 0.0);
        }
    }

    #[test]
    fn zero_skew_zero_term_reduces_to_bs_step() {
        let m = LocalVol {
            spot: 100.0,
            sigma0: 0.2,
            term_amp: 0.0,
            term_tau: 1.0,
            skew_amp: 0.0,
            skew_width: 0.5,
            rate: 0.05,
            dividend: 0.0,
        };
        let bs = crate::models::BlackScholes::new(100.0, 0.2, 0.05, 0.0);
        let s1 = m.step(0.3, 100.0, 0.1, 0.7);
        let s2 = bs.step(100.0, 0.1, 0.7);
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_big_skew() {
        let mut m = model();
        m.skew_amp = 1.5;
        assert!(m.validate().is_err());
    }
}
