//! Asset-dynamics models.
//!
//! Each model owns its parameters and knows how to simulate itself; the
//! pricing methods in [`crate::methods`] are generic over the relevant
//! model where possible and specialised where the numerics demand it.

pub mod black_scholes;
pub mod heston;
pub mod local_vol;
pub mod multi_bs;
pub mod vasicek;

pub use black_scholes::BlackScholes;
pub use heston::Heston;
pub use local_vol::LocalVol;
pub use multi_bs::MultiBlackScholes;
pub use vasicek::Vasicek;
