//! The Vasicek short-rate model — the interest-rate wing of the library.
//!
//! §2 notes that "various interest rate and credit risk models and
//! derivatives have been added" to Premia; Vasicek is the canonical
//! affine short-rate model and carries closed forms for zero-coupon bonds
//! and bond options (Jamshidian), which makes it the right substrate for
//! cross-validated rate products in the benchmark:
//!
//! ```text
//! dr = κ(θ − r) dt + σ dW
//! ```

/// Vasicek model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vasicek {
    /// Initial short rate r₀.
    pub r0: f64,
    /// Mean-reversion speed κ.
    pub kappa: f64,
    /// Long-run mean θ.
    pub theta: f64,
    /// Absolute rate volatility σ.
    pub sigma: f64,
}

impl Vasicek {
    /// Construct with validation; panics on invalid parameters.
    pub fn new(r0: f64, kappa: f64, theta: f64, sigma: f64) -> Self {
        let m = Vasicek {
            r0,
            kappa,
            theta,
            sigma,
        };
        m.validate().expect("invalid Vasicek parameters");
        m
    }

    /// A conventional money-market calibration.
    pub fn standard() -> Self {
        Self::new(0.05, 0.8, 0.05, 0.01)
    }

    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.kappa > 0.0 && self.sigma > 0.0) {
            return Err("kappa and sigma must be positive".into());
        }
        if !self.r0.is_finite() || !self.theta.is_finite() {
            return Err("r0/theta must be finite".into());
        }
        Ok(())
    }

    /// The affine factor `B(τ) = (1 − e^{-κτ})/κ`.
    pub fn b_factor(&self, tau: f64) -> f64 {
        (1.0 - (-self.kappa * tau).exp()) / self.kappa
    }

    /// Zero-coupon bond price `P(0, T) = A(T) e^{-B(T) r₀}`.
    pub fn zcb_price(&self, maturity: f64) -> f64 {
        assert!(maturity >= 0.0);
        let b = self.b_factor(maturity);
        let sig2 = self.sigma * self.sigma;
        let ln_a = (self.theta - sig2 / (2.0 * self.kappa * self.kappa)) * (b - maturity)
            - sig2 * b * b / (4.0 * self.kappa);
        (ln_a - b * self.r0).exp()
    }

    /// Continuously compounded zero yield for maturity `T`.
    pub fn zero_yield(&self, maturity: f64) -> f64 {
        assert!(maturity > 0.0);
        -self.zcb_price(maturity).ln() / maturity
    }

    /// One exact Ornstein–Uhlenbeck transition step:
    /// `r' = θ + (r − θ)e^{-κΔ} + σ√((1 − e^{-2κΔ})/(2κ)) z`.
    pub fn step(&self, r: f64, dt: f64, z: f64) -> f64 {
        let e = (-self.kappa * dt).exp();
        let var = self.sigma * self.sigma * (1.0 - e * e) / (2.0 * self.kappa);
        self.theta + (r - self.theta) * e + var.sqrt() * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::NormalGen;
    use numerics::stats::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zcb_decreasing_in_maturity_for_flat_curve() {
        let m = Vasicek::standard();
        let mut prev = 1.0;
        for t in [0.5, 1.0, 2.0, 5.0, 10.0, 30.0] {
            let p = m.zcb_price(t);
            assert!(p > 0.0 && p < prev, "T={t}: {p}");
            prev = p;
        }
        assert!((m.zcb_price(0.0) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn zero_yield_tends_to_long_run_level() {
        let m = Vasicek::new(0.02, 1.0, 0.06, 0.01);
        // Asymptotic yield = θ − σ²/(2κ²).
        let asym = m.theta - m.sigma * m.sigma / (2.0 * m.kappa * m.kappa);
        assert!((m.zero_yield(200.0) - asym).abs() < 1e-3);
        // Short-end yield anchors to r₀.
        assert!((m.zero_yield(1e-4) - m.r0).abs() < 1e-4);
    }

    #[test]
    fn exact_step_matches_ou_moments() {
        let m = Vasicek::new(0.08, 2.0, 0.04, 0.015);
        let mut rng = StdRng::seed_from_u64(7);
        let mut gen = NormalGen::new();
        let t = 1.5;
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            stats.push(m.step(m.r0, t, gen.sample(&mut rng)));
        }
        let e = (-m.kappa * t).exp();
        let mean = m.theta + (m.r0 - m.theta) * e;
        let var = m.sigma * m.sigma * (1.0 - e * e) / (2.0 * m.kappa);
        assert!((stats.mean() - mean).abs() < 4.0 * stats.std_error());
        assert!((stats.variance() - var).abs() / var < 0.03);
    }

    #[test]
    fn step_composition_consistency() {
        // Two exact steps of dt/2 with independent noise must have the
        // same distribution as one step of dt; check the deterministic
        // part (z = 0).
        let m = Vasicek::standard();
        let one = m.step(0.03, 1.0, 0.0);
        let half = m.step(m.step(0.03, 0.5, 0.0), 0.5, 0.0);
        assert!((one - half).abs() < 1e-14);
    }

    #[test]
    fn mc_bond_price_matches_closed_form() {
        // E[exp(-∫₀ᵀ r dt)] via exact OU path + trapezoid integral.
        let m = Vasicek::standard();
        let t = 2.0;
        let steps = 100;
        let dt = t / steps as f64;
        let mut rng = StdRng::seed_from_u64(11);
        let mut gen = NormalGen::new();
        let mut stats = RunningStats::new();
        for _ in 0..50_000 {
            let mut r = m.r0;
            let mut integral = 0.0;
            for _ in 0..steps {
                let r2 = m.step(r, dt, gen.sample(&mut rng));
                integral += 0.5 * (r + r2) * dt;
                r = r2;
            }
            stats.push((-integral).exp());
        }
        let exact = m.zcb_price(t);
        assert!(
            (stats.mean() - exact).abs() < 4.0 * stats.std_error() + 5e-5,
            "mc {} ± {} exact {exact}",
            stats.mean(),
            stats.std_error()
        );
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(Vasicek {
            r0: 0.05,
            kappa: 0.0,
            theta: 0.05,
            sigma: 0.01
        }
        .validate()
        .is_err());
        assert!(Vasicek {
            r0: f64::NAN,
            kappa: 1.0,
            theta: 0.05,
            sigma: 0.01
        }
        .validate()
        .is_err());
    }
}
