//! Multi-asset Black–Scholes: `d` correlated geometric Brownian motions,
//! the model under the paper's 40-dimensional basket puts and
//! 7-dimensional American basket puts (§4.3).
//!
//! All assets share one volatility and pairwise correlation `ρ`
//! (equicorrelated structure), which is how index-basket benchmarks are
//! conventionally parametrised; the code paths support full per-asset
//! parameters where they are cheap to keep general.

use numerics::rng::CorrelatedNormals;

/// Equicorrelated multi-asset Black–Scholes model.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBlackScholes {
    /// Number of underlying assets (e.g. 40 for a CAC-40 basket).
    pub dim: usize,
    /// Common initial spot (per asset).
    pub spot: f64,
    /// Common volatility.
    pub sigma: f64,
    /// Pairwise correlation between any two assets.
    pub rho: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Continuous dividend yield.
    pub dividend: f64,
}

impl MultiBlackScholes {
    /// Construct with validation; panics on invalid parameters.
    pub fn new(dim: usize, spot: f64, sigma: f64, rho: f64, rate: f64, dividend: f64) -> Self {
        let m = MultiBlackScholes {
            dim,
            spot,
            sigma,
            rho,
            rate,
            dividend,
        };
        m.validate()
            .expect("invalid multi-asset Black-Scholes parameters");
        m
    }

    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dimension must be at least 1".into());
        }
        if !(self.spot > 0.0 && self.sigma > 0.0) {
            return Err("spot and sigma must be positive".into());
        }
        // Equicorrelation matrix is positive definite iff
        // -1/(d-1) < rho < 1.
        let lo = if self.dim > 1 {
            -1.0 / (self.dim as f64 - 1.0)
        } else {
            -1.0
        };
        if !(self.rho > lo && self.rho < 1.0) {
            return Err(format!(
                "rho {} outside positive-definite range ({lo}, 1)",
                self.rho
            ));
        }
        if !self.rate.is_finite() || !self.dividend.is_finite() {
            return Err("rate/dividend must be finite".into());
        }
        Ok(())
    }

    /// Correlated-normal generator for this model's correlation structure.
    pub fn correlator(&self) -> CorrelatedNormals {
        CorrelatedNormals::equicorrelated(self.dim, self.rho)
            .expect("validated correlation must be positive definite")
    }

    /// Risk-neutral drift of `ln S`.
    pub fn log_drift(&self) -> f64 {
        self.rate - self.dividend - 0.5 * self.sigma * self.sigma
    }

    /// Exact terminal samples for every asset given a *correlated*
    /// Gaussian vector `z` (as produced by [`Self::correlator`]).
    pub fn terminal(&self, t: f64, z: &[f64], out: &mut [f64]) {
        assert_eq!(z.len(), self.dim);
        assert_eq!(out.len(), self.dim);
        let drift = self.log_drift() * t;
        let volt = self.sigma * t.sqrt();
        for i in 0..self.dim {
            out[i] = self.spot * (drift + volt * z[i]).exp();
        }
    }

    /// One exact transition step for all assets.
    pub fn step(&self, s: &mut [f64], dt: f64, z: &[f64]) {
        assert_eq!(s.len(), self.dim);
        assert_eq!(z.len(), self.dim);
        let drift = self.log_drift() * dt;
        let volt = self.sigma * dt.sqrt();
        for i in 0..self.dim {
            s[i] *= (drift + volt * z[i]).exp();
        }
    }

    /// Discount factor `e^{-rT}`.
    pub fn discount(&self, t: f64) -> f64 {
        (-self.rate * t).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_one_reduces_to_black_scholes() {
        let multi = MultiBlackScholes::new(1, 100.0, 0.2, 0.0, 0.05, 0.0);
        let single = crate::models::BlackScholes::new(100.0, 0.2, 0.05, 0.0);
        let mut out = [0.0];
        multi.terminal(1.0, &[0.5], &mut out);
        assert!((out[0] - single.terminal(1.0, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn terminal_fills_all_assets() {
        let m = MultiBlackScholes::new(5, 100.0, 0.2, 0.3, 0.05, 0.0);
        let z = [0.0, 1.0, -1.0, 0.5, 2.0];
        let mut out = [0.0; 5];
        m.terminal(0.5, &z, &mut out);
        for &s in &out {
            assert!(s > 0.0);
        }
        assert!(out[1] > out[0] && out[0] > out[2]);
    }

    #[test]
    fn step_accumulates_like_terminal() {
        let m = MultiBlackScholes::new(2, 80.0, 0.25, 0.5, 0.03, 0.01);
        let z = [0.4, -0.2];
        let mut s = [80.0, 80.0];
        let sq = 2f64.sqrt();
        let zh = [z[0] / sq, z[1] / sq];
        m.step(&mut s, 0.5, &zh);
        m.step(&mut s, 0.5, &zh);
        let mut t = [0.0; 2];
        m.terminal(1.0, &z, &mut t);
        for i in 0..2 {
            assert!((s[i] - t[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn validate_rho_bounds() {
        // For dim 40, rho must exceed -1/39.
        assert!(MultiBlackScholes {
            dim: 40,
            spot: 100.0,
            sigma: 0.2,
            rho: -0.05,
            rate: 0.05,
            dividend: 0.0
        }
        .validate()
        .is_err());
        assert!(MultiBlackScholes {
            dim: 40,
            spot: 100.0,
            sigma: 0.2,
            rho: 0.3,
            rate: 0.05,
            dividend: 0.0
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn correlator_has_model_dimension() {
        let m = MultiBlackScholes::new(7, 100.0, 0.2, 0.4, 0.05, 0.0);
        assert_eq!(m.correlator().dim(), 7);
    }
}
