//! The Heston stochastic-volatility model.
//!
//! §3.3's example prices an American option in the 1-D Heston model with
//! an Alfonsi-discretised Longstaff–Schwartz method
//! (`MC_AM_Alfonsi_LongstaffSchwartz`). The dynamics are
//!
//! ```text
//! dS = S (r − q) dt + S √v dW₁
//! dv = κ(θ − v) dt + ξ √v dW₂,   d⟨W₁,W₂⟩ = ρ dt
//! ```
//!
//! The variance is discretised with the *full-truncation* Euler scheme
//! (Lord–Koekkoek–van Dijk), which is unconditionally positive-preserving
//! in the variance argument of the square root and is the standard robust
//! substitute for Alfonsi's implicit CIR scheme (the substitution is
//! recorded in DESIGN.md); the asset uses log-Euler with the truncated
//! variance.

/// Heston model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heston {
    /// Spot price of the underlying.
    pub spot: f64,
    /// Initial variance v₀ (not volatility).
    pub v0: f64,
    /// Mean-reversion speed κ.
    pub kappa: f64,
    /// Long-run variance θ.
    pub theta: f64,
    /// Vol-of-vol ξ.
    pub xi: f64,
    /// Spot/variance correlation ρ.
    pub rho: f64,
    /// Risk-free rate (continuously compounded).
    pub rate: f64,
    /// Continuous dividend yield.
    pub dividend: f64,
}

impl Heston {
    #[allow(clippy::too_many_arguments)]
    /// Construct with validation; panics on invalid parameters.
    pub fn new(
        spot: f64,
        v0: f64,
        kappa: f64,
        theta: f64,
        xi: f64,
        rho: f64,
        rate: f64,
        dividend: f64,
    ) -> Self {
        let m = Heston {
            spot,
            v0,
            kappa,
            theta,
            xi,
            rho,
            rate,
            dividend,
        };
        m.validate().expect("invalid Heston parameters");
        m
    }

    /// A conventional equity calibration (satisfies the Feller condition).
    pub fn standard(spot: f64, rate: f64) -> Self {
        Self::new(spot, 0.04, 2.0, 0.04, 0.3, -0.7, rate, 0.0)
    }

    /// Parameter sanity checks; `Err` describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.spot > 0.0) {
            return Err("spot must be positive".into());
        }
        if !(self.v0 >= 0.0 && self.theta > 0.0 && self.kappa > 0.0 && self.xi > 0.0) {
            return Err("v0 >= 0, theta, kappa, xi must be positive".into());
        }
        if !(self.rho > -1.0 && self.rho < 1.0) {
            return Err("rho must be in (-1, 1)".into());
        }
        if !self.rate.is_finite() || !self.dividend.is_finite() {
            return Err("rate/dividend must be finite".into());
        }
        Ok(())
    }

    /// Does the calibration satisfy the Feller condition `2κθ ≥ ξ²`
    /// (variance a.s. strictly positive)?
    pub fn feller(&self) -> bool {
        2.0 * self.kappa * self.theta >= self.xi * self.xi
    }

    /// One full-truncation Euler step of the pair `(s, v)` over `dt` with
    /// correlated standard normals `z1` (spot) and `z2` (variance):
    /// `dW₂ = ρ dW₁ + √(1-ρ²) dW⊥`.
    pub fn step(&self, s: f64, v: f64, dt: f64, z1: f64, z2: f64) -> (f64, f64) {
        let vp = v.max(0.0);
        let sqdt = dt.sqrt();
        let zv = self.rho * z1 + (1.0 - self.rho * self.rho).sqrt() * z2;
        let v_next = v + self.kappa * (self.theta - vp) * dt + self.xi * vp.sqrt() * sqdt * zv;
        let s_next =
            s * ((self.rate - self.dividend - 0.5 * vp) * dt + vp.sqrt() * sqdt * z1).exp();
        (s_next, v_next)
    }

    /// Discount factor `e^{-rT}`.
    pub fn discount(&self, t: f64) -> f64 {
        (-self.rate * t).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::NormalGen;
    use numerics::stats::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_calibration_is_feller() {
        let m = Heston::standard(100.0, 0.05);
        assert!(m.feller());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn spot_stays_positive_even_with_negative_variance_excursions() {
        let m = Heston::new(100.0, 0.04, 1.0, 0.04, 1.0, -0.5, 0.05, 0.0); // violates Feller
        assert!(!m.feller());
        let mut s = 100.0;
        let mut v = 0.04;
        let mut rng = StdRng::seed_from_u64(9);
        let mut gen = NormalGen::new();
        for _ in 0..1000 {
            let (s2, v2) = m.step(s, v, 0.01, gen.sample(&mut rng), gen.sample(&mut rng));
            assert!(s2 > 0.0);
            assert!(s2.is_finite() && v2.is_finite());
            s = s2;
            v = v2;
        }
    }

    #[test]
    fn variance_mean_reverts_to_theta() {
        let m = Heston::standard(100.0, 0.05);
        let mut rng = StdRng::seed_from_u64(4);
        let mut gen = NormalGen::new();
        let mut stats = RunningStats::new();
        // Long-horizon variance average should be near θ.
        for _ in 0..200 {
            let mut s = m.spot;
            let mut v = 0.16; // start far above θ=0.04
            for _ in 0..500 {
                let (s2, v2) = m.step(s, v, 0.02, gen.sample(&mut rng), gen.sample(&mut rng));
                s = s2;
                v = v2;
            }
            stats.push(v.max(0.0));
        }
        assert!(
            (stats.mean() - m.theta).abs() < 0.02,
            "terminal variance mean {}",
            stats.mean()
        );
    }

    #[test]
    fn martingale_property_of_discounted_spot() {
        // E[e^{-rT} S_T] should equal S₀ e^{-qT}.
        let m = Heston::standard(100.0, 0.05);
        let mut rng = StdRng::seed_from_u64(11);
        let mut gen = NormalGen::new();
        let mut stats = RunningStats::new();
        let steps = 50;
        let dt = 1.0 / steps as f64;
        for _ in 0..20_000 {
            let mut s = m.spot;
            let mut v = m.v0;
            for _ in 0..steps {
                let (s2, v2) = m.step(s, v, dt, gen.sample(&mut rng), gen.sample(&mut rng));
                s = s2;
                v = v2;
            }
            stats.push(s * m.discount(1.0));
        }
        let err = (stats.mean() - 100.0).abs();
        assert!(
            err < 4.0 * stats.std_error().max(0.05),
            "discounted mean {} ± {}",
            stats.mean(),
            stats.std_error()
        );
    }

    #[test]
    fn validate_rejects_bad_rho() {
        assert!(Heston {
            rho: 1.0,
            ..Heston::standard(100.0, 0.05)
        }
        .validate()
        .is_err());
    }
}
