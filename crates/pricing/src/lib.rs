//! A Premia-like option-pricing library.
//!
//! Premia is the numerical engine of the paper: "finite difference
//! algorithms, tree methods and Monte Carlo methods for pricing and hedging
//! European and American options on equities in several models going from
//! the standard Black-Scholes model to more complex models such as local
//! and stochastic volatility models". This crate rebuilds that engine in
//! Rust, scoped to the model/option/method combinations the paper's
//! benchmark portfolios actually exercise (§4.1–§4.3), plus the `Heston` +
//! American-Monte-Carlo example of §3.3:
//!
//! | models | options | methods |
//! |---|---|---|
//! | Black–Scholes | European call/put | closed form (+Greeks) |
//! | multi-dim Black–Scholes | down-and-out barrier call | Crank–Nicolson PDE (PSOR for American) |
//! | parametric local volatility | American put | CRR binomial tree |
//! | Heston stochastic volatility | basket put (up to 40 assets) | Monte-Carlo (antithetic, QMC ablation) |
//! |  | American basket put | Longstaff–Schwartz |
//!
//! The [`problem`] module mirrors the paper's `PremiaModel` class: a
//! pricing problem is described by `(asset, model, option, method)` strings
//! and parameters, can be saved/loaded/`sload`-ed through `xdrser`, and is
//! computed with [`problem::PremiaProblem::compute`]. The [`regression`]
//! module enumerates one instance of every supported combination — the
//! paper's §4.1 non-regression test suite.

// Validation deliberately uses negated comparisons (`!(x > 0.0)`) so NaN
// fails validation; stencil loops index several coupled arrays at once.
#![warn(missing_docs)]
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod lanes;
pub mod methods;
pub mod models;
pub mod options;
pub mod problem;
pub mod regression;

pub use problem::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem, PricingError, PricingResult};
