//! Column-major matrices of `f64`, `bool` and `String`, mirroring Nsp's
//! `Mat`, `BMat` and `SMat` types.

use std::fmt;

/// A dense real matrix, column-major (Fortran order), like Nsp/Matlab.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create from column-major data; panics on shape mismatch.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Create from row-major data (convenient in Rust source).
    pub fn from_row_major(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        let mut out = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = data[r * cols + c];
            }
        }
        Matrix {
            rows,
            cols,
            data: out,
        }
    }

    /// A zero-filled matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A 1×1 matrix — Nsp scalars are 1×1 matrices.
    pub fn scalar(x: f64) -> Self {
        Matrix {
            rows: 1,
            cols: 1,
            data: vec![x],
        }
    }

    /// A 1×n row vector.
    pub fn row(data: Vec<f64>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// An n×1 column vector.
    pub fn col(data: Vec<f64>) -> Self {
        let rows = data.len();
        Matrix {
            rows,
            cols: 1,
            data,
        }
    }

    /// The `a:b` range constructor (`1:100` in the paper's Fig. 2 example):
    /// integer-stepped inclusive row vector.
    pub fn range(from: f64, to: f64) -> Self {
        let mut data = Vec::new();
        let mut x = from;
        while x <= to + 1e-12 {
            data.push(x);
            x += 1.0;
        }
        Matrix::row(data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True for 1×1 values.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Element at (row, column), 0-based.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[c * self.rows + r]
    }

    /// Set the element at (row, column), 0-based.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[c * self.rows + r] = v;
    }

    /// Linear (column-major) indexing, as Nsp's `A(k)`.
    pub fn get_linear(&self, k: usize) -> f64 {
        self.data[k]
    }

    /// The backing storage (column-major for matrices).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing storage (column-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Equality within floating tolerance (used by tests; `PartialEq` is
    /// bitwise).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "r ({}x{})", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "|")?;
            for c in 0..self.cols {
                write!(f, " {:>10.5}", self.get(r, c))?;
            }
            writeln!(f, " |")?;
        }
        Ok(())
    }
}

/// A boolean matrix (`BMat`), e.g. `%t` is a 1×1 `BoolMatrix`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolMatrix {
    rows: usize,
    cols: usize,
    data: Vec<bool>,
}

impl BoolMatrix {
    /// Build from column-major storage; panics on shape mismatch.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<bool>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        BoolMatrix { rows, cols, data }
    }

    /// A 1×1 value.
    pub fn scalar(b: bool) -> Self {
        BoolMatrix {
            rows: 1,
            cols: 1,
            data: vec![b],
        }
    }

    /// A 1×n row vector.
    pub fn row(data: Vec<bool>) -> Self {
        let cols = data.len();
        BoolMatrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at (row, column), 0-based.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[c * self.rows + r]
    }

    /// The backing storage (column-major for matrices).
    pub fn data(&self) -> &[bool] {
        &self.data
    }

    /// True for 1×1 values.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// All entries true (Nsp truthiness of a boolean matrix in `if`).
    pub fn all(&self) -> bool {
        self.data.iter().all(|&b| b)
    }
}

impl fmt::Display for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "b ({}x{})", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "|")?;
            for c in 0..self.cols {
                write!(f, " {}", if self.get(r, c) { "T" } else { "F" })?;
            }
            writeln!(f, " |")?;
        }
        Ok(())
    }
}

/// A matrix of strings (`SMat`); a plain Nsp string is a 1×1 `StrMatrix`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrMatrix {
    rows: usize,
    cols: usize,
    data: Vec<String>,
}

impl StrMatrix {
    /// Build from column-major storage; panics on shape mismatch.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<String>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        StrMatrix { rows, cols, data }
    }

    /// A 1×1 value.
    pub fn scalar<S: Into<String>>(s: S) -> Self {
        StrMatrix {
            rows: 1,
            cols: 1,
            data: vec![s.into()],
        }
    }

    /// A 1×n row vector.
    pub fn row(data: Vec<String>) -> Self {
        let cols = data.len();
        StrMatrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at (row, column), 0-based.
    pub fn get(&self, r: usize, c: usize) -> &str {
        &self.data[c * self.rows + r]
    }

    /// The backing storage (column-major for matrices).
    pub fn data(&self) -> &[String] {
        &self.data
    }

    /// True for 1×1 values.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// The contained string when 1×1.
    pub fn as_scalar(&self) -> Option<&str> {
        if self.is_scalar() {
            Some(&self.data[0])
        } else {
            None
        }
    }
}

impl fmt::Display for StrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "s ({}x{})", self.rows, self.cols)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, " {}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_major_layout() {
        // [[1,2],[3,4]] row-major should store as [1,3,2,4] col-major.
        let m = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.data(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn scalar_is_1x1() {
        let m = Matrix::scalar(7.5);
        assert!(m.is_scalar());
        assert_eq!(m.get(0, 0), 7.5);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn range_matches_nsp_colon() {
        let m = Matrix::range(1.0, 5.0);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let empty = Matrix::range(3.0, 2.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn set_get_round_trip() {
        let mut m = Matrix::zeros(3, 4);
        m.set(2, 3, 9.0);
        assert_eq!(m.get(2, 3), 9.0);
        assert_eq!(m.get_linear(3 * 3 + 2), 9.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Matrix::scalar(1.0);
        let b = Matrix::scalar(1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-14));
        assert!(!a.approx_eq(&Matrix::zeros(1, 2), 1.0));
    }

    #[test]
    fn bool_matrix_all() {
        assert!(BoolMatrix::scalar(true).all());
        assert!(!BoolMatrix::row(vec![true, false]).all());
        assert!(BoolMatrix::row(vec![true, true]).all());
    }

    #[test]
    fn str_matrix_scalar_access() {
        let s = StrMatrix::scalar("hello");
        assert_eq!(s.as_scalar(), Some("hello"));
        let m = StrMatrix::row(vec!["a".into(), "b".into()]);
        assert_eq!(m.as_scalar(), None);
        assert_eq!(m.get(0, 1), "b");
    }

    #[test]
    fn display_formats() {
        let m = Matrix::from_row_major(1, 2, &[1.0, 2.0]);
        let s = format!("{m}");
        assert!(s.contains("1x2") || s.contains("(1x2)"));
        let b = format!("{}", BoolMatrix::scalar(true));
        assert!(b.contains('T'));
    }
}
