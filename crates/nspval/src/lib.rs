//! An Nsp-like dynamic value system.
//!
//! Nsp (the Matlab-like host language of the paper) manipulates a small set
//! of dynamically typed objects: real matrices, boolean matrices, string
//! matrices, lists, hash tables, and opaque `Serial` byte buffers produced
//! by serialization. This crate reproduces that object model in Rust; the
//! `xdrser` crate provides the architecture-independent encoding
//! (`serialize`/`save`/`load`/`sload`), `minimpi` transmits values between
//! ranks, and `nsplang` interprets scripts over them.
//!
//! Matrices are column-major `f64` (exactly as in Nsp/Matlab/Scilab), and a
//! scalar is a 1×1 matrix — faithful to the paper's host language, where
//! `rand(4,4)`, `%t`, `'string'` and `list(...)` are the objects being
//! serialized and shipped over MPI.

#![warn(missing_docs)]
pub mod matrix;
pub mod value;

pub use matrix::{BoolMatrix, Matrix, StrMatrix};
pub use value::{Hash, List, Serial, Value};
