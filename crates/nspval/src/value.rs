//! The dynamic `Value` enum and its container types (`List`, `Hash`,
//! `Serial`).

use crate::matrix::{BoolMatrix, Matrix, StrMatrix};
use std::fmt;

/// An ordered, heterogeneous list — Nsp's `list(...)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct List {
    items: Vec<Value>,
}

impl List {
    /// An empty list.
    pub fn new() -> Self {
        List { items: Vec::new() }
    }

    /// Build from an item vector.
    pub fn from_vec(items: Vec<Value>) -> Self {
        List { items }
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Nsp's `L.add_last[v]`.
    pub fn add_last(&mut self, v: Value) {
        self.items.push(v);
    }

    /// 0-based access (Nsp is 1-based at the language level; the
    /// interpreter does the shift).
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.items.get(i)
    }

    /// Mutable element at a 0-based index.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut Value> {
        self.items.get_mut(i)
    }

    /// Iterate over the contents in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.items.iter()
    }

    /// Remove `count` items starting at 0-based `start` —
    /// `Lpb(1:mpi_size-1)=[]` in the Fig. 4 master script.
    pub fn remove_range(&mut self, start: usize, count: usize) {
        let end = (start + count).min(self.items.len());
        self.items.drain(start..end);
    }
}

impl IntoIterator for List {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// An insertion-ordered string-keyed table — Nsp's hash tables
/// (`hash_create(A=..., B=...)`, `H.A = ...`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Hash {
    entries: Vec<(String, Value)>,
}

impl Hash {
    /// An empty hash table.
    pub fn new() -> Self {
        Hash {
            entries: Vec::new(),
        }
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or overwrite (`H.key = v`).
    pub fn set(&mut self, key: &str, v: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = v;
        } else {
            self.entries.push((key.to_string(), v));
        }
    }

    /// Look up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Remove an entry by key, returning it.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Iterate over the contents in order.
    pub fn iter(&self) -> std::slice::Iter<'_, (String, Value)> {
        self.entries.iter()
    }
}

/// An opaque serialized byte buffer — Nsp's `Serial` objects, produced by
/// `serialize(...)` or `sload(...)` and consumed by `unserialize`
/// (`S.unserialize[]`). The `compressed` flag mirrors Nsp's
/// compressed-serial extension (`S.compress[]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Serial {
    bytes: Vec<u8>,
    compressed: bool,
}

impl Serial {
    /// Wrap raw serialized bytes as an uncompressed serial.
    pub fn new(bytes: Vec<u8>) -> Self {
        Serial {
            bytes,
            compressed: false,
        }
    }

    /// Wrap bytes produced by the LZSS compressor.
    pub fn new_compressed(bytes: Vec<u8>) -> Self {
        Serial {
            bytes,
            compressed: true,
        }
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume into the raw byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// True when the buffer holds compressed data.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }
}

impl fmt::Display for Serial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}-bytes> serial", self.bytes.len())
    }
}

/// A dynamically typed Nsp value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Real matrix (`r`); scalars are 1×1.
    Real(Matrix),
    /// Boolean matrix (`b`); `%t`/`%f` are 1×1.
    Bool(BoolMatrix),
    /// String matrix (`s`); plain strings are 1×1.
    Str(StrMatrix),
    /// Ordered heterogeneous list (`l`).
    List(List),
    /// Insertion-ordered hash table (`h`).
    Hash(Hash),
    /// Opaque serialized buffer.
    Serial(Serial),
    /// The absent value (empty matrix `[]` doubles as "none" in scripts).
    None,
}

impl Value {
    // ----- constructors ---------------------------------------------------

    /// A 1×1 value.
    pub fn scalar(x: f64) -> Value {
        Value::Real(Matrix::scalar(x))
    }

    /// A 1×1 string value.
    pub fn string<S: Into<String>>(s: S) -> Value {
        Value::Str(StrMatrix::scalar(s))
    }

    /// A 1×1 boolean value.
    pub fn boolean(b: bool) -> Value {
        Value::Bool(BoolMatrix::scalar(b))
    }

    /// A list holding the given items.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(List::from_vec(items))
    }

    /// Nsp's empty matrix `[]`.
    pub fn empty_matrix() -> Value {
        Value::Real(Matrix::zeros(0, 0))
    }

    // ----- inspectors -----------------------------------------------------

    /// One-letter type tag as printed by Nsp (`r`, `b`, `s`, `l`, `h`, …).
    pub fn type_tag(&self) -> char {
        match self {
            Value::Real(_) => 'r',
            Value::Bool(_) => 'b',
            Value::Str(_) => 's',
            Value::List(_) => 'l',
            Value::Hash(_) => 'h',
            Value::Serial(_) => 'z',
            Value::None => 'n',
        }
    }

    /// The scalar content of a 1×1 real value.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Real(m) if m.is_scalar() => Some(m.get(0, 0)),
            _ => None,
        }
    }

    /// The string content of a 1×1 string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => s.as_scalar(),
            _ => None,
        }
    }

    /// The boolean content of a 1×1 boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) if b.is_scalar() => Some(b.get(0, 0)),
            _ => None,
        }
    }

    /// The contained real matrix, if any.
    pub fn as_matrix(&self) -> Option<&Matrix> {
        match self {
            Value::Real(m) => Some(m),
            _ => None,
        }
    }

    /// The contained list, if any.
    pub fn as_list(&self) -> Option<&List> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable access to the contained list, if any.
    pub fn as_list_mut(&mut self) -> Option<&mut List> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// The contained hash table, if any.
    pub fn as_hash(&self) -> Option<&Hash> {
        match self {
            Value::Hash(h) => Some(h),
            _ => None,
        }
    }

    /// Mutable access to the contained hash table, if any.
    pub fn as_hash_mut(&mut self) -> Option<&mut Hash> {
        match self {
            Value::Hash(h) => Some(h),
            _ => None,
        }
    }

    /// The contained serial buffer, if any.
    pub fn as_serial(&self) -> Option<&Serial> {
        match self {
            Value::Serial(s) => Some(s),
            _ => None,
        }
    }

    /// Nsp's `A.equal[B]` — deep structural equality; matrices compare
    /// element-wise exactly.
    pub fn equal(&self, other: &Value) -> bool {
        self == other
    }

    /// Is this the empty matrix `[]` (the stop sentinel of Fig. 4)?
    pub fn is_empty_matrix(&self) -> bool {
        matches!(self, Value::Real(m) if m.is_empty())
    }

    /// Truthiness in `if`/`while` (boolean matrices: all true; scalars:
    /// nonzero).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => b.all() && b.data().iter().count() > 0,
            Value::Real(m) => !m.is_empty() && m.data().iter().all(|&x| x != 0.0),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Real(m) => write!(f, "{m}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(l) => {
                writeln!(f, "l ({})", l.len())?;
                for (i, v) in l.iter().enumerate() {
                    writeln!(f, "({}) = {}", i + 1, v)?;
                }
                Ok(())
            }
            Value::Hash(h) => {
                writeln!(f, "h ({})", h.len())?;
                for (k, v) in h.iter() {
                    writeln!(f, "{k} = {v}")?;
                }
                Ok(())
            }
            Value::Serial(s) => write!(f, "{s}"),
            Value::None => write!(f, "none"),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::scalar(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::boolean(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::string(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::string(s)
    }
}

impl From<Matrix> for Value {
    fn from(m: Matrix) -> Value {
        Value::Real(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let v = Value::scalar(3.25);
        assert_eq!(v.as_scalar(), Some(3.25));
        assert_eq!(v.type_tag(), 'r');
        assert!(v.as_str().is_none());
    }

    #[test]
    fn string_round_trip() {
        let v = Value::string("premia");
        assert_eq!(v.as_str(), Some("premia"));
        assert_eq!(v.type_tag(), 's');
    }

    #[test]
    fn list_like_paper_example() {
        // A = list('string', %t, rand(4,4)) from §3.2
        let v = Value::list(vec![
            Value::string("string"),
            Value::boolean(true),
            Value::Real(Matrix::zeros(4, 4)),
        ]);
        let l = v.as_list().unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.get(0).unwrap().as_str(), Some("string"));
        assert_eq!(l.get(1).unwrap().as_bool(), Some(true));
        assert_eq!(l.get(2).unwrap().as_matrix().unwrap().rows(), 4);
    }

    #[test]
    fn hash_insertion_order_preserved() {
        let mut h = Hash::new();
        h.set("B", Value::scalar(2.0));
        h.set("A", Value::scalar(1.0));
        h.set("B", Value::scalar(3.0)); // overwrite keeps position
        let keys: Vec<&str> = h.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["B", "A"]);
        assert_eq!(h.get("B").unwrap().as_scalar(), Some(3.0));
        assert_eq!(h.len(), 2);
        assert!(h.contains_key("A"));
        assert_eq!(h.remove("A").unwrap().as_scalar(), Some(1.0));
        assert!(!h.contains_key("A"));
    }

    #[test]
    fn list_remove_range_like_fig4() {
        // Lpb(1:mpi_size-1) = [] removes the already-dispatched head.
        let mut l = List::from_vec((0..10).map(|i| Value::scalar(i as f64)).collect());
        l.remove_range(0, 3);
        assert_eq!(l.len(), 7);
        assert_eq!(l.get(0).unwrap().as_scalar(), Some(3.0));
        // Removing past the end clamps.
        l.remove_range(5, 100);
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn empty_matrix_is_stop_sentinel() {
        let stop = Value::empty_matrix();
        assert!(stop.is_empty_matrix());
        assert!(!Value::scalar(0.0).is_empty_matrix());
    }

    #[test]
    fn equal_is_deep() {
        let a = Value::list(vec![Value::string("x"), Value::scalar(1.0)]);
        let b = Value::list(vec![Value::string("x"), Value::scalar(1.0)]);
        let c = Value::list(vec![Value::string("x"), Value::scalar(2.0)]);
        assert!(a.equal(&b));
        assert!(!a.equal(&c));
    }

    #[test]
    fn truthiness() {
        assert!(Value::boolean(true).truthy());
        assert!(!Value::boolean(false).truthy());
        assert!(Value::scalar(1.0).truthy());
        assert!(!Value::scalar(0.0).truthy());
        assert!(!Value::empty_matrix().truthy());
        assert!(!Value::string("x").truthy());
    }

    #[test]
    fn serial_display_matches_paper_format() {
        // The paper prints `<842-bytes> serial`.
        let s = Serial::new(vec![0u8; 842]);
        assert_eq!(format!("{s}"), "<842-bytes> serial");
        assert!(!s.is_compressed());
        assert!(Serial::new_compressed(vec![1]).is_compressed());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(2.0).as_scalar(), Some(2.0));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from(String::from("t")).as_str(), Some("t"));
    }
}
