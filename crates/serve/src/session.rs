//! The long-lived pricing session: a resident slave world behind a
//! bounded request queue.
//!
//! One [`Session`] spins up the same `slaves + 1`-rank in-process world
//! as a `farm::run` call — and keeps it. Submitters hand in
//! [`Request`]s (priced portfolios with a priority class and an
//! optional queue deadline) and get back a [`Ticket`]; the front loop
//! (rank 0) drains the queue, coalesces identical problems, serves
//! repeats from the result memo, and drives each batch through the same
//! pure [`sched::Scheduler`] state machine the one-shot farm masters
//! use — supervised, so a slave killed mid-request still leaves every
//! admitted ticket answered exactly once.
//!
//! The division of labour with admission control: [`Session::submit`]
//! runs on the *caller's* thread and only touches atomics (shed
//! decisions never wait for the farm), while all scheduling, memo and
//! recording state is owned single-threaded by the front loop.

use crate::config::{ServeConfig, ServeError};
use farm::wire::Answer;
use minimpi::{Comm, MpiError, World, ANY_SOURCE};
use nspval::{Serial, Value};
use obs::{Event, EventKind, Recorder, NO_JOB};
use pricing::PremiaProblem;
use sched::{Action, DispatchPolicy, Event as SchedEvent, SchedConfig, Scheduler, Supervision};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use transport::queue;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The session wire tag (the farm protocols use 7 and 9).
const TAG: i32 = 11;

/// Budget charged per memo entry value: a price, an optional standard
/// error, and the `Option` discriminant.
const MEMO_VALUE_BYTES: usize = 24;

// ---------------------------------------------------------------------------
// Public request/response types
// ---------------------------------------------------------------------------

/// A priced portfolio submitted to a [`Session`].
#[derive(Debug, Clone)]
pub struct Request {
    problems: Vec<PremiaProblem>,
    priority: u8,
    deadline: Option<Duration>,
}

impl Request {
    /// A request at the default priority (class 1 of 3 — "normal"),
    /// with no queue deadline.
    pub fn new(problems: Vec<PremiaProblem>) -> Self {
        Request {
            problems,
            priority: 1,
            deadline: None,
        }
    }

    /// Set the priority class (0 is the most urgent).
    pub fn priority(mut self, class: u8) -> Self {
        self.priority = class;
        self
    }

    /// Bound the time the request may sit in the queue: a request still
    /// undispatched after `d` is expired (its ticket is answered with
    /// an error for every problem rather than left hanging).
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// One priced problem in a [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub struct Priced {
    /// Price estimate — bit-identical whether computed fresh or served
    /// from the memo.
    pub price: f64,
    /// Monte-Carlo standard error, when the method reports one.
    pub std_error: Option<f64>,
    /// `true` when the answer came from the result memo or was
    /// coalesced onto another request's compute.
    pub memoised: bool,
}

/// The answer to one admitted request: exactly one per ticket.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request id (matches [`Ticket::id`]).
    pub id: u64,
    /// Per-problem results, in submission order. `Err` carries the
    /// reason (compute failure, exhausted retry budget, queue-deadline
    /// expiry).
    pub results: Vec<Result<Priced, String>>,
    /// End-to-end latency, submission to answer.
    pub latency: Duration,
}

impl Response {
    /// `true` when every problem priced successfully.
    pub fn all_priced(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }

    /// Number of problems answered from the memo / by coalescing.
    pub fn memoised_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r, Ok(p) if p.memoised))
            .count()
    }
}

/// The handle returned by [`Session::submit`]: a claim on exactly one
/// [`Response`].
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: queue::Receiver<Response>,
}

impl Ticket {
    /// The request id this ticket will be answered under.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the response arrives. Errs with
    /// [`ServeError::SessionClosed`] only if the session died without
    /// answering (a front-loop panic or a full-world collapse during
    /// shutdown).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().map_err(|_| ServeError::SessionClosed)
    }
}

/// Counters of one session's lifetime, returned by
/// [`Session::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Requests answered with priced results.
    pub answered: u64,
    /// Admitted requests answered as expired (queue deadline).
    pub expired: u64,
    /// Requests turned away at admission ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Problems answered without a fresh compute (memo or coalescing).
    pub memo_hits: u64,
    /// Problems dispatched to slaves and priced.
    pub computed: u64,
    /// Problems abandoned (retry budget exhausted or slaves dead).
    pub failed: u64,
    /// Re-dispatches the supervised scheduler performed.
    pub retries: u64,
    /// Slave ranks that died during the session.
    pub dead_slaves: Vec<usize>,
    /// Result-memo traffic counters.
    pub memo: store::MemoStats,
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Shared admission state: per-priority queue occupancy plus the
/// in-flight byte gauge, all atomics so [`Session::submit`] never
/// blocks on the front loop.
struct Admission {
    depth: Vec<AtomicUsize>,
    bytes: AtomicUsize,
    byte_budget: usize,
}

impl Admission {
    fn new(classes: u8, byte_budget: usize) -> Self {
        Admission {
            depth: (0..classes).map(|_| AtomicUsize::new(0)).collect(),
            bytes: AtomicUsize::new(0),
            byte_budget,
        }
    }

    /// Reserve a queue slot and `bytes` of budget, or say exactly why
    /// not. Optimistic increment with rollback: over-admission is
    /// impossible because every racer that observes an overshoot rolls
    /// its own reservation back before erring.
    fn try_admit(&self, priority: u8, limit: usize, bytes: usize) -> Result<(), ServeError> {
        let d = &self.depth[priority as usize];
        let queued = d.fetch_add(1, Ordering::SeqCst) + 1;
        if queued > limit {
            d.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::Overloaded {
                priority,
                queued: queued - 1,
                depth_limit: limit,
                inflight_bytes: self.bytes.load(Ordering::SeqCst),
                byte_budget: self.byte_budget,
            });
        }
        let inflight = self.bytes.fetch_add(bytes, Ordering::SeqCst) + bytes;
        if inflight > self.byte_budget {
            self.bytes.fetch_sub(bytes, Ordering::SeqCst);
            d.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::Overloaded {
                priority,
                queued: queued - 1,
                depth_limit: limit,
                inflight_bytes: inflight - bytes,
                byte_budget: self.byte_budget,
            });
        }
        Ok(())
    }

    /// Return a request's reservation (on answer, expiry, or a failed
    /// enqueue).
    fn release(&self, priority: u8, bytes: usize) {
        self.depth[priority as usize].fetch_sub(1, Ordering::SeqCst);
        self.bytes.fetch_sub(bytes, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Queue messages
// ---------------------------------------------------------------------------

/// One problem, prepared on the submitter's thread: serialized once,
/// fingerprinted once.
struct Prepared {
    serial: Vec<u8>,
    key: store::MemoKey,
}

/// An admitted request travelling to the front loop.
struct Submitted {
    id: u64,
    jobs: Vec<Prepared>,
    priority: u8,
    deadline: Option<Duration>,
    submitted: Instant,
    /// Recorder clock at submission (None when unrecorded) — the start
    /// of the `Enqueue` and `Admit` spans.
    enq_ns: Option<u64>,
    bytes: usize,
    reply: queue::Sender<Response>,
}

enum Msg {
    Request(Box<Submitted>),
    /// A shed happened on a submitter thread; the front loop records it
    /// (the obs ring of rank 0 is single-writer).
    Shed {
        at_ns: Option<u64>,
        problems: u64,
    },
    Shutdown,
}

// ---------------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------------

/// A long-lived pricing service over a resident in-process world. See
/// the [module docs](self) and `docs/SERVICE.md`.
pub struct Session {
    tx: queue::Sender<Msg>,
    admission: Arc<Admission>,
    recorder: Option<Arc<Recorder>>,
    /// Admission limit per priority class, from
    /// [`ServeConfig::depth_limit`].
    limits: Vec<usize>,
    memo_params: (u32, u32),
    next_id: AtomicU64,
    handle: Option<JoinHandle<Option<SessionReport>>>,
}

impl Session {
    /// Validate `cfg`, spin up the world, and hold it resident until
    /// [`shutdown`](Session::shutdown) (or drop).
    pub fn start(cfg: ServeConfig) -> Result<Session, ServeError> {
        cfg.validate().map_err(ServeError::Config)?;
        let admission = Arc::new(Admission::new(cfg.priorities, cfg.inflight_bytes));
        let (tx, rx) = queue::channel::<Msg>();
        let recorder = cfg.recorder.clone();
        let limits: Vec<usize> = (0..cfg.priorities).map(|p| cfg.depth_limit(p)).collect();
        let memo_params = cfg.memo_params();
        let front_admission = admission.clone();
        let handle = std::thread::spawn(move || {
            // The closure is shared across ranks (the world runs scoped
            // threads); rank 0 takes the receiver out of the slot, the
            // slaves never look.
            let rx_slot = Mutex::new(Some(rx));
            let results = World::run_instrumented(
                cfg.slaves + 1,
                cfg.fault_plan.clone(),
                cfg.recorder.clone(),
                |comm| {
                    if comm.rank() == 0 {
                        let rx = rx_slot.lock().unwrap().take().expect("rank 0 runs once");
                        Some(front_loop(&comm, &cfg, &front_admission, rx))
                    } else {
                        slave_loop(&comm, &cfg);
                        None
                    }
                },
            );
            results.into_iter().next().flatten()
        });
        Ok(Session {
            tx,
            admission,
            recorder,
            limits,
            memo_params,
            next_id: AtomicU64::new(0),
            handle: Some(handle),
        })
    }

    /// Submit a request. Serializes and fingerprints the problems on
    /// the calling thread, runs admission control, and either returns a
    /// [`Ticket`] (the request *will* be answered exactly once) or
    /// sheds with a typed [`ServeError`].
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        if req.problems.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        if req.priority as usize >= self.limits.len() {
            return Err(ServeError::InvalidPriority {
                priority: req.priority,
                classes: self.limits.len() as u8,
            });
        }
        let (chunk, lanes) = self.memo_params;
        let jobs: Vec<Prepared> = req
            .problems
            .iter()
            .map(|p| {
                let serial = xdrser::serialize_to_bytes(&p.to_value());
                let key = store::MemoKey {
                    fp: store::ContentFingerprint::of_bytes(&serial),
                    chunk,
                    lanes,
                };
                Prepared { serial, key }
            })
            .collect();
        let bytes: usize = jobs.iter().map(|j| j.serial.len()).sum();
        let limit = self.limits[req.priority as usize];
        if let Err(e) = self.admission.try_admit(req.priority, limit, bytes) {
            // Note the shed for the front loop's recorder and report.
            let _ = self.tx.send(Msg::Shed {
                at_ns: self.recorder.as_ref().map(|r| r.now_ns()),
                problems: jobs.len() as u64,
            });
            return Err(e);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = queue::channel();
        let submitted = Submitted {
            id,
            jobs,
            priority: req.priority,
            deadline: req.deadline,
            submitted: Instant::now(),
            enq_ns: self.recorder.as_ref().map(|r| r.now_ns()),
            bytes,
            reply,
        };
        if self.tx.send(Msg::Request(Box::new(submitted))).is_err() {
            self.admission.release(req.priority, bytes);
            return Err(ServeError::SessionClosed);
        }
        Ok(Ticket { id, rx })
    }

    /// Stop accepting work, drain the queue, stop the slaves, join the
    /// world, and return the lifetime counters.
    pub fn shutdown(mut self) -> Result<SessionReport, ServeError> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<SessionReport, ServeError> {
        let Some(handle) = self.handle.take() else {
            return Err(ServeError::SessionClosed);
        };
        let _ = self.tx.send(Msg::Shutdown);
        match handle.join() {
            Ok(Some(report)) => Ok(report),
            _ => Err(ServeError::SessionClosed),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.handle.is_some() {
            let _ = self.shutdown_inner();
        }
    }
}

// ---------------------------------------------------------------------------
// Front loop (rank 0)
// ---------------------------------------------------------------------------

/// Record an instantaneous mark on this rank, if recording. `at_ns`
/// backdates the mark to a submitter-side clock read of the same
/// recorder.
fn mark(comm: &Comm, kind: EventKind, at_ns: Option<u64>, job: i64, bytes: u64) {
    if let Some(rec) = comm.recorder() {
        rec.record(Event {
            kind,
            rank: comm.rank() as u16,
            job,
            start_ns: at_ns.unwrap_or_else(|| rec.now_ns()),
            dur_ns: 0,
            bytes,
        });
    }
}

/// Close a span opened at `start_ns` (a clock read of the same
/// recorder, possibly on a submitter thread).
fn span(comm: &Comm, kind: EventKind, start_ns: Option<u64>, job: i64, bytes: u64) {
    if let (Some(rec), Some(t0)) = (comm.recorder(), start_ns) {
        rec.record_span(comm.rank(), kind, job, t0, bytes);
    }
}

fn front_loop(
    comm: &Comm,
    cfg: &ServeConfig,
    admission: &Admission,
    rx: queue::Receiver<Msg>,
) -> SessionReport {
    let mut report = SessionReport::default();
    let mut memo: store::ResultCache<(f64, Option<f64>)> = store::ResultCache::new(cfg.memo_bytes);
    let mut dead: BTreeSet<usize> = BTreeSet::new();
    let mut next_wire: u64 = 0;
    loop {
        // Block for traffic, then drain everything already queued into
        // one batch — the request-coalescing window.
        let first = match rx.recv() {
            Ok(m) => m,
            // Every sender dropped without a Shutdown: treat as one.
            Err(_) => break,
        };
        let mut batch: Vec<Submitted> = Vec::new();
        let mut shutdown = false;
        let mut m = Some(first);
        loop {
            match m {
                Some(Msg::Request(s)) => batch.push(*s),
                Some(Msg::Shed { at_ns, problems }) => {
                    mark(comm, EventKind::Shed, at_ns, NO_JOB, problems);
                    report.shed += 1;
                }
                Some(Msg::Shutdown) => {
                    shutdown = true;
                    break;
                }
                None => break,
            }
            m = rx.try_recv().ok();
        }
        if !batch.is_empty() {
            serve_batch(
                comm,
                cfg,
                admission,
                &mut memo,
                &mut dead,
                &mut next_wire,
                batch,
                &mut report,
            );
        }
        if shutdown {
            break;
        }
    }
    // Stop the resident slaves: the real Fig. 4 sentinel, once. Sends
    // to already-dead ranks fail with Poisoned; that is their goodbye.
    for s in 1..=cfg.slaves {
        let _ = comm.send_obj(&Value::empty_matrix(), s as i32, TAG);
    }
    report.dead_slaves = dead.into_iter().collect();
    report.memo = memo.stats();
    report
}

/// One coalescing slot: a unique problem this batch will compute once,
/// fanned out to every subscribed `(request, problem)` position.
struct Slot {
    key: store::MemoKey,
    serial: Vec<u8>,
    class: u8,
    subscribers: Vec<(usize, usize)>,
    outcome: Option<Result<(f64, Option<f64>), String>>,
}

#[allow(clippy::too_many_arguments)]
fn serve_batch(
    comm: &Comm,
    cfg: &ServeConfig,
    admission: &Admission,
    memo: &mut store::ResultCache<(f64, Option<f64>)>,
    dead: &mut BTreeSet<usize>,
    next_wire: &mut u64,
    batch: Vec<Submitted>,
    report: &mut SessionReport,
) {
    // Queue residency ends now: close every Enqueue span, then expire
    // the requests whose queue deadline already passed.
    let mut live: Vec<Submitted> = Vec::with_capacity(batch.len());
    for s in batch {
        span(
            comm,
            EventKind::Enqueue,
            s.enq_ns,
            s.id as i64,
            s.bytes as u64,
        );
        if s.deadline.is_some_and(|d| s.submitted.elapsed() > d) {
            mark(
                comm,
                EventKind::Shed,
                None,
                s.id as i64,
                s.jobs.len() as u64,
            );
            report.expired += 1;
            let waited = s.submitted.elapsed();
            let _ = s.reply.send(Response {
                id: s.id,
                results: s
                    .jobs
                    .iter()
                    .map(|_| Err(format!("queue deadline expired after {waited:?}")))
                    .collect(),
                latency: waited,
            });
            // Admission slot freed; the ticket was still answered once.
            admission.release(s.priority, s.bytes);
            continue;
        }
        live.push(s);
    }
    if live.is_empty() {
        return;
    }

    // Coalesce: memo first, then within-batch duplicates.
    let mut answers: Vec<Vec<Option<Result<Priced, String>>>> =
        live.iter().map(|s| vec![None; s.jobs.len()]).collect();
    let mut slots: Vec<Slot> = Vec::new();
    let mut index: HashMap<store::MemoKey, usize> = HashMap::new();
    for (ri, s) in live.iter().enumerate() {
        for (pi, prep) in s.jobs.iter().enumerate() {
            if let Some((price, std_error)) = memo.get(&prep.key) {
                mark(comm, EventKind::MemoHit, None, s.id as i64, 1);
                report.memo_hits += 1;
                answers[ri][pi] = Some(Ok(Priced {
                    price,
                    std_error,
                    memoised: true,
                }));
            } else if let Some(&slot) = index.get(&prep.key) {
                // A second subscriber to a problem already in this
                // batch: it shares the compute, so it counts as served
                // without one.
                mark(comm, EventKind::MemoHit, None, s.id as i64, 1);
                report.memo_hits += 1;
                slots[slot].class = slots[slot].class.min(s.priority);
                slots[slot].subscribers.push((ri, pi));
            } else {
                index.insert(prep.key, slots.len());
                slots.push(Slot {
                    key: prep.key,
                    serial: prep.serial.clone(),
                    class: s.priority,
                    subscribers: vec![(ri, pi)],
                    outcome: None,
                });
            }
        }
    }

    if !slots.is_empty() {
        drive_batch(comm, cfg, &mut slots, dead, next_wire, report);
        for slot in &slots {
            let outcome = slot
                .outcome
                .clone()
                .unwrap_or_else(|| Err("scheduler dropped the job".into()));
            if let Ok(value) = outcome {
                memo.insert(slot.key, value, MEMO_VALUE_BYTES);
                report.computed += 1;
            } else {
                report.failed += 1;
            }
            for (order, &(ri, pi)) in slot.subscribers.iter().enumerate() {
                answers[ri][pi] = Some(match &outcome {
                    Ok((price, std_error)) => Ok(Priced {
                        price: *price,
                        std_error: *std_error,
                        memoised: order > 0,
                    }),
                    Err(why) => Err(why.clone()),
                });
            }
        }
    }

    // Answer every ticket exactly once and return its admission slot.
    for (ri, s) in live.into_iter().enumerate() {
        let results: Vec<Result<Priced, String>> = answers[ri]
            .drain(..)
            .map(|r| r.expect("every problem answered"))
            .collect();
        span(
            comm,
            EventKind::Admit,
            s.enq_ns,
            s.id as i64,
            s.jobs.len() as u64,
        );
        report.answered += 1;
        let _ = s.reply.send(Response {
            id: s.id,
            results,
            latency: s.submitted.elapsed(),
        });
        admission.release(s.priority, s.bytes);
    }
}

/// Drive one batch of unique problems through a supervised
/// [`Scheduler`] on the resident slaves. Wire job ids are globally
/// unique across the session so a straggler answer from a previous
/// batch (a retry raced its original) can never be mistaken for a
/// current job.
fn drive_batch(
    comm: &Comm,
    cfg: &ServeConfig,
    slots: &mut [Slot],
    dead: &mut BTreeSet<usize>,
    next_wire: &mut u64,
    report: &mut SessionReport,
) {
    let jobs = slots.len();
    let base = *next_wire;
    *next_wire += jobs as u64;
    let wire_of = |job: usize| base + job as u64;
    let slot_of = |wire: u64| -> Option<usize> {
        wire.checked_sub(base)
            .filter(|&j| (j as usize) < jobs)
            .map(|j| j as usize)
    };

    let class: Vec<u8> = slots.iter().map(|s| s.class).collect();
    let sc = SchedConfig::plain(jobs, cfg.slaves)
        .policy(DispatchPolicy::Priority { class })
        .supervised(Supervision {
            deadline_ns: cfg.job_deadline.as_nanos() as u64,
            max_attempts: cfg.max_attempts,
            backoff_base_ns: cfg.backoff_base.as_nanos() as u64,
        });
    let mut sched = match Scheduler::new(sc) {
        Ok(s) => s,
        Err(e) => {
            for slot in slots.iter_mut() {
                slot.outcome = Some(Err(format!("scheduler rejected batch: {e}")));
            }
            return;
        }
    };

    let epoch = Instant::now();
    let now = || epoch.elapsed().as_nanos() as u64;

    let send = |slot: &Slot, job: usize, rank: usize| -> Result<(), MpiError> {
        comm.set_job(Some(wire_of(job) as usize));
        let msg = Value::list(vec![
            Value::scalar(wire_of(job) as f64),
            Value::Serial(Serial::new(slot.serial.clone())),
        ]);
        let sent = comm.send_obj(&msg, rank as i32, TAG);
        comm.set_job(None);
        sent
    };

    // The priced answer being fed to the scheduler, consumed by the
    // Accept it may produce (late duplicates leave it unconsumed).
    let mut pending: Option<(f64, Option<f64>)> = None;

    let run_actions = |sched: &mut Scheduler,
                       pending: &mut Option<(f64, Option<f64>)>,
                       slots: &mut [Slot],
                       dead: &mut BTreeSet<usize>,
                       actions: Vec<Action>| {
        let mut work: VecDeque<Action> = actions.into();
        while let Some(a) = work.pop_front() {
            match a {
                Action::Dispatch { job, slave, .. } => match send(&slots[job], job, slave) {
                    Ok(()) => {
                        mark(comm, EventKind::Dispatch, None, wire_of(job) as i64, 1);
                    }
                    Err(MpiError::Poisoned(r)) if r == slave => {
                        let rec = sched.on(SchedEvent::SendFailed { job, slave }, now());
                        for r in rec.into_iter().rev() {
                            work.push_front(r);
                        }
                    }
                    Err(_) => {
                        // Any other send failure: treat like a lost
                        // dispatch; the job deadline requeues it.
                    }
                },
                // Slaves are resident: the per-batch scheduler's Stop
                // actions are intercepted, never forwarded. The real
                // sentinel goes out once, at session shutdown.
                Action::Stop { .. } => {}
                Action::Accept { job, .. } => {
                    if let Some(value) = pending.take() {
                        slots[job].outcome = Some(Ok(value));
                    }
                }
                Action::Expire { job, .. } => {
                    mark(comm, EventKind::Deadline, None, wire_of(job) as i64, 0);
                }
                Action::Requeue { job } => {
                    mark(comm, EventKind::Retry, None, wire_of(job) as i64, 0);
                }
                Action::Bury { slave } => {
                    mark(comm, EventKind::SlaveDeath, None, NO_JOB, slave as u64);
                    dead.insert(slave);
                }
                Action::AllSlavesDead | Action::Finish => {}
            }
        }
    };

    // Prime every slave; dispatches to already-dead ranks fail fast
    // with Poisoned and the scheduler buries them, exactly like the
    // one-shot supervised master.
    for s in 1..=cfg.slaves {
        let acts = sched.on(SchedEvent::SlaveReady { slave: s }, now());
        run_actions(&mut sched, &mut pending, slots, dead, acts);
    }

    while !sched.is_terminal() {
        // Liveness sweep: notice kills that happened between messages.
        for s in 1..=cfg.slaves {
            if !sched.is_dead(s) && !comm.rank_alive(s) {
                let acts = sched.on(SchedEvent::SlaveDead { slave: s }, now());
                run_actions(&mut sched, &mut pending, slots, dead, acts);
            }
        }
        if sched.is_terminal() {
            break;
        }
        // Deadline/backoff tick.
        let acts = sched.on(SchedEvent::Deadline, now());
        run_actions(&mut sched, &mut pending, slots, dead, acts);
        if sched.is_terminal() {
            break;
        }
        match comm.recv_obj_timeout(ANY_SOURCE, TAG, cfg.poll) {
            Ok(None) => {}
            Ok(Some((v, st))) => match Answer::decode(&v) {
                // A wire id outside this batch is a straggler from an
                // earlier one (a retry raced the original answer):
                // its job was already accepted once; drop it.
                Some(Answer::Priced {
                    job,
                    price,
                    std_error,
                }) => {
                    if let Some(slot) = slot_of(job as u64) {
                        pending = Some((price, std_error));
                        let acts = sched.on(
                            SchedEvent::Answer {
                                job: slot,
                                slave: st.src,
                            },
                            now(),
                        );
                        run_actions(&mut sched, &mut pending, slots, dead, acts);
                        pending = None;
                    }
                }
                Some(Answer::Failed { job, why }) => {
                    if let Some(slot) = slot_of(job as u64) {
                        if slots[slot].outcome.is_none() {
                            slots[slot].outcome = Some(Err(why));
                        }
                        let acts = sched.on(
                            SchedEvent::Failure {
                                job: slot,
                                slave: st.src,
                            },
                            now(),
                        );
                        run_actions(&mut sched, &mut pending, slots, dead, acts);
                    }
                }
                None => {
                    // An undecodable frame on the serve tag: ignore it
                    // rather than poison a long-lived session; the job
                    // deadline covers the loss.
                }
            },
            Err(MpiError::Truncated { .. }) => {
                let _ = comm.discard(ANY_SOURCE, TAG);
            }
            Err(_) => break,
        }
    }

    report.retries += sched.retries();
    for s in sched.dead_slaves() {
        dead.insert(s);
    }
    for job in sched.failed_jobs() {
        let slot = &mut slots[job];
        if slot.outcome.is_none() {
            slot.outcome = Some(Err("retry budget exhausted".into()));
        }
    }
    if sched.aborted() {
        for slot in slots.iter_mut() {
            if slot.outcome.is_none() {
                slot.outcome = Some(Err("all slaves dead".into()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Slave loop
// ---------------------------------------------------------------------------

/// The resident slave: wait (unbounded — the session is long-lived),
/// price, answer, repeat, until the shutdown sentinel or the world
/// dies.
fn slave_loop(comm: &Comm, cfg: &ServeConfig) {
    let exec = cfg.exec_policy();
    loop {
        let msg = match comm.recv_obj(0, TAG) {
            Ok((v, _st)) => v,
            // Poisoned / disconnected / killed: the session is over for
            // this rank.
            Err(_) => return,
        };
        if msg.is_empty_matrix() {
            return;
        }
        let decoded = msg.as_list().and_then(|l| {
            let wire = l.get(0)?.as_scalar()? as usize;
            let serial = l.get(1)?.as_serial()?.clone();
            Some((wire, serial))
        });
        let Some((wire, serial)) = decoded else {
            // Not a job frame; skip it (the master's deadline requeues).
            continue;
        };
        comm.set_job(Some(wire));
        let answer = price_one(comm, &exec, &serial, wire);
        comm.set_job(None);
        if comm.send_obj(&answer.to_value(), 0, TAG).is_err() {
            return;
        }
    }
}

/// Unserialize and price one problem, recording the `Compute` span on
/// this rank (the memo-hit-rate denominator).
fn price_one(comm: &Comm, exec: &Option<exec::ExecPolicy>, serial: &Serial, wire: usize) -> Answer {
    let start = comm.recorder().map(|r| r.now_ns());
    let problem = match xdrser::unserialize(serial)
        .ok()
        .and_then(|v| PremiaProblem::from_value(&v).ok())
    {
        Some(p) => p,
        None => return Answer::failed(wire, "undecodable problem payload"),
    };
    let result = match exec {
        None => problem.compute(),
        Some(pol) => problem.compute_with(pol),
    };
    match result {
        Ok(r) => {
            if let (Some(rec), Some(t0)) = (comm.recorder(), start) {
                rec.record_span(comm.rank(), EventKind::Compute, wire as i64, t0, 0);
            }
            Answer::priced(wire, &r)
        }
        Err(e) => Answer::failed(wire, format!("compute failed: {e}")),
    }
}
