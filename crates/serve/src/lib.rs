//! Long-lived pricing service over the Robin-Hood farm stack.
//!
//! Where `farm::run` prices one portfolio and tears the world down, a
//! [`Session`] keeps the `slaves + 1`-rank in-process world resident
//! and serves a stream of [`Request`]s:
//!
//! * **Session API** — [`Session::start`] / [`Session::submit`] /
//!   [`Ticket::wait`] / [`Session::shutdown`]. Submitters are ordinary
//!   threads; every admitted ticket is answered exactly once, even
//!   across slave deaths (the front loop drives the same supervised
//!   [`sched::Scheduler`] as the one-shot master).
//! * **Request coalescing + memoisation** — identical problems (same
//!   serialized bytes, same execution parameters) within a batch share
//!   one compute, and repeats across batches are served bit-identically
//!   from a byte-budgeted [`store::ResultCache`].
//! * **Backpressure** — bounded per-priority queue shares and an
//!   in-flight byte budget; over-limit submissions shed immediately
//!   with a typed [`ServeError::Overloaded`], never by blocking.
//! * **SLO reporting** — with a recorder attached, each request's queue
//!   residency (`Enqueue`), end-to-end latency (`Admit`), sheds and
//!   memo hits land in the shared `obs` schema, so
//!   `obs::Breakdown::request_p99_s` and friends report service
//!   percentiles next to the paper's phase decomposition.
//!
//! See `docs/SERVICE.md` for the full protocol walk-through.

#![warn(missing_docs)]

mod config;
mod session;

pub use config::{ServeConfig, ServeError};
pub use session::{Priced, Request, Response, Session, SessionReport, Ticket};
