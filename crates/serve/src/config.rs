//! [`ServeConfig`]: the session builder, following the same convention
//! as [`exec::ExecPolicy`] and `farm::FarmConfig` — chainable setters
//! plus one [`validate`](ServeConfig::validate) that collects *every*
//! invalid field into an [`exec::ConfigIssues`] instead of stopping at
//! the first failure.

use exec::{ConfigIssues, ExecPolicy, LaneConfig, DEFAULT_CHUNK};
use minimpi::FaultPlan;
use obs::Recorder;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Everything a long-lived pricing session needs, behind one builder.
///
/// Defaults: 3 priority classes over a 64-request queue, 8 MiB of
/// serialized problem bytes in flight, a 1 MiB result memo, sequential
/// compute, supervised dispatch with test-scale timings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub(crate) slaves: usize,
    pub(crate) queue_depth: usize,
    pub(crate) inflight_bytes: usize,
    pub(crate) memo_bytes: usize,
    pub(crate) priorities: u8,
    pub(crate) threads: usize,
    pub(crate) compute_chunk: usize,
    pub(crate) lanes: usize,
    pub(crate) job_deadline: Duration,
    pub(crate) max_attempts: u32,
    pub(crate) backoff_base: Duration,
    pub(crate) poll: Duration,
    pub(crate) fault_plan: Option<Arc<FaultPlan>>,
    pub(crate) recorder: Option<Arc<Recorder>>,
}

impl ServeConfig {
    /// A session over `slaves` resident worker ranks (the world is
    /// `slaves + 1` ranks: the front loop plus the slaves).
    pub fn new(slaves: usize) -> Self {
        ServeConfig {
            slaves,
            queue_depth: 64,
            inflight_bytes: 8 << 20,
            memo_bytes: 1 << 20,
            priorities: 3,
            threads: 1,
            compute_chunk: 0,
            lanes: 1,
            job_deadline: Duration::from_millis(200),
            max_attempts: 4,
            backoff_base: Duration::from_millis(5),
            poll: Duration::from_millis(20),
            fault_plan: None,
            recorder: None,
        }
    }

    /// Bound on admitted-but-unanswered requests. Priority class `p`
    /// may occupy at most `queue_depth >> p` slots (floored at 1), so
    /// under load the batch classes shed first and the urgent class
    /// keeps the whole queue.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Bound on serialized problem bytes admitted and not yet answered.
    pub fn inflight_bytes(mut self, bytes: usize) -> Self {
        self.inflight_bytes = bytes;
        self
    }

    /// Byte budget of the result memo ([`store::ResultCache`]); 0
    /// disables memoisation entirely.
    pub fn memo_bytes(mut self, bytes: usize) -> Self {
        self.memo_bytes = bytes;
        self
    }

    /// Number of priority classes (class 0 is the most urgent).
    pub fn priorities(mut self, classes: u8) -> Self {
        self.priorities = classes;
        self
    }

    /// Worker threads per slave compute (1 = the legacy sequential
    /// kernels; >= 2 routes through the chunked executor).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Paths per executor chunk (0 = the executor default). Only
    /// meaningful with [`threads`](Self::threads) >= 2.
    pub fn compute_chunk(mut self, chunk: usize) -> Self {
        self.compute_chunk = chunk;
        self
    }

    /// SIMD lane width of the path kernels (1 = scalar).
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Per-dispatch deadline of the supervised scheduler: a job in
    /// flight longer than this is presumed lost and requeued.
    pub fn job_deadline(mut self, d: Duration) -> Self {
        self.job_deadline = d;
        self
    }

    /// Dispatch budget per job before it is abandoned as failed.
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n;
        self
    }

    /// Base of the exponential retry backoff.
    pub fn backoff_base(mut self, d: Duration) -> Self {
        self.backoff_base = d;
        self
    }

    /// Front-loop poll granularity while a batch is in flight.
    pub fn poll(mut self, d: Duration) -> Self {
        self.poll = d;
        self
    }

    /// Inject faults into the session's world (testing).
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Record phase events into `rec` (needs at least `slaves + 1`
    /// rings).
    pub fn recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Number of slave ranks the session will hold resident.
    pub fn slave_count(&self) -> usize {
        self.slaves
    }

    /// Admission limit of priority class `p`: its share of the queue,
    /// halving per class and floored at one slot.
    pub(crate) fn depth_limit(&self, priority: u8) -> usize {
        (self.queue_depth >> priority.min(63)).max(1)
    }

    /// The execution-parameter half of the memo key: `(0, 0)` for the
    /// legacy sequential kernel, else the *effective* chunk size and
    /// lane width (both are part of the result contract — see
    /// `store::MemoKey`).
    pub(crate) fn memo_params(&self) -> (u32, u32) {
        if self.threads <= 1 && self.lanes <= 1 {
            (0, 0)
        } else {
            let chunk = if self.compute_chunk == 0 {
                DEFAULT_CHUNK
            } else {
                self.compute_chunk
            };
            (chunk as u32, self.lanes.max(1) as u32)
        }
    }

    /// The slave-side compute policy, mirroring `farm::FarmConfig`:
    /// `None` (sequential legacy kernels) unless threads or lanes ask
    /// for the executor.
    pub(crate) fn exec_policy(&self) -> Option<ExecPolicy> {
        (self.threads > 1 || self.lanes > 1).then(|| {
            ExecPolicy::new(self.threads)
                .chunk(self.compute_chunk)
                .lanes(self.lanes)
        })
    }

    /// Validate the whole configuration, collecting *every* invalid
    /// field (not just the first) into one [`ConfigIssues`].
    pub fn validate(&self) -> Result<(), ConfigIssues> {
        let mut issues = ConfigIssues::collect();
        if self.slaves == 0 {
            issues.reject("slaves", "session needs at least one slave");
        }
        if self.queue_depth == 0 {
            issues.reject("queue_depth", "must admit at least one request");
        }
        if self.inflight_bytes == 0 {
            issues.reject("inflight_bytes", "a zero byte budget can never admit");
        }
        if self.priorities == 0 {
            issues.reject("priorities", "needs at least one priority class");
        }
        if self.threads == 0 {
            issues.reject("threads", "compute threads must be at least 1");
        }
        if self.compute_chunk > 0 && self.threads <= 1 {
            issues.reject("compute_chunk", "only applies with threads >= 2");
        }
        if let Err(e) = LaneConfig::from_width(self.lanes) {
            issues.reject("lanes", e);
        }
        if self.max_attempts == 0 {
            issues.reject("max_attempts", "must be at least 1");
        }
        if self.job_deadline.is_zero() {
            issues.reject("job_deadline", "must be nonzero");
        }
        if self.poll.is_zero() {
            issues.reject("poll", "must be nonzero");
        }
        if let Some(rec) = &self.recorder {
            if rec.ranks() < self.slaves + 1 {
                issues.reject(
                    "recorder",
                    format!(
                        "covers {} ranks but the session needs {}",
                        rec.ranks(),
                        self.slaves + 1
                    ),
                );
            }
        }
        issues.into_result()
    }
}

/// A session-level failure.
#[derive(Debug)]
pub enum ServeError {
    /// The [`ServeConfig`] was rejected; carries every invalid field.
    Config(ConfigIssues),
    /// Admission control turned the request away: its priority class is
    /// at its queue share, or the byte budget is exhausted. Back off
    /// and resubmit.
    Overloaded {
        /// Priority class of the rejected request.
        priority: u8,
        /// Requests of this class already admitted.
        queued: usize,
        /// This class's queue share.
        depth_limit: usize,
        /// Serialized problem bytes currently in flight.
        inflight_bytes: usize,
        /// The session's in-flight byte budget.
        byte_budget: usize,
    },
    /// The request's priority class does not exist in this session.
    InvalidPriority {
        /// The requested class.
        priority: u8,
        /// Number of configured classes.
        classes: u8,
    },
    /// A request must carry at least one problem.
    EmptyRequest,
    /// The session is shut down (or its world died); the request was
    /// not admitted, or the ticket will never be answered.
    SessionClosed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(issues) => write!(f, "{issues}"),
            ServeError::Overloaded {
                priority,
                queued,
                depth_limit,
                inflight_bytes,
                byte_budget,
            } => write!(
                f,
                "overloaded: priority {priority} holds {queued}/{depth_limit} queue slots, \
                 {inflight_bytes}/{byte_budget} bytes in flight"
            ),
            ServeError::InvalidPriority { priority, classes } => write!(
                f,
                "priority {priority} out of range (session has {classes} classes)"
            ),
            ServeError::EmptyRequest => write!(f, "request carries no problems"),
            ServeError::SessionClosed => write!(f, "session is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rejected(cfg: &ServeConfig) -> ConfigIssues {
        cfg.validate().expect_err("config should be rejected")
    }

    #[test]
    fn default_config_validates() {
        assert!(ServeConfig::new(2).validate().is_ok());
    }

    #[test]
    fn zero_slaves_rejected() {
        assert!(rejected(&ServeConfig::new(0)).has("slaves"));
    }

    #[test]
    fn zero_queue_depth_rejected() {
        assert!(rejected(&ServeConfig::new(2).queue_depth(0)).has("queue_depth"));
    }

    #[test]
    fn zero_byte_budget_rejected() {
        assert!(rejected(&ServeConfig::new(2).inflight_bytes(0)).has("inflight_bytes"));
    }

    #[test]
    fn zero_priorities_rejected() {
        assert!(rejected(&ServeConfig::new(2).priorities(0)).has("priorities"));
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(rejected(&ServeConfig::new(2).threads(0)).has("threads"));
    }

    #[test]
    fn compute_chunk_without_threads_rejected() {
        assert!(rejected(&ServeConfig::new(2).compute_chunk(256)).has("compute_chunk"));
    }

    #[test]
    fn unsupported_lane_width_rejected() {
        for lanes in [2usize, 3, 5, 16] {
            assert!(
                rejected(&ServeConfig::new(2).lanes(lanes)).has("lanes"),
                "lanes={lanes}"
            );
        }
    }

    #[test]
    fn zero_max_attempts_rejected() {
        assert!(rejected(&ServeConfig::new(2).max_attempts(0)).has("max_attempts"));
    }

    #[test]
    fn zero_deadline_and_poll_rejected() {
        let issues = rejected(
            &ServeConfig::new(2)
                .job_deadline(Duration::ZERO)
                .poll(Duration::ZERO),
        );
        assert!(issues.has("job_deadline"));
        assert!(issues.has("poll"));
    }

    #[test]
    fn undersized_recorder_rejected() {
        let cfg = ServeConfig::new(3).recorder(Arc::new(Recorder::new(2)));
        assert!(rejected(&cfg).has("recorder"));
    }

    #[test]
    fn validation_collects_every_invalid_field_at_once() {
        let cfg = ServeConfig::new(0)
            .queue_depth(0)
            .threads(0)
            .lanes(7)
            .max_attempts(0);
        let issues = rejected(&cfg);
        assert_eq!(issues.issues.len(), 5, "{issues}");
        for field in ["slaves", "queue_depth", "threads", "lanes", "max_attempts"] {
            assert!(issues.has(field), "missing {field} in {issues}");
        }
    }

    #[test]
    fn priority_shares_halve_and_floor_at_one() {
        let cfg = ServeConfig::new(2).queue_depth(8).priorities(5);
        assert_eq!(cfg.depth_limit(0), 8);
        assert_eq!(cfg.depth_limit(1), 4);
        assert_eq!(cfg.depth_limit(2), 2);
        assert_eq!(cfg.depth_limit(3), 1);
        assert_eq!(cfg.depth_limit(4), 1, "share floors at one slot");
    }

    #[test]
    fn memo_params_track_the_result_contract() {
        // Sequential kernel: the (0, 0) legacy key.
        assert_eq!(ServeConfig::new(2).memo_params(), (0, 0));
        // Chunked: effective chunk (default when unset) and lane width.
        assert_eq!(
            ServeConfig::new(2).threads(4).memo_params(),
            (DEFAULT_CHUNK as u32, 1)
        );
        assert_eq!(
            ServeConfig::new(2)
                .threads(4)
                .compute_chunk(512)
                .lanes(8)
                .memo_params(),
            (512, 8)
        );
    }
}
