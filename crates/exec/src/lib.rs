//! Deterministic intra-slave compute parallelism: a work-stealing
//! chunked executor for the Monte-Carlo/LSM path loops.
//!
//! The farm's breakdown tables (PR 2/3) show prepare/wire collapsing
//! while **compute** dominates wall-clock — yet every pricing kernel is
//! a single-threaded path loop, so each slave uses one core of a
//! multi-core node. This crate supplies the missing dimension: the path
//! space is split into fixed-size chunks, a small work-stealing thread
//! pool runs the chunks, and per-chunk partial results are handed back
//! **in chunk-index order** so the reduction is a pure function of the
//! chunk partition — not of which worker ran which chunk.
//!
//! # Determinism contract
//!
//! A chunked kernel is **bit-identical for any worker count** (1 == 2 ==
//! 8) provided it follows two rules, both enforced by construction here:
//!
//! 1. every chunk derives its randomness only from
//!    [`stream_seed`]`(seed, chunk.index)` — an independently seeded
//!    counter-style RNG stream per chunk, never a shared stream;
//! 2. the reduction consumes [`ExecPolicy::run`]'s result vector in
//!    order — chunk `i`'s partial always lands in slot `i`, whatever
//!    thread produced it.
//!
//! The chunk size is therefore *part of the result*: changing
//! [`ExecPolicy::chunk_size`] changes the stream split (legitimately, as
//! changing `seed` would). The thread count never is.
//!
//! Built on `std::thread::scope` plus the vendored `parking_lot` shim —
//! no external dependencies, per `shims/README.md`.

#![warn(missing_docs)]

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default number of paths per chunk. Large enough that chunk overhead
/// (one RNG seeding + one queue pop) is negligible against thousands of
/// path simulations; small enough that a 100 000-path kernel yields ~100
/// chunks for 8 workers to balance over.
pub const DEFAULT_CHUNK: usize = 1024;

/// Derive the RNG seed of one chunk's stream from the kernel seed and
/// the chunk index: a SplitMix64-style avalanche over
/// `seed ⊕ golden·(index+1)`, so neighbouring chunks (and neighbouring
/// seeds) land in statistically unrelated streams. Pure function —
/// the foundation of the thread-count-independence contract.
pub fn stream_seed(seed: u64, chunk_index: u64) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chunk_index.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One invalid configuration field: which builder knob, and what is
/// wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigIssue {
    /// The builder method / field name (e.g. `"threads"`).
    pub field: &'static str,
    /// What is wrong with the supplied value.
    pub problem: String,
}

impl fmt::Display for ConfigIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.problem)
    }
}

/// Every invalid field of a rejected configuration, collected in one
/// pass — validation never stops at the first failure, so a caller
/// fixing a config sees the complete list at once. Shared by
/// `ExecPolicy`, `farm::FarmConfig` and `serve::ServeConfig`, which all
/// follow the same builder convention: chainable setters, one
/// `validate()` that returns this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigIssues {
    /// The collected issues, in field declaration order. Never empty.
    pub issues: Vec<ConfigIssue>,
}

impl ConfigIssues {
    /// An empty collector. Use [`reject`](Self::reject) to accumulate
    /// and [`into_result`](Self::into_result) to finish.
    pub fn collect() -> Self {
        ConfigIssues { issues: Vec::new() }
    }

    /// A ready-made single-issue rejection, for call sites that detect
    /// one late error outside a full `validate()` pass (e.g. a
    /// cost-vector length that can only be checked against the inputs).
    pub fn one(field: &'static str, problem: impl Into<String>) -> Self {
        let mut issues = ConfigIssues::collect();
        issues.reject(field, problem);
        issues
    }

    /// Record one invalid field.
    pub fn reject(&mut self, field: &'static str, problem: impl Into<String>) {
        self.issues.push(ConfigIssue {
            field,
            problem: problem.into(),
        });
    }

    /// `Ok(())` when nothing was rejected, else `Err(self)`.
    pub fn into_result(self) -> Result<(), ConfigIssues> {
        if self.issues.is_empty() {
            Ok(())
        } else {
            Err(self)
        }
    }

    /// Did validation reject this field?
    pub fn has(&self, field: &str) -> bool {
        self.issues.iter().any(|i| i.field == field)
    }
}

impl fmt::Display for ConfigIssues {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: ")?;
        for (i, issue) in self.issues.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ConfigIssues {}

/// Supported SIMD lane widths for batched path generation.
///
/// With `L > 1` lanes a kernel advances `L` paths per loop iteration
/// through the hand-rolled lane structs (`pricing::lanes::F64s`),
/// drawing the normals of each group in `(group, step, lane)` order
/// instead of the scalar `(path, step)` order. That draw order is part
/// of the sampled result — exactly like the chunk size — so each lane
/// width owns its own pinned goldens, and [`LaneConfig::Scalar`] keeps
/// the pre-lane kernels byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneConfig {
    /// One path at a time — the pre-lane scalar kernels, unchanged.
    #[default]
    Scalar,
    /// Four paths per lane group (`F64x4`).
    X4,
    /// Eight paths per lane group (`F64x8`).
    X8,
}

impl LaneConfig {
    /// Parse a lane width; only 1 (scalar), 4 and 8 are supported.
    pub fn from_width(width: usize) -> Result<Self, String> {
        match width {
            0 | 1 => Ok(LaneConfig::Scalar),
            4 => Ok(LaneConfig::X4),
            8 => Ok(LaneConfig::X8),
            other => Err(format!(
                "unsupported lane width {other} (supported: 1, 4, 8)"
            )),
        }
    }

    /// Number of paths advanced per lane group.
    pub fn width(self) -> usize {
        match self {
            LaneConfig::Scalar => 1,
            LaneConfig::X4 => 4,
            LaneConfig::X8 => 8,
        }
    }
}

/// A per-worker scratch arena for kernel path buffers.
///
/// Kernels borrow zeroed `Vec<f64>` buffers with [`take`](Self::take)
/// and hand them back with [`put`](Self::put); the capacity survives
/// the round-trip, so after the first few chunks every `take` is a
/// `clear` + in-capacity `resize` — **zero allocations in the
/// steady-state hot loops**. One workspace is checked out per worker
/// for the duration of a [`ExecPolicy::run_ws`] call and parked in the
/// policy's shared [`WorkspacePool`] between runs, so buffers persist
/// across the jobs of a farm slave.
#[derive(Debug, Default)]
pub struct PathWorkspace {
    bufs: Vec<Vec<f64>>,
}

impl PathWorkspace {
    /// A fresh workspace with no pooled buffers.
    pub fn new() -> Self {
        PathWorkspace::default()
    }

    /// Borrow a zero-filled buffer of exactly `len` elements, reusing
    /// the capacity of a previously [`put`](Self::put) buffer when one
    /// is available (same contents as `vec![0.0; len]`).
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.bufs.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Return a buffer for reuse by later [`take`](Self::take) calls.
    pub fn put(&mut self, buf: Vec<f64>) {
        self.bufs.push(buf);
    }
}

/// Thread-safe parking lot for idle [`PathWorkspace`]s, shared by every
/// clone of an [`ExecPolicy`] — the farm clones its per-run policy for
/// each job, so a slave's workers keep reusing the same warmed buffers
/// job after job.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    inner: Mutex<Vec<PathWorkspace>>,
}

impl WorkspacePool {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Check a workspace out (a fresh one if the pool is empty).
    pub fn take(&self) -> PathWorkspace {
        self.inner.lock().pop().unwrap_or_default()
    }

    /// Park a workspace for the next [`take`](Self::take).
    pub fn put(&self, ws: PathWorkspace) {
        self.inner.lock().push(ws);
    }

    /// Number of idle workspaces currently parked.
    pub fn idle(&self) -> usize {
        self.inner.lock().len()
    }
}

/// One contiguous slice of the item (path) space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Chunk index in `0..n_chunks` — the RNG-stream counter.
    pub index: u64,
    /// First item (inclusive).
    pub start: usize,
    /// One past the last item (exclusive).
    pub end: usize,
}

impl Chunk {
    /// Number of items in this chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the chunk covers no items (never produced by the
    /// planner; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Timing of one executed chunk, for post-hoc observability: the farm
/// emits these as `ComputeChunk` events *after* the parallel region,
/// from the rank's own thread (the obs recorder is single-writer per
/// rank, so workers never record directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTiming {
    /// Chunk index.
    pub index: u64,
    /// Items the chunk covered.
    pub items: u64,
    /// Wall-clock nanoseconds the chunk took on its worker.
    pub dur_ns: u64,
}

/// Aggregate execution statistics across the kernel runs of one job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of `run` invocations recorded.
    pub runs: u64,
    /// Successful steals (a worker popping from another worker's queue).
    pub steals: u64,
    /// Largest worker count any recorded run actually used.
    pub threads: usize,
    /// Per-chunk timings, in execution-record order (chunk-index order
    /// within each run).
    pub chunks: Vec<ChunkTiming>,
}

impl ExecStats {
    /// Total chunk-seconds: the CPU work the workers did. With `T`
    /// workers this is ≈ `T ×` the wall-clock of the compute span —
    /// the intra-slave parallelism diagnostic.
    pub fn chunk_s(&self) -> f64 {
        self.chunks.iter().map(|c| c.dur_ns as f64 * 1e-9).sum()
    }
}

/// Thread-safe accumulator the kernels report [`ChunkTiming`]s into;
/// attach one via [`ExecPolicy::with_sink`] and drain it with
/// [`StatsSink::take`] after the compute region.
#[derive(Debug, Default)]
pub struct StatsSink {
    inner: Mutex<ExecStats>,
}

impl StatsSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        StatsSink::default()
    }

    /// Record one executor run.
    fn add_run(&self, workers: usize, timings: Vec<ChunkTiming>, steals: u64) {
        let mut st = self.inner.lock();
        st.runs += 1;
        st.steals += steals;
        st.threads = st.threads.max(workers);
        st.chunks.extend(timings);
    }

    /// Drain the accumulated statistics, resetting the sink.
    pub fn take(&self) -> ExecStats {
        std::mem::take(&mut *self.inner.lock())
    }
}

/// How a kernel's path loop should execute: worker count, chunk size,
/// SIMD lane width, and an optional statistics sink. The default — one
/// thread, scalar lanes, no sink — is the executor-free behaviour.
#[derive(Debug, Clone, Default)]
pub struct ExecPolicy {
    threads: usize,
    chunk: usize,
    lane: LaneConfig,
    sink: Option<Arc<StatsSink>>,
    pool: Arc<WorkspacePool>,
}

impl ExecPolicy {
    /// Single-threaded policy (the default everywhere).
    pub fn sequential() -> Self {
        ExecPolicy::default()
    }

    /// Policy with `threads` workers (0 is treated as 1).
    pub fn new(threads: usize) -> Self {
        ExecPolicy {
            threads,
            ..ExecPolicy::default()
        }
    }

    /// Build a policy from raw user-supplied knobs, collecting **every**
    /// invalid field into one [`ConfigIssues`] instead of failing on the
    /// first (the workspace-wide builder convention — `FarmConfig` and
    /// `ServeConfig` validate the same way). `chunk = 0` means
    /// [`DEFAULT_CHUNK`]; `lanes` must be 1, 4 or 8 (0 = scalar).
    pub fn validated(threads: usize, chunk: usize, lanes: usize) -> Result<Self, ConfigIssues> {
        let mut issues = ConfigIssues::collect();
        if threads == 0 {
            issues.reject("threads", "needs at least one worker");
        }
        let lane = match LaneConfig::from_width(lanes) {
            Ok(lane) => lane,
            Err(why) => {
                issues.reject("lanes", why);
                LaneConfig::Scalar
            }
        };
        issues.into_result()?;
        Ok(ExecPolicy::new(threads).chunk(chunk).lane(lane))
    }

    /// Override the chunk size (0 is treated as [`DEFAULT_CHUNK`]).
    /// **Changes the RNG-stream split** and therefore the sampled
    /// result, exactly as changing the seed would; the thread count
    /// never does.
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Set the SIMD lane width (1, 4 or 8). **Changes the RNG draw
    /// order** within each chunk and therefore the sampled result,
    /// exactly as the chunk size does; see [`LaneConfig`]. Panics on an
    /// unsupported width — validate with [`LaneConfig::from_width`]
    /// first when the width comes from user input.
    pub fn lanes(mut self, width: usize) -> Self {
        self.lane = LaneConfig::from_width(width).expect("unsupported lane width");
        self
    }

    /// Set the lane configuration directly.
    pub fn lane(mut self, lane: LaneConfig) -> Self {
        self.lane = lane;
        self
    }

    /// Attach a [`StatsSink`] that every run reports its chunk timings
    /// and steal count into.
    pub fn with_sink(mut self, sink: Arc<StatsSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Effective worker count.
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// The lane configuration.
    pub fn lane_config(&self) -> LaneConfig {
        self.lane
    }

    /// Effective lane width (1 for the scalar path).
    pub fn lane_width(&self) -> usize {
        self.lane.width()
    }

    /// The shared workspace pool behind [`Self::run_ws`].
    pub fn workspace_pool(&self) -> &Arc<WorkspacePool> {
        &self.pool
    }

    /// Effective chunk size.
    pub fn chunk_size(&self) -> usize {
        if self.chunk == 0 {
            DEFAULT_CHUNK
        } else {
            self.chunk
        }
    }

    /// Split `items` into chunks per this policy.
    pub fn plan(&self, items: usize) -> Vec<Chunk> {
        let size = self.chunk_size();
        let mut chunks = Vec::with_capacity(items.div_ceil(size).max(1));
        let mut start = 0usize;
        let mut index = 0u64;
        while start < items {
            let end = (start + size).min(items);
            chunks.push(Chunk { index, start, end });
            start = end;
            index += 1;
        }
        chunks
    }

    /// Run `f` over every chunk of `items` and return the per-chunk
    /// results **in chunk-index order**, whatever thread computed them.
    ///
    /// With one worker (or one chunk) this degenerates to a plain
    /// in-order loop on the calling thread — no threads are spawned.
    /// With `T > 1` workers the chunk queue is block-partitioned across
    /// `min(T, n_chunks)` scoped threads; an idle worker steals from the
    /// back of the longest remaining queue. `f` must derive any
    /// randomness from [`stream_seed`]`(seed, chunk.index)` only.
    pub fn run<R, F>(&self, items: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Chunk) -> R + Sync,
    {
        self.run_ws(items, |c, _| f(c))
    }

    /// Like [`Self::run`], but hands each chunk invocation a mutable
    /// [`PathWorkspace`] so kernels can borrow reusable path buffers
    /// instead of allocating in the hot loop. One workspace is checked
    /// out of the shared [`WorkspacePool`] per worker and parked again
    /// afterwards, so buffer capacity persists across runs (and across
    /// the jobs of a farm slave). The workspace must not influence the
    /// numerical result — it is scratch capacity, nothing else.
    pub fn run_ws<R, F>(&self, items: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Chunk, &mut PathWorkspace) -> R + Sync,
    {
        let chunks = self.plan(items);
        let n = chunks.len();
        let workers = self.threads().min(n.max(1));
        if workers <= 1 {
            let mut ws = self.pool.take();
            let mut out = Vec::with_capacity(n);
            let mut timings = Vec::with_capacity(n);
            for c in &chunks {
                let t0 = Instant::now();
                out.push(f(c, &mut ws));
                timings.push(ChunkTiming {
                    index: c.index,
                    items: c.len() as u64,
                    dur_ns: t0.elapsed().as_nanos() as u64,
                });
            }
            self.pool.put(ws);
            if let Some(sink) = &self.sink {
                sink.add_run(1, timings, 0);
            }
            return out;
        }

        // Block-partition the chunk indices across the workers; each
        // worker drains its own queue front-to-back and, when empty,
        // steals from the back of the longest other queue.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = w * n / workers;
                let hi = (w + 1) * n / workers;
                Mutex::new((lo..hi).collect())
            })
            .collect();
        let steals = AtomicU64::new(0);
        let f = &f;
        let chunks_ref = &chunks;
        let queues_ref = &queues;
        let steals_ref = &steals;
        let pool_ref = &self.pool;

        let mut produced: Vec<(usize, R, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        let mut ws = pool_ref.take();
                        let mut local: Vec<(usize, R, u64)> = Vec::new();
                        loop {
                            // Own queue first...
                            let mut next = queues_ref[w].lock().pop_front();
                            // ...then steal from the longest victim.
                            if next.is_none() {
                                let mut best: Option<(usize, usize)> = None;
                                for (v, q) in queues_ref.iter().enumerate() {
                                    if v == w {
                                        continue;
                                    }
                                    let len = q.lock().len();
                                    if len > 0 && best.is_none_or(|(_, b)| len > b) {
                                        best = Some((v, len));
                                    }
                                }
                                if let Some((v, _)) = best {
                                    next = queues_ref[v].lock().pop_back();
                                    if next.is_some() {
                                        steals_ref.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            let Some(i) = next else { break };
                            let c = &chunks_ref[i];
                            let t0 = Instant::now();
                            let r = f(c, &mut ws);
                            local.push((i, r, t0.elapsed().as_nanos() as u64));
                        }
                        pool_ref.put(ws);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("executor worker panicked"))
                .collect()
        });

        // Reassemble in chunk-index order: slot i always holds chunk
        // i's partial, whichever worker produced it.
        produced.sort_by_key(|(i, _, _)| *i);
        debug_assert_eq!(produced.len(), n, "every chunk ran exactly once");
        if let Some(sink) = &self.sink {
            let timings = produced
                .iter()
                .map(|&(i, _, dur_ns)| ChunkTiming {
                    index: chunks[i].index,
                    items: chunks[i].len() as u64,
                    dur_ns,
                })
                .collect();
            sink.add_run(workers, timings, steals.load(Ordering::Relaxed));
        }
        produced.into_iter().map(|(_, r, _)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn validated_collects_every_invalid_field() {
        let err = ExecPolicy::validated(0, 0, 3).unwrap_err();
        assert_eq!(err.issues.len(), 2);
        assert!(err.has("threads"));
        assert!(err.has("lanes"));
        assert!(!err.has("chunk"));
        let text = err.to_string();
        assert!(text.contains("threads") && text.contains("lanes"), "{text}");
    }

    #[test]
    fn validated_accepts_defaults_and_sets_knobs() {
        let pol = ExecPolicy::validated(8, 0, 8).unwrap();
        assert_eq!(pol.threads(), 8);
        assert_eq!(pol.chunk_size(), DEFAULT_CHUNK);
        assert_eq!(pol.lane_width(), 8);
        let scalar = ExecPolicy::validated(1, 256, 0).unwrap();
        assert_eq!(scalar.chunk_size(), 256);
        assert_eq!(scalar.lane_config(), LaneConfig::Scalar);
    }

    #[test]
    fn plan_covers_items_exactly_once() {
        for items in [0usize, 1, 7, 1024, 1025, 10_000] {
            for chunk in [1usize, 3, 1024] {
                let pol = ExecPolicy::sequential().chunk(chunk);
                let chunks = pol.plan(items);
                let total: usize = chunks.iter().map(Chunk::len).sum();
                assert_eq!(total, items, "items {items} chunk {chunk}");
                let mut next = 0usize;
                for (i, c) in chunks.iter().enumerate() {
                    assert_eq!(c.index, i as u64);
                    assert_eq!(c.start, next);
                    assert!(!c.is_empty());
                    next = c.end;
                }
            }
        }
        assert!(ExecPolicy::sequential().plan(0).is_empty());
    }

    /// A chunk "kernel": order-sensitive accumulation over the chunk's
    /// derived stream, so any mis-ordering or stream reuse shows up.
    fn chunk_value(seed: u64, c: &Chunk) -> f64 {
        let mut z = stream_seed(seed, c.index);
        let mut acc = 0.0;
        for _ in c.start..c.end {
            z = z
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            acc = acc * 0.9999 + (z >> 11) as f64 / (1u64 << 53) as f64;
        }
        acc
    }

    #[test]
    fn results_bit_identical_across_worker_counts() {
        let items = 10_000;
        let reduce = |threads: usize| -> u64 {
            let pol = ExecPolicy::new(threads).chunk(512);
            let parts = pol.run(items, |c| chunk_value(42, c));
            // Deterministic in-order reduction.
            let mut acc = 0.0;
            for p in parts {
                acc = acc * 0.5 + p;
            }
            acc.to_bits()
        };
        let t1 = reduce(1);
        assert_eq!(t1, reduce(2));
        assert_eq!(t1, reduce(8));
        assert_eq!(t1, reduce(3));
    }

    #[test]
    fn chunk_size_is_part_of_the_result() {
        let items = 4_096;
        let total = |chunk: usize| -> f64 {
            ExecPolicy::new(2)
                .chunk(chunk)
                .run(items, |c| chunk_value(7, c))
                .iter()
                .sum()
        };
        // Different splits draw different streams — documented contract.
        assert_ne!(total(512).to_bits(), total(1024).to_bits());
    }

    #[test]
    fn skewed_workload_triggers_stealing() {
        let sink = Arc::new(StatsSink::new());
        let pol = ExecPolicy::new(4).chunk(1).with_sink(sink.clone());
        // 16 one-item chunks; the first worker's chunks are slow, so the
        // other workers finish their own and steal.
        let out = pol.run(16, |c| {
            if c.index < 4 {
                std::thread::sleep(Duration::from_millis(20));
            }
            c.index
        });
        assert_eq!(out, (0..16).collect::<Vec<u64>>());
        let stats = sink.take();
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.chunks.len(), 16);
        assert_eq!(stats.threads, 4);
        assert!(stats.steals > 0, "no steals on a 20ms-skewed workload");
        assert!(stats.chunk_s() > 0.0);
        // Sink drained.
        assert_eq!(sink.take(), ExecStats::default());
    }

    #[test]
    fn sequential_run_records_timings_without_threads() {
        let sink = Arc::new(StatsSink::new());
        let pol = ExecPolicy::sequential().chunk(100).with_sink(sink.clone());
        let out = pol.run(250, |c| c.len());
        assert_eq!(out, vec![100, 100, 50]);
        let stats = sink.take();
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.chunks.iter().map(|c| c.items).sum::<u64>(), 250);
    }

    #[test]
    fn more_workers_than_chunks_degrades_gracefully() {
        let pol = ExecPolicy::new(64).chunk(1024);
        let out = pol.run(2048, |c| c.index);
        assert_eq!(out, vec![0, 1]);
        // And an empty item space.
        let empty: Vec<u64> = ExecPolicy::new(8).run(0, |c| c.index);
        assert!(empty.is_empty());
    }

    #[test]
    fn stream_seed_is_an_avalanche() {
        // Neighbouring chunks and neighbouring seeds land far apart.
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        let c = stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!((a ^ b).count_ones() > 10);
        assert!((a ^ c).count_ones() > 10);
        // Pure function.
        assert_eq!(stream_seed(42, 0), a);
    }

    #[test]
    fn default_policy_is_single_threaded_default_chunk() {
        let pol = ExecPolicy::default();
        assert_eq!(pol.threads(), 1);
        assert_eq!(pol.chunk_size(), DEFAULT_CHUNK);
        assert_eq!(ExecPolicy::new(0).threads(), 1);
        assert_eq!(
            ExecPolicy::sequential().chunk(0).chunk_size(),
            DEFAULT_CHUNK
        );
        assert_eq!(pol.lane_width(), 1);
        assert_eq!(pol.lane_config(), LaneConfig::Scalar);
    }

    #[test]
    fn lane_config_accepts_only_supported_widths() {
        assert_eq!(LaneConfig::from_width(0), Ok(LaneConfig::Scalar));
        assert_eq!(LaneConfig::from_width(1), Ok(LaneConfig::Scalar));
        assert_eq!(LaneConfig::from_width(4), Ok(LaneConfig::X4));
        assert_eq!(LaneConfig::from_width(8), Ok(LaneConfig::X8));
        for bad in [2usize, 3, 5, 16] {
            assert!(LaneConfig::from_width(bad).is_err(), "width {bad}");
        }
        assert_eq!(ExecPolicy::new(2).lanes(8).lane_width(), 8);
        assert_eq!(ExecPolicy::new(2).lane(LaneConfig::X4).lane_width(), 4);
    }

    #[test]
    fn workspace_reuses_capacity_across_take_put() {
        let mut ws = PathWorkspace::new();
        let mut buf = ws.take(100);
        assert_eq!(buf, vec![0.0; 100]);
        buf[0] = 7.0;
        let ptr = buf.as_ptr();
        ws.put(buf);
        // Same allocation comes back, zeroed, even at a smaller length.
        let again = ws.take(50);
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(again, vec![0.0; 50]);
        assert!(again.capacity() >= 100);
    }

    #[test]
    fn run_ws_pools_one_workspace_per_worker_and_is_deterministic() {
        let pol = ExecPolicy::new(4).chunk(64);
        let total = |pol: &ExecPolicy| -> u64 {
            let parts = pol.run_ws(1_000, |c, ws| {
                let mut buf = ws.take(c.len());
                for (k, x) in buf.iter_mut().enumerate() {
                    *x = chunk_value(9, c) + k as f64;
                }
                let s: f64 = buf.iter().sum();
                ws.put(buf);
                s
            });
            let mut acc = 0.0;
            for p in parts {
                acc = acc * 0.5 + p;
            }
            acc.to_bits()
        };
        let seq = total(&ExecPolicy::sequential().chunk(64));
        assert_eq!(seq, total(&pol));
        // Workers parked their workspaces; clones share the same pool.
        assert!(pol.workspace_pool().idle() >= 1);
        let before = pol.workspace_pool().idle();
        let clone = pol.clone();
        total(&clone);
        assert!(clone.workspace_pool().idle() <= before.max(4));
        assert!(Arc::ptr_eq(pol.workspace_pool(), clone.workspace_pool()));
    }
}
