//! A supervised Robin-Hood master: the Fig. 4 farm hardened against the
//! failure modes the fault layer ([`minimpi::FaultPlan`]) can inject.
//!
//! The plain master of [`crate::robin_hood`] trusts its slaves: a lost
//! message stalls the refeed loop forever and a dead slave strands its
//! job. The supervised master instead
//!
//! * gives every dispatched job a **deadline** (calibrated from the
//!   [`crate::calibrate`] cost model via
//!   [`SupervisorConfig::from_cost_model`]), after which the job is
//!   requeued with exponential backoff and a bounded retry budget;
//! * detects **dead slaves** — both eagerly, when a send fails fast with
//!   [`minimpi::MpiError::Poisoned`], and by polling rank liveness — and
//!   immediately requeues their in-flight jobs;
//! * **deduplicates** late results: if a presumed-lost job is answered
//!   after being reassigned, the first answer wins and the straggler's
//!   copy is dropped;
//! * **degrades gracefully**: jobs that exhaust their retry budget land
//!   in [`FarmReport::failed_jobs`] instead of aborting the run, and only
//!   the collapse of *every* slave aborts, with
//!   [`FarmError::AllSlavesDead`] rather than a hang.
//!
//! Under an inert fault plan the supervised farm prices exactly the same
//! portfolio to exactly the same values as the plain one — the zero-fault
//! equivalence checked by `tests/sim_vs_live.rs` and `tests/farm_chaos.rs`.

use crate::calibrate::CostModel;
use crate::config::{RunCtx, SchedKnobs};
use crate::driver;
use crate::instrument;
use crate::portfolio::JobClass;
use crate::robin_hood::{send_job, FarmError, FarmReport, TAG};
use crate::strategy::{recover_problem_recorded, Transmission};
use crate::wire::Answer;
use minimpi::{Comm, FaultPlan, MpiBuf, MpiError, World};
use obs::Recorder;
use sched::{SchedConfig, Supervision};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs of the supervised master. Start from
/// [`SupervisorConfig::default`] (test-scale timings) or
/// [`SupervisorConfig::from_cost_model`] (calibrated for a real
/// portfolio) and override fields as needed.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Per-dispatch deadline: a job unanswered for this long is presumed
    /// lost and requeued.
    pub job_deadline: Duration,
    /// Maximum dispatch attempts per job before it is abandoned into
    /// [`FarmReport::failed_jobs`]. Must be at least 1.
    pub max_attempts: usize,
    /// Base of the exponential backoff between re-dispatches of the same
    /// job: attempt *n* waits `backoff_base * 2^(n-1)` after its failure.
    pub backoff_base: Duration,
    /// Master poll granularity: the longest the master blocks in one
    /// receive before re-checking deadlines and liveness.
    pub poll: Duration,
    /// Slave-side patience: how long an idle slave waits for traffic from
    /// the master before concluding it was orphaned and exiting. This
    /// bounds shutdown even if the stop sentinel itself is injected away.
    pub slave_idle_timeout: Duration,
    /// Slave-side deadline for the packed payload that follows a name
    /// message under the loaded strategies; on expiry the slave reports a
    /// failure for that job instead of blocking the farm.
    pub payload_timeout: Duration,
}

impl Default for SupervisorConfig {
    /// Aggressive, test-scale timings (tens of milliseconds): right for
    /// the toy portfolio whose jobs price in microseconds.
    fn default() -> Self {
        SupervisorConfig {
            job_deadline: Duration::from_millis(200),
            max_attempts: 4,
            backoff_base: Duration::from_millis(5),
            poll: Duration::from_millis(20),
            slave_idle_timeout: Duration::from_secs(2),
            payload_timeout: Duration::from_millis(200),
        }
    }
}

impl SupervisorConfig {
    /// Calibrate deadlines from a [`CostModel`]: the job deadline is
    /// `safety ×` the *worst-case* single-job cost across all job
    /// classes (floored at 50 ms so message latency never triggers a
    /// spurious retry), and the slave idle timeout is sized so a slave
    /// outlives a full master poll cycle plus one worst-case job.
    pub fn from_cost_model(model: &CostModel, safety: f64) -> Self {
        assert!(safety >= 1.0, "safety factor must be >= 1");
        let worst = JobClass::ALL
            .iter()
            .map(|&c| model.cost_range(c).1)
            .fold(0.0f64, f64::max);
        let deadline = Duration::from_secs_f64((worst * safety).max(0.05));
        SupervisorConfig {
            job_deadline: deadline,
            slave_idle_timeout: deadline * 4,
            payload_timeout: deadline,
            ..SupervisorConfig::default()
        }
    }
}

/// `true` for the comm errors that mean "this endpoint is finished" as
/// opposed to a protocol bug.
fn is_fatal_comm(e: &MpiError) -> bool {
    matches!(e, MpiError::Poisoned(_) | MpiError::Disconnected)
}

/// Supervised slave loop: same wire protocol as Fig. 4, but every blocking
/// wait is bounded and every local failure is *reported* (or at worst
/// abandoned to the master's deadline) instead of panicking the world.
fn supervised_slave(
    comm: &Comm,
    ctx: &RunCtx,
    strategy: Transmission,
    cfg: &SupervisorConfig,
) -> Result<usize, FarmError> {
    let mut done = 0usize;
    loop {
        comm.set_job(None);
        let msg = match comm.recv_obj_timeout(0, TAG, cfg.slave_idle_timeout) {
            // Silence for a whole idle window: the master is gone (or our
            // stop sentinel was injected away). Exit instead of hanging.
            Ok(None) => return Ok(done),
            Ok(Some((msg, _st))) => msg,
            // A fault-truncated name message: clear the mangled frame and
            // wait for the retry.
            Err(MpiError::Truncated { .. }) => {
                let _ = comm.discard(0, TAG);
                continue;
            }
            Err(e) if is_fatal_comm(&e) => return Ok(done),
            Err(e) => return Err(e.into()),
        };
        if msg.is_empty_matrix() {
            return Ok(done); // stop sentinel
        }
        // Name message: [path, job index]. A garbled frame that still
        // decodes (e.g. a payload whose name message was dropped) cannot
        // be attributed to a job; drop it and let the deadline requeue.
        let Some((name, idx)) = msg.as_list().and_then(|l| {
            let name = l.get(0)?.as_str()?.to_string();
            let idx = l.get(1)?.as_scalar()? as usize;
            Some((name, idx))
        }) else {
            continue;
        };
        comm.set_job(Some(idx));

        let payload = match strategy {
            Transmission::Nfs => None,
            _ => match comm.recv_timeout(0, TAG, cfg.payload_timeout) {
                Ok(Some((bytes, _st))) => match comm.unpack(&MpiBuf::from_bytes(bytes)) {
                    Ok(v) if v.is_empty_matrix() => {
                        // The payload was lost and the frame we consumed
                        // is our own stop sentinel: shut down.
                        return Ok(done);
                    }
                    Ok(v) => Some(v),
                    Err(_) => {
                        report_failure(comm, idx, "payload undecodable")?;
                        continue;
                    }
                },
                Ok(None) => {
                    report_failure(comm, idx, "payload timeout")?;
                    continue;
                }
                Err(MpiError::Truncated { .. }) => {
                    let _ = comm.discard(0, TAG);
                    report_failure(comm, idx, "payload truncated")?;
                    continue;
                }
                Err(e) if is_fatal_comm(&e) => return Ok(done),
                Err(e) => return Err(e.into()),
            },
        };

        let computed = recover_problem_recorded(comm, ctx, strategy, &name, payload.as_ref())
            .map_err(|e| e.to_string())
            .and_then(|p| {
                instrument::compute_recorded(comm, ctx, &p)
                    .map_err(|e| format!("compute failed: {e}"))
            });
        let reply = match &computed {
            Ok(result) => Answer::priced(idx, result).to_value(),
            Err(why) => Answer::failed(idx, why.clone()).to_value(),
        };
        match comm.send_obj(&reply, 0, TAG) {
            Ok(()) => {
                if computed.is_ok() {
                    done += 1;
                }
            }
            Err(e) if is_fatal_comm(&e) => return Ok(done),
            Err(e) => return Err(e.into()),
        }
    }
}

/// Send a failure report, treating a dead master as a clean exit signal.
fn report_failure(comm: &Comm, job: usize, why: &str) -> Result<(), FarmError> {
    match comm.send_obj(&Answer::failed(job, why).to_value(), 0, TAG) {
        Ok(()) => Ok(()),
        Err(e) if is_fatal_comm(&e) => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Translate the wall-clock [`SupervisorConfig`] timings into the pure
/// scheduler's [`Supervision`] parameters (nanosecond semantics are
/// identical: attempt `n` backs off `backoff_base << min(n-1, 16)`).
fn supervision_of(cfg: &SupervisorConfig) -> Supervision {
    Supervision {
        deadline_ns: cfg.job_deadline.as_nanos() as u64,
        max_attempts: cfg.max_attempts as u32,
        backoff_base_ns: cfg.backoff_base.as_nanos() as u64,
    }
}

/// Supervised master loop, as a thin [`driver`] of the shared
/// [`sched::Scheduler`]: this function only moves bytes and reads
/// clocks; every decision (deadlines, retries with backoff, first-
/// answer dedup, burial, all-dead abort) comes from the state machine.
/// Returns the enriched [`FarmReport`]; errors only on unrecoverable
/// conditions (every slave dead, or the master's own endpoint failing).
fn supervised_master(
    comm: &Comm,
    ctx: &RunCtx,
    files: &[PathBuf],
    strategy: Transmission,
    cfg: &SupervisorConfig,
    knobs: &SchedKnobs,
) -> Result<FarmReport, FarmError> {
    let slaves = comm.size() - 1;
    let start = Instant::now();
    // Reused pack buffer for loaded payloads (see `send_job`).
    let mut scratch = MpiBuf::with_capacity(0);
    let mut scfg = SchedConfig::plain(files.len(), slaves)
        .policy(knobs.policy.clone())
        .supervised(supervision_of(cfg));
    if knobs.record_trace {
        scfg = scfg.record_trace();
    }
    let run = driver::drive_supervised(comm, TAG, scfg, cfg.poll, |job, slave| {
        send_job(comm, ctx, slave, job, &files[job], strategy, &mut scratch)?;
        // Slide the prefetch window past this job (monotonic: retries
        // of earlier jobs don't pull it back).
        ctx.advance(job + 1);
        Ok(())
    })?;
    Ok(FarmReport {
        outcomes: run.outcomes,
        elapsed: start.elapsed(),
        per_slave: run.per_slave,
        strategy,
        failed_jobs: run.failed_jobs,
        retries: run.retries,
        dead_slaves: run.dead_slaves,
        trace: run.trace,
    })
}

/// The supervised route behind [`crate::run`]: the validated entry point
/// with fault injection and phase-level observability threaded through.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_supervised_inner(
    files: &[PathBuf],
    slaves: usize,
    strategy: Transmission,
    cfg: &SupervisorConfig,
    plan: Option<Arc<FaultPlan>>,
    recorder: Option<Arc<Recorder>>,
    ctx: &RunCtx,
    knobs: &SchedKnobs,
) -> Result<FarmReport, FarmError> {
    let body = |comm: Comm| {
        if comm.rank() == 0 {
            Some(supervised_master(&comm, ctx, files, strategy, cfg, knobs))
        } else {
            // A supervised slave never panics the world: local failures
            // are reported upstream, comm failures end the loop.
            match supervised_slave(&comm, ctx, strategy, cfg) {
                Ok(_) | Err(_) => None,
            }
        }
    };
    let results = World::run_instrumented(slaves + 1, plan, recorder, body);
    results
        .into_iter()
        .next()
        .flatten()
        .expect("master produces the report")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{run, FarmConfig};
    use crate::portfolio::{save_portfolio, toy_portfolio};

    /// Shorthand routed through the unified [`crate::run`] entry point.
    fn run_supervised(
        files: &[PathBuf],
        slaves: usize,
        strategy: Transmission,
        cfg: &SupervisorConfig,
        plan: Option<Arc<FaultPlan>>,
    ) -> Result<FarmReport, FarmError> {
        let mut fc = FarmConfig::new(slaves, strategy).supervisor(cfg.clone());
        if let Some(plan) = plan {
            fc = fc.fault_plan(plan);
        }
        run(files, &fc)
    }

    fn setup(count: usize, tag: &str) -> (Vec<PathBuf>, Vec<f64>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("farm_sup_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = toy_portfolio(count);
        let paths = save_portfolio(&jobs, &dir).unwrap();
        let expected: Vec<f64> = jobs
            .iter()
            .map(|j| j.problem.compute().unwrap().price)
            .collect();
        (paths, expected, dir)
    }

    #[test]
    fn fault_free_supervised_farm_prices_everything() {
        let (paths, expected, dir) = setup(30, "clean");
        let cfg = SupervisorConfig::default();
        let report = run_supervised(&paths, 3, Transmission::SerializedLoad, &cfg, None).unwrap();
        assert_eq!(report.completed(), expected.len());
        assert!(report.failed_jobs.is_empty());
        assert_eq!(report.retries, 0);
        assert!(report.dead_slaves.is_empty());
        for o in &report.outcomes {
            assert!((o.price - expected[o.job]).abs() < 1e-12);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_slaves_rejected() {
        assert!(matches!(
            run_supervised(
                &[],
                0,
                Transmission::Nfs,
                &SupervisorConfig::default(),
                None
            ),
            Err(FarmError::NoSlaves)
        ));
    }

    #[test]
    fn config_from_cost_model_calibrates_deadline() {
        let cfg = SupervisorConfig::from_cost_model(&crate::calibrate::paper_costs(), 3.0);
        // Paper costs top out above 60 s (American MC), so the deadline
        // is far above the floor and scaled by the safety factor.
        assert!(cfg.job_deadline >= Duration::from_secs(60));
        assert!(cfg.slave_idle_timeout > cfg.job_deadline);
    }

    #[test]
    fn deadline_floor_protects_fast_jobs() {
        let cfg =
            SupervisorConfig::from_cost_model(&crate::calibrate::paper_costs().scaled(1e-9), 1.0);
        assert!(cfg.job_deadline >= Duration::from_millis(50));
    }
}
