//! The live-side drivers of the [`sched`] state machine.
//!
//! Every farm master in this crate — plain, batched, supervised, and
//! each hierarchy sub-master — used to carry its own copy of the
//! Robin-Hood refeed loop. They are now thin *drivers*: they translate
//! wire messages into [`sched::Event`]s, feed the pure scheduler, and
//! execute the returned [`sched::Action`]s as sends. All scheduling
//! *decisions* (who gets which job next, when a job is presumed lost,
//! when a slave is buried, when the run is finished) live in
//! `crates/sched`, where the cluster simulator drives the identical
//! state machine with simulated time — the parity property locked down
//! by `tests/sched_parity.rs`.
//!
//! This module is also the only place in the crate allowed to receive
//! from `ANY_SOURCE` (enforced by a grep gate in `scripts/ci.sh`): the
//! master's gather point is a driver concern, not a protocol one.

use crate::instrument;
use crate::robin_hood::{FarmError, JobOutcome};
use crate::wire::{self, Answer};
use minimpi::{Comm, MpiBuf, MpiError, Status, ANY_SOURCE};
use nspval::Value;
use obs::{EventKind, NO_JOB};
use sched::{Action, Event, SchedConfig, Scheduler, Trace};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How a master's gather point receives slave answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvStyle {
    /// One `recv_obj` per answer (plain and hierarchy protocols).
    Obj,
    /// Probe → sized buffer → unpack; one packed message carries a whole
    /// batch reply (the §5 batching protocol).
    Packed,
}

/// Mapping between the scheduler's dense job ids (`0..jobs`) and the job
/// indices that travel on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobMap {
    /// Wire ids are scheduler ids (flat farms).
    Identity,
    /// Wire ids are `base + sched_id` (a hierarchy sub-master's
    /// contiguous chunk of the global file list).
    Offset(usize),
}

impl JobMap {
    fn to_wire(self, job: usize) -> usize {
        match self {
            JobMap::Identity => job,
            JobMap::Offset(base) => base + job,
        }
    }

    fn sched_of_wire(self, wire_job: usize) -> Option<usize> {
        match self {
            JobMap::Identity => Some(wire_job),
            JobMap::Offset(base) => wire_job.checked_sub(base),
        }
    }
}

/// What [`drive_plain`] hands back to its master.
#[derive(Debug)]
pub(crate) struct PlainRun {
    /// Priced jobs in completion order, `job` in *wire* ids.
    pub(crate) outcomes: Vec<JobOutcome>,
    /// Jobs completed per MPI rank (index 0, the master, stays 0).
    pub(crate) per_slave: Vec<usize>,
    /// The decision trace, when the config asked for one.
    pub(crate) trace: Option<Trace>,
}

/// What [`drive_supervised`] hands back to its master.
#[derive(Debug)]
pub(crate) struct SupRun {
    /// Priced jobs in acceptance order.
    pub(crate) outcomes: Vec<JobOutcome>,
    /// Jobs completed per MPI rank.
    pub(crate) per_slave: Vec<usize>,
    /// Jobs abandoned after exhausting their attempt budget.
    pub(crate) failed_jobs: Vec<usize>,
    /// Total re-dispatches performed.
    pub(crate) retries: usize,
    /// Slave ranks buried during the run.
    pub(crate) dead_slaves: Vec<usize>,
    /// The decision trace, when the config asked for one.
    pub(crate) trace: Option<Trace>,
}

/// Receive one object from any source — the gather point shared by the
/// plain drivers and the hierarchy's global master.
pub(crate) fn recv_any(comm: &Comm, tag: i32) -> Result<(Value, Status), FarmError> {
    Ok(comm.recv_obj(ANY_SOURCE, tag)?)
}

/// Map a sender rank to its scheduler slave id via the driver's rank
/// table (`ranks[s]` = MPI rank of slave `s`; `ranks[0]` is the master).
fn slave_of(ranks: &[usize], src: usize) -> Result<usize, FarmError> {
    ranks[1..]
        .iter()
        .position(|&r| r == src)
        .map(|i| i + 1)
        .ok_or_else(|| FarmError::Protocol(format!("answer from unknown rank {src}")))
}

/// A staged workload's pre-dispatch hook: called with the scheduler job
/// id and the outcomes gathered so far, *before* the job's bytes are
/// sent — the one moment a round-dependent job (a BSDE Picard sweep
/// consuming the previous round's iterate) may rewrite its problem file.
/// Scheduling decisions never read payloads, so patching is invisible to
/// the decision trace — live/sim parity is preserved for free.
pub(crate) type DispatchPatch<'a> =
    &'a mut dyn FnMut(usize, &[JobOutcome]) -> Result<(), FarmError>;

/// Drive an unsupervised (plain or batched) farm master to completion.
///
/// `ranks[s]` is the MPI rank of scheduler slave `s` (`ranks[0]` = this
/// master's own rank, unused). `send(job, rank, batch)` ships jobs
/// `job..job+batch` (scheduler ids) to `rank`; `stop(rank)` sends the
/// protocol's stop sentinel. The driver owns the gather point and the
/// per-dispatch [`EventKind::Dispatch`] diagnostic mark. A staged
/// workload passes `patch` to feed earlier rounds' answers into later
/// rounds' problem files.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_plain(
    comm: &Comm,
    tag: i32,
    cfg: SchedConfig,
    ranks: &[usize],
    style: RecvStyle,
    map: JobMap,
    mut patch: Option<DispatchPatch<'_>>,
    mut send: impl FnMut(usize, usize, usize) -> Result<(), FarmError>,
    mut stop: impl FnMut(usize) -> Result<(), FarmError>,
) -> Result<PlainRun, FarmError> {
    debug_assert!(cfg.supervision.is_none(), "use drive_supervised");
    debug_assert_eq!(ranks.len(), cfg.slaves + 1);
    let slaves = cfg.slaves;
    let jobs = cfg.jobs;
    let mut sched = Scheduler::new(cfg)
        .map_err(|e| FarmError::Config(exec::ConfigIssues::one("scheduler", e.to_string())))?;
    let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs);
    let mut per_slave = vec![0usize; comm.size()];

    let mut apply = |actions: Vec<Action>, outcomes: &[JobOutcome]| -> Result<(), FarmError> {
        for a in actions {
            match a {
                Action::Dispatch { job, slave, batch } => {
                    if let Some(p) = patch.as_deref_mut() {
                        p(job, outcomes)?;
                    }
                    send(job, ranks[slave], batch)?;
                    instrument::mark(
                        comm,
                        EventKind::Dispatch,
                        map.to_wire(job) as i64,
                        batch as u64,
                    );
                }
                Action::Stop { slave } => stop(ranks[slave])?,
                Action::Accept { .. } | Action::Finish => {}
                _ => unreachable!("plain scheduler emits no supervision actions"),
            }
        }
        Ok(())
    };

    // Priming: one SlaveReady per slave, in rank order (Fig. 4).
    for s in 1..=slaves {
        let actions = sched.on(Event::SlaveReady { slave: s }, 0);
        apply(actions, &outcomes)?;
    }

    // Gather/refeed loop.
    while !sched.is_terminal() {
        let (answers, src) = match style {
            RecvStyle::Obj => {
                let (v, st) = recv_any(comm, tag)?;
                (vec![wire::decode_answer(&v)?], st.src)
            }
            RecvStyle::Packed => {
                let st = comm.probe(ANY_SOURCE, tag)?;
                let mut buf = MpiBuf::with_capacity(st.count());
                comm.recv_into(&mut buf, st.src as i32, tag)?;
                let v = comm.unpack(&buf)?;
                (wire::decode_batch_reply(&v)?, st.src)
            }
        };
        let slave = slave_of(ranks, src)?;
        let head = answers
            .first()
            .map(|a| a.job())
            .ok_or_else(|| FarmError::Protocol(format!("empty batch reply from rank {src}")))?;
        for a in answers {
            match a {
                Answer::Priced {
                    job,
                    price,
                    std_error,
                } => {
                    outcomes.push(JobOutcome {
                        job,
                        slave: src,
                        price,
                        std_error,
                    });
                    per_slave[src] += 1;
                }
                Answer::Failed { job, why } => {
                    return Err(FarmError::Protocol(format!(
                        "unsupervised slave {src} reported failure for job {job}: {why}"
                    )));
                }
            }
        }
        let sched_job = map
            .sched_of_wire(head)
            .filter(|&j| j < jobs)
            .ok_or_else(|| FarmError::Protocol(format!("answer for unknown job {head}")))?;
        let actions = sched.on(
            Event::Answer {
                job: sched_job,
                slave,
            },
            0,
        );
        apply(actions, &outcomes)?;
    }

    Ok(PlainRun {
        outcomes,
        per_slave,
        trace: sched.take_trace(),
    })
}

/// Drive the supervised farm master to completion.
///
/// Slave ids are MPI ranks (`1..=slaves`); `send(job, rank)` ships one
/// job. A send that fails fast with [`MpiError::Poisoned`] for the
/// target rank is reported back as [`Event::SendFailed`] — the scheduler
/// reverses the attempt and buries the slave — and the recovery actions
/// run *before* the rest of the current batch, keeping the live driver
/// in lock-step with the simulator. Undecodable replies surface as
/// [`FarmError::Protocol`] instead of being dropped.
pub(crate) fn drive_supervised(
    comm: &Comm,
    tag: i32,
    cfg: SchedConfig,
    poll: Duration,
    mut send: impl FnMut(usize, usize) -> Result<(), FarmError>,
) -> Result<SupRun, FarmError> {
    debug_assert!(cfg.supervision.is_some(), "use drive_plain");
    let slaves = cfg.slaves;
    let jobs = cfg.jobs;
    let mut sched = Scheduler::new(cfg)
        .map_err(|e| FarmError::Config(exec::ConfigIssues::one("scheduler", e.to_string())))?;
    let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs);
    let mut per_slave = vec![0usize; comm.size()];
    // The priced answer currently being fed to the scheduler; consumed
    // by the Accept action it may produce (dedup leaves it unconsumed).
    let mut pending: Option<(f64, Option<f64>)> = None;

    let epoch = Instant::now();
    let now = |epoch: &Instant| epoch.elapsed().as_nanos() as u64;

    // Execute an action batch; a failed dispatch send feeds SendFailed
    // and front-splices the recovery actions before the remainder.
    let mut run_actions = |sched: &mut Scheduler,
                           pending: &mut Option<(f64, Option<f64>)>,
                           actions: Vec<Action>|
     -> Result<(), FarmError> {
        let mut work: VecDeque<Action> = actions.into();
        while let Some(a) = work.pop_front() {
            match a {
                Action::Dispatch { job, slave, .. } => match send(job, slave) {
                    Ok(()) => {
                        instrument::mark(comm, EventKind::Dispatch, job as i64, 1);
                    }
                    Err(FarmError::Mpi(MpiError::Poisoned(dead))) if dead == slave => {
                        let recovery = sched.on(Event::SendFailed { job, slave }, now(&epoch));
                        for r in recovery.into_iter().rev() {
                            work.push_front(r);
                        }
                    }
                    Err(e) => return Err(e),
                },
                Action::Stop { slave } => {
                    match comm.send_obj(&Value::empty_matrix(), slave as i32, tag) {
                        Ok(()) | Err(MpiError::Poisoned(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                Action::Accept { job, slave } => {
                    let (price, std_error) =
                        pending.take().expect("Accept follows a priced answer");
                    outcomes.push(JobOutcome {
                        job,
                        slave,
                        price,
                        std_error,
                    });
                    per_slave[slave] += 1;
                }
                Action::Expire { job, .. } => {
                    instrument::mark(comm, EventKind::Deadline, job as i64, 0);
                }
                Action::Requeue { job } => {
                    instrument::mark(comm, EventKind::Retry, job as i64, 0);
                }
                Action::Bury { slave } => {
                    instrument::mark(comm, EventKind::SlaveDeath, NO_JOB, slave as u64);
                }
                Action::AllSlavesDead | Action::Finish => {}
            }
        }
        Ok(())
    };

    // Priming.
    for s in 1..=slaves {
        let acts = sched.on(Event::SlaveReady { slave: s }, now(&epoch));
        run_actions(&mut sched, &mut pending, acts)?;
    }

    while !sched.is_terminal() {
        // 1. Liveness sweep: notice kills even without trying to send.
        for s in 1..=slaves {
            if !sched.is_dead(s) && !comm.rank_alive(s) {
                let acts = sched.on(Event::SlaveDead { slave: s }, now(&epoch));
                run_actions(&mut sched, &mut pending, acts)?;
            }
        }
        if sched.is_terminal() {
            break;
        }
        // 2. Deadline/backoff tick.
        let acts = sched.on(Event::Deadline, now(&epoch));
        run_actions(&mut sched, &mut pending, acts)?;
        if sched.is_terminal() {
            break;
        }
        // 3. Collect one answer (or poll out and sweep again).
        match comm.recv_obj_timeout(ANY_SOURCE, tag, poll) {
            Ok(None) => {}
            Ok(Some((v, st))) => {
                // An undecodable reply is a protocol violation, surfaced
                // with the offending value rendered — never dropped.
                let answer = wire::decode_answer(&v)?;
                match answer {
                    Answer::Priced {
                        job,
                        price,
                        std_error,
                    } => {
                        pending = Some((price, std_error));
                        let acts = sched.on(Event::Answer { job, slave: st.src }, now(&epoch));
                        run_actions(&mut sched, &mut pending, acts)?;
                        pending = None; // duplicate answers never accept
                    }
                    Answer::Failed { job, .. } => {
                        let acts = sched.on(Event::Failure { job, slave: st.src }, now(&epoch));
                        run_actions(&mut sched, &mut pending, acts)?;
                    }
                }
            }
            // A truncated result: clear it; the job deadline requeues it.
            Err(MpiError::Truncated { .. }) => {
                let _ = comm.discard(ANY_SOURCE, tag);
            }
            Err(e) => return Err(e.into()),
        }
    }

    if sched.aborted() {
        return Err(FarmError::AllSlavesDead {
            completed: outcomes.len(),
            remaining: sched.unfinished(),
        });
    }
    Ok(SupRun {
        outcomes,
        per_slave,
        failed_jobs: sched.failed_jobs(),
        retries: sched.retries() as usize,
        dead_slaves: sched.dead_slaves(),
        trace: sched.take_trace(),
    })
}
