//! Portfolio generators — the three benchmark workloads of §4.
//!
//! The §4.3 realistic portfolio reproduces the paper's composition
//! exactly (7 931 claims):
//!
//! | count | product | method |
//! |---|---|---|
//! | 1952 | vanilla calls, maturities quarterly 4 m → 8 y (32), strikes 70–130 % step 1 % (61) | closed form |
//! | 1952 | down-and-out calls, same grid, barrier clause ⇒ thin time steps | PDE |
//! | 525  | 40-dim basket puts, maturities 0.2–5 y step 0.2 (25), strikes 90–110 % (21) | Monte-Carlo (10⁶ samples at full scale) |
//! | 1025 | local-vol calls, strikes 80–120 % (41), maturities 0.2–5 y (25) | Monte-Carlo |
//! | 1952 | American puts, same grid as vanillas | PDE |
//! | 525  | 7-dim American basket puts, maturities 0.2–5 y, strikes 90–110 % | Longstaff–Schwartz |

use pricing::models::{BlackScholes, LocalVol, MultiBlackScholes};
use pricing::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem};
use std::path::{Path, PathBuf};

/// Which product class a job belongs to — the cost-model key used by
/// the cluster simulator. The first six variants are the §4.3 paper
/// composition; the last three are the heterogeneous extensions drawn
/// from the related literature (Doan et al. 2008 multi-dimensional
/// Bermudan LSM, Labart–Lelong 2011 BSDE Picard sweeps, and
/// portfolio-level XVA aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Plain vanilla call, closed form (≈ instantaneous).
    VanillaClosedForm,
    /// Down-and-out barrier call, PDE with thin time steps (10–30 s).
    BarrierPde,
    /// 40-dimensional basket put, Monte-Carlo (10–30 s).
    BasketMc,
    /// Local-volatility call, Monte-Carlo (10–30 s).
    LocalVolMc,
    /// American put, PDE (> 60 s).
    AmericanPde,
    /// 7-dimensional American basket put, LSM (> 60 s).
    AmericanBasketLsm,
    /// Multi-dimensional Bermudan max-call, LSM (Doan et al. 2008).
    BermudanMaxLsm,
    /// One BSDE Picard sweep, Monte-Carlo (Labart–Lelong 2011). The cost
    /// is *per sweep*: a full pricing is `picard_rounds` dependent
    /// farm rounds of this grain.
    BsdePicardMc,
    /// Portfolio-level CVA over a netted trade book, Monte-Carlo.
    XvaCvaMc,
}

impl JobClass {
    /// Every variant, in canonical order.
    pub const ALL: [JobClass; 9] = [
        JobClass::VanillaClosedForm,
        JobClass::BarrierPde,
        JobClass::BasketMc,
        JobClass::LocalVolMc,
        JobClass::AmericanPde,
        JobClass::AmericanBasketLsm,
        JobClass::BermudanMaxLsm,
        JobClass::BsdePicardMc,
        JobClass::XvaCvaMc,
    ];

    /// The six classes of the §4.3 realistic portfolio (the paper's
    /// exact composition — [`realistic_portfolio`] contains these and
    /// only these).
    pub const PAPER: [JobClass; 6] = [
        JobClass::VanillaClosedForm,
        JobClass::BarrierPde,
        JobClass::BasketMc,
        JobClass::LocalVolMc,
        JobClass::AmericanPde,
        JobClass::AmericanBasketLsm,
    ];

    /// The §4.3 paragraph-stated computation cost of one problem of this
    /// class on a 2009 cluster node, in seconds ("the pricing of plain
    /// vanilla options is almost instantaneous; the Monte-Carlo and PDE
    /// approaches for European options roughly demand the same amount of
    /// computations (between 10 and 30 seconds); the evaluation of American
    /// products is much longer than any other (above 60 seconds)"). The
    /// extension classes are placed on the same scale: one BSDE Picard
    /// sweep costs more than any single European Monte-Carlo grain (the
    /// sweep regresses *and* simulates), the Bermudan max-call sits with
    /// the American products, and the netted CVA book is a wide but
    /// shallow European-style pass.
    pub fn paper_cost_seconds(&self) -> (f64, f64) {
        match self {
            JobClass::VanillaClosedForm => (0.001, 0.005),
            JobClass::BarrierPde => (10.0, 30.0),
            JobClass::BasketMc => (10.0, 30.0),
            JobClass::LocalVolMc => (10.0, 30.0),
            JobClass::AmericanPde => (60.0, 100.0),
            JobClass::AmericanBasketLsm => (60.0, 120.0),
            JobClass::BermudanMaxLsm => (60.0, 150.0),
            JobClass::BsdePicardMc => (40.0, 90.0),
            JobClass::XvaCvaMc => (10.0, 40.0),
        }
    }

    /// True when this class is priced by a path-chunked kernel — i.e. one
    /// of the Monte-Carlo/LSM routines that route through the `exec`
    /// executor when [`crate::FarmConfig::threads`] ≥ 2. Closed-form,
    /// PDE and tree pricers stay single-threaded, so intra-slave
    /// parallelism buys them nothing on the live farm. All three
    /// extension classes ride the chunked path (their kernels reuse the
    /// existing `*_exec` bodies — no new sequential-only hot loops).
    pub fn chunked_kernel(&self) -> bool {
        matches!(
            self,
            JobClass::BasketMc
                | JobClass::LocalVolMc
                | JobClass::AmericanBasketLsm
                | JobClass::BermudanMaxLsm
                | JobClass::BsdePicardMc
                | JobClass::XvaCvaMc
        )
    }
}

/// One entry of a portfolio: a classified, ready-to-price problem.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioJob {
    /// Stable job index within its portfolio.
    pub id: usize,
    /// §4.3 product class (the cost-model key).
    pub class: JobClass,
    /// The fully specified pricing problem.
    pub problem: PremiaProblem,
}

/// Numerical heaviness of the generated problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortfolioScale {
    /// Tiny parameters — tests and examples (ms per problem).
    Quick,
    /// Paper-scale parameters (10⁶ MC samples, thin PDE grids).
    Full,
}

struct MethodParams {
    mc_paths: usize,
    mc_steps: usize,
    pde_t: usize,
    pde_x: usize,
    /// Barrier PDE time steps per year — §4.3: "one time step every
    /// 2 days".
    barrier_t_per_year: usize,
    lsm_paths: usize,
    lsm_dates: usize,
    /// BSDE Picard sweep: paths and driver-integral steps per sweep. A
    /// sweep simulates *and* regresses, so even at Quick scale its
    /// path-step budget dominates a vanilla Monte-Carlo grain.
    bsde_paths: usize,
    bsde_steps: usize,
    /// XVA exposure paths and exposure dates.
    xva_paths: usize,
    xva_dates: usize,
}

impl PortfolioScale {
    fn params(&self) -> MethodParams {
        match self {
            PortfolioScale::Quick => MethodParams {
                mc_paths: 1_000,
                mc_steps: 10,
                pde_t: 30,
                pde_x: 60,
                barrier_t_per_year: 30,
                lsm_paths: 500,
                lsm_dates: 8,
                bsde_paths: 4_000,
                bsde_steps: 12,
                xva_paths: 2_000,
                xva_dates: 12,
            },
            PortfolioScale::Full => MethodParams {
                mc_paths: 1_000_000,
                mc_steps: 100,
                pde_t: 1_000,
                pde_x: 1_000,
                barrier_t_per_year: 180,
                lsm_paths: 100_000,
                lsm_dates: 50,
                bsde_paths: 500_000,
                bsde_steps: 50,
                xva_paths: 200_000,
                xva_dates: 50,
            },
        }
    }
}

const SPOT: f64 = 100.0;
const RATE: f64 = 0.05;
const SIGMA: f64 = 0.2;

fn bs() -> ModelSpec {
    ModelSpec::BlackScholes(BlackScholes::new(SPOT, SIGMA, RATE, 0.0))
}

/// §4.3 vanilla grid: strikes 70–130 % step 1 %, maturities quarterly from
/// 4 months to (4 months + 31 quarters).
fn vanilla_grid() -> Vec<(f64, f64)> {
    let mut grid = Vec::with_capacity(1952);
    for q in 0..32 {
        let maturity = 4.0 / 12.0 + 0.25 * q as f64;
        for s in 0..61 {
            let strike = SPOT * (0.70 + 0.01 * s as f64);
            grid.push((strike, maturity));
        }
    }
    grid
}

/// §4.3 basket/American-basket grid: maturities 0.2–5 y step 0.2, strikes
/// 90–110 % step 1 %.
fn basket_grid() -> Vec<(f64, f64)> {
    let mut grid = Vec::with_capacity(525);
    for m in 1..=25 {
        let maturity = 0.2 * m as f64;
        for s in 0..21 {
            let strike = SPOT * (0.90 + 0.01 * s as f64);
            grid.push((strike, maturity));
        }
    }
    grid
}

/// §4.3 local-vol grid: strikes 80–120 % step 1 %, maturities 0.2–5 y.
fn local_vol_grid() -> Vec<(f64, f64)> {
    let mut grid = Vec::with_capacity(1025);
    for m in 1..=25 {
        let maturity = 0.2 * m as f64;
        for s in 0..41 {
            let strike = SPOT * (0.80 + 0.01 * s as f64);
            grid.push((strike, maturity));
        }
    }
    grid
}

/// The §4.3 realistic portfolio: 7 931 claims with the paper's exact
/// composition. `stride` keeps every `stride`-th job of each class
/// (stride 1 = the full portfolio), preserving class proportions for
/// scaled-down test runs.
pub fn realistic_portfolio(scale: PortfolioScale, stride: usize) -> Vec<PortfolioJob> {
    assert!(stride >= 1, "stride must be at least 1");
    let p = scale.params();
    let mut jobs = Vec::new();
    let mut id = 0;
    let mut push = |jobs: &mut Vec<PortfolioJob>, class, problem| {
        jobs.push(PortfolioJob { id, class, problem });
        id += 1;
    };

    // 1952 vanilla calls, closed form.
    for (i, &(strike, maturity)) in vanilla_grid().iter().enumerate() {
        if i % stride != 0 {
            continue;
        }
        push(
            &mut jobs,
            JobClass::VanillaClosedForm,
            PremiaProblem::new(
                bs(),
                OptionSpec::Call { strike, maturity },
                MethodSpec::ClosedForm,
            ),
        );
    }
    // 1952 down-and-out calls, PDE with barrier-thin time steps.
    for (i, &(strike, maturity)) in vanilla_grid().iter().enumerate() {
        if i % stride != 0 {
            continue;
        }
        let time_steps = ((maturity * p.barrier_t_per_year as f64).ceil() as usize).max(p.pde_t);
        push(
            &mut jobs,
            JobClass::BarrierPde,
            PremiaProblem::new(
                bs(),
                OptionSpec::DownOutCall {
                    strike,
                    barrier: 0.85 * strike.min(SPOT),
                    maturity,
                },
                MethodSpec::Pde {
                    time_steps,
                    space_steps: p.pde_x,
                },
            ),
        );
    }
    // 525 basket-40 puts, Monte-Carlo.
    let basket40 =
        ModelSpec::MultiBlackScholes(MultiBlackScholes::new(40, SPOT, SIGMA, 0.3, RATE, 0.0));
    for (i, &(strike, maturity)) in basket_grid().iter().enumerate() {
        if i % stride != 0 {
            continue;
        }
        push(
            &mut jobs,
            JobClass::BasketMc,
            PremiaProblem::new(
                basket40.clone(),
                OptionSpec::BasketPut { strike, maturity },
                MethodSpec::MonteCarlo {
                    paths: p.mc_paths,
                    time_steps: p.mc_steps,
                    antithetic: true,
                    seed: 42 + i as u64,
                },
            ),
        );
    }
    // 1025 local-vol calls, Monte-Carlo.
    let lv = ModelSpec::LocalVol(LocalVol::standard(SPOT, SIGMA, RATE, 0.0));
    for (i, &(strike, maturity)) in local_vol_grid().iter().enumerate() {
        if i % stride != 0 {
            continue;
        }
        push(
            &mut jobs,
            JobClass::LocalVolMc,
            PremiaProblem::new(
                lv.clone(),
                OptionSpec::Call { strike, maturity },
                MethodSpec::MonteCarlo {
                    paths: p.mc_paths,
                    time_steps: p.mc_steps,
                    antithetic: true,
                    seed: 137 + i as u64,
                },
            ),
        );
    }
    // 1952 American puts, PDE.
    for (i, &(strike, maturity)) in vanilla_grid().iter().enumerate() {
        if i % stride != 0 {
            continue;
        }
        push(
            &mut jobs,
            JobClass::AmericanPde,
            PremiaProblem::new(
                bs(),
                OptionSpec::AmericanPut { strike, maturity },
                MethodSpec::Pde {
                    time_steps: p.pde_t,
                    space_steps: p.pde_x,
                },
            ),
        );
    }
    // 525 American basket-7 puts, LSM.
    let basket7 =
        ModelSpec::MultiBlackScholes(MultiBlackScholes::new(7, SPOT, SIGMA, 0.3, RATE, 0.0));
    for (i, &(strike, maturity)) in basket_grid().iter().enumerate() {
        if i % stride != 0 {
            continue;
        }
        push(
            &mut jobs,
            JobClass::AmericanBasketLsm,
            PremiaProblem::new(
                basket7.clone(),
                OptionSpec::AmericanBasketPut { strike, maturity },
                MethodSpec::Lsm {
                    paths: p.lsm_paths,
                    exercise_dates: p.lsm_dates,
                    basis_degree: 3,
                    seed: 271 + i as u64,
                },
            ),
        );
    }
    jobs
}

/// The §4.2 toy portfolio: `count` closed-form vanilla calls (the paper
/// uses 10 000), strikes cycling over 70–130 %, maturities cycling
/// quarterly — "a single price computation is then very fast and the time
/// spent in communication is easily highlighted".
pub fn toy_portfolio(count: usize) -> Vec<PortfolioJob> {
    (0..count)
        .map(|i| PortfolioJob {
            id: i,
            class: JobClass::VanillaClosedForm,
            problem: PremiaProblem::new(
                bs(),
                OptionSpec::Call {
                    strike: SPOT * (0.70 + 0.01 * (i % 61) as f64),
                    maturity: 4.0 / 12.0 + 0.25 * ((i / 61) % 32) as f64,
                },
                MethodSpec::ClosedForm,
            ),
        })
        .collect()
}

/// One ready-to-price representative problem of `class` at `scale` — the
/// calibration grain. The §4.3 classes use the same specs as
/// [`realistic_portfolio`]; the extension classes (Bermudan max-call,
/// BSDE Picard sweep, netted CVA book) have no slot in the paper
/// composition, so this is *the* canonical problem the cost model and the
/// `--calibrate-classes` table path measure.
pub fn representative_problem(class: JobClass, scale: PortfolioScale) -> PortfolioJob {
    let p = scale.params();
    let problem = match class {
        JobClass::VanillaClosedForm => PremiaProblem::new(
            bs(),
            OptionSpec::Call {
                strike: SPOT,
                maturity: 1.0,
            },
            MethodSpec::ClosedForm,
        ),
        JobClass::BarrierPde => PremiaProblem::new(
            bs(),
            OptionSpec::DownOutCall {
                strike: SPOT,
                barrier: 0.85 * SPOT,
                maturity: 1.0,
            },
            MethodSpec::Pde {
                time_steps: p.barrier_t_per_year.max(p.pde_t),
                space_steps: p.pde_x,
            },
        ),
        JobClass::BasketMc => PremiaProblem::new(
            ModelSpec::MultiBlackScholes(MultiBlackScholes::new(40, SPOT, SIGMA, 0.3, RATE, 0.0)),
            OptionSpec::BasketPut {
                strike: SPOT,
                maturity: 1.0,
            },
            MethodSpec::MonteCarlo {
                paths: p.mc_paths,
                time_steps: p.mc_steps,
                antithetic: true,
                seed: 42,
            },
        ),
        JobClass::LocalVolMc => PremiaProblem::new(
            ModelSpec::LocalVol(LocalVol::standard(SPOT, SIGMA, RATE, 0.0)),
            OptionSpec::Call {
                strike: SPOT,
                maturity: 1.0,
            },
            MethodSpec::MonteCarlo {
                paths: p.mc_paths,
                time_steps: p.mc_steps,
                antithetic: true,
                seed: 137,
            },
        ),
        JobClass::AmericanPde => PremiaProblem::new(
            bs(),
            OptionSpec::AmericanPut {
                strike: SPOT,
                maturity: 1.0,
            },
            MethodSpec::Pde {
                time_steps: p.pde_t,
                space_steps: p.pde_x,
            },
        ),
        JobClass::AmericanBasketLsm => PremiaProblem::new(
            ModelSpec::MultiBlackScholes(MultiBlackScholes::new(7, SPOT, SIGMA, 0.3, RATE, 0.0)),
            OptionSpec::AmericanBasketPut {
                strike: SPOT,
                maturity: 1.0,
            },
            MethodSpec::Lsm {
                paths: p.lsm_paths,
                exercise_dates: p.lsm_dates,
                basis_degree: 3,
                seed: 271,
            },
        ),
        JobClass::BermudanMaxLsm => PremiaProblem::new(
            ModelSpec::MultiBlackScholes(MultiBlackScholes::new(3, SPOT, SIGMA, 0.3, RATE, 0.1)),
            OptionSpec::BermudanMaxCall {
                strike: SPOT,
                maturity: 1.0,
            },
            MethodSpec::Lsm {
                paths: p.lsm_paths,
                exercise_dates: p.lsm_dates,
                basis_degree: 2,
                seed: 314,
            },
        ),
        JobClass::BsdePicardMc => PremiaProblem::new(
            bs(),
            OptionSpec::Call {
                strike: SPOT,
                maturity: 1.0,
            },
            MethodSpec::Bsde {
                paths: p.bsde_paths,
                time_steps: p.bsde_steps,
                rate_spread: 0.05,
                picard_rounds: 3,
                y_prev: 0.0,
                seed: 577,
            },
        ),
        JobClass::XvaCvaMc => PremiaProblem::new(
            bs(),
            OptionSpec::NettingSet {
                trades: 64,
                maturity: 1.0,
            },
            MethodSpec::Xva {
                paths: p.xva_paths,
                time_steps: p.xva_dates,
                hazard: 0.02,
                lgd: 0.6,
                seed: 733,
            },
        ),
    };
    PortfolioJob {
        id: 0,
        class,
        problem,
    }
}

/// A deterministic heavy-tailed mixed-class portfolio: `groups`
/// repetitions of a 12-job block dominated by a handful of expensive
/// American/Bermudan/BSDE claims over a sea of near-free vanillas. This
/// is the straggler-tail shape on which LPT dispatch beats FIFO — a FIFO
/// master can strand a 100× grain on the last dispatch while LPT front-
/// loads it.
pub fn mixed_portfolio(scale: PortfolioScale, groups: usize) -> Vec<PortfolioJob> {
    let p = scale.params();
    let mut jobs = Vec::with_capacity(12 * groups);
    for g in 0..groups {
        let tweak = |base: f64| base * (0.95 + 0.01 * (g % 10) as f64);
        let seed = 1000 * g as u64;
        // Six near-free vanillas...
        for s in 0..6 {
            jobs.push((
                JobClass::VanillaClosedForm,
                PremiaProblem::new(
                    bs(),
                    OptionSpec::Call {
                        strike: tweak(SPOT * (0.9 + 0.02 * s as f64)),
                        maturity: 1.0,
                    },
                    MethodSpec::ClosedForm,
                ),
            ));
        }
        // ...a mid-weight European tier...
        for s in 0..2 {
            jobs.push((
                JobClass::LocalVolMc,
                PremiaProblem::new(
                    ModelSpec::LocalVol(LocalVol::standard(SPOT, SIGMA, RATE, 0.0)),
                    OptionSpec::Call {
                        strike: tweak(SPOT),
                        maturity: 1.0,
                    },
                    MethodSpec::MonteCarlo {
                        paths: p.mc_paths,
                        time_steps: p.mc_steps,
                        antithetic: true,
                        seed: seed + s,
                    },
                ),
            ));
        }
        jobs.push((
            JobClass::XvaCvaMc,
            PremiaProblem::new(
                bs(),
                OptionSpec::NettingSet {
                    trades: 48 + 8 * (g % 3),
                    maturity: 1.0,
                },
                MethodSpec::Xva {
                    paths: p.xva_paths,
                    time_steps: p.xva_dates,
                    hazard: 0.02,
                    lgd: 0.6,
                    seed: seed + 7,
                },
            ),
        ));
        jobs.push((
            JobClass::BsdePicardMc,
            PremiaProblem::new(
                bs(),
                OptionSpec::Call {
                    strike: tweak(SPOT),
                    maturity: 1.0,
                },
                MethodSpec::Bsde {
                    paths: p.bsde_paths,
                    time_steps: p.bsde_steps,
                    rate_spread: 0.05,
                    picard_rounds: 2,
                    y_prev: 0.0,
                    seed: seed + 8,
                },
            ),
        ));
        // ...and the heavy tail: American/Bermudan claims whose grains
        // dominate the block.
        jobs.push((
            JobClass::AmericanBasketLsm,
            PremiaProblem::new(
                ModelSpec::MultiBlackScholes(MultiBlackScholes::new(7, SPOT, SIGMA, 0.3, RATE, 0.0)),
                OptionSpec::AmericanBasketPut {
                    strike: tweak(SPOT),
                    maturity: 1.0,
                },
                MethodSpec::Lsm {
                    paths: p.lsm_paths,
                    exercise_dates: p.lsm_dates,
                    basis_degree: 3,
                    seed: seed + 9,
                },
            ),
        ));
        jobs.push((
            JobClass::BermudanMaxLsm,
            PremiaProblem::new(
                ModelSpec::MultiBlackScholes(MultiBlackScholes::new(3, SPOT, SIGMA, 0.3, RATE, 0.1)),
                OptionSpec::BermudanMaxCall {
                    strike: tweak(SPOT),
                    maturity: 1.0,
                },
                MethodSpec::Lsm {
                    paths: p.lsm_paths,
                    exercise_dates: p.lsm_dates,
                    basis_degree: 2,
                    seed: seed + 10,
                },
            ),
        ));
    }
    jobs.into_iter()
        .enumerate()
        .map(|(id, (class, problem))| PortfolioJob { id, class, problem })
        .collect()
}

/// The §4.1 workload: the non-regression suite wrapped as portfolio jobs.
pub fn regression_portfolio(scale: PortfolioScale) -> Vec<PortfolioJob> {
    let suite_scale = match scale {
        PortfolioScale::Quick => pricing::regression::SuiteScale::Quick,
        PortfolioScale::Full => pricing::regression::SuiteScale::Full,
    };
    pricing::regression::regression_suite(suite_scale)
        .into_iter()
        .enumerate()
        .map(|(i, problem)| {
            // Classify by method for the cost model.
            let class = match (&problem.method, &problem.option) {
                (MethodSpec::ClosedForm, _) => JobClass::VanillaClosedForm,
                (MethodSpec::Pde { .. }, OptionSpec::AmericanPut { .. }) => JobClass::AmericanPde,
                (MethodSpec::Pde { .. }, _) => JobClass::BarrierPde,
                (MethodSpec::Tree { .. }, _) => JobClass::BarrierPde,
                (MethodSpec::Lsm { .. }, OptionSpec::BermudanMaxCall { .. }) => {
                    JobClass::BermudanMaxLsm
                }
                (MethodSpec::Lsm { .. }, _) => JobClass::AmericanBasketLsm,
                (MethodSpec::MonteCarlo { .. }, OptionSpec::BasketPut { .. }) => JobClass::BasketMc,
                (MethodSpec::MonteCarlo { .. }, _) | (MethodSpec::QuasiMonteCarlo { .. }, _) => {
                    JobClass::LocalVolMc
                }
                (MethodSpec::Bsde { .. }, _) => JobClass::BsdePicardMc,
                (MethodSpec::Xva { .. }, _) => JobClass::XvaCvaMc,
            };
            PortfolioJob {
                id: i,
                class,
                problem,
            }
        })
        .collect()
}

/// Save every job of a portfolio into `dir` as XDR files
/// (`pb-<id>.bin`) — "a portfolio will be a collection of files, each file
/// describing a precise pricing problem" (§4). Returns the file paths in
/// job order.
pub fn save_portfolio(jobs: &[PortfolioJob], dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(jobs.len());
    for job in jobs {
        let path = dir.join(format!("pb-{:05}.bin", job.id));
        xdrser::save(&path, &job.problem.to_value())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realistic_portfolio_has_paper_composition() {
        let jobs = realistic_portfolio(PortfolioScale::Quick, 1);
        assert_eq!(jobs.len(), 7931, "total claims");
        let count = |c: JobClass| jobs.iter().filter(|j| j.class == c).count();
        assert_eq!(count(JobClass::VanillaClosedForm), 1952);
        assert_eq!(count(JobClass::BarrierPde), 1952);
        assert_eq!(count(JobClass::BasketMc), 525);
        assert_eq!(count(JobClass::LocalVolMc), 1025);
        assert_eq!(count(JobClass::AmericanPde), 1952);
        assert_eq!(count(JobClass::AmericanBasketLsm), 525);
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let jobs = realistic_portfolio(PortfolioScale::Quick, 16);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
        }
    }

    #[test]
    fn stride_preserves_all_paper_classes() {
        let jobs = realistic_portfolio(PortfolioScale::Quick, 64);
        for class in JobClass::PAPER {
            assert!(
                jobs.iter().any(|j| j.class == class),
                "{class:?} missing at stride 64"
            );
        }
        assert!(jobs.len() < 7931 / 32, "stride barely reduced the size");
    }

    #[test]
    fn paper_classes_are_a_prefix_of_all() {
        assert_eq!(JobClass::PAPER[..], JobClass::ALL[..6]);
        // The realistic portfolio speaks only the paper's six classes.
        let jobs = realistic_portfolio(PortfolioScale::Quick, 64);
        assert!(jobs.iter().all(|j| JobClass::PAPER.contains(&j.class)));
    }

    #[test]
    fn representative_problems_cover_and_compute() {
        for class in JobClass::ALL {
            let job = representative_problem(class, PortfolioScale::Quick);
            assert_eq!(job.class, class);
            let r = job
                .problem
                .compute()
                .unwrap_or_else(|e| panic!("{class:?} representative failed: {e}"));
            assert!(r.price.is_finite(), "{class:?}");
        }
    }

    #[test]
    fn mixed_portfolio_is_heavy_tailed_and_mixed() {
        let jobs = mixed_portfolio(PortfolioScale::Quick, 3);
        assert_eq!(jobs.len(), 36);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
        }
        // All three extension classes and the heavy American tier appear.
        for class in [
            JobClass::BermudanMaxLsm,
            JobClass::BsdePicardMc,
            JobClass::XvaCvaMc,
            JobClass::AmericanBasketLsm,
            JobClass::VanillaClosedForm,
        ] {
            assert!(jobs.iter().any(|j| j.class == class), "{class:?} missing");
        }
        // Heavy-tailed: half the jobs are near-free, and the top grain
        // costs more than the entire bottom half of the portfolio put
        // together (paper cost model midpoints).
        let mut mids: Vec<f64> = jobs
            .iter()
            .map(|j| {
                let (lo, hi) = j.class.paper_cost_seconds();
                0.5 * (lo + hi)
            })
            .collect();
        mids.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bottom_half: f64 = mids[..mids.len() / 2].iter().sum();
        assert!(mids[mids.len() - 1] > bottom_half);
        assert!(mids[mids.len() - 1] > 5.0 * mids[mids.len() / 2]);
    }

    #[test]
    fn toy_portfolio_is_all_closed_form() {
        let jobs = toy_portfolio(10_000);
        assert_eq!(jobs.len(), 10_000);
        assert!(jobs.iter().all(|j| j.class == JobClass::VanillaClosedForm));
        assert!(jobs
            .iter()
            .all(|j| matches!(j.problem.method, MethodSpec::ClosedForm)));
        // Strikes and maturities vary.
        let strikes: std::collections::HashSet<u64> = jobs
            .iter()
            .map(|j| j.problem.option.strike().to_bits())
            .collect();
        assert!(strikes.len() > 50);
    }

    #[test]
    fn chunked_kernel_matches_method_routing() {
        // The class-level flag must agree with the actual method: every
        // MC/LSM-priced job routes through the executor, nothing else.
        let jobs = regression_portfolio(PortfolioScale::Quick);
        for j in &jobs {
            let method_chunked = matches!(
                j.problem.method,
                MethodSpec::MonteCarlo { .. } | MethodSpec::Lsm { .. }
            );
            // QMC shares the LocalVolMc class but runs the sequential
            // low-discrepancy kernel; the class flag is the coarse,
            // cost-model-level answer.
            if !matches!(j.problem.method, MethodSpec::QuasiMonteCarlo { .. }) {
                assert_eq!(
                    j.class.chunked_kernel(),
                    method_chunked,
                    "job {} class {:?} method {:?}",
                    j.id,
                    j.class,
                    j.problem.method
                );
            }
        }
        assert!(JobClass::ALL.iter().any(|c| c.chunked_kernel()));
        assert!(!JobClass::VanillaClosedForm.chunked_kernel());
    }

    #[test]
    fn sample_jobs_compute() {
        let jobs = realistic_portfolio(PortfolioScale::Quick, 400);
        for job in &jobs {
            let r = job
                .problem
                .compute()
                .unwrap_or_else(|e| panic!("job {} ({:?}) failed: {e}", job.id, job.class));
            assert!(r.price.is_finite());
        }
    }

    #[test]
    fn regression_portfolio_classifies_everything() {
        let jobs = regression_portfolio(PortfolioScale::Quick);
        assert_eq!(jobs.len(), 84);
        for j in &jobs {
            assert!(JobClass::ALL.contains(&j.class));
        }
    }

    #[test]
    fn save_portfolio_round_trips() {
        let dir = std::env::temp_dir().join("farm_portfolio_save_test");
        let jobs = toy_portfolio(20);
        let paths = save_portfolio(&jobs, &dir).unwrap();
        assert_eq!(paths.len(), 20);
        for (job, path) in jobs.iter().zip(&paths) {
            let v = xdrser::load(path).unwrap();
            let p = pricing::PremiaProblem::from_value(&v).unwrap();
            assert_eq!(p, job.problem);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paper_cost_ranges_ordered() {
        for class in JobClass::ALL {
            let (lo, hi) = class.paper_cost_seconds();
            assert!(lo > 0.0 && hi > lo);
        }
        // American classes cost more than European MC/PDE, which cost
        // more than closed form.
        assert!(
            JobClass::AmericanPde.paper_cost_seconds().0
                > JobClass::BarrierPde.paper_cost_seconds().1
        );
        assert!(
            JobClass::BarrierPde.paper_cost_seconds().0
                > JobClass::VanillaClosedForm.paper_cost_seconds().1
        );
    }
}
