//! Job batching — the first §5 improvement: "gather several pricing
//! problems and send them all together to reduce the communication
//! latency … it is always advisable to send a single large message rather
//! [than] several smaller messages."
//!
//! The batched farm keeps the Robin-Hood refeed discipline but ships
//! `batch_size` problems per message; slaves answer with one result list
//! per batch.

use crate::config::{RunCtx, SchedKnobs};
use crate::driver::{self, JobMap, RecvStyle};
use crate::instrument;
use crate::robin_hood::{FarmError, FarmReport};
use crate::strategy::{prepare_payload_recorded, recover_problem_recorded, Transmission};
use crate::wire::{batch_reply_value, Answer, BatchItem};
use minimpi::{Comm, MpiBuf, World};
use nspval::{List, Value};
use obs::Recorder;
use sched::SchedConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const TAG: i32 = 9;

/// Run the Robin-Hood farm shipping `batch_size` problems per message.
/// `batch_size == 1` degenerates to the plain farm protocol.
pub fn run_batched_farm(
    files: &[PathBuf],
    slaves: usize,
    strategy: Transmission,
    batch_size: usize,
) -> Result<FarmReport, FarmError> {
    if slaves == 0 {
        return Err(FarmError::NoSlaves);
    }
    if batch_size == 0 {
        return Err(FarmError::Config(exec::ConfigIssues::one(
            "batch_size",
            "must be at least 1",
        )));
    }
    run_batched_inner(
        files,
        slaves,
        strategy,
        batch_size,
        None,
        &RunCtx::default_ctx(),
        &SchedKnobs::default(),
    )
}

/// The batched route behind [`crate::run`]: the validated entry point
/// with phase-level observability threaded through.
pub(crate) fn run_batched_inner(
    files: &[PathBuf],
    slaves: usize,
    strategy: Transmission,
    batch_size: usize,
    recorder: Option<Arc<Recorder>>,
    ctx: &RunCtx,
    knobs: &SchedKnobs,
) -> Result<FarmReport, FarmError> {
    let results = World::run_instrumented(slaves + 1, None, recorder, |comm| {
        if comm.rank() == 0 {
            Some(master(&comm, ctx, files, strategy, batch_size, knobs))
        } else {
            slave(&comm, ctx, strategy).expect("batched slave failed");
            None
        }
    });
    results
        .into_iter()
        .next()
        .flatten()
        .expect("master produces the report")
}

/// Send jobs `range` as one batch message.
fn send_batch(
    comm: &Comm,
    ctx: &RunCtx,
    slave: usize,
    files: &[PathBuf],
    range: std::ops::Range<usize>,
    strategy: Transmission,
) -> Result<(), FarmError> {
    let mut batch = List::new();
    for idx in range {
        let path = &files[idx];
        comm.set_job(Some(idx));
        let item = BatchItem {
            idx,
            name: path.to_string_lossy().to_string(),
            payload: prepare_payload_recorded(comm, ctx, strategy, path)?,
        };
        batch.add_last(item.to_value());
    }
    comm.set_job(None);
    // One packed message for the whole batch.
    let packed = comm.pack(&Value::List(batch));
    comm.send(packed.bytes(), slave as i32, TAG)?;
    Ok(())
}

/// Batched master, as a thin [`driver`] of the shared scheduler: the
/// state machine hands out contiguous FIFO batches; this function only
/// packs and ships them.
fn master(
    comm: &Comm,
    ctx: &RunCtx,
    files: &[PathBuf],
    strategy: Transmission,
    batch_size: usize,
    knobs: &SchedKnobs,
) -> Result<FarmReport, FarmError> {
    let slaves = comm.size() - 1;
    let start = Instant::now();
    let ranks: Vec<usize> = (0..=slaves).collect();
    // Batching is FIFO-only (contiguous index ranges); `FarmConfig`
    // rejects an LPT order with batch_size > 1 before we get here.
    let mut cfg = SchedConfig::plain(files.len(), slaves)
        .policy(knobs.policy.clone())
        .batch(batch_size);
    if knobs.record_trace {
        cfg = cfg.record_trace();
    }
    let run = driver::drive_plain(
        comm,
        TAG,
        cfg,
        &ranks,
        RecvStyle::Packed,
        JobMap::Identity,
        None,
        |job, rank, batch| {
            send_batch(comm, ctx, rank, files, job..job + batch, strategy)?;
            ctx.advance(job + batch);
            Ok(())
        },
        |rank| Ok(comm.send(&[], rank as i32, TAG)?), // empty stop message
    )?;
    Ok(FarmReport {
        outcomes: run.outcomes,
        elapsed: start.elapsed(),
        per_slave: run.per_slave,
        failed_jobs: Vec::new(),
        retries: 0,
        dead_slaves: Vec::new(),
        strategy,
        trace: run.trace,
    })
}

fn slave(comm: &Comm, ctx: &RunCtx, strategy: Transmission) -> Result<(), FarmError> {
    loop {
        let st = comm.probe(0, TAG)?;
        if st.count() == 0 {
            // Stop message.
            let (_, _) = comm.recv(0, TAG)?;
            return Ok(());
        }
        let mut buf = MpiBuf::with_capacity(st.count());
        comm.recv_into(&mut buf, 0, TAG)?;
        let v = comm.unpack(&buf)?;
        let list = v
            .as_list()
            .ok_or_else(|| FarmError::Protocol(format!("undecodable batch message: {v}")))?;
        let mut answers = Vec::new();
        for item in list.iter() {
            let BatchItem { idx, name, payload } = BatchItem::decode(item)?;
            comm.set_job(Some(idx));
            let problem = recover_problem_recorded(comm, ctx, strategy, &name, payload.as_ref())?;
            let r = instrument::compute_recorded(comm, ctx, &problem)
                .map_err(|e| FarmError::Io(format!("compute failed: {e}")))?;
            answers.push(Answer::priced(idx, &r));
        }
        comm.set_job(None);
        let packed = comm.pack(&batch_reply_value(&answers));
        comm.send(packed.bytes(), 0, TAG)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{run, FarmConfig};
    use crate::portfolio::{save_portfolio, toy_portfolio};

    /// The plain farm via the unified entry point.
    fn run_plain_farm(
        files: &[PathBuf],
        slaves: usize,
        strategy: Transmission,
    ) -> Result<FarmReport, FarmError> {
        run(files, &FarmConfig::new(slaves, strategy))
    }

    fn setup(count: usize, tag: &str) -> (Vec<PathBuf>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("farm_batch_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = toy_portfolio(count);
        let paths = save_portfolio(&jobs, &dir).unwrap();
        (paths, dir)
    }

    #[test]
    fn batched_farm_completes_everything() {
        let (paths, dir) = setup(37, "complete");
        for batch in [1, 4, 10, 100] {
            let report = run_batched_farm(&paths, 3, Transmission::SerializedLoad, batch).unwrap();
            assert_eq!(report.completed(), 37, "batch {batch}");
            let mut jobs: Vec<usize> = report.outcomes.iter().map(|o| o.job).collect();
            jobs.sort();
            assert_eq!(jobs, (0..37).collect::<Vec<_>>(), "batch {batch}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_one_matches_plain_farm_prices() {
        let (paths, dir) = setup(12, "vs_plain");
        let plain = run_plain_farm(&paths, 2, Transmission::SerializedLoad).unwrap();
        let batched = run_batched_farm(&paths, 2, Transmission::SerializedLoad, 1).unwrap();
        let by_job = |r: &FarmReport| {
            let mut v: Vec<(usize, u64)> = r
                .outcomes
                .iter()
                .map(|o| (o.job, o.price.to_bits()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(by_job(&plain), by_job(&batched));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_nfs_works() {
        let (paths, dir) = setup(9, "nfs");
        let report = run_batched_farm(&paths, 2, Transmission::Nfs, 4).unwrap();
        assert_eq!(report.completed(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversize_batch_clamps() {
        let (paths, dir) = setup(5, "oversize");
        let report = run_batched_farm(&paths, 3, Transmission::FullLoad, 1000).unwrap();
        assert_eq!(report.completed(), 5);
        // All jobs went to the first slave as one batch.
        assert_eq!(report.per_slave.iter().sum::<usize>(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
