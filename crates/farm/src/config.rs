//! The unified farm entry point: one [`FarmConfig`] builder routing to
//! the plain, batched or supervised master, with optional fault
//! injection and phase-level observability.
//!
//! Historically the crate exposed one free function per master variant,
//! each with its own positional-argument spelling and its own error
//! habits. [`run`] replaced them — and the last deprecated shims are now
//! deleted: build a [`FarmConfig`], pass the portfolio, get a
//! `Result<FarmReport, FarmError>`.
//!
//! ```
//! use farm::{run, FarmConfig, Transmission};
//! # use farm::portfolio::{save_portfolio, toy_portfolio};
//! # let dir = std::env::temp_dir().join("farm_config_doc");
//! # let _ = std::fs::remove_dir_all(&dir);
//! # let paths = save_portfolio(&toy_portfolio(6), &dir).unwrap();
//! let cfg = FarmConfig::new(2, Transmission::SerializedLoad);
//! let report = run(&paths, &cfg).unwrap();
//! assert_eq!(report.completed(), 6);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::batching::run_batched_inner;
use crate::robin_hood::{run_farm_inner, FarmError, FarmReport};
use crate::strategy::{Transmission, WirePolicy};
use crate::supervisor::{run_supervised_inner, SupervisorConfig};
use exec::ExecPolicy;
use minimpi::FaultPlan;
use obs::Recorder;
use sched::DispatchPolicy;
use std::path::PathBuf;
use std::sync::Arc;
use store::{CachingStore, DirStore, Prefetcher, ProblemStore};

/// The scheduler-facing knobs every master loop threads through to the
/// shared [`sched::Scheduler`]: dispatch order, trace recording, and —
/// for staged workloads — the round structure plus the pre-dispatch
/// answer-patch.
#[derive(Debug, Clone)]
pub(crate) struct SchedKnobs {
    /// Dispatch order ([`DispatchPolicy::Fifo`] unless overridden).
    pub(crate) policy: DispatchPolicy,
    /// Record the decision trace into [`crate::FarmReport::trace`].
    pub(crate) record_trace: bool,
    /// `Some(r)` declares staged rounds (`r[job]` = the job's round);
    /// threaded into [`sched::SchedConfig::rounds`] by the plain master.
    pub(crate) rounds: Option<Vec<usize>>,
    /// Cross-round data flow: rewrite a round-dependent job's problem
    /// file from earlier answers just before its dispatch.
    pub(crate) patch: Option<crate::workload::StagedPatch>,
}

impl Default for SchedKnobs {
    fn default() -> Self {
        SchedKnobs {
            policy: DispatchPolicy::Fifo,
            record_trace: false,
            rounds: None,
            patch: None,
        }
    }
}

/// The per-run context every master/slave loop threads through: the one
/// [`ProblemStore`] all byte-paths fetch from, the wire encoding policy,
/// and the optional master-side prefetch pipeline.
#[derive(Debug)]
pub(crate) struct RunCtx {
    /// The store every fetch (master prepare, NFS slave read) routes
    /// through. Shared across all ranks of the in-process world.
    pub(crate) store: Arc<dyn ProblemStore>,
    /// Wire encoding for loaded payloads.
    pub(crate) wire: WirePolicy,
    /// Bounded prefetch pipeline (master-side); dropped — and thereby
    /// joined — when the run finishes.
    prefetcher: Option<Prefetcher>,
    /// Intra-slave compute policy: `Some` routes every slave compute
    /// through [`pricing::PremiaProblem::compute_with`] on the chunked
    /// executor; `None` (the default) is the legacy single-threaded
    /// [`pricing::PremiaProblem::compute`], bit-identical to every
    /// release since the seed.
    pub(crate) exec: Option<ExecPolicy>,
}

impl RunCtx {
    /// The PR-2-equivalent context: direct directory reads, raw wire,
    /// no prefetch.
    pub(crate) fn default_ctx() -> Self {
        RunCtx {
            store: Arc::new(DirStore::new()),
            wire: WirePolicy::RAW,
            prefetcher: None,
            exec: None,
        }
    }

    /// Tell the prefetcher (if any) that `n` jobs have been dispatched.
    pub(crate) fn advance(&self, n: usize) {
        if let Some(pf) = &self.prefetcher {
            pf.advance(n);
        }
    }
}

/// Everything a farm run needs, behind one builder.
///
/// Defaults: no batching (`batch_size == 1`), no supervision, no fault
/// plan, no recorder — i.e. exactly the plain Robin-Hood farm.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    slaves: usize,
    strategy: Transmission,
    batch_size: usize,
    supervised: bool,
    supervisor: SupervisorConfig,
    fault_plan: Option<Arc<FaultPlan>>,
    recorder: Option<Arc<Recorder>>,
    store: Option<Arc<dyn ProblemStore>>,
    cache_bytes: Option<u64>,
    compress_threshold: Option<usize>,
    prefetch_depth: usize,
    threads: usize,
    compute_chunk: usize,
    lanes: usize,
    policy: DispatchPolicy,
    record_trace: bool,
    rounds: Option<Vec<usize>>,
}

impl FarmConfig {
    /// A plain Robin-Hood farm over `slaves` worker ranks (the tables
    /// count `slaves + 1` CPUs) using `strategy`.
    pub fn new(slaves: usize, strategy: Transmission) -> Self {
        FarmConfig {
            slaves,
            strategy,
            batch_size: 1,
            supervised: false,
            supervisor: SupervisorConfig::default(),
            fault_plan: None,
            recorder: None,
            store: None,
            cache_bytes: None,
            compress_threshold: None,
            prefetch_depth: 0,
            threads: 1,
            compute_chunk: 0,
            lanes: 1,
            policy: DispatchPolicy::Fifo,
            record_trace: false,
            rounds: None,
        }
    }

    /// Dispatch queued jobs in `policy` order: [`DispatchPolicy::Fifo`]
    /// (the default, the paper's Fig. 4 master) or
    /// [`DispatchPolicy::Lpt`] (longest-predicted-cost-first, the
    /// classic makespan heuristic for the end-of-run straggler tail —
    /// costs come from a calibrated [`crate::calibrate::CostModel`]).
    /// LPT is incompatible with [`Self::batch_size`] `> 1` (batches are
    /// contiguous index ranges).
    pub fn order(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Record the scheduler's timestamp-free decision trace into
    /// [`crate::FarmReport::trace`]. A live run and a simulated run of
    /// the same workload render byte-identical traces
    /// (`tests/sched_parity.rs`).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Declare staged rounds: `rounds[job]` is the job's round index, and
    /// no job of round `k` is dispatched while an earlier round still has
    /// unfinished work — the cross-round-dependency shape of Picard-
    /// iterated BSDE workloads (built most conveniently through
    /// [`crate::workload::Workload`] + [`crate::workload::run_workload`],
    /// which also wires the answer-patching between rounds). Incompatible
    /// with batching and supervision.
    pub fn rounds(mut self, rounds: Vec<usize>) -> Self {
        self.rounds = Some(rounds);
        self
    }

    /// Run every slave's Monte-Carlo/LSM path loops on `threads` compute
    /// workers (the intra-slave dimension of parallelism; the farm's
    /// slave count is the inter-node dimension). `1` — the default — is
    /// the legacy single-threaded compute, bit-identical to every
    /// release since the seed. For `threads >= 2` the kernels switch to
    /// the chunked executor: prices are then bit-identical for *any*
    /// thread count (2 == 8 == 64) but form a different deterministic
    /// sample than `threads == 1`; see `docs/PARALLEL.md`. Methods
    /// without a path loop (closed form, PDE, tree, QMC) are unaffected.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the executor chunk size (paths per chunk; 0 — the
    /// default — means [`exec::DEFAULT_CHUNK`]). The chunk size is part
    /// of the sampled result (it fixes the RNG-stream split), exactly as
    /// the seed is; the thread count never is. Only meaningful with
    /// [`Self::threads`] `>= 2`.
    pub fn compute_chunk(mut self, chunk: usize) -> Self {
        self.compute_chunk = chunk;
        self
    }

    /// Batch the slaves' path loops across `lanes` SIMD lanes with
    /// pooled, allocation-free per-worker workspaces. `1` — the default —
    /// is the scalar kernel, bit-identical to every release since the
    /// seed. Supported widths are 1, 4 and 8; like the chunk size (and
    /// unlike the thread count) the lane width is part of the sampled
    /// result — lanes consume each chunk's RNG stream in
    /// `(group, step, lane)` order — so each width owns its own pinned
    /// goldens (`tests/kernel_goldens.rs`); see `docs/SIMD.md`.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Ship `batch_size` problems per message (§5 batching improvement).
    /// `1` is the plain per-job protocol. Incompatible with supervision.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Enable the supervised master (deadlines, bounded retries,
    /// dead-slave burial) with its default test-scale timings.
    pub fn supervised(mut self, on: bool) -> Self {
        self.supervised = on;
        self
    }

    /// Enable supervision with explicit [`SupervisorConfig`] timings.
    pub fn supervisor(mut self, cfg: SupervisorConfig) -> Self {
        self.supervised = true;
        self.supervisor = cfg;
        self
    }

    /// Inject faults from `plan` (implies nothing by itself — but [`run`]
    /// rejects a fault plan without supervision, since the plain master
    /// would hang or panic under injected faults).
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Install a phase-event [`Recorder`]: every rank's comm traffic and
    /// the farm-level prepare/compute/supervision phases are timestamped
    /// into it. Size it with at least `slaves + 1` ranks.
    pub fn recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Route every problem fetch through `store` instead of the default
    /// direct-directory backend. Pass an `Arc<CachingStore>` you keep a
    /// handle to when you want warm-cache persistence across runs or
    /// access to its [`store::StoreStats`] afterwards.
    pub fn store(mut self, store: Arc<dyn ProblemStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Wrap the backend (the configured [`store`](Self::store), or the
    /// default directory store) in a byte-budgeted [`CachingStore`]:
    /// warm fetches of the same unmodified problem file skip disk.
    pub fn cache_bytes(mut self, budget: u64) -> Self {
        self.cache_bytes = Some(budget);
        self
    }

    /// Compress loaded payloads of at least `threshold` bytes on the
    /// wire (§3.2's compressed serialized buffers). Payloads below the
    /// threshold — or that fail to shrink — are sent raw.
    pub fn compress_wire(mut self, threshold: usize) -> Self {
        self.compress_threshold = Some(threshold);
        self
    }

    /// Prefetch up to `depth` problems ahead of the dispatch watermark
    /// into the store (requires a caching store — [`Self::cache_bytes`]
    /// or a custom [`Self::store`] — so prefetched bytes are retained).
    /// With a recorder sized `slaves + 2`, the pipeline's fetches are
    /// timed as `Prefetch` events on the virtual rank `slaves + 1`.
    pub fn prefetch(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Number of worker ranks this config will run.
    pub fn slaves(&self) -> usize {
        self.slaves
    }

    /// Compute threads per slave (1 = legacy single-threaded kernels).
    pub fn compute_threads(&self) -> usize {
        self.threads
    }

    /// SIMD lane width of the path kernels (1 = scalar kernels).
    pub fn compute_lanes(&self) -> usize {
        self.lanes
    }

    /// The transmission strategy this config will use.
    pub fn strategy(&self) -> Transmission {
        self.strategy
    }

    /// Validate cross-field invariants, collecting *every* invalid
    /// field into one [`exec::ConfigIssues`] instead of stopping at the
    /// first failure — a caller fixing a rejected config sees the
    /// complete list at once. The one exception stays its own variant:
    /// a farm with zero slaves is [`FarmError::NoSlaves`], the paper's
    /// "at least 2 CPUs" precondition rather than a knob value.
    fn validate(&self) -> Result<(), FarmError> {
        if self.slaves == 0 {
            return Err(FarmError::NoSlaves);
        }
        let mut issues = exec::ConfigIssues::collect();
        if self.batch_size == 0 {
            issues.reject("batch_size", "must be at least 1");
        }
        if self.supervised && self.batch_size > 1 {
            issues.reject("batch_size", "batching is not supported under supervision");
        }
        if self.fault_plan.is_some() && !self.supervised {
            issues.reject(
                "fault_plan",
                "fault injection requires the supervised master",
            );
        }
        if self.supervised && self.supervisor.max_attempts == 0 {
            issues.reject("supervisor", "max_attempts must be at least 1");
        }
        if let Some(rec) = &self.recorder {
            if rec.ranks() < self.slaves + 1 {
                issues.reject(
                    "recorder",
                    format!(
                        "covers {} ranks but the farm needs {}",
                        rec.ranks(),
                        self.slaves + 1
                    ),
                );
            }
        }
        if self.cache_bytes == Some(0) {
            issues.reject("cache_bytes", "cache budget must be nonzero");
        }
        if self.prefetch_depth > 0 && self.cache_bytes.is_none() && self.store.is_none() {
            issues.reject(
                "prefetch_depth",
                "prefetch needs a retaining store (set cache_bytes or store)",
            );
        }
        if self.threads == 0 {
            issues.reject("threads", "compute threads must be at least 1");
        }
        if self.compute_chunk > 0 && self.threads <= 1 {
            issues.reject("compute_chunk", "only applies with threads >= 2");
        }
        if let Err(e) = exec::LaneConfig::from_width(self.lanes) {
            issues.reject("lanes", e);
        }
        if matches!(self.policy, DispatchPolicy::Lpt { .. }) && self.batch_size > 1 {
            issues.reject(
                "policy",
                "LPT order is incompatible with batching (batches are contiguous index ranges)",
            );
        }
        if self.rounds.is_some() {
            if self.batch_size > 1 {
                issues.reject(
                    "rounds",
                    "staged rounds are incompatible with batching (a batch could span a round barrier)",
                );
            }
            if self.supervised {
                issues.reject(
                    "rounds",
                    "staged rounds run on the plain master (supervision is not staged yet)",
                );
            }
        }
        issues.into_result().map_err(FarmError::Config)
    }

    /// Assemble the per-run context: the store stack (custom backend →
    /// optional cache decorator), the wire policy, and the prefetch
    /// pipeline over `files`.
    fn build_ctx(&self, files: &[PathBuf]) -> RunCtx {
        let base: Arc<dyn ProblemStore> = match (&self.store, self.cache_bytes) {
            (Some(s), None) => s.clone(),
            (Some(s), Some(budget)) => Arc::new(CachingStore::new(s.clone(), budget)),
            (None, Some(budget)) => Arc::new(CachingStore::over_dir(budget)),
            (None, None) => Arc::new(DirStore::new()),
        };
        let wire = match self.compress_threshold {
            Some(t) => WirePolicy::compressed(t),
            None => WirePolicy::RAW,
        };
        let prefetcher = (self.prefetch_depth > 0 && !files.is_empty()).then(|| {
            // The prefetcher records on the virtual rank `slaves + 1`;
            // a recorder sized exactly `slaves + 1` silently ignores it
            // (out of range), so existing breakdowns are unaffected.
            let rec = self.recorder.as_ref().map(|r| (r.clone(), self.slaves + 1));
            Prefetcher::spawn(base.clone(), files.to_vec(), self.prefetch_depth, rec)
        });
        let exec = (self.threads > 1 || self.lanes > 1).then(|| {
            ExecPolicy::new(self.threads)
                .chunk(self.compute_chunk)
                .lanes(self.lanes)
        });
        RunCtx {
            store: base,
            wire,
            prefetcher,
            exec,
        }
    }
}

/// Run a farm over `files` as configured. One of the two entry points
/// into the farm — the other being a long-lived `serve::Session`, which
/// embeds the same scheduler behind a request queue.
pub fn run(files: &[PathBuf], cfg: &FarmConfig) -> Result<FarmReport, FarmError> {
    run_with(files, cfg, None)
}

/// [`run`] with an optional staged answer-patch (the
/// [`crate::workload::run_workload`] entry point builds the patch from
/// the workload's cross-round links).
pub(crate) fn run_with(
    files: &[PathBuf],
    cfg: &FarmConfig,
    patch: Option<crate::workload::StagedPatch>,
) -> Result<FarmReport, FarmError> {
    cfg.validate()?;
    if let Some(rounds) = &cfg.rounds {
        if rounds.len() != files.len() {
            return Err(FarmError::Config(exec::ConfigIssues::one(
                "rounds",
                format!(
                    "rounds vector covers {} jobs but the portfolio has {}",
                    rounds.len(),
                    files.len()
                ),
            )));
        }
    }
    match &cfg.policy {
        DispatchPolicy::Lpt { costs } if costs.len() != files.len() => {
            return Err(FarmError::Config(exec::ConfigIssues::one(
                "policy",
                format!(
                    "LPT cost vector covers {} jobs but the portfolio has {}",
                    costs.len(),
                    files.len()
                ),
            )));
        }
        DispatchPolicy::Priority { class } if class.len() != files.len() => {
            return Err(FarmError::Config(exec::ConfigIssues::one(
                "policy",
                format!(
                    "priority class vector covers {} jobs but the portfolio has {}",
                    class.len(),
                    files.len()
                ),
            )));
        }
        _ => {}
    }
    let ctx = cfg.build_ctx(files);
    let knobs = SchedKnobs {
        policy: cfg.policy.clone(),
        record_trace: cfg.record_trace,
        rounds: cfg.rounds.clone(),
        patch,
    };
    if cfg.supervised {
        run_supervised_inner(
            files,
            cfg.slaves,
            cfg.strategy,
            &cfg.supervisor,
            cfg.fault_plan.clone(),
            cfg.recorder.clone(),
            &ctx,
            &knobs,
        )
    } else if cfg.batch_size > 1 {
        run_batched_inner(
            files,
            cfg.slaves,
            cfg.strategy,
            cfg.batch_size,
            cfg.recorder.clone(),
            &ctx,
            &knobs,
        )
    } else {
        run_farm_inner(
            files,
            cfg.slaves,
            cfg.strategy,
            cfg.recorder.clone(),
            &ctx,
            &knobs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::{save_portfolio, toy_portfolio};

    fn setup(count: usize, tag: &str) -> (Vec<PathBuf>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("farm_cfg_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = save_portfolio(&toy_portfolio(count), &dir).unwrap();
        (paths, dir)
    }

    #[test]
    fn zero_slaves_rejected() {
        let cfg = FarmConfig::new(0, Transmission::Nfs);
        assert!(matches!(run(&[], &cfg), Err(FarmError::NoSlaves)));
    }

    /// Run the config against an empty portfolio and return the
    /// collected issues, panicking on anything but a config rejection.
    fn rejected(cfg: &FarmConfig) -> exec::ConfigIssues {
        match run(&[], cfg) {
            Err(FarmError::Config(issues)) => issues,
            other => panic!("expected a config rejection, got {other:?}"),
        }
    }

    #[test]
    fn zero_batch_rejected() {
        let cfg = FarmConfig::new(2, Transmission::Nfs).batch_size(0);
        assert!(rejected(&cfg).has("batch_size"));
    }

    #[test]
    fn supervised_batching_rejected() {
        let cfg = FarmConfig::new(2, Transmission::Nfs)
            .batch_size(4)
            .supervised(true);
        assert!(rejected(&cfg).has("batch_size"));
    }

    #[test]
    fn fault_plan_without_supervision_rejected() {
        let cfg = FarmConfig::new(2, Transmission::Nfs).fault_plan(Arc::new(FaultPlan::new(1)));
        assert!(rejected(&cfg).has("fault_plan"));
    }

    #[test]
    fn zero_max_attempts_rejected() {
        let sup = SupervisorConfig {
            max_attempts: 0,
            ..SupervisorConfig::default()
        };
        let cfg = FarmConfig::new(2, Transmission::Nfs).supervisor(sup);
        assert!(rejected(&cfg).has("supervisor"));
    }

    #[test]
    fn undersized_recorder_rejected() {
        let cfg = FarmConfig::new(3, Transmission::Nfs).recorder(Arc::new(Recorder::new(2)));
        assert!(rejected(&cfg).has("recorder"));
    }

    #[test]
    fn zero_cache_budget_rejected() {
        let cfg = FarmConfig::new(2, Transmission::Nfs).cache_bytes(0);
        assert!(rejected(&cfg).has("cache_bytes"));
    }

    #[test]
    fn prefetch_without_retaining_store_rejected() {
        let cfg = FarmConfig::new(2, Transmission::SerializedLoad).prefetch(4);
        assert!(rejected(&cfg).has("prefetch_depth"));
    }

    #[test]
    fn zero_threads_rejected() {
        let cfg = FarmConfig::new(2, Transmission::Nfs).threads(0);
        assert!(rejected(&cfg).has("threads"));
    }

    #[test]
    fn compute_chunk_without_threads_rejected() {
        let cfg = FarmConfig::new(2, Transmission::Nfs).compute_chunk(512);
        assert!(rejected(&cfg).has("compute_chunk"));
    }

    #[test]
    fn unsupported_lane_width_rejected() {
        for lanes in [2usize, 3, 5, 16] {
            let cfg = FarmConfig::new(2, Transmission::Nfs).lanes(lanes);
            assert!(
                rejected(&cfg).has("lanes"),
                "lanes={lanes} should be rejected"
            );
        }
    }

    #[test]
    fn validation_collects_every_invalid_field_at_once() {
        // Five independent mistakes in one config: validation reports
        // all of them, in field order, instead of the first one found.
        let cfg = FarmConfig::new(2, Transmission::Nfs)
            .batch_size(0)
            .cache_bytes(0)
            .threads(0)
            .lanes(3)
            .fault_plan(Arc::new(FaultPlan::new(1)));
        let issues = rejected(&cfg);
        assert_eq!(issues.issues.len(), 5, "all five fields reported: {issues}");
        for field in [
            "batch_size",
            "fault_plan",
            "cache_bytes",
            "threads",
            "lanes",
        ] {
            assert!(issues.has(field), "missing {field} in {issues}");
        }
        // The rendered message names every field for the human reader.
        let msg = FarmError::Config(issues).to_string();
        for field in [
            "batch_size",
            "fault_plan",
            "cache_bytes",
            "threads",
            "lanes",
        ] {
            assert!(msg.contains(field), "{field} absent from {msg}");
        }
    }

    #[test]
    fn priority_class_length_checked_against_portfolio() {
        let (paths, dir) = setup(4, "prio_len");
        let cfg = FarmConfig::new(2, Transmission::SerializedLoad)
            .order(DispatchPolicy::Priority { class: vec![0, 1] });
        let issues = rejected_for(&paths, &cfg);
        assert!(issues.has("policy"), "{issues}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Like [`rejected`] but against a real portfolio (for the checks
    /// that compare vector lengths with the file list).
    fn rejected_for(files: &[PathBuf], cfg: &FarmConfig) -> exec::ConfigIssues {
        match run(files, cfg) {
            Err(FarmError::Config(issues)) => issues,
            other => panic!("expected a config rejection, got {other:?}"),
        }
    }

    /// A small all-Monte-Carlo portfolio: unlike [`toy_portfolio`] (closed
    /// form, no chunked kernel), these jobs actually exercise the
    /// intra-slave executor when `threads >= 2`.
    fn mc_setup(count: usize, tag: &str) -> (Vec<PathBuf>, std::path::PathBuf) {
        use crate::portfolio::{JobClass, PortfolioJob};
        use pricing::models::BlackScholes;
        use pricing::{MethodSpec, ModelSpec, OptionSpec, PremiaProblem};
        let dir = std::env::temp_dir().join(format!("farm_cfg_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs: Vec<PortfolioJob> = (0..count)
            .map(|i| PortfolioJob {
                id: i,
                class: JobClass::LocalVolMc,
                problem: PremiaProblem::new(
                    ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
                    OptionSpec::Call {
                        strike: 90.0 + 2.0 * i as f64,
                        maturity: 1.0,
                    },
                    MethodSpec::MonteCarlo {
                        paths: 2_000,
                        time_steps: 8,
                        antithetic: false,
                        seed: 42 + i as u64,
                    },
                ),
            })
            .collect();
        let paths = save_portfolio(&jobs, &dir).unwrap();
        (paths, dir)
    }

    #[test]
    fn threaded_farm_bit_identical_across_thread_counts() {
        let (paths, dir) = mc_setup(6, "threads_bits");
        let by_job = |r: &FarmReport| {
            let mut v: Vec<(usize, u64)> = r
                .outcomes
                .iter()
                .map(|o| (o.job, o.price.to_bits()))
                .collect();
            v.sort();
            v
        };
        let t2 = run(
            &paths,
            &FarmConfig::new(2, Transmission::SerializedLoad).threads(2),
        )
        .unwrap();
        let t8 = run(
            &paths,
            &FarmConfig::new(2, Transmission::SerializedLoad).threads(8),
        )
        .unwrap();
        assert_eq!(by_job(&t2), by_job(&t8));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_one_is_bit_identical_to_default() {
        let (paths, dir) = setup(8, "threads_one");
        let by_job = |r: &FarmReport| {
            let mut v: Vec<(usize, u64)> = r
                .outcomes
                .iter()
                .map(|o| (o.job, o.price.to_bits()))
                .collect();
            v.sort();
            v
        };
        let default = run(&paths, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
        let one = run(
            &paths,
            &FarmConfig::new(2, Transmission::SerializedLoad).threads(1),
        )
        .unwrap();
        assert_eq!(by_job(&default), by_job(&one));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threaded_recorded_run_emits_compute_chunk_diagnostics() {
        use obs::{Breakdown, EventKind};
        let (paths, dir) = mc_setup(4, "threads_events");
        let rec = Arc::new(Recorder::new(3));
        let cfg = FarmConfig::new(2, Transmission::SerializedLoad)
            .threads(2)
            .compute_chunk(256)
            .recorder(rec.clone());
        let report = run(&paths, &cfg).unwrap();
        assert_eq!(report.completed(), 4);
        let events = rec.events();
        let b = Breakdown::from_events(&events);
        // Chunked kernels ran: per-chunk diagnostics are present and the
        // worker-CPU seconds roughly cover the compute wall seconds.
        assert!(b.count_of(EventKind::ComputeChunk) > 0);
        assert!(b.parallel_s() > 0.0);
        assert!(b.compute_s() > 0.0);
        // Diagnostics never inflate the cpu-seconds budget.
        assert!(b.total_s() >= b.compute_s());
        assert_eq!(rec.dropped(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lanes_one_is_bit_identical_to_default() {
        let (paths, dir) = mc_setup(6, "lanes_one");
        let by_job = |r: &FarmReport| {
            let mut v: Vec<(usize, u64)> = r
                .outcomes
                .iter()
                .map(|o| (o.job, o.price.to_bits()))
                .collect();
            v.sort();
            v
        };
        let default = run(&paths, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
        let one = run(
            &paths,
            &FarmConfig::new(2, Transmission::SerializedLoad).lanes(1),
        )
        .unwrap();
        assert_eq!(by_job(&default), by_job(&one));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn laned_farm_bit_identical_across_thread_counts() {
        let (paths, dir) = mc_setup(6, "lanes_bits");
        let by_job = |r: &FarmReport| {
            let mut v: Vec<(usize, u64)> = r
                .outcomes
                .iter()
                .map(|o| (o.job, o.price.to_bits()))
                .collect();
            v.sort();
            v
        };
        let l8t1 = run(
            &paths,
            &FarmConfig::new(2, Transmission::SerializedLoad).lanes(8),
        )
        .unwrap();
        let l8t8 = run(
            &paths,
            &FarmConfig::new(2, Transmission::SerializedLoad)
                .threads(8)
                .lanes(8),
        )
        .unwrap();
        assert_eq!(by_job(&l8t1), by_job(&l8t8));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn laned_recorded_run_emits_lane_batch_marks() {
        use obs::{Breakdown, EventKind};
        let (paths, dir) = mc_setup(4, "lanes_events");
        let rec = Arc::new(Recorder::new(3));
        let cfg = FarmConfig::new(2, Transmission::SerializedLoad)
            .threads(2)
            .lanes(8)
            .recorder(rec.clone());
        let report = run(&paths, &cfg).unwrap();
        assert_eq!(report.completed(), 4);
        let b = Breakdown::from_events(&rec.events());
        // One zero-duration mark per chunked compute, carrying the width.
        assert_eq!(b.count_of(EventKind::LaneBatch), 4);
        assert_eq!(b.lane_width(), 8.0);
        assert!(b.count_of(EventKind::ComputeChunk) > 0);
        assert_eq!(rec.dropped(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_compressed_prefetched_run_matches_plain() {
        let (paths, dir) = setup(20, "store_knobs");
        let plain = run(&paths, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
        let tricked_out = run(
            &paths,
            &FarmConfig::new(2, Transmission::SerializedLoad)
                .cache_bytes(1 << 20)
                .compress_wire(1)
                .prefetch(4),
        )
        .unwrap();
        let by_job = |r: &FarmReport| {
            let mut v: Vec<(usize, u64)> = r
                .outcomes
                .iter()
                .map(|o| (o.job, o.price.to_bits()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(by_job(&plain), by_job(&tricked_out));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_store_collects_stats_across_runs() {
        use store::{CachingStore, ProblemStore};
        let (paths, dir) = setup(10, "ext_store");
        let cache = Arc::new(CachingStore::over_dir(1 << 20));
        for _ in 0..2 {
            let cfg = FarmConfig::new(2, Transmission::SerializedLoad).store(cache.clone());
            run(&paths, &cfg).unwrap();
        }
        let stats = cache.stats();
        // Second run is fully warm: at least one hit per file.
        assert!(stats.hits >= 10, "{stats:?}");
        assert_eq!(stats.misses, 10, "{stats:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_with_cache_sees_cache_events() {
        use obs::EventKind;
        let (paths, dir) = setup(8, "cache_events");
        let cache = Arc::new(store::CachingStore::over_dir(1 << 20));
        let mut hit_any = false;
        for pass in 0..2 {
            // Size the recorder slaves + 2 so the prefetch virtual rank
            // is captured too.
            let rec = Arc::new(Recorder::new(4));
            let cfg = FarmConfig::new(2, Transmission::SerializedLoad)
                .store(cache.clone())
                .prefetch(3)
                .recorder(rec.clone());
            run(&paths, &cfg).unwrap();
            let kinds: std::collections::BTreeSet<EventKind> =
                rec.events().iter().map(|e| e.kind).collect();
            assert!(
                kinds.contains(&EventKind::Prefetch),
                "pass {pass}: {kinds:?}"
            );
            assert!(
                kinds.contains(&EventKind::CacheHit) || kinds.contains(&EventKind::CacheMiss),
                "pass {pass}: {kinds:?}"
            );
            hit_any |= kinds.contains(&EventKind::CacheHit);
            assert_eq!(rec.dropped(), 0);
        }
        // The second pass runs against a warm cache: hits must appear.
        assert!(hit_any);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_wire_run_emits_compress_and_decompress() {
        use obs::EventKind;
        let (paths, dir) = setup(8, "wire_events");
        let rec = Arc::new(Recorder::new(3));
        let cfg = FarmConfig::new(2, Transmission::SerializedLoad)
            .compress_wire(1)
            .recorder(rec.clone());
        let report = run(&paths, &cfg).unwrap();
        assert_eq!(report.completed(), 8);
        let kinds: std::collections::BTreeSet<EventKind> =
            rec.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Compress), "{kinds:?}");
        assert!(kinds.contains(&EventKind::Decompress), "{kinds:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plain_batched_and_supervised_routes_agree() {
        let (paths, dir) = setup(18, "routes");
        let plain = run(&paths, &FarmConfig::new(2, Transmission::SerializedLoad)).unwrap();
        let batched = run(
            &paths,
            &FarmConfig::new(2, Transmission::SerializedLoad).batch_size(5),
        )
        .unwrap();
        let supervised = run(
            &paths,
            &FarmConfig::new(2, Transmission::SerializedLoad).supervised(true),
        )
        .unwrap();
        let by_job = |r: &FarmReport| {
            let mut v: Vec<(usize, u64)> = r
                .outcomes
                .iter()
                .map(|o| (o.job, o.price.to_bits()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(by_job(&plain), by_job(&batched));
        assert_eq!(by_job(&plain), by_job(&supervised));
        assert!(supervised.failed_jobs.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_captures_all_strategies() {
        use obs::EventKind;
        let (paths, dir) = setup(8, "recorded");
        for strategy in Transmission::ALL {
            let rec = Arc::new(Recorder::new(3));
            let cfg = FarmConfig::new(2, strategy).recorder(rec.clone());
            let report = run(&paths, &cfg).unwrap();
            assert_eq!(report.completed(), 8);
            let events = rec.events();
            assert!(!events.is_empty(), "{strategy}: no events");
            let kinds: std::collections::BTreeSet<EventKind> =
                events.iter().map(|e| e.kind).collect();
            assert!(kinds.contains(&EventKind::Compute), "{strategy}: {kinds:?}");
            assert!(kinds.contains(&EventKind::Send), "{strategy}");
            match strategy {
                Transmission::SerializedLoad => {
                    assert!(kinds.contains(&EventKind::Sload), "{strategy}")
                }
                Transmission::Nfs => {
                    assert!(kinds.contains(&EventKind::NfsRead), "{strategy}")
                }
                Transmission::FullLoad => {
                    assert!(kinds.contains(&EventKind::Pack), "{strategy}")
                }
            }
            // Every job got a Compute event attributed to it.
            let computed: std::collections::BTreeSet<i64> = events
                .iter()
                .filter(|e| e.kind == EventKind::Compute)
                .map(|e| e.job)
                .collect();
            assert_eq!(computed.len(), 8, "{strategy}: {computed:?}");
            assert_eq!(rec.dropped(), 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
