//! Sharded peer masters with inter-shard work-stealing.
//!
//! The §5 hierarchy (`crate::hierarchy`) fixes the single master's
//! monitoring bottleneck but keeps one *global* master above the
//! sub-masters, and a sub-master whose chunk drains early goes idle.
//! This module removes both limits: N **peer** masters each own a
//! contiguous portfolio shard (seeded exactly like the hierarchy's
//! chunking) and drive their private slave farms concurrently; when a
//! shard's pool drains, its master **steals** a block of jobs from the
//! back of the richest peer's pool and keeps farming. There is no
//! global master — the shards' reports are concatenated by the caller
//! thread after every master joins.
//!
//! Each master leases jobs from its pool in rounds and drives every
//! round through the same pure [`sched::Scheduler`] the flat farm and
//! the simulator use, so decision-trace parity holds *per shard*: with
//! stealing disabled and one round per shard (`lease == 0`), a shard's
//! trace is byte-identical to `clustersim::simulate_farm_sched` on its
//! partition — locked down by `tests/shard_parity.rs`.
//!
//! The slave farms run on either [`Transport`](transport::Transport)
//! backend: in-process channel worlds ([`minimpi::SpawnedWorld`]) or
//! real child processes over Unix-domain sockets
//! ([`minimpi::ProcessWorld`]). The wire protocol (a config frame, then
//! `JobMsg`/payload/`Answer` rounds, then the empty-matrix stop
//! sentinel) is byte-identical on both, and prices are bit-identical at
//! fixed chunk/lanes.

use crate::config::RunCtx;
use crate::driver::{self, JobMap, RecvStyle};
use crate::instrument;
use crate::robin_hood::{FarmError, FarmReport, JobOutcome};
use crate::strategy::{prepare_payload_recorded, recover_problem_recorded, Transmission};
use crate::wire::{Answer, JobMsg};
use minimpi::{Comm, MpiBuf, ProcessWorld, SpawnedWorld};
use nspval::{Hash, Value};
use sched::{SchedConfig, Trace};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const TAG: i32 = 11;

/// Which transport the shard farms run their slaves on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channel worlds: slaves are threads
    /// ([`minimpi::SpawnedWorld`]).
    Channel,
    /// Multi-process worlds: slaves are child processes over Unix-domain
    /// sockets ([`minimpi::ProcessWorld`]).
    Process,
}

/// One observed steal: `thief` took `jobs` jobs from `victim`'s pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEvent {
    /// The shard whose pool drained.
    pub thief: usize,
    /// The shard that lost jobs.
    pub victim: usize,
    /// How many jobs moved.
    pub jobs: usize,
}

/// Configuration of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of peer masters (each with its own slave farm).
    pub shards: usize,
    /// Compute slaves per shard.
    pub slaves_per_shard: usize,
    /// Jobs a master leases from its pool per scheduling round; `0`
    /// leases the whole shard in one round (which also disables
    /// stealing — nothing is ever left to steal).
    pub lease: usize,
    /// Steal from the richest peer when the own pool drains.
    pub steal: bool,
    /// Payload transmission strategy (as in the flat farm).
    pub strategy: Transmission,
    /// Slave transport backend.
    pub backend: TransportKind,
    /// Record per-round decision traces into [`ShardReport::traces`].
    pub record_trace: bool,
    /// [`TransportKind::Process`] from inside a libtest binary: the name
    /// of the `#[test]` bootstrap that calls
    /// [`minimpi::ProcessWorld::child_entry`] with
    /// [`SHARD_SLAVE_ENTRY`] registered. `None` means the binary's
    /// `main` performs the bootstrap.
    pub process_bootstrap: Option<String>,
}

impl ShardConfig {
    /// `shards` masters with `slaves_per_shard` slaves each, on the
    /// channel backend, whole-shard leases, no stealing.
    pub fn new(shards: usize, slaves_per_shard: usize) -> Self {
        ShardConfig {
            shards,
            slaves_per_shard,
            lease: 0,
            steal: false,
            strategy: Transmission::SerializedLoad,
            backend: TransportKind::Channel,
            record_trace: false,
            process_bootstrap: None,
        }
    }

    /// Lease `lease` jobs per round and steal when the pool drains.
    pub fn stealing(mut self, lease: usize) -> Self {
        self.lease = lease;
        self.steal = true;
        self
    }

    /// Select the slave transport backend.
    pub fn backend(mut self, kind: TransportKind) -> Self {
        self.backend = kind;
        self
    }

    /// Record per-round decision traces.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }
}

/// What a sharded run produced.
#[derive(Debug)]
pub struct ShardReport {
    /// Priced jobs (global portfolio indices), concatenated shard by
    /// shard in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs computed under each shard's master (including stolen ones).
    pub per_shard: Vec<usize>,
    /// Every steal, in occurrence order.
    pub steals: Vec<StealEvent>,
    /// Wall-clock of the whole run (all shards).
    pub elapsed: Duration,
    /// Per-shard wall-clock (a shard's master from launch to drained).
    pub shard_elapsed: Vec<Duration>,
    /// Decision traces per shard, one per scheduling round (empty unless
    /// [`ShardConfig::record_trace`]).
    pub traces: Vec<Vec<Trace>>,
}

impl ShardReport {
    /// Completed job count.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Outcomes sorted by global job index.
    pub fn by_job(&self) -> Vec<(usize, f64, Option<f64>)> {
        let mut v: Vec<(usize, f64, Option<f64>)> = self
            .outcomes
            .iter()
            .map(|o| (o.job, o.price, o.std_error))
            .collect();
        v.sort_by_key(|&(j, _, _)| j);
        v
    }

    /// Fold into the flat farm's report shape (shard structure erased;
    /// `per_slave` is indexed by shard instead of rank).
    pub fn into_farm_report(self, strategy: Transmission) -> FarmReport {
        FarmReport {
            outcomes: self.outcomes,
            elapsed: self.elapsed,
            per_slave: self.per_shard,
            failed_jobs: Vec::new(),
            retries: 0,
            dead_slaves: Vec::new(),
            strategy,
            trace: None,
        }
    }
}

/// The entry-point name a process-backed shard slave is registered
/// under — pass `(SHARD_SLAVE_ENTRY, shard_slave_entry)` to
/// [`minimpi::ProcessWorld::child_entry`].
pub const SHARD_SLAVE_ENTRY: &str = "farm_shard_slave";

/// Process-world entry point for a shard compute slave; see
/// [`SHARD_SLAVE_ENTRY`].
pub fn shard_slave_entry(comm: Comm) {
    shard_slave_body(&comm).expect("shard slave failed");
}

/// The slave protocol shared verbatim by both backends: receive the
/// config frame, then farm jobs until the stop sentinel.
fn shard_slave_body(comm: &Comm) -> Result<(), FarmError> {
    // Config frame: {strategy} from the shard master (rank 0). The
    // compute context is the default one — bit-identity across backends
    // needs both sides on the same (single-threaded) compute path.
    let (cfg_v, _) = comm.recv_obj(0, TAG)?;
    let strategy = cfg_v
        .as_hash()
        .and_then(|h| h.get("strategy"))
        .and_then(|s| s.as_str().map(str::to_string))
        .and_then(|l| transmission_of_label(&l))
        .ok_or_else(|| FarmError::Protocol(format!("bad shard config frame: {cfg_v}")))?;
    let ctx = RunCtx::default_ctx();
    loop {
        let (msg, _) = comm.recv_obj(0, TAG)?;
        if msg.is_empty_matrix() {
            return Ok(());
        }
        let JobMsg { idx, name } = JobMsg::decode(&msg)
            .ok_or_else(|| FarmError::Protocol(format!("undecodable job request: {msg}")))?;
        comm.set_job(Some(idx));
        let payload = match strategy {
            Transmission::Nfs => None,
            _ => {
                let st = comm.probe(0, TAG)?;
                let mut buf = MpiBuf::with_capacity(st.count());
                comm.recv_into(&mut buf, 0, TAG)?;
                Some(comm.unpack(&buf)?)
            }
        };
        let problem = recover_problem_recorded(comm, &ctx, strategy, &name, payload.as_ref())?;
        let r = instrument::compute_recorded(comm, &ctx, &problem)
            .map_err(|e| FarmError::Io(format!("compute failed: {e}")))?;
        comm.send_obj(&Answer::priced(idx, &r).to_value(), 0, TAG)?;
        comm.set_job(None);
    }
}

fn transmission_of_label(label: &str) -> Option<Transmission> {
    Transmission::ALL.iter().copied().find(|t| t.label() == label)
}

/// Contiguous shard pools, remainder spread over the first shards —
/// the same chunking the hierarchy's global master uses.
fn seed_pools(jobs: usize, shards: usize) -> Vec<Mutex<VecDeque<usize>>> {
    let base = jobs / shards;
    let rem = jobs % shards;
    let mut begin = 0;
    (0..shards)
        .map(|s| {
            let len = base + usize::from(s < rem);
            let pool: VecDeque<usize> = (begin..begin + len).collect();
            begin += len;
            Mutex::new(pool)
        })
        .collect()
}

/// Lease up to `want` jobs from the *front* of the own pool; on a dry
/// pool (stealing enabled) take them from the *back* of the richest
/// peer's pool instead, so the victim's own front-leases are disturbed
/// as late as possible.
fn lease_round(
    pools: &[Mutex<VecDeque<usize>>],
    shard: usize,
    want: usize,
    steal: bool,
    steals: &Mutex<Vec<StealEvent>>,
) -> Vec<usize> {
    {
        let mut own = pools[shard].lock().expect("pool lock");
        if !own.is_empty() {
            let n = want.min(own.len());
            return own.drain(..n).collect();
        }
    }
    if !steal {
        return Vec::new();
    }
    // Pick the richest victim at this instant; locks are taken one at a
    // time, so a concurrent lease can race us to it — the retry loop in
    // the caller handles a now-empty victim by picking again.
    let victim = (0..pools.len())
        .filter(|&p| p != shard)
        .max_by_key(|&p| pools[p].lock().expect("pool lock").len());
    let Some(victim) = victim else {
        return Vec::new();
    };
    let mut v = pools[victim].lock().expect("pool lock");
    if v.is_empty() {
        return Vec::new();
    }
    let n = want.min(v.len());
    let at = v.len() - n;
    let got: Vec<usize> = v.drain(at..).collect();
    drop(v);
    steals.lock().expect("steal log").push(StealEvent {
        thief: shard,
        victim,
        jobs: got.len(),
    });
    got
}

/// `true` while any pool still holds jobs.
fn any_jobs_left(pools: &[Mutex<VecDeque<usize>>]) -> bool {
    pools
        .iter()
        .any(|p| !p.lock().expect("pool lock").is_empty())
}

/// Run the sharded farm over `files`. See the module docs for the
/// topology; the outcomes carry global portfolio indices.
pub fn run_sharded(files: &[PathBuf], cfg: &ShardConfig) -> Result<ShardReport, FarmError> {
    if cfg.shards == 0 || cfg.slaves_per_shard == 0 {
        return Err(FarmError::NoSlaves);
    }
    if files.is_empty() {
        return Ok(ShardReport {
            outcomes: Vec::new(),
            per_shard: vec![0; cfg.shards],
            steals: Vec::new(),
            elapsed: Duration::ZERO,
            shard_elapsed: vec![Duration::ZERO; cfg.shards],
            traces: vec![Vec::new(); cfg.shards],
        });
    }
    let start = Instant::now();
    let pools = seed_pools(files.len(), cfg.shards);
    let steals: Mutex<Vec<StealEvent>> = Mutex::new(Vec::new());

    struct ShardOut {
        outcomes: Vec<JobOutcome>,
        traces: Vec<Trace>,
        elapsed: Duration,
    }

    let results: Vec<Result<ShardOut, FarmError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.shards)
            .map(|shard| {
                let pools = &pools;
                let steals = &steals;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let (outcomes, traces) = shard_master(shard, files, cfg, pools, steals)?;
                    Ok(ShardOut {
                        outcomes,
                        traces,
                        elapsed: t0.elapsed(),
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard master panicked"))
            .collect()
    });

    let mut outcomes = Vec::with_capacity(files.len());
    let mut per_shard = Vec::with_capacity(cfg.shards);
    let mut traces = Vec::with_capacity(cfg.shards);
    let mut shard_elapsed = Vec::with_capacity(cfg.shards);
    for r in results {
        let out = r?;
        per_shard.push(out.outcomes.len());
        outcomes.extend(out.outcomes);
        traces.push(out.traces);
        shard_elapsed.push(out.elapsed);
    }
    Ok(ShardReport {
        outcomes,
        per_shard,
        steals: steals.into_inner().expect("steal log"),
        elapsed: start.elapsed(),
        shard_elapsed,
        traces,
    })
}

/// One peer master: stand up the shard's slave world on the configured
/// backend, farm lease rounds until every pool is dry, stop the slaves.
fn shard_master(
    shard: usize,
    files: &[PathBuf],
    cfg: &ShardConfig,
    pools: &[Mutex<VecDeque<usize>>],
    steals: &Mutex<Vec<StealEvent>>,
) -> Result<(Vec<JobOutcome>, Vec<Trace>), FarmError> {
    match cfg.backend {
        TransportKind::Channel => {
            let spawned = SpawnedWorld::spawn(cfg.slaves_per_shard, |c: Comm| {
                shard_slave_body(&c).expect("shard slave failed");
            });
            let out = master_loop(spawned.comm(), shard, files, cfg, pools, steals);
            if out.is_ok() {
                spawned.join();
            }
            out
        }
        TransportKind::Process => {
            let parent = ProcessWorld::spawn_full(
                cfg.slaves_per_shard,
                SHARD_SLAVE_ENTRY,
                None,
                None,
                cfg.process_bootstrap.as_deref(),
            )?;
            let out = master_loop(parent.comm(), shard, files, cfg, pools, steals)?;
            parent.join()?;
            Ok(out)
        }
    }
}

/// The backend-independent master loop: config frames, lease rounds
/// through [`driver::drive_plain`], stop sentinels.
fn master_loop(
    comm: &Comm,
    shard: usize,
    files: &[PathBuf],
    cfg: &ShardConfig,
    pools: &[Mutex<VecDeque<usize>>],
    steals: &Mutex<Vec<StealEvent>>,
) -> Result<(Vec<JobOutcome>, Vec<Trace>), FarmError> {
    let slaves = cfg.slaves_per_shard;
    let ctx = RunCtx::default_ctx();
    // Config frame to every slave before the first round.
    let mut config = Hash::new();
    config.set("strategy", Value::string(cfg.strategy.label()));
    for s in 1..=slaves {
        comm.send_obj(&Value::Hash(config.clone()), s as i32, TAG)?;
    }

    // Scheduler slave `s` is shard-world rank `s` (master is rank 0).
    let ranks: Vec<usize> = (0..=slaves).collect();
    let want = if cfg.lease == 0 {
        files.len().max(1)
    } else {
        cfg.lease
    };

    let mut outcomes: Vec<JobOutcome> = Vec::new();
    let mut traces: Vec<Trace> = Vec::new();
    loop {
        let round = lease_round(pools, shard, want, cfg.steal, steals);
        if round.is_empty() {
            // A racing steal can empty the victim between our probe and
            // our lock; only a globally dry pool set ends the shard.
            if cfg.steal && any_jobs_left(pools) {
                continue;
            }
            break;
        }

        let send_one = |local: usize, rank: usize| -> Result<(), FarmError> {
            let global = round[local];
            let path = &files[global];
            comm.set_job(Some(global));
            // Wire ids are round-local so the scheduler's dense id
            // space maps through `JobMap::Identity` even for stolen
            // (non-contiguous) rounds; outcomes are re-mapped below.
            let msg = JobMsg {
                idx: local,
                name: path.to_string_lossy().to_string(),
            };
            comm.send_obj(&msg.to_value(), rank as i32, TAG)?;
            if let Some(payload) = prepare_payload_recorded(comm, &ctx, cfg.strategy, path)? {
                let packed = comm.pack(&payload);
                comm.send(packed.bytes(), rank as i32, TAG)?;
            }
            comm.set_job(None);
            Ok(())
        };

        let mut sc = SchedConfig::plain(round.len(), slaves);
        if cfg.record_trace {
            sc = sc.record_trace();
        }
        let run = driver::drive_plain(
            comm,
            TAG,
            sc,
            &ranks,
            RecvStyle::Obj,
            JobMap::Identity,
            None,
            |job, rank, _batch| send_one(job, rank),
            // Rounds share the slave world: the per-round scheduler's
            // stop is a no-op, the real sentinel goes out after the
            // last round.
            |_rank| Ok(()),
        )?;
        for mut o in run.outcomes {
            o.job = round[o.job];
            outcomes.push(o);
        }
        if let Some(t) = run.trace {
            traces.push(t);
        }
    }

    for s in 1..=slaves {
        comm.send_obj(&Value::empty_matrix(), s as i32, TAG)?;
    }
    Ok((outcomes, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::{save_portfolio, toy_portfolio};

    fn setup(count: usize, tag: &str) -> (Vec<PathBuf>, Vec<f64>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("farm_shard_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = toy_portfolio(count);
        let paths = save_portfolio(&jobs, &dir).unwrap();
        let expected: Vec<f64> = jobs
            .iter()
            .map(|j| j.problem.compute().unwrap().price)
            .collect();
        (paths, expected, dir)
    }

    #[test]
    fn pools_seed_contiguously_with_remainder_up_front() {
        let pools = seed_pools(10, 3);
        let as_vecs: Vec<Vec<usize>> = pools
            .iter()
            .map(|p| p.lock().unwrap().iter().copied().collect())
            .collect();
        assert_eq!(as_vecs[0], vec![0, 1, 2, 3]);
        assert_eq!(as_vecs[1], vec![4, 5, 6]);
        assert_eq!(as_vecs[2], vec![7, 8, 9]);
    }

    #[test]
    fn steal_takes_from_the_back_of_the_richest_pool() {
        let pools = seed_pools(9, 3); // 3 each
        pools[0].lock().unwrap().clear();
        pools[2].lock().unwrap().pop_back(); // shard 1 is now richest
        let steals = Mutex::new(Vec::new());
        let got = lease_round(&pools, 0, 2, true, &steals);
        assert_eq!(got, vec![4, 5]); // back of shard 1's [3, 4, 5]
        assert_eq!(
            steals.into_inner().unwrap(),
            vec![StealEvent {
                thief: 0,
                victim: 1,
                jobs: 2
            }]
        );
        assert_eq!(
            pools[1].lock().unwrap().iter().copied().collect::<Vec<_>>(),
            vec![3]
        );
    }

    #[test]
    fn sharded_run_completes_portfolio() {
        let (paths, expected, dir) = setup(18, "complete");
        let report = run_sharded(&paths, &ShardConfig::new(2, 2)).unwrap();
        assert_eq!(report.completed(), 18);
        let mut seen = [false; 18];
        for o in &report.outcomes {
            assert!(!seen[o.job], "job {} priced twice", o.job);
            seen[o.job] = true;
            assert!((o.price - expected[o.job]).abs() < 1e-12);
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(report.per_shard.iter().sum::<usize>(), 18);
        assert!(report.steals.is_empty(), "no stealing requested");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stealing_run_stays_complete_and_exact() {
        let (paths, expected, dir) = setup(24, "steal");
        let cfg = ShardConfig::new(3, 2).stealing(2);
        let report = run_sharded(&paths, &cfg).unwrap();
        assert_eq!(report.completed(), 24);
        for o in &report.outcomes {
            assert!((o.price - expected[o.job]).abs() < 1e-12);
        }
        // Every steal recorded must be internally consistent.
        for s in &report.steals {
            assert_ne!(s.thief, s.victim);
            assert!(s.jobs >= 1 && s.jobs <= 2);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn whole_shard_lease_gives_one_trace_per_shard() {
        let (paths, _, dir) = setup(8, "trace");
        let cfg = ShardConfig::new(2, 2).record_trace(true);
        let report = run_sharded(&paths, &cfg).unwrap();
        assert_eq!(report.traces.len(), 2);
        assert_eq!(report.traces[0].len(), 1, "one round per shard");
        assert_eq!(report.traces[1].len(), 1);
        assert!(!report.traces[0][0].render().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_degenerate_configs() {
        let empty = run_sharded(&[], &ShardConfig::new(2, 2)).unwrap();
        assert_eq!(empty.completed(), 0);
        assert_eq!(empty.per_shard, vec![0, 0]);
        let (paths, _, dir) = setup(2, "degenerate");
        assert!(run_sharded(&paths, &ShardConfig::new(0, 2)).is_err());
        assert!(run_sharded(&paths, &ShardConfig::new(2, 0)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transmission_labels_round_trip() {
        for t in Transmission::ALL {
            assert_eq!(transmission_of_label(t.label()), Some(t));
        }
        assert_eq!(transmission_of_label("bogus"), None);
    }
}
