//! The master/slave "Robbin Hood" task farm of Figs. 4–5, live over
//! `minimpi` threads.
//!
//! "First, the master sends one job to each slave and as soon as a slave
//! finishes its computation and sends its answer back, it is assigned a
//! new job. This mechanism goes on until the whole portfolio has been
//! treated." (§4). Termination is the Fig. 4 empty-name message.
//!
//! The wire protocol matches the scripts: per job the master sends a
//! *name* message (`MPI_Send_Obj` of the file name string) followed, for
//! the loaded strategies, by a *packed object* message (`MPI_Pack` +
//! `MPI_Send`); the slave probes, sizes a buffer with `MPI_Get_count`,
//! receives, unpacks, unserializes, computes and replies with a result
//! object.

use crate::config::{RunCtx, SchedKnobs};
use crate::driver::{self, JobMap, RecvStyle};
use crate::instrument;
use crate::strategy::{prepare_payload_recorded, recover_problem_recorded, Transmission};
use crate::wire::{Answer, JobMsg};
use exec::ConfigIssues;
use minimpi::{Comm, MpiBuf, MpiError, World};
use nspval::Value;
use obs::Recorder;
use sched::SchedConfig;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub(crate) const TAG: i32 = 7;

/// One priced job as collected by the master.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Index of the job in the submitted file list.
    pub job: usize,
    /// Rank of the slave that priced it.
    pub slave: usize,
    /// Price estimate.
    pub price: f64,
    /// Monte-Carlo standard error, when the method reports one.
    pub std_error: Option<f64>,
}

/// The master's report for one farm run.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Per-job results in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Jobs completed per slave rank (index 0, the master, stays 0).
    pub per_slave: Vec<usize>,
    /// Transmission strategy used.
    pub strategy: Transmission,
    /// Jobs abandoned after exhausting their retry budget (supervised
    /// runs only; always empty for the plain Robin-Hood master).
    pub failed_jobs: Vec<usize>,
    /// Number of job re-dispatches the supervisor performed (deadline
    /// expiries and explicit slave failure reports).
    pub retries: usize,
    /// Slave ranks the supervisor declared dead during the run.
    pub dead_slaves: Vec<usize>,
    /// The scheduler's decision trace, recorded when the run was
    /// configured with [`crate::FarmConfig::record_trace`]. Timestamp-
    /// free, so it is byte-comparable with a simulated run of the same
    /// workload (`tests/sched_parity.rs`).
    pub trace: Option<sched::Trace>,
}

impl FarmReport {
    /// Total number of priced jobs.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Sorted `(job, price, std_error)` triples — the scheduling-order-
    /// independent view used to compare runs (live vs simulated, faulty
    /// vs fault-free).
    pub fn by_job(&self) -> Vec<(usize, f64, Option<f64>)> {
        let mut v: Vec<_> = self
            .outcomes
            .iter()
            .map(|o| (o.job, o.price, o.std_error))
            .collect();
        v.sort_by_key(|&(j, _, _)| j);
        v
    }
}

/// Farm-level failures.
#[derive(Debug)]
pub enum FarmError {
    /// Farms need at least one slave (2 "CPUs" in the tables' counting).
    NoSlaves,
    /// A communication primitive failed.
    Mpi(MpiError),
    /// A problem file failed to load/transmit.
    Io(String),
    /// A serialization / XDR decode failure (bad problem file, corrupt
    /// payload).
    Xdr(xdrser::XdrError),
    /// The [`crate::FarmConfig`] combination is invalid (e.g. batching
    /// under supervision, a zero retry budget, an undersized recorder).
    /// Carries *every* rejected field, not just the first one found.
    Config(ConfigIssues),
    /// A peer sent a message the wire codec cannot decode: a protocol
    /// violation, surfaced with the offending value rendered instead of
    /// silently dropped.
    Protocol(String),
    /// Every slave died before the portfolio was drained; the supervised
    /// master aborts cleanly instead of spinning on retries forever.
    AllSlavesDead {
        /// Jobs successfully priced before the farm collapsed.
        completed: usize,
        /// Jobs still unpriced at collapse.
        remaining: usize,
    },
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::NoSlaves => write!(f, "farm needs at least one slave"),
            FarmError::Mpi(e) => write!(f, "MPI error: {e}"),
            FarmError::Io(m) => write!(f, "I/O error: {m}"),
            FarmError::Xdr(e) => write!(f, "serialization error: {e}"),
            FarmError::Config(m) => write!(f, "{m}"),
            FarmError::Protocol(m) => write!(f, "protocol violation: {m}"),
            FarmError::AllSlavesDead {
                completed,
                remaining,
            } => write!(
                f,
                "all slaves dead with {remaining} jobs unpriced ({completed} completed)"
            ),
        }
    }
}

impl std::error::Error for FarmError {}

impl From<MpiError> for FarmError {
    fn from(e: MpiError) -> Self {
        FarmError::Mpi(e)
    }
}

impl From<xdrser::XdrError> for FarmError {
    fn from(e: xdrser::XdrError) -> Self {
        FarmError::Xdr(e)
    }
}

/// Master-side: send job `idx` (file `path`) to `slave`.
///
/// `scratch` is a pack buffer hoisted out of the dispatch loop: loaded
/// strategies recycle one allocation across the whole run
/// ([`Comm::pack_into`]), and each reuse shows up as an
/// [`minimpi::obs::EventKind::CopySaved`] mark when recording.
pub(crate) fn send_job(
    comm: &Comm,
    ctx: &RunCtx,
    slave: usize,
    idx: usize,
    path: &std::path::Path,
    strategy: Transmission,
    scratch: &mut MpiBuf,
) -> Result<(), FarmError> {
    comm.set_job(Some(idx));
    let sent = send_job_span(comm, ctx, slave, idx, path, strategy, scratch);
    comm.set_job(None);
    sent
}

fn send_job_span(
    comm: &Comm,
    ctx: &RunCtx,
    slave: usize,
    idx: usize,
    path: &std::path::Path,
    strategy: Transmission,
    scratch: &mut MpiBuf,
) -> Result<(), FarmError> {
    // Name message: [name, job index].
    let name = Value::list(vec![
        Value::string(path.to_string_lossy().to_string()),
        Value::scalar(idx as f64),
    ]);
    comm.send_obj(&name, slave as i32, TAG)?;
    if let Some(payload) = prepare_payload_recorded(comm, ctx, strategy, path)? {
        comm.pack_into(&payload, scratch);
        comm.send(scratch.bytes(), slave as i32, TAG)?;
    }
    Ok(())
}

/// Slave loop — Fig. 4's `if mpi_rank <> 0` branch.
fn slave_loop(comm: &Comm, ctx: &RunCtx, strategy: Transmission) -> Result<usize, FarmError> {
    let mut done = 0;
    loop {
        let (msg, _st) = comm.recv_obj(0, TAG)?;
        if msg.is_empty_matrix() {
            // Stop sentinel.
            return Ok(done);
        }
        let JobMsg { idx, name } = JobMsg::decode(&msg)
            .ok_or_else(|| FarmError::Protocol(format!("undecodable job request: {msg}")))?;
        comm.set_job(Some(idx));

        let payload = match strategy {
            Transmission::Nfs => None,
            _ => {
                // Probe → size buffer → receive → unpack (Fig. 4).
                let st = comm.probe(0, TAG)?;
                let mut buf = MpiBuf::with_capacity(st.count());
                comm.recv_into(&mut buf, 0, TAG)?;
                Some(comm.unpack(&buf)?)
            }
        };
        let problem = recover_problem_recorded(comm, ctx, strategy, &name, payload.as_ref())?;
        let result = instrument::compute_recorded(comm, ctx, &problem)
            .map_err(|e| FarmError::Io(format!("compute failed: {e}")))?;
        comm.send_obj(&Answer::priced(idx, &result).to_value(), 0, TAG)?;
        comm.set_job(None);
        done += 1;
    }
}

/// Master loop — Fig. 4's `else` branch, as a thin [`driver`] of the
/// [`sched::Scheduler`]: prime every slave, refeed on every answer,
/// stop with the empty-name sentinel. The dispatch *decisions* all come
/// from the shared state machine; this function only moves bytes.
fn master_loop(
    comm: &Comm,
    ctx: &RunCtx,
    files: &[PathBuf],
    strategy: Transmission,
    knobs: &SchedKnobs,
) -> Result<FarmReport, FarmError> {
    let slaves = comm.size() - 1;
    let start = Instant::now();
    let mut scratch = MpiBuf::with_capacity(0);
    // Flat farm: scheduler slave `s` is MPI rank `s`.
    let ranks: Vec<usize> = (0..=slaves).collect();
    let mut cfg = SchedConfig::plain(files.len(), slaves).policy(knobs.policy.clone());
    if knobs.record_trace {
        cfg = cfg.record_trace();
    }
    if let Some(rounds) = &knobs.rounds {
        cfg = cfg.rounds(rounds.clone());
    }
    // Staged workloads rewrite a round-dependent job's problem file from
    // earlier answers just before its dispatch (payloads are invisible
    // to the scheduler, so the decision trace is unaffected).
    let mut patch_fn = knobs
        .patch
        .as_ref()
        .map(|p| move |job: usize, outcomes: &[JobOutcome]| p.apply(job, outcomes, files));
    let run = driver::drive_plain(
        comm,
        TAG,
        cfg,
        &ranks,
        RecvStyle::Obj,
        JobMap::Identity,
        patch_fn
            .as_mut()
            .map(|f| f as &mut dyn FnMut(usize, &[JobOutcome]) -> Result<(), FarmError>),
        |job, rank, _batch| {
            send_job(comm, ctx, rank, job, &files[job], strategy, &mut scratch)?;
            ctx.advance(job + 1);
            Ok(())
        },
        |rank| Ok(comm.send_obj(&Value::empty_matrix(), rank as i32, TAG)?),
    )?;
    Ok(FarmReport {
        outcomes: run.outcomes,
        elapsed: start.elapsed(),
        per_slave: run.per_slave,
        strategy,
        failed_jobs: Vec::new(),
        retries: 0,
        dead_slaves: Vec::new(),
        trace: run.trace,
    })
}

/// The plain-farm runner behind [`crate::run`]: `recorder == None` with
/// the default context is byte-for-byte the PR-1 behaviour (guarded by
/// `tests/obs_overhead.rs`).
pub(crate) fn run_farm_inner(
    files: &[PathBuf],
    slaves: usize,
    strategy: Transmission,
    recorder: Option<Arc<Recorder>>,
    ctx: &RunCtx,
    knobs: &SchedKnobs,
) -> Result<FarmReport, FarmError> {
    let results = World::run_instrumented(slaves + 1, None, recorder, |comm| {
        if comm.rank() == 0 {
            Some(master_loop(&comm, ctx, files, strategy, knobs))
        } else {
            // A slave failure must not silently drop a job: panic and let
            // World poison the group (surfaces as an error at the master).
            slave_loop(&comm, ctx, strategy).expect("slave failed");
            None
        }
    });
    results
        .into_iter()
        .next()
        .flatten()
        .expect("master produces the report")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{run, FarmConfig};
    use crate::portfolio::{save_portfolio, toy_portfolio};

    fn run_plain(
        files: &[PathBuf],
        slaves: usize,
        strategy: Transmission,
    ) -> Result<FarmReport, FarmError> {
        run(files, &FarmConfig::new(slaves, strategy))
    }

    fn setup(count: usize, tag: &str) -> (Vec<PathBuf>, Vec<f64>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("farm_rh_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = toy_portfolio(count);
        let paths = save_portfolio(&jobs, &dir).unwrap();
        // Expected prices, computed serially.
        let expected: Vec<f64> = jobs
            .iter()
            .map(|j| j.problem.compute().unwrap().price)
            .collect();
        (paths, expected, dir)
    }

    fn check_report(report: &FarmReport, expected: &[f64]) {
        assert_eq!(report.completed(), expected.len());
        // Every job answered exactly once.
        let mut seen = vec![false; expected.len()];
        for o in &report.outcomes {
            assert!(!seen[o.job], "job {} answered twice", o.job);
            seen[o.job] = true;
            assert!(
                (o.price - expected[o.job]).abs() < 1e-12,
                "job {}: farm {} serial {}",
                o.job,
                o.price,
                expected[o.job]
            );
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn farm_prices_whole_portfolio_serialized_load() {
        let (paths, expected, dir) = setup(40, "sload");
        let report = run_plain(&paths, 3, Transmission::SerializedLoad).unwrap();
        check_report(&report, &expected);
        // Work was actually distributed.
        let active = report.per_slave.iter().filter(|&&c| c > 0).count();
        assert!(active >= 2, "only {active} slaves did work");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn farm_full_load_matches() {
        let (paths, expected, dir) = setup(25, "full");
        let report = run_plain(&paths, 4, Transmission::FullLoad).unwrap();
        check_report(&report, &expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn farm_nfs_matches() {
        let (paths, expected, dir) = setup(25, "nfs");
        let report = run_plain(&paths, 4, Transmission::Nfs).unwrap();
        check_report(&report, &expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn more_slaves_than_jobs() {
        let (paths, expected, dir) = setup(3, "overstaffed");
        let report = run_plain(&paths, 8, Transmission::SerializedLoad).unwrap();
        check_report(&report, &expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_slave_farm() {
        let (paths, expected, dir) = setup(10, "single");
        let report = run_plain(&paths, 1, Transmission::SerializedLoad).unwrap();
        check_report(&report, &expected);
        assert_eq!(report.per_slave[1], 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_portfolio() {
        let report = run_plain(&[], 2, Transmission::Nfs).unwrap();
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn zero_slaves_rejected() {
        assert!(matches!(
            run_plain(&[], 0, Transmission::Nfs),
            Err(FarmError::NoSlaves)
        ));
    }

    #[test]
    fn strategies_agree_on_prices() {
        let (paths, _, dir) = setup(15, "agree");
        let a = run_plain(&paths, 2, Transmission::FullLoad).unwrap();
        let b = run_plain(&paths, 2, Transmission::SerializedLoad).unwrap();
        let c = run_plain(&paths, 2, Transmission::Nfs).unwrap();
        let by_job = |r: &FarmReport| {
            let mut v: Vec<(usize, f64)> = r.outcomes.iter().map(|o| (o.job, o.price)).collect();
            v.sort_by_key(|&(j, _)| j);
            v
        };
        assert_eq!(by_job(&a), by_job(&b));
        assert_eq!(by_job(&b), by_job(&c));
        std::fs::remove_dir_all(&dir).ok();
    }
}
