//! Typed workloads: classed jobs plus optional staged rounds with
//! cross-round data flow.
//!
//! PRs 1–9 speak one shape — a flat `Vec` of independent problems. The
//! related literature stresses richer ones: Labart–Lelong 2011 price
//! BSDEs by *iterated Picard sweeps*, where sweep `k + 1` consumes sweep
//! `k`'s answer — a farm workload with cross-round dependencies. A
//! [`Workload`] couples the classed job list with that round structure
//! and with the data links between rounds; [`run_workload`] drives it
//! through the live farm:
//!
//! * the round *barrier* is enforced by the pure scheduler
//!   ([`sched::SchedConfig::rounds`]) — so the decision trace of a staged
//!   live run is byte-identical to `clustersim`'s staged simulation,
//!   exactly as for flat workloads;
//! * the round *data flow* is a master-side pre-dispatch patch
//!   ([`StagedPatch`]): just before a round-dependent job's bytes go on
//!   the wire, its problem file is rewritten with the predecessor's
//!   price. Scheduling decisions never read payloads, so patching cannot
//!   perturb the trace.
//!
//! The staged BSDE run reproduces the in-process iteration *bit for
//! bit*: round `r`'s job runs one sweep from `y_prev` = round `r − 1`'s
//! price, which is precisely `pricing::methods::bsde::bsde_picard`'s
//! loop unrolled across the farm.

use crate::config::{run_with, FarmConfig};
use crate::portfolio::{save_portfolio, JobClass, PortfolioJob};
use crate::robin_hood::{FarmError, FarmReport, JobOutcome};
use pricing::{MethodSpec, PremiaProblem};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A classed job list with optional staged rounds and cross-round links.
#[derive(Debug, Clone)]
pub struct Workload {
    jobs: Vec<PortfolioJob>,
    /// `Some(r)`: `r[job]` is the job's round; `None`: flat batch.
    rounds: Option<Vec<usize>>,
    /// `preds[job] = Some(p)`: job consumes job `p`'s price as its
    /// starting iterate (`p` must sit in an earlier round).
    preds: Vec<Option<usize>>,
}

impl Workload {
    /// A flat batch of independent jobs — the PR 1–9 shape.
    pub fn batch(jobs: Vec<PortfolioJob>) -> Workload {
        let preds = vec![None; jobs.len()];
        Workload {
            jobs,
            rounds: None,
            preds,
        }
    }

    /// A Labart–Lelong Picard iteration as a staged workload: the
    /// problem's `picard_rounds` sweeps become that many single-job
    /// rounds, each running **one** sweep, each round `r > 0` consuming
    /// round `r − 1`'s price as its `y_prev`. The problem's method must
    /// be [`MethodSpec::Bsde`].
    pub fn bsde_picard(problem: PremiaProblem) -> Result<Workload, FarmError> {
        let MethodSpec::Bsde {
            paths,
            time_steps,
            rate_spread,
            picard_rounds,
            y_prev,
            seed,
        } = problem.method
        else {
            return Err(FarmError::Config(exec::ConfigIssues::one(
                "workload",
                format!(
                    "bsde_picard needs a MC_BSDE_LabartLelong method, got {}",
                    problem.method.name()
                ),
            )));
        };
        if picard_rounds < 1 {
            return Err(FarmError::Config(exec::ConfigIssues::one(
                "workload",
                "bsde_picard needs picard_rounds >= 1",
            )));
        }
        let jobs: Vec<PortfolioJob> = (0..picard_rounds)
            .map(|r| {
                let mut p = problem.clone();
                p.method = MethodSpec::Bsde {
                    paths,
                    time_steps,
                    rate_spread,
                    picard_rounds: 1,
                    // Round 0 starts from the declared iterate; later
                    // rounds are patched from the previous round's answer
                    // at dispatch time.
                    y_prev: if r == 0 { y_prev } else { 0.0 },
                    seed,
                };
                PortfolioJob {
                    id: r,
                    class: JobClass::BsdePicardMc,
                    problem: p,
                }
            })
            .collect();
        let preds = (0..picard_rounds)
            .map(|r| r.checked_sub(1))
            .collect();
        Ok(Workload {
            jobs,
            rounds: Some((0..picard_rounds).collect()),
            preds,
        })
    }

    /// The classed jobs, in scheduler order.
    pub fn jobs(&self) -> &[PortfolioJob] {
        &self.jobs
    }

    /// The round of each job, when staged.
    pub fn rounds(&self) -> Option<&[usize]> {
        self.rounds.as_deref()
    }

    /// Whether the workload declares staged rounds.
    pub fn is_staged(&self) -> bool {
        self.rounds.is_some()
    }

    /// Number of distinct rounds (1 for a flat batch).
    pub fn round_count(&self) -> usize {
        match &self.rounds {
            None => 1,
            Some(r) => r.iter().map(|&x| x + 1).max().unwrap_or(0),
        }
    }

    /// Job count per class, in [`JobClass::ALL`] order (absent classes
    /// omitted) — the mixed-request accounting `serve` and the benches
    /// report.
    pub fn class_mix(&self) -> BTreeMap<&'static str, usize> {
        let mut mix = BTreeMap::new();
        for j in &self.jobs {
            *mix.entry(class_name(j.class)).or_insert(0) += 1;
        }
        mix
    }
}

/// Class index of each job in [`JobClass::ALL`] order — the `class_of`
/// table [`obs::Breakdown::from_events_by_class`] consumes, so a
/// recorder-instrumented mixed run buckets compute seconds by each job's
/// *real* class rather than a `job % k` heuristic.
pub fn class_indices(jobs: &[PortfolioJob]) -> Vec<u64> {
    jobs.iter()
        .map(|j| {
            JobClass::ALL
                .iter()
                .position(|&c| c == j.class)
                .expect("every JobClass appears in ALL") as u64
        })
        .collect()
}

/// Per-class compute rollup of a recorded run: class name →
/// (compute-event count, compute seconds). Classes with no compute
/// events are omitted.
pub fn per_class_compute(
    events: &[obs::Event],
    jobs: &[PortfolioJob],
) -> BTreeMap<&'static str, (u64, f64)> {
    let b = obs::Breakdown::from_events_by_class(events, &class_indices(jobs));
    b.by_class
        .iter()
        .map(|(&ci, &v)| (class_name(JobClass::ALL[ci as usize]), v))
        .collect()
}

/// Stable display name of a class (the per-class breakdown key).
pub fn class_name(class: JobClass) -> &'static str {
    match class {
        JobClass::VanillaClosedForm => "vanilla_cf",
        JobClass::BarrierPde => "barrier_pde",
        JobClass::BasketMc => "basket_mc",
        JobClass::LocalVolMc => "localvol_mc",
        JobClass::AmericanPde => "american_pde",
        JobClass::AmericanBasketLsm => "american_lsm",
        JobClass::BermudanMaxLsm => "bermudan_max_lsm",
        JobClass::BsdePicardMc => "bsde_picard_mc",
        JobClass::XvaCvaMc => "xva_cva_mc",
    }
}

/// The master-side cross-round data flow of a staged workload: for each
/// job, the predecessor whose price becomes this job's starting iterate,
/// plus the base problems to rewrite. Applied by the plain driver just
/// before a dispatch send.
#[derive(Debug, Clone)]
pub(crate) struct StagedPatch {
    pred: Vec<Option<usize>>,
    problems: Vec<PremiaProblem>,
}

impl StagedPatch {
    /// Rewrite `files[job]` from the answers gathered so far, when the
    /// job declares a predecessor. The round barrier guarantees the
    /// predecessor answered before this dispatch; a miss is a scheduler
    /// bug surfaced loudly.
    pub(crate) fn apply(
        &self,
        job: usize,
        outcomes: &[JobOutcome],
        files: &[PathBuf],
    ) -> Result<(), FarmError> {
        let Some(pred) = self.pred.get(job).copied().flatten() else {
            return Ok(());
        };
        let price = outcomes
            .iter()
            .find(|o| o.job == pred)
            .map(|o| o.price)
            .ok_or_else(|| {
                FarmError::Protocol(format!(
                    "staged job {job} dispatched before predecessor {pred} answered"
                ))
            })?;
        let mut problem = self.problems[job].clone();
        match &mut problem.method {
            MethodSpec::Bsde { y_prev, .. } => *y_prev = price,
            other => {
                return Err(FarmError::Protocol(format!(
                    "job {job} declares a round predecessor but method {} takes no iterate",
                    other.name()
                )))
            }
        }
        xdrser::save(&files[job], &problem.to_value())
            .map_err(|e| FarmError::Io(format!("staged patch of job {job} failed: {e}")))?;
        Ok(())
    }
}

/// Save a workload's jobs into `dir` and run it through the live farm:
/// flat workloads behave exactly like [`crate::run`] over
/// [`save_portfolio`]'s files; staged workloads additionally declare
/// their rounds to the scheduler and patch cross-round answers into the
/// problem files between rounds.
pub fn run_workload(w: &Workload, dir: &Path, cfg: &FarmConfig) -> Result<FarmReport, FarmError> {
    let files = save_portfolio(w.jobs(), dir)
        .map_err(|e| FarmError::Io(format!("saving workload: {e}")))?;
    let mut cfg = cfg.clone();
    let patch = match &w.rounds {
        Some(rounds) => {
            cfg = cfg.rounds(rounds.clone());
            Some(StagedPatch {
                pred: w.preds.clone(),
                problems: w.jobs.iter().map(|j| j.problem.clone()).collect(),
            })
        }
        None => None,
    };
    run_with(&files, &cfg, patch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::{mixed_portfolio, PortfolioScale};
    use crate::strategy::Transmission;
    use pricing::models::BlackScholes;
    use pricing::{ModelSpec, OptionSpec};

    fn bsde_problem(picard_rounds: usize) -> PremiaProblem {
        PremiaProblem::new(
            ModelSpec::BlackScholes(BlackScholes::new(100.0, 0.2, 0.05, 0.0)),
            OptionSpec::Call {
                strike: 100.0,
                maturity: 1.0,
            },
            MethodSpec::Bsde {
                paths: 2_000,
                time_steps: 10,
                rate_spread: 0.05,
                picard_rounds,
                y_prev: 0.0,
                seed: 42,
            },
        )
    }

    #[test]
    fn bsde_picard_builds_one_job_per_round() {
        let w = Workload::bsde_picard(bsde_problem(4)).unwrap();
        assert_eq!(w.jobs().len(), 4);
        assert_eq!(w.rounds(), Some(&[0, 1, 2, 3][..]));
        assert_eq!(w.round_count(), 4);
        assert!(w.is_staged());
        for (r, j) in w.jobs().iter().enumerate() {
            assert_eq!(j.class, JobClass::BsdePicardMc);
            let MethodSpec::Bsde { picard_rounds, .. } = j.problem.method else {
                panic!("not a BSDE job");
            };
            assert_eq!(picard_rounds, 1, "round {r} runs exactly one sweep");
        }
        assert_eq!(w.preds, vec![None, Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn bsde_picard_rejects_other_methods() {
        let mut p = bsde_problem(2);
        p.method = MethodSpec::ClosedForm;
        assert!(matches!(
            Workload::bsde_picard(p),
            Err(FarmError::Config(_))
        ));
    }

    #[test]
    fn batch_workload_is_flat() {
        let w = Workload::batch(mixed_portfolio(PortfolioScale::Quick, 1));
        assert!(!w.is_staged());
        assert_eq!(w.round_count(), 1);
        let mix = w.class_mix();
        assert_eq!(mix["vanilla_cf"], 6);
        assert_eq!(mix["bsde_picard_mc"], 1);
        assert_eq!(mix["bermudan_max_lsm"], 1);
    }

    #[test]
    fn staged_bsde_farm_run_matches_in_process_picard_bit_for_bit() {
        use pricing::methods::bsde::{bsde_picard_iterates, BsdeConfig};
        use pricing::options::Vanilla;

        let rounds = 3;
        let w = Workload::bsde_picard(bsde_problem(rounds)).unwrap();
        let dir = std::env::temp_dir().join("farm_workload_bsde_staged");
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_workload(
            &w,
            &dir,
            &FarmConfig::new(2, Transmission::SerializedLoad).record_trace(true),
        )
        .unwrap();
        assert_eq!(report.completed(), rounds);

        // The in-process Picard loop, sequential — the farm's staged
        // rounds must reproduce every iterate exactly.
        let cfg = BsdeConfig {
            paths: 2_000,
            time_steps: 10,
            rate_spread: 0.05,
            picard_rounds: rounds,
            y_prev: 0.0,
            seed: 42,
        };
        let m = BlackScholes::new(100.0, 0.2, 0.05, 0.0);
        let iterates = bsde_picard_iterates(&m, &Vanilla::european_call(100.0, 1.0), &cfg, None);
        let by_job = report.by_job();
        for (r, it) in iterates.iter().enumerate() {
            let (job, got, _) = by_job[r];
            assert_eq!(job, r);
            assert_eq!(
                got.to_bits(),
                it.price.to_bits(),
                "round {r}: farm {got} vs in-process {}",
                it.price
            );
        }
        // The decision trace exists and shows the round-major dispatch
        // order: one job in flight per round.
        let trace = report.trace.as_ref().expect("trace recorded").render();
        assert!(trace.contains("dispatch(0->1)"), "{trace}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_workload_matches_plain_run() {
        let jobs = mixed_portfolio(PortfolioScale::Quick, 1);
        let dir = std::env::temp_dir().join("farm_workload_flat");
        let _ = std::fs::remove_dir_all(&dir);
        let w = Workload::batch(jobs.clone());
        let via_workload = run_workload(
            &w,
            &dir,
            &FarmConfig::new(2, Transmission::SerializedLoad),
        )
        .unwrap();
        let files = save_portfolio(&jobs, &dir).unwrap();
        let plain = crate::config::run(&files, &FarmConfig::new(2, Transmission::SerializedLoad))
            .unwrap();
        let key = |r: &FarmReport| {
            let mut v: Vec<(usize, u64)> = r
                .outcomes
                .iter()
                .map(|o| (o.job, o.price.to_bits()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&via_workload), key(&plain));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorded_mixed_run_reports_per_class_compute() {
        use obs::Recorder;
        use std::sync::Arc;

        let jobs = mixed_portfolio(PortfolioScale::Quick, 1);
        let dir = std::env::temp_dir().join("farm_workload_classed_breakdown");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = Arc::new(Recorder::new(3));
        let w = Workload::batch(jobs.clone());
        let report = run_workload(
            &w,
            &dir,
            &FarmConfig::new(2, Transmission::SerializedLoad).recorder(rec.clone()),
        )
        .unwrap();
        assert_eq!(report.completed(), jobs.len());
        let by_class = per_class_compute(&rec.events(), &jobs);
        // Every class present in the mix shows up with its compute time.
        for (name, count) in w.class_mix() {
            let &(events, secs) = by_class
                .get(name)
                .unwrap_or_else(|| panic!("class {name} missing from breakdown"));
            assert_eq!(events as usize, count, "{name}");
            assert!(secs > 0.0, "{name} has zero compute seconds");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lpt_on_heavy_tailed_mix_beats_fifo_in_simulation() {
        // The per-class cost model feeds LPT; on the mixed portfolio's
        // heavy tail the predicted makespan (greedy list scheduling over
        // predicted grains) must strictly beat FIFO's. The live-farm
        // wall-clock version of this claim lives in the workload_smoke
        // bench; this is the deterministic model-level check.
        use crate::calibrate::paper_costs;
        let jobs = mixed_portfolio(PortfolioScale::Quick, 4);
        let model = paper_costs();
        let costs = model.lpt_costs(&jobs);
        let cpus = 4;
        let makespan = |order: &[usize]| -> f64 {
            let mut load = vec![0.0f64; cpus];
            for &j in order {
                let min = (0..cpus)
                    .min_by(|&a, &b| load[a].partial_cmp(&load[b]).unwrap())
                    .unwrap();
                load[min] += costs[j];
            }
            load.iter().fold(0.0f64, |a, &b| a.max(b))
        };
        let fifo: Vec<usize> = (0..jobs.len()).collect();
        let mut lpt = fifo.clone();
        lpt.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).unwrap());
        assert!(
            makespan(&lpt) < makespan(&fifo),
            "LPT {} !< FIFO {}",
            makespan(&lpt),
            makespan(&fifo)
        );
    }
}
