//! The paper's contribution layer: parallel portfolio valuation.
//!
//! This crate assembles the substrates (`pricing`, `xdrser`, `minimpi`)
//! into the system §4 benchmarks:
//!
//! * [`portfolio`] — generators for the three workloads: the §4.1
//!   non-regression suite, the §4.2 toy portfolio (10 000 closed-form
//!   vanillas), and the §4.3 realistic portfolio (7 931 heterogeneous
//!   claims). A portfolio is, as in the paper, "a collection of files,
//!   each file describing a precise pricing problem" (XDR-encoded).
//! * [`strategy`] — the three transmission strategies compared in
//!   Tables II/III: **full load**, **NFS**, **serialized load**.
//! * [`robin_hood`] — the master/slave "Robbin Hood" load balancer of
//!   Figs. 4–5, running live over `minimpi` threads.
//! * [`batching`] — the §5 "gather several pricing problems and send them
//!   all together" improvement.
//! * [`hierarchy`] — the §5 sub-master improvement ("divide the nodes
//!   into sub-groups, each group having its own master").
//! * [`shard`] — peer masters without a global root: each owns a
//!   portfolio shard and a private slave farm (threads or real child
//!   processes, via the pluggable `transport` backends), with
//!   inter-shard work-stealing when a pool drains early.
//! * [`supervisor`] — the fault-tolerant Robin-Hood master: per-job
//!   deadlines, bounded retries with exponential backoff, dead-slave
//!   detection and graceful degradation, exercised against
//!   `minimpi`'s deterministic fault injection.
//! * [`calibrate`] — single-problem cost measurements feeding the
//!   `clustersim` cost model.
//! * [`risk`] — the §1 risk-evaluation scenario: bump-and-revalue
//!   parameter sweeps (delta/gamma/vega/rho per claim) that multiply the
//!   portfolio into the paper's "around 10⁶ atomic computations".

//! * [`wire`] — the typed wire codec every master/slave pair shares:
//!   job requests, batch items, and priced/failed answers, with total
//!   decoding ([`FarmError::Protocol`] instead of silent drops).
//! * [`config`] — the unified entry point: build a [`FarmConfig`]
//!   (strategy, batching, supervision, fault plan, [`obs::Recorder`],
//!   problem store / cache / wire-compression / prefetch) and call
//!   [`run`]. The historical per-variant free functions are gone; the
//!   other way in is a long-lived `serve::Session` over the same
//!   scheduler.
//!
//! Since the `store` crate landed, every byte of problem data reaches the
//! farm through a [`store::ProblemStore`] — see `docs/STORE.md`.
//!
//! Since the `sched` crate landed, every master loop above is a thin
//! *driver* of the same pure scheduler state machine ([`sched::Scheduler`])
//! that also powers the cluster simulator — see `docs/SCHEDULER.md`.

#![warn(missing_docs)]
pub mod batching;
pub mod calibrate;
pub mod config;
mod driver;
pub mod hierarchy;
mod instrument;
pub mod portfolio;
pub mod risk;
pub mod robin_hood;
pub mod shard;
pub mod strategy;
pub mod supervisor;
pub mod wire;
pub mod workload;

pub use calibrate::CostModel;
pub use config::{run, FarmConfig};
pub use portfolio::{
    mixed_portfolio, realistic_portfolio, regression_portfolio, representative_problem,
    toy_portfolio, JobClass, PortfolioJob, PortfolioScale,
};
pub use robin_hood::{FarmError, FarmReport, JobOutcome};
pub use shard::{run_sharded, ShardConfig, ShardReport, StealEvent, TransportKind};
pub use sched::{DispatchPolicy, Trace};
pub use strategy::{Transmission, WirePolicy};
pub use supervisor::SupervisorConfig;
pub use workload::{class_indices, class_name, per_class_compute, run_workload, Workload};
