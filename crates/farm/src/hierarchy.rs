//! Hierarchical (sub-master) farm — the second §5 improvement: "divide
//! the nodes into sub-groups, each group having its own master. Then, each
//! sub-master could apply a naive load balancing but since it has fewer
//! slave processes to monitor the speedups would be better."
//!
//! Topology: the global master (rank 0) splits the file list into
//! contiguous chunks, one per sub-master; each sub-master runs a private
//! Robin-Hood loop over its own slaves and reports its collected results
//! back to the global master when its chunk is drained.

use crate::config::RunCtx;
use crate::driver::{self, JobMap, RecvStyle};
use crate::instrument;
use crate::robin_hood::{FarmError, FarmReport, JobOutcome};
use crate::strategy::{prepare_payload_recorded, recover_problem_recorded, Transmission};
use crate::wire::{Answer, JobMsg};
use minimpi::{Comm, MpiBuf, World};
use nspval::{Hash, List, Value};
use obs::Recorder;
use sched::SchedConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const TAG: i32 = 11;

/// Rank layout for `groups` sub-masters with `slaves_per_group` slaves
/// each: rank 0 = global master; ranks `1 + g*(slaves_per_group+1)` are
/// sub-masters; the following `slaves_per_group` ranks are their slaves.
#[derive(Debug, Clone, Copy)]
struct Topology {
    groups: usize,
    slaves_per_group: usize,
}

impl Topology {
    fn world_size(&self) -> usize {
        1 + self.groups * (self.slaves_per_group + 1)
    }

    fn sub_master_rank(&self, g: usize) -> usize {
        1 + g * (self.slaves_per_group + 1)
    }

    /// Which group a rank belongs to, and whether it is the sub-master.
    fn classify(&self, rank: usize) -> (usize, bool) {
        debug_assert!(rank >= 1);
        let g = (rank - 1) / (self.slaves_per_group + 1);
        let is_sub_master = (rank - 1).is_multiple_of(self.slaves_per_group + 1);
        (g, is_sub_master)
    }
}

/// Run the hierarchical farm: `groups` sub-masters, each with
/// `slaves_per_group` compute slaves.
pub fn run_hierarchical_farm(
    files: &[PathBuf],
    groups: usize,
    slaves_per_group: usize,
    strategy: Transmission,
) -> Result<FarmReport, FarmError> {
    run_hierarchical_farm_recorded(files, groups, slaves_per_group, strategy, None)
}

/// [`run_hierarchical_farm`] with phase-level observability: every rank's
/// comm traffic plus sub-master prepare and slave compute phases land in
/// `recorder` (size it with at least the world size:
/// `1 + groups * (slaves_per_group + 1)` ranks).
pub fn run_hierarchical_farm_recorded(
    files: &[PathBuf],
    groups: usize,
    slaves_per_group: usize,
    strategy: Transmission,
    recorder: Option<Arc<Recorder>>,
) -> Result<FarmReport, FarmError> {
    if groups == 0 || slaves_per_group == 0 {
        return Err(FarmError::NoSlaves);
    }
    let topo = Topology {
        groups,
        slaves_per_group,
    };
    if let Some(rec) = &recorder {
        if rec.ranks() < topo.world_size() {
            return Err(FarmError::Config(exec::ConfigIssues::one(
                "recorder",
                format!(
                    "covers {} ranks but the hierarchy needs {}",
                    rec.ranks(),
                    topo.world_size()
                ),
            )));
        }
    }
    let ctx = RunCtx::default_ctx();
    let results = World::run_instrumented(topo.world_size(), None, recorder, |comm| {
        let rank = comm.rank();
        if rank == 0 {
            Some(global_master(&comm, files, topo))
        } else {
            let (g, is_sub) = topo.classify(rank);
            if is_sub {
                sub_master(&comm, &ctx, topo, g, strategy).expect("sub-master failed");
            } else {
                slave(&comm, &ctx, topo.sub_master_rank(g), strategy).expect("slave failed");
            }
            None
        }
    });
    results
        .into_iter()
        .next()
        .flatten()
        .expect("global master produces the report")
}

/// Global master: chunk the portfolio, send one chunk (as a name list) to
/// each sub-master, gather their result lists.
fn global_master(comm: &Comm, files: &[PathBuf], topo: Topology) -> Result<FarmReport, FarmError> {
    let start = Instant::now();
    // Contiguous chunking, remainder spread over the first groups.
    let base = files.len() / topo.groups;
    let rem = files.len() % topo.groups;
    let mut begin = 0;
    for g in 0..topo.groups {
        let len = base + usize::from(g < rem);
        let mut chunk = List::new();
        for (idx, file) in files.iter().enumerate().take(begin + len).skip(begin) {
            let mut h = Hash::new();
            h.set("idx", Value::scalar(idx as f64));
            h.set("name", Value::string(file.to_string_lossy().to_string()));
            chunk.add_last(Value::Hash(h));
        }
        begin += len;
        comm.send_obj(&Value::List(chunk), topo.sub_master_rank(g) as i32, TAG)?;
    }
    // Gather per-group reports.
    let mut outcomes = Vec::with_capacity(files.len());
    let mut per_slave = vec![0usize; comm.size()];
    for _ in 0..topo.groups {
        let (v, _st) = driver::recv_any(comm, TAG)?;
        let list = v
            .as_list()
            .ok_or_else(|| FarmError::Io("bad group report".into()))?;
        for item in list.iter() {
            let h = item
                .as_hash()
                .ok_or_else(|| FarmError::Io("bad group report item".into()))?;
            let job = h.get("job").and_then(|x| x.as_scalar()).unwrap_or(-1.0) as usize;
            let price = h
                .get("price")
                .and_then(|x| x.as_scalar())
                .ok_or_else(|| FarmError::Io("missing price".into()))?;
            let slave =
                h.get("slave")
                    .and_then(|x| x.as_scalar())
                    .ok_or_else(|| FarmError::Io("missing slave".into()))? as usize;
            outcomes.push(JobOutcome {
                job,
                slave,
                price,
                std_error: h.get("std_error").and_then(|x| x.as_scalar()),
            });
            per_slave[slave] += 1;
        }
    }
    Ok(FarmReport {
        outcomes,
        elapsed: start.elapsed(),
        per_slave,
        failed_jobs: Vec::new(),
        retries: 0,
        dead_slaves: Vec::new(),
        strategy: Transmission::SerializedLoad,
        trace: None,
    })
}

/// Sub-master: Robin-Hood over its own slaves for its chunk, then one
/// aggregated report to the global master.
fn sub_master(
    comm: &Comm,
    ctx: &RunCtx,
    topo: Topology,
    group: usize,
    strategy: Transmission,
) -> Result<(), FarmError> {
    let (chunk, _) = comm.recv_obj(0, TAG)?;
    let list = chunk
        .as_list()
        .ok_or_else(|| FarmError::Io("bad chunk".into()))?;
    let jobs: Vec<(usize, PathBuf)> = list
        .iter()
        .map(|item| {
            let h = item.as_hash().expect("chunk item is a hash");
            (
                h.get("idx").and_then(|x| x.as_scalar()).expect("idx") as usize,
                PathBuf::from(h.get("name").and_then(|x| x.as_str()).expect("name")),
            )
        })
        .collect();

    let my_rank = comm.rank();
    // Scheduler slave `s` is MPI rank `my_rank + s`; sched job `j` is
    // global job `base + j` (chunks are contiguous).
    let mut ranks = vec![my_rank];
    ranks.extend((1..=topo.slaves_per_group).map(|k| my_rank + k));
    let base = jobs.first().map(|&(g, _)| g).unwrap_or(0);

    let send_one =
        |comm: &Comm, slave: usize, (idx, path): &(usize, PathBuf)| -> Result<(), FarmError> {
            comm.set_job(Some(*idx));
            let msg = JobMsg {
                idx: *idx,
                name: path.to_string_lossy().to_string(),
            };
            comm.send_obj(&msg.to_value(), slave as i32, TAG)?;
            if let Some(payload) = prepare_payload_recorded(comm, ctx, strategy, path)? {
                let packed = comm.pack(&payload);
                comm.send(packed.bytes(), slave as i32, TAG)?;
            }
            comm.set_job(None);
            Ok(())
        };

    let cfg = SchedConfig::plain(jobs.len(), topo.slaves_per_group);
    let run = driver::drive_plain(
        comm,
        TAG,
        cfg,
        &ranks,
        RecvStyle::Obj,
        JobMap::Offset(base),
        None,
        |job, rank, _batch| send_one(comm, rank, &jobs[job]),
        |rank| Ok(comm.send_obj(&Value::empty_matrix(), rank as i32, TAG)?),
    )?;

    // Aggregate report for the global master, in completion order, with
    // the legacy `{job, price, std_error?, slave}` item layout.
    let mut results = List::new();
    for o in &run.outcomes {
        let mut out = Hash::new();
        out.set("job", Value::scalar(o.job as f64));
        out.set("price", Value::scalar(o.price));
        if let Some(se) = o.std_error {
            out.set("std_error", Value::scalar(se));
        }
        out.set("slave", Value::scalar(o.slave as f64));
        results.add_last(Value::Hash(out));
    }
    comm.send_obj(&Value::List(results), 0, TAG)?;
    let _ = group;
    Ok(())
}

/// Compute slave of one group: identical protocol to the flat farm but
/// pointed at its sub-master.
fn slave(
    comm: &Comm,
    ctx: &RunCtx,
    master_rank: usize,
    strategy: Transmission,
) -> Result<(), FarmError> {
    loop {
        let (msg, _) = comm.recv_obj(master_rank as i32, TAG)?;
        if msg.is_empty_matrix() {
            return Ok(());
        }
        let JobMsg { idx, name } = JobMsg::decode(&msg)
            .ok_or_else(|| FarmError::Protocol(format!("undecodable job request: {msg}")))?;
        comm.set_job(Some(idx));
        let payload = match strategy {
            Transmission::Nfs => None,
            _ => {
                let st = comm.probe(master_rank as i32, TAG)?;
                let mut buf = MpiBuf::with_capacity(st.count());
                comm.recv_into(&mut buf, master_rank as i32, TAG)?;
                Some(comm.unpack(&buf)?)
            }
        };
        let problem = recover_problem_recorded(comm, ctx, strategy, &name, payload.as_ref())?;
        let r = instrument::compute_recorded(comm, ctx, &problem)
            .map_err(|e| FarmError::Io(format!("compute failed: {e}")))?;
        comm.send_obj(&Answer::priced(idx, &r).to_value(), master_rank as i32, TAG)?;
        comm.set_job(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::{save_portfolio, toy_portfolio};

    fn setup(count: usize, tag: &str) -> (Vec<PathBuf>, Vec<f64>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("farm_hier_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = toy_portfolio(count);
        let paths = save_portfolio(&jobs, &dir).unwrap();
        let expected: Vec<f64> = jobs
            .iter()
            .map(|j| j.problem.compute().unwrap().price)
            .collect();
        (paths, expected, dir)
    }

    #[test]
    fn hierarchical_farm_completes_portfolio() {
        let (paths, expected, dir) = setup(30, "complete");
        let report = run_hierarchical_farm(&paths, 2, 3, Transmission::SerializedLoad).unwrap();
        assert_eq!(report.completed(), 30);
        let mut seen = [false; 30];
        for o in &report.outcomes {
            assert!(!seen[o.job]);
            seen[o.job] = true;
            assert!((o.price - expected[o.job]).abs() < 1e-12);
        }
        assert!(seen.iter().all(|&s| s));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn work_spreads_across_groups() {
        let (paths, _, dir) = setup(40, "spread");
        let report = run_hierarchical_farm(&paths, 2, 2, Transmission::Nfs).unwrap();
        // Topology: rank 0 global, 1 sub, 2-3 slaves, 4 sub, 5-6 slaves.
        let g1: usize = report.per_slave[2] + report.per_slave[3];
        let g2: usize = report.per_slave[5] + report.per_slave[6];
        assert_eq!(g1 + g2, 40);
        assert!(g1 > 0 && g2 > 0, "one group idle: {g1}/{g2}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_group_matches_flat_farm_semantics() {
        let (paths, expected, dir) = setup(12, "flat_equiv");
        let report = run_hierarchical_farm(&paths, 1, 2, Transmission::FullLoad).unwrap();
        assert_eq!(report.completed(), 12);
        for o in &report.outcomes {
            assert!((o.price - expected[o.job]).abs() < 1e-12);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_empty_topology() {
        assert!(run_hierarchical_farm(&[], 0, 3, Transmission::Nfs).is_err());
        assert!(run_hierarchical_farm(&[], 3, 0, Transmission::Nfs).is_err());
    }

    #[test]
    fn more_groups_than_jobs() {
        let (paths, _, dir) = setup(3, "sparse");
        let report = run_hierarchical_farm(&paths, 4, 2, Transmission::SerializedLoad).unwrap();
        assert_eq!(report.completed(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
