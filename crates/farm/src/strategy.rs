//! Transmission strategies — how a pricing problem travels from the
//! master to a slave (§3.3/§4, the column families of Tables II and III).

use minimpi::Comm;
use nspval::Value;
use obs::EventKind;
use pricing::PremiaProblem;
use std::fmt;
use std::path::Path;

/// The three ways of shipping a problem, labelled exactly as in the
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transmission {
    /// "full load": the master reads the file, **materialises** the
    /// `PremiaModel` object, serializes it, packs it and sends it; the
    /// slave unpacks and unserializes.
    FullLoad,
    /// "NFS": the master sends only the file *name*; the slave reads the
    /// file itself from the shared filesystem.
    Nfs,
    /// "serialized load": the master `sload`s the file — raw bytes
    /// straight into a `Serial` object, no materialisation — and sends
    /// that. Always the fastest master-side path (§4.2: "it is always
    /// better to use the sload method").
    SerializedLoad,
}

impl Transmission {
    /// Every variant, in canonical order.
    pub const ALL: [Transmission; 3] = [
        Transmission::FullLoad,
        Transmission::Nfs,
        Transmission::SerializedLoad,
    ];

    /// Table column label.
    pub fn label(&self) -> &'static str {
        match self {
            Transmission::FullLoad => "full load",
            Transmission::Nfs => "NFS",
            Transmission::SerializedLoad => "serialized load",
        }
    }
}

impl fmt::Display for Transmission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Master-side preparation of one job message. Returns the payload value
/// to pack and send after the name message — `None` for NFS, where the
/// name alone suffices.
pub fn prepare_payload(
    strategy: Transmission,
    path: &Path,
) -> Result<Option<Value>, xdrser::XdrError> {
    match strategy {
        Transmission::FullLoad => {
            // load → materialise → re-serialize (the deliberately
            // wasteful baseline of §4.2: "the object created by the
            // master would actually be useless...").
            let value = xdrser::load(path)?;
            let problem = PremiaProblem::from_value(&value)
                .map_err(|e| xdrser::XdrError::Corrupt(e.to_string()))?;
            let serial = xdrser::serialize(&problem.to_value());
            Ok(Some(Value::Serial(serial)))
        }
        Transmission::Nfs => Ok(None),
        Transmission::SerializedLoad => {
            // sload: file bytes → Serial, no materialisation.
            let serial = xdrser::sload(path)?;
            Ok(Some(Value::Serial(serial)))
        }
    }
}

/// [`prepare_payload`] with phase attribution: when `comm` carries a
/// recorder, the preparation is timed as [`EventKind::Serialize`] (full
/// load — the master materialises and re-serializes) or
/// [`EventKind::Sload`] (serialized load). NFS prepares nothing and
/// records nothing. Byte volume is the prepared serial's size.
pub(crate) fn prepare_payload_recorded(
    comm: &Comm,
    strategy: Transmission,
    path: &Path,
) -> Result<Option<Value>, xdrser::XdrError> {
    let Some(rec) = comm.recorder() else {
        return prepare_payload(strategy, path);
    };
    let kind = match strategy {
        Transmission::FullLoad => EventKind::Serialize,
        Transmission::SerializedLoad => EventKind::Sload,
        Transmission::Nfs => return prepare_payload(strategy, path),
    };
    let rec = rec.clone();
    let t0 = rec.now_ns();
    let payload = prepare_payload(strategy, path)?;
    let bytes = payload
        .as_ref()
        .and_then(|v| v.as_serial())
        .map_or(0, |s| s.bytes().len() as u64);
    rec.record_span(comm.rank(), kind, comm.current_job(), t0, bytes);
    Ok(payload)
}

/// [`recover_problem`] with phase attribution: under NFS the slave's
/// shared-filesystem read (the dominant slave-side acquisition cost) is
/// timed as [`EventKind::NfsRead`]. The loaded strategies record nothing
/// here — their slave-side decode is already captured by the
/// `Recv`/`Unpack` comm events.
pub(crate) fn recover_problem_recorded(
    comm: &Comm,
    strategy: Transmission,
    name: &str,
    payload: Option<&Value>,
) -> Result<PremiaProblem, xdrser::XdrError> {
    match (comm.recorder(), strategy) {
        (Some(rec), Transmission::Nfs) => {
            let rec = rec.clone();
            let t0 = rec.now_ns();
            let problem = recover_problem(strategy, name, payload)?;
            let bytes = std::fs::metadata(name).map_or(0, |m| m.len());
            rec.record_span(comm.rank(), EventKind::NfsRead, comm.current_job(), t0, bytes);
            Ok(problem)
        }
        _ => recover_problem(strategy, name, payload),
    }
}

/// Slave-side recovery of the problem from what arrived.
pub fn recover_problem(
    strategy: Transmission,
    name: &str,
    payload: Option<&Value>,
) -> Result<PremiaProblem, xdrser::XdrError> {
    match strategy {
        Transmission::Nfs => {
            // The slave reads the shared filesystem itself.
            let value = xdrser::load(Path::new(name))?;
            PremiaProblem::from_value(&value)
                .map_err(|e| xdrser::XdrError::Corrupt(e.to_string()))
        }
        Transmission::FullLoad | Transmission::SerializedLoad => {
            let v = payload.ok_or_else(|| {
                xdrser::XdrError::Corrupt("missing payload for loaded transmission".into())
            })?;
            let serial = v
                .as_serial()
                .ok_or_else(|| xdrser::XdrError::Corrupt("payload is not a Serial".into()))?;
            let value = xdrser::unserialize(serial)?;
            PremiaProblem::from_value(&value)
                .map_err(|e| xdrser::XdrError::Corrupt(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pricing::PremiaProblem;

    fn save_problem(dir: &str) -> (std::path::PathBuf, PremiaProblem) {
        let dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pb.bin");
        let p = PremiaProblem::create("BlackScholes1dim", "CallEuro", "CF").unwrap();
        xdrser::save(&path, &p.to_value()).unwrap();
        (path, p)
    }

    #[test]
    fn full_load_round_trip() {
        let (path, p) = save_problem("strategy_full_load");
        let payload = prepare_payload(Transmission::FullLoad, &path)
            .unwrap()
            .unwrap();
        let back =
            recover_problem(Transmission::FullLoad, path.to_str().unwrap(), Some(&payload))
                .unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn serialized_load_round_trip_and_matches_file_bytes() {
        let (path, p) = save_problem("strategy_sload");
        let payload = prepare_payload(Transmission::SerializedLoad, &path)
            .unwrap()
            .unwrap();
        // sload payload is the raw file content.
        let serial = payload.as_serial().unwrap();
        assert_eq!(serial.bytes(), std::fs::read(&path).unwrap().as_slice());
        let back = recover_problem(
            Transmission::SerializedLoad,
            path.to_str().unwrap(),
            Some(&payload),
        )
        .unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn nfs_round_trip_needs_no_payload() {
        let (path, p) = save_problem("strategy_nfs");
        assert!(prepare_payload(Transmission::Nfs, &path).unwrap().is_none());
        let back = recover_problem(Transmission::Nfs, path.to_str().unwrap(), None).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn missing_payload_is_error() {
        let (path, _) = save_problem("strategy_missing");
        assert!(recover_problem(Transmission::FullLoad, path.to_str().unwrap(), None).is_err());
    }

    #[test]
    fn labels_match_tables() {
        assert_eq!(Transmission::FullLoad.label(), "full load");
        assert_eq!(Transmission::Nfs.label(), "NFS");
        assert_eq!(Transmission::SerializedLoad.label(), "serialized load");
        assert_eq!(format!("{}", Transmission::Nfs), "NFS");
    }
}
