//! Transmission strategies — how a pricing problem travels from the
//! master to a slave (§3.3/§4, the column families of Tables II and III).
//!
//! Since the store subsystem landed, every byte of problem data flows
//! through a [`store::ProblemStore`]: the master's full-load and
//! serialized-load prepares *and* the NFS slave-side read all call
//! [`ProblemStore::fetch`] instead of touching the filesystem directly.
//! That makes the §4 storage effects first-class: put a
//! [`store::CachingStore`] in the [`crate::FarmConfig`] and warm reads
//! skip disk; turn on the [`WirePolicy`] and loaded payloads travel
//! compressed.

use crate::instrument;
use minimpi::Comm;
use nspval::{Serial, Value};
use obs::EventKind;
use pricing::PremiaProblem;
use std::fmt;
use std::path::Path;
use store::{Fetched, ProblemStore};

/// The three ways of shipping a problem, labelled exactly as in the
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transmission {
    /// "full load": the master reads the file, **materialises** the
    /// `PremiaModel` object, serializes it, packs it and sends it; the
    /// slave unpacks and unserializes.
    FullLoad,
    /// "NFS": the master sends only the file *name*; the slave reads the
    /// file itself from the shared filesystem.
    Nfs,
    /// "serialized load": the master `sload`s the file — raw bytes
    /// straight into a `Serial` object, no materialisation — and sends
    /// that. Always the fastest master-side path (§4.2: "it is always
    /// better to use the sload method").
    SerializedLoad,
}

impl Transmission {
    /// Every variant, in canonical order.
    pub const ALL: [Transmission; 3] = [
        Transmission::FullLoad,
        Transmission::Nfs,
        Transmission::SerializedLoad,
    ];

    /// Table column label.
    pub fn label(&self) -> &'static str {
        match self {
            Transmission::FullLoad => "full load",
            Transmission::Nfs => "NFS",
            Transmission::SerializedLoad => "serialized load",
        }
    }
}

impl fmt::Display for Transmission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How loaded payloads are encoded on the wire.
///
/// §3.2 of the paper introduces compressed serialized buffers and leaves
/// their effect on transmission as future work; this knob turns them on
/// for the FullLoad/SerializedLoad payload messages. The threshold gates
/// out small payloads where the LZSS header + incompressibility would
/// cost more than the wire saves: a payload is sent compressed only when
/// it is at least `threshold` bytes long *and* actually shrank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePolicy {
    /// Compress payloads of at least this many bytes; `None` = never.
    pub compress_threshold: Option<usize>,
}

impl WirePolicy {
    /// Send every payload raw (the paper's measured configuration).
    pub const RAW: WirePolicy = WirePolicy {
        compress_threshold: None,
    };

    /// Compress payloads of at least `threshold` bytes.
    pub fn compressed(threshold: usize) -> Self {
        WirePolicy {
            compress_threshold: Some(threshold),
        }
    }
}

impl Default for WirePolicy {
    fn default() -> Self {
        WirePolicy::RAW
    }
}

/// Apply `wire` to a prepared serial: returns the serial to actually
/// send plus the bytes *saved* (0 when sent raw — below threshold,
/// incompressible, or compression disabled).
pub fn compress_for_wire(serial: Serial, wire: &WirePolicy) -> (Serial, u64) {
    let Some(threshold) = wire.compress_threshold else {
        return (serial, 0);
    };
    if serial.is_compressed() || serial.len() < threshold {
        return (serial, 0);
    }
    match xdrser::compress_serial(&serial) {
        Ok(compressed) if compressed.len() < serial.len() => {
            let saved = (serial.len() - compressed.len()) as u64;
            (compressed, saved)
        }
        _ => (serial, 0),
    }
}

/// Master-side problem acquisition: fetch through the store and produce
/// the serial the strategy ships — `None` for NFS, where the name alone
/// suffices. Returns the store's fetch disposition alongside so callers
/// can account cache behaviour.
fn prepare_serial(
    store: &dyn ProblemStore,
    strategy: Transmission,
    path: &Path,
) -> Result<Option<(Fetched, Serial)>, xdrser::XdrError> {
    match strategy {
        Transmission::FullLoad => {
            // fetch → materialise → re-serialize (the deliberately
            // wasteful baseline of §4.2: "the object created by the
            // master would actually be useless...").
            let fetched = store.fetch(path)?;
            let value = xdrser::unserialize(&fetched.serial)?;
            let problem = PremiaProblem::from_value(&value)
                .map_err(|e| xdrser::XdrError::Corrupt(e.to_string()))?;
            let serial = xdrser::serialize(&problem.to_value());
            Ok(Some((fetched, serial)))
        }
        Transmission::Nfs => Ok(None),
        Transmission::SerializedLoad => {
            // sload semantics: the store hands back the raw file image
            // as an unmaterialised Serial; ship it as-is.
            let fetched = store.fetch(path)?;
            let serial = (*fetched.serial).clone();
            Ok(Some((fetched, serial)))
        }
    }
}

/// Master-side preparation of one job message. Returns the payload value
/// to pack and send after the name message — `None` for NFS.
pub fn prepare_payload(
    store: &dyn ProblemStore,
    strategy: Transmission,
    path: &Path,
    wire: &WirePolicy,
) -> Result<Option<Value>, xdrser::XdrError> {
    let Some((_, serial)) = prepare_serial(store, strategy, path)? else {
        return Ok(None);
    };
    let (serial, _) = compress_for_wire(serial, wire);
    Ok(Some(Value::Serial(serial)))
}

/// Emit the store-cache marks for one fetch (hit/miss disposition and
/// any eviction it forced). No-op for cache-less stores (`cached ==
/// None`) and without a recorder.
fn mark_cache(comm: &Comm, fetched: &Fetched) {
    match fetched.cached {
        Some(true) => instrument::mark(
            comm,
            EventKind::CacheHit,
            comm.current_job(),
            fetched.serial.len() as u64,
        ),
        Some(false) => instrument::mark(
            comm,
            EventKind::CacheMiss,
            comm.current_job(),
            fetched.serial.len() as u64,
        ),
        None => {}
    }
    if fetched.evicted_bytes > 0 {
        instrument::mark(
            comm,
            EventKind::Evict,
            comm.current_job(),
            fetched.evicted_bytes,
        );
    }
}

/// [`prepare_payload`] with phase attribution: the store fetch +
/// materialisation is timed as [`EventKind::Serialize`] (full load) or
/// [`EventKind::Sload`] (serialized load), the store's disposition lands
/// as `CacheHit`/`CacheMiss`/`Evict` marks, and a beneficial wire
/// compression is timed as [`EventKind::Compress`] with `bytes` = bytes
/// saved. NFS prepares nothing and records nothing. Byte volume of the
/// prepare span is the *uncompressed* serial size, so phase totals stay
/// comparable across wire policies.
pub(crate) fn prepare_payload_recorded(
    comm: &Comm,
    ctx: &crate::config::RunCtx,
    strategy: Transmission,
    path: &Path,
) -> Result<Option<Value>, xdrser::XdrError> {
    let Some(rec) = comm.recorder() else {
        return prepare_payload(ctx.store.as_ref(), strategy, path, &ctx.wire);
    };
    let kind = match strategy {
        Transmission::FullLoad => EventKind::Serialize,
        Transmission::SerializedLoad => EventKind::Sload,
        Transmission::Nfs => return Ok(None),
    };
    let rec = rec.clone();
    let t0 = rec.now_ns();
    let prepared = prepare_serial(ctx.store.as_ref(), strategy, path)?;
    let Some((fetched, serial)) = prepared else {
        return Ok(None);
    };
    rec.record_span(
        comm.rank(),
        kind,
        comm.current_job(),
        t0,
        serial.len() as u64,
    );
    mark_cache(comm, &fetched);

    let tc = rec.now_ns();
    let (serial, saved) = compress_for_wire(serial, &ctx.wire);
    if saved > 0 {
        rec.record_span(
            comm.rank(),
            EventKind::Compress,
            comm.current_job(),
            tc,
            saved,
        );
    }
    Ok(Some(Value::Serial(serial)))
}

/// [`recover_problem`] with phase attribution: under NFS the slave's
/// store fetch (the dominant slave-side acquisition cost) is timed as
/// [`EventKind::NfsRead`] with the cache disposition marked alongside;
/// a compressed loaded payload's inflation is timed as
/// [`EventKind::Decompress`]. The uncompressed loaded path records
/// nothing here — its slave-side decode is already captured by the
/// `Recv`/`Unpack` comm events.
pub(crate) fn recover_problem_recorded(
    comm: &Comm,
    ctx: &crate::config::RunCtx,
    strategy: Transmission,
    name: &str,
    payload: Option<&Value>,
) -> Result<PremiaProblem, xdrser::XdrError> {
    let Some(rec) = comm.recorder() else {
        return recover_problem(ctx.store.as_ref(), strategy, name, payload);
    };
    let rec = rec.clone();
    match strategy {
        Transmission::Nfs => {
            let t0 = rec.now_ns();
            let fetched = ctx.store.fetch(Path::new(name))?;
            rec.record_span(
                comm.rank(),
                EventKind::NfsRead,
                comm.current_job(),
                t0,
                fetched.serial.len() as u64,
            );
            mark_cache(comm, &fetched);
            let value = xdrser::unserialize(&fetched.serial)?;
            PremiaProblem::from_value(&value).map_err(|e| xdrser::XdrError::Corrupt(e.to_string()))
        }
        Transmission::FullLoad | Transmission::SerializedLoad => {
            let serial = payload_serial(payload)?;
            if serial.is_compressed() {
                let t0 = rec.now_ns();
                let plain = xdrser::decompress_serial(serial)?;
                rec.record_span(
                    comm.rank(),
                    EventKind::Decompress,
                    comm.current_job(),
                    t0,
                    plain.len() as u64,
                );
                let value = xdrser::unserialize(&plain)?;
                PremiaProblem::from_value(&value)
                    .map_err(|e| xdrser::XdrError::Corrupt(e.to_string()))
            } else {
                decode_problem(serial)
            }
        }
    }
}

fn payload_serial(payload: Option<&Value>) -> Result<&Serial, xdrser::XdrError> {
    let v = payload.ok_or_else(|| {
        xdrser::XdrError::Corrupt("missing payload for loaded transmission".into())
    })?;
    v.as_serial()
        .ok_or_else(|| xdrser::XdrError::Corrupt("payload is not a Serial".into()))
}

fn decode_problem(serial: &Serial) -> Result<PremiaProblem, xdrser::XdrError> {
    // `unserialize` transparently decompresses a compressed serial.
    let value = xdrser::unserialize(serial)?;
    PremiaProblem::from_value(&value).map_err(|e| xdrser::XdrError::Corrupt(e.to_string()))
}

/// Slave-side recovery of the problem from what arrived. All filesystem
/// access (the NFS read) goes through `store`.
pub fn recover_problem(
    store: &dyn ProblemStore,
    strategy: Transmission,
    name: &str,
    payload: Option<&Value>,
) -> Result<PremiaProblem, xdrser::XdrError> {
    match strategy {
        Transmission::Nfs => {
            // The slave reads the shared filesystem itself — through the
            // store, so a warm cache serves repeated reads.
            let fetched = store.fetch(Path::new(name))?;
            let value = xdrser::unserialize(&fetched.serial)?;
            PremiaProblem::from_value(&value).map_err(|e| xdrser::XdrError::Corrupt(e.to_string()))
        }
        Transmission::FullLoad | Transmission::SerializedLoad => {
            decode_problem(payload_serial(payload)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pricing::PremiaProblem;
    use store::{CachingStore, DirStore};

    fn save_problem(dir: &str) -> (std::path::PathBuf, PremiaProblem) {
        let dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pb.bin");
        let p = PremiaProblem::create("BlackScholes1dim", "CallEuro", "CF").unwrap();
        xdrser::save(&path, &p.to_value()).unwrap();
        (path, p)
    }

    #[test]
    fn full_load_round_trip() {
        let (path, p) = save_problem("strategy_full_load");
        let st = DirStore::new();
        let payload = prepare_payload(&st, Transmission::FullLoad, &path, &WirePolicy::RAW)
            .unwrap()
            .unwrap();
        let back = recover_problem(
            &st,
            Transmission::FullLoad,
            path.to_str().unwrap(),
            Some(&payload),
        )
        .unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn serialized_load_round_trip_and_matches_file_bytes() {
        let (path, p) = save_problem("strategy_sload");
        let st = DirStore::new();
        let payload = prepare_payload(&st, Transmission::SerializedLoad, &path, &WirePolicy::RAW)
            .unwrap()
            .unwrap();
        // sload payload is the raw file content.
        let serial = payload.as_serial().unwrap();
        assert_eq!(serial.bytes(), std::fs::read(&path).unwrap().as_slice());
        let back = recover_problem(
            &st,
            Transmission::SerializedLoad,
            path.to_str().unwrap(),
            Some(&payload),
        )
        .unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn nfs_round_trip_needs_no_payload() {
        let (path, p) = save_problem("strategy_nfs");
        let st = DirStore::new();
        assert!(
            prepare_payload(&st, Transmission::Nfs, &path, &WirePolicy::RAW)
                .unwrap()
                .is_none()
        );
        let back = recover_problem(&st, Transmission::Nfs, path.to_str().unwrap(), None).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn missing_payload_is_error() {
        let (path, _) = save_problem("strategy_missing");
        let st = DirStore::new();
        assert!(
            recover_problem(&st, Transmission::FullLoad, path.to_str().unwrap(), None).is_err()
        );
    }

    #[test]
    fn compressed_wire_round_trips_for_both_loaded_strategies() {
        let (path, p) = save_problem("strategy_wire");
        let st = DirStore::new();
        let wire = WirePolicy::compressed(1); // compress everything
        for strategy in [Transmission::FullLoad, Transmission::SerializedLoad] {
            let payload = prepare_payload(&st, strategy, &path, &wire)
                .unwrap()
                .unwrap();
            let back =
                recover_problem(&st, strategy, path.to_str().unwrap(), Some(&payload)).unwrap();
            assert_eq!(back, p, "{strategy}");
        }
    }

    #[test]
    fn wire_threshold_gates_small_payloads() {
        let small = xdrser::serialize(&Value::scalar(1.0));
        let (kept, saved) = compress_for_wire(small.clone(), &WirePolicy::compressed(1 << 20));
        assert!(!kept.is_compressed());
        assert_eq!(saved, 0);
        assert_eq!(kept, small);
        // RAW never compresses regardless of size.
        let big = xdrser::serialize(&Value::string("a".repeat(4096)));
        let (kept, saved) = compress_for_wire(big.clone(), &WirePolicy::RAW);
        assert!(!kept.is_compressed());
        assert_eq!(saved, 0);
        assert_eq!(kept, big);
    }

    #[test]
    fn wire_compression_saves_what_it_claims() {
        let big = xdrser::serialize(&Value::string("ab".repeat(4096)));
        let (sent, saved) = compress_for_wire(big.clone(), &WirePolicy::compressed(64));
        assert!(sent.is_compressed());
        assert!(saved > 0);
        assert_eq!(sent.len() as u64 + saved, big.len() as u64);
        assert_eq!(xdrser::decompress_serial(&sent).unwrap(), big);
    }

    #[test]
    fn warm_store_serves_identical_payloads() {
        let (path, _) = save_problem("strategy_warm");
        let st = CachingStore::over_dir(1 << 20);
        for strategy in Transmission::ALL {
            let cold = prepare_payload(&st, strategy, &path, &WirePolicy::RAW).unwrap();
            let warm = prepare_payload(&st, strategy, &path, &WirePolicy::RAW).unwrap();
            assert_eq!(cold, warm, "{strategy}");
        }
        assert!(st.stats().hits > 0);
    }

    #[test]
    fn labels_match_tables() {
        assert_eq!(Transmission::FullLoad.label(), "full load");
        assert_eq!(Transmission::Nfs.label(), "NFS");
        assert_eq!(Transmission::SerializedLoad.label(), "serialized load");
        assert_eq!(format!("{}", Transmission::Nfs), "NFS");
    }
}
