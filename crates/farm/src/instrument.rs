//! Tiny pub(crate) helpers so farm-level phases record through the same
//! recorder the `Comm` carries — and compile to nothing when it doesn't.

use crate::config::RunCtx;
use exec::StatsSink;
use minimpi::Comm;
use obs::{Event, EventKind};
use pricing::{PremiaProblem, PricingError, PricingResult};
use std::sync::Arc;

/// Start a farm-level span: `Some(now)` only when a recorder is
/// installed, so un-instrumented runs never read the clock.
#[inline]
pub(crate) fn t0(comm: &Comm) -> Option<u64> {
    comm.recorder().map(|r| r.now_ns())
}

/// Close a span opened by [`t0`], attributing it to the comm's current
/// job context. No-op without a recorder.
#[inline]
pub(crate) fn span(comm: &Comm, kind: EventKind, start: Option<u64>, bytes: u64) {
    if let (Some(rec), Some(t0)) = (comm.recorder(), start) {
        rec.record_span(comm.rank(), kind, comm.current_job(), t0, bytes);
    }
}

/// Price one problem under the run's compute policy, recording the
/// `Compute` span (and, for multi-threaded policies, the post-hoc
/// `ComputeChunk`/`Steal` diagnostics) on the calling rank.
///
/// `ctx.exec == None` (the default, `FarmConfig::threads(1)`) is the
/// legacy single-threaded `compute()` — bit-identical to every release
/// since the seed. With a policy, the kernels run chunked via
/// `compute_with`; the obs recorder is single-writer per rank, so the
/// executor's workers never record directly — the chunk timings are
/// drained from a per-call [`StatsSink`] and emitted *after* the
/// parallel region by this (the rank's own) thread. Diagnostic events
/// carry the chunk's measured `dur_ns` but a post-region `start_ns`;
/// breakdowns only consume durations, so the phase sums are exact.
pub(crate) fn compute_recorded(
    comm: &Comm,
    ctx: &RunCtx,
    problem: &PremiaProblem,
) -> Result<PricingResult, PricingError> {
    let start = t0(comm);
    match &ctx.exec {
        None => {
            let r = problem.compute()?;
            span(comm, EventKind::Compute, start, 0);
            Ok(r)
        }
        Some(pol) => {
            let Some(rec) = comm.recorder().cloned() else {
                // Un-instrumented: no sink, no events — just the policy.
                return problem.compute_with(pol);
            };
            let sink = Arc::new(StatsSink::new());
            let pol = pol.clone().with_sink(sink.clone());
            let r = problem.compute_with(&pol)?;
            span(comm, EventKind::Compute, start, 0);
            let stats = sink.take();
            let rank = comm.rank() as u16;
            let job = comm.current_job();
            for ct in &stats.chunks {
                rec.record(Event {
                    kind: EventKind::ComputeChunk,
                    rank,
                    job,
                    start_ns: rec.now_ns(),
                    dur_ns: ct.dur_ns,
                    bytes: ct.items,
                });
            }
            if stats.steals > 0 {
                rec.record(Event {
                    kind: EventKind::Steal,
                    rank,
                    job,
                    start_ns: rec.now_ns(),
                    dur_ns: 0,
                    bytes: stats.steals,
                });
            }
            if pol.lane_width() > 1 {
                // Lane self-check mark: breakdowns read the lane width
                // back out of `bytes` (`Breakdown::lane_width`).
                rec.record(Event {
                    kind: EventKind::LaneBatch,
                    rank,
                    job,
                    start_ns: rec.now_ns(),
                    dur_ns: 0,
                    bytes: pol.lane_width() as u64,
                });
            }
            Ok(r)
        }
    }
}

/// Record an instantaneous supervision event (Retry / Deadline /
/// SlaveDeath) with an explicit job id. No-op without a recorder.
#[inline]
pub(crate) fn mark(comm: &Comm, kind: EventKind, job: i64, bytes: u64) {
    if let Some(rec) = comm.recorder() {
        rec.record(Event {
            kind,
            rank: comm.rank() as u16,
            job,
            start_ns: rec.now_ns(),
            dur_ns: 0,
            bytes,
        });
    }
}
