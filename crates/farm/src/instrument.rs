//! Tiny pub(crate) helpers so farm-level phases record through the same
//! recorder the `Comm` carries — and compile to nothing when it doesn't.

use minimpi::Comm;
use obs::{Event, EventKind};

/// Start a farm-level span: `Some(now)` only when a recorder is
/// installed, so un-instrumented runs never read the clock.
#[inline]
pub(crate) fn t0(comm: &Comm) -> Option<u64> {
    comm.recorder().map(|r| r.now_ns())
}

/// Close a span opened by [`t0`], attributing it to the comm's current
/// job context. No-op without a recorder.
#[inline]
pub(crate) fn span(comm: &Comm, kind: EventKind, start: Option<u64>, bytes: u64) {
    if let (Some(rec), Some(t0)) = (comm.recorder(), start) {
        rec.record_span(comm.rank(), kind, comm.current_job(), t0, bytes);
    }
}

/// Record an instantaneous supervision event (Retry / Deadline /
/// SlaveDeath) with an explicit job id. No-op without a recorder.
#[inline]
pub(crate) fn mark(comm: &Comm, kind: EventKind, job: i64, bytes: u64) {
    if let Some(rec) = comm.recorder() {
        rec.record(Event {
            kind,
            rank: comm.rank() as u16,
            job,
            start_ns: rec.now_ns(),
            dur_ns: 0,
            bytes,
        });
    }
}
