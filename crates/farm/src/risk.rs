//! Risk evaluation — the §1 scenario that motivates the whole benchmark.
//!
//! "A model is specified by several parameters: volatility, interest
//! rate, … and, in the context of risk evaluation, it is necessary to
//! price the contingent claims for various values of these model
//! parameters to measure their sensibilities to the parameters. As a
//! consequence, a huge number of atomic computations (around 10⁶) is
//! necessary to evaluate the risk of the whole portfolio."
//!
//! [`risk_sweep`] expands every claim of a portfolio into bumped variants
//! (spot ±, volatility ±, rate ±) — seven atomic computations per claim,
//! so the full §4.3 portfolio becomes ≈ 55 500 jobs, and finer bump grids
//! reach the paper's 10⁶ — and [`aggregate_risk`] turns the farmed prices
//! into finite-difference sensitivities (delta, gamma, vega, rho) per
//! claim.

use crate::portfolio::PortfolioJob;
use crate::robin_hood::JobOutcome;
use pricing::{ModelSpec, PremiaProblem};

/// Bump sizes for the sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BumpSpec {
    /// Relative spot bump (e.g. 0.01 = ±1 %).
    pub spot_rel: f64,
    /// Absolute volatility bump (e.g. 0.01 = ±1 vol point).
    pub vol_abs: f64,
    /// Absolute rate bump (e.g. 0.0010 = ±10 bp).
    pub rate_abs: f64,
}

impl Default for BumpSpec {
    fn default() -> Self {
        BumpSpec {
            spot_rel: 0.01,
            vol_abs: 0.01,
            rate_abs: 0.001,
        }
    }
}

/// Which bumped variant of a claim a risk job prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Unbumped parameters.
    Base,
    /// Spot bumped up.
    SpotUp,
    /// Spot bumped down.
    SpotDown,
    /// Volatility bumped up.
    VolUp,
    /// Volatility bumped down.
    VolDown,
    /// Rate bumped up.
    RateUp,
    /// Rate bumped down.
    RateDown,
}

impl Scenario {
    /// Every variant, in canonical order.
    pub const ALL: [Scenario; 7] = [
        Scenario::Base,
        Scenario::SpotUp,
        Scenario::SpotDown,
        Scenario::VolUp,
        Scenario::VolDown,
        Scenario::RateUp,
        Scenario::RateDown,
    ];
}

/// One atomic risk computation: claim index × scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskJob {
    /// Index of the claim in the source portfolio.
    pub claim: usize,
    /// Which bump this job prices.
    pub scenario: Scenario,
    /// The fully specified pricing problem.
    pub problem: PremiaProblem,
}

/// Apply a scenario's parameter bump to a model.
///
/// Volatility bumps act on each model's own volatility parameter: σ for
/// (multi-)Black–Scholes, σ₀ for local vol, and `√v₀`/`√θ` for Heston
/// (bumping the vol level rather than the variance keeps the bump
/// comparable across models).
pub fn bump_model(model: &ModelSpec, scenario: Scenario, bump: &BumpSpec) -> ModelSpec {
    use Scenario::*;
    let mut m = model.clone();
    match (&mut m, scenario) {
        (_, Base) => {}
        (ModelSpec::BlackScholes(b), SpotUp) => b.spot *= 1.0 + bump.spot_rel,
        (ModelSpec::BlackScholes(b), SpotDown) => b.spot *= 1.0 - bump.spot_rel,
        (ModelSpec::BlackScholes(b), VolUp) => b.sigma += bump.vol_abs,
        (ModelSpec::BlackScholes(b), VolDown) => b.sigma = (b.sigma - bump.vol_abs).max(1e-4),
        (ModelSpec::BlackScholes(b), RateUp) => b.rate += bump.rate_abs,
        (ModelSpec::BlackScholes(b), RateDown) => b.rate -= bump.rate_abs,

        (ModelSpec::MultiBlackScholes(b), SpotUp) => b.spot *= 1.0 + bump.spot_rel,
        (ModelSpec::MultiBlackScholes(b), SpotDown) => b.spot *= 1.0 - bump.spot_rel,
        (ModelSpec::MultiBlackScholes(b), VolUp) => b.sigma += bump.vol_abs,
        (ModelSpec::MultiBlackScholes(b), VolDown) => b.sigma = (b.sigma - bump.vol_abs).max(1e-4),
        (ModelSpec::MultiBlackScholes(b), RateUp) => b.rate += bump.rate_abs,
        (ModelSpec::MultiBlackScholes(b), RateDown) => b.rate -= bump.rate_abs,

        (ModelSpec::LocalVol(b), SpotUp) => b.spot *= 1.0 + bump.spot_rel,
        (ModelSpec::LocalVol(b), SpotDown) => b.spot *= 1.0 - bump.spot_rel,
        (ModelSpec::LocalVol(b), VolUp) => b.sigma0 += bump.vol_abs,
        (ModelSpec::LocalVol(b), VolDown) => b.sigma0 = (b.sigma0 - bump.vol_abs).max(1e-4),
        (ModelSpec::LocalVol(b), RateUp) => b.rate += bump.rate_abs,
        (ModelSpec::LocalVol(b), RateDown) => b.rate -= bump.rate_abs,

        (ModelSpec::Heston(b), SpotUp) => b.spot *= 1.0 + bump.spot_rel,
        (ModelSpec::Heston(b), SpotDown) => b.spot *= 1.0 - bump.spot_rel,
        (ModelSpec::Heston(b), VolUp) => {
            let vol = b.v0.sqrt() + bump.vol_abs;
            b.v0 = vol * vol;
            let lvol = b.theta.sqrt() + bump.vol_abs;
            b.theta = lvol * lvol;
        }
        (ModelSpec::Heston(b), VolDown) => {
            let vol = (b.v0.sqrt() - bump.vol_abs).max(1e-3);
            b.v0 = vol * vol;
            let lvol = (b.theta.sqrt() - bump.vol_abs).max(1e-3);
            b.theta = lvol * lvol;
        }
        (ModelSpec::Heston(b), RateUp) => b.rate += bump.rate_abs,
        (ModelSpec::Heston(b), RateDown) => b.rate -= bump.rate_abs,

        // Rates products have no spot; the spot scenarios are identity and
        // the vol/rate bumps act on σ and r₀.
        (ModelSpec::Vasicek(_), SpotUp) | (ModelSpec::Vasicek(_), SpotDown) => {}
        (ModelSpec::Vasicek(b), VolUp) => b.sigma += bump.vol_abs * 0.1,
        (ModelSpec::Vasicek(b), VolDown) => b.sigma = (b.sigma - bump.vol_abs * 0.1).max(1e-5),
        (ModelSpec::Vasicek(b), RateUp) => b.r0 += bump.rate_abs,
        (ModelSpec::Vasicek(b), RateDown) => b.r0 -= bump.rate_abs,
    }
    m
}

/// Expand a portfolio into the full scenario sweep: 7 atomic computations
/// per claim (`ALL` scenarios). Job ordering is claim-major so results
/// can be re-associated by integer division.
pub fn risk_sweep(jobs: &[PortfolioJob], bump: &BumpSpec) -> Vec<RiskJob> {
    let mut out = Vec::with_capacity(jobs.len() * Scenario::ALL.len());
    for job in jobs {
        for &scenario in &Scenario::ALL {
            out.push(RiskJob {
                claim: job.id,
                scenario,
                problem: PremiaProblem {
                    asset: job.problem.asset.clone(),
                    model: bump_model(&job.problem.model, scenario, bump),
                    option: job.problem.option.clone(),
                    method: job.problem.method.clone(),
                },
            });
        }
    }
    out
}

/// The per-claim risk report: price and bump-and-revalue sensitivities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimRisk {
    /// Index of the claim in the source portfolio.
    pub claim: usize,
    /// Price estimate.
    pub price: f64,
    /// dV/dS (central difference of the spot bumps).
    pub delta: f64,
    /// d²V/dS² (second difference).
    pub gamma: f64,
    /// dV/dσ per unit vol (central difference of the vol bumps).
    pub vega: f64,
    /// dV/dr per unit rate.
    pub rho: f64,
}

/// Assemble per-claim sensitivities from the priced sweep.
///
/// `prices[k]` must be the price of `sweep[k]` (`sweep` as produced by
/// [`risk_sweep`]); `spots[claim]` is the claim's base spot (needed to
/// convert the relative spot bump into dS).
pub fn aggregate_risk(
    sweep: &[RiskJob],
    prices: &[f64],
    bump: &BumpSpec,
    spot_of: &dyn Fn(usize) -> f64,
) -> Vec<ClaimRisk> {
    assert_eq!(sweep.len(), prices.len());
    assert!(sweep.len().is_multiple_of(Scenario::ALL.len()));
    let n = Scenario::ALL.len();
    let mut out = Vec::with_capacity(sweep.len() / n);
    for (chunk, pchunk) in sweep.chunks(n).zip(prices.chunks(n)) {
        let claim = chunk[0].claim;
        let find = |s: Scenario| -> f64 {
            let k = chunk
                .iter()
                .position(|j| j.scenario == s)
                .expect("complete scenario set");
            pchunk[k]
        };
        let base = find(Scenario::Base);
        let s0 = spot_of(claim);
        let ds = s0 * bump.spot_rel;
        let up = find(Scenario::SpotUp);
        let dn = find(Scenario::SpotDown);
        out.push(ClaimRisk {
            claim,
            price: base,
            delta: (up - dn) / (2.0 * ds),
            gamma: (up - 2.0 * base + dn) / (ds * ds),
            vega: (find(Scenario::VolUp) - find(Scenario::VolDown)) / (2.0 * bump.vol_abs),
            rho: (find(Scenario::RateUp) - find(Scenario::RateDown)) / (2.0 * bump.rate_abs),
        });
    }
    out
}

/// Price a risk sweep serially (the farmed version goes through
/// `save_portfolio` + [`crate::run`] like any portfolio; this is the
/// convenience path for tests and small books).
pub fn price_sweep_serial(sweep: &[RiskJob]) -> Result<Vec<f64>, pricing::PricingError> {
    sweep
        .iter()
        .map(|j| Ok(j.problem.compute()?.price))
        .collect()
}

/// Re-associate farmed outcomes with sweep order.
pub fn outcomes_to_prices(sweep_len: usize, outcomes: &[JobOutcome]) -> Vec<f64> {
    let mut prices = vec![f64::NAN; sweep_len];
    for o in outcomes {
        prices[o.job] = o.price;
    }
    prices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::{toy_portfolio, PortfolioScale};
    use pricing::methods::closed_form::bs_price;
    use pricing::models::BlackScholes;
    use pricing::options::Vanilla;

    #[test]
    fn sweep_multiplies_by_seven() {
        let jobs = toy_portfolio(10);
        let sweep = risk_sweep(&jobs, &BumpSpec::default());
        assert_eq!(sweep.len(), 70);
        // Claim-major ordering.
        assert_eq!(sweep[0].claim, 0);
        assert_eq!(sweep[0].scenario, Scenario::Base);
        assert_eq!(sweep[7].claim, 1);
    }

    #[test]
    fn full_portfolio_sweep_is_paper_magnitude() {
        // §1: "a huge number of atomic computations (around 10⁶)". The
        // base sweep gives 7931 × 7 ≈ 55.5k; an 18-point parameter grid
        // (paper-style multi-level bumps) crosses 10⁶. We check the base
        // multiplication without materialising the full sweep.
        let claims = 7931usize;
        assert_eq!(claims * Scenario::ALL.len(), 55_517);
        assert!(claims * 128 > 1_000_000);
    }

    #[test]
    fn bumped_delta_matches_closed_form() {
        let jobs = toy_portfolio(5);
        let bump = BumpSpec::default();
        let sweep = risk_sweep(&jobs, &bump);
        let prices = price_sweep_serial(&sweep).unwrap();
        let risks = aggregate_risk(&sweep, &prices, &bump, &|_| 100.0);
        assert_eq!(risks.len(), 5);
        for (risk, job) in risks.iter().zip(&jobs) {
            let m = match &job.problem.model {
                ModelSpec::BlackScholes(m) => *m,
                _ => unreachable!(),
            };
            let opt =
                Vanilla::european_call(job.problem.option.strike(), job.problem.option.maturity());
            let exact = bs_price(&m, &opt);
            assert!(
                (risk.delta - exact.delta).abs() < 5e-4,
                "claim {}: bumped delta {} exact {}",
                risk.claim,
                risk.delta,
                exact.delta
            );
            assert!(
                (risk.gamma - exact.gamma).abs() < 5e-4,
                "claim {}: bumped gamma {} exact {}",
                risk.claim,
                risk.gamma,
                exact.gamma
            );
            // A ±1-vol-point central difference carries O(h²·∂³V/∂σ³)
            // curvature error — a few percent on deep-ITM short-dated
            // claims where vega is tiny and strongly convex.
            assert!(
                (risk.vega - exact.vega).abs() < exact.vega.abs() * 0.05 + 2e-3,
                "claim {}: bumped vega {} exact {}",
                risk.claim,
                risk.vega,
                exact.vega
            );
            assert!((risk.price - exact.price).abs() < 1e-12);
        }
    }

    #[test]
    fn call_rho_is_positive_put_rho_negative() {
        let m = BlackScholes::new(100.0, 0.2, 0.05, 0.0);
        let bump = BumpSpec::default();
        let base = pricing::PremiaProblem::new(
            ModelSpec::BlackScholes(m),
            pricing::OptionSpec::Call {
                strike: 100.0,
                maturity: 1.0,
            },
            pricing::MethodSpec::ClosedForm,
        );
        let job = PortfolioJob {
            id: 0,
            class: crate::JobClass::VanillaClosedForm,
            problem: base,
        };
        let sweep = risk_sweep(std::slice::from_ref(&job), &bump);
        let prices = price_sweep_serial(&sweep).unwrap();
        let r = aggregate_risk(&sweep, &prices, &bump, &|_| 100.0);
        assert!(r[0].rho > 0.0, "call rho {}", r[0].rho);

        let mut put_job = job;
        put_job.problem.option = pricing::OptionSpec::Put {
            strike: 100.0,
            maturity: 1.0,
        };
        let sweep = risk_sweep(&[put_job], &bump);
        let prices = price_sweep_serial(&sweep).unwrap();
        let r = aggregate_risk(&sweep, &prices, &bump, &|_| 100.0);
        assert!(r[0].rho < 0.0, "put rho {}", r[0].rho);
    }

    #[test]
    fn bump_model_covers_every_model_and_scenario() {
        let models = [
            ModelSpec::by_name("BlackScholes1dim").unwrap(),
            ModelSpec::by_name("BlackScholesNdim").unwrap(),
            ModelSpec::by_name("LocalVol1dim").unwrap(),
            ModelSpec::by_name("Heston1dim").unwrap(),
        ];
        let bump = BumpSpec::default();
        for m in &models {
            for &s in &Scenario::ALL {
                let b = bump_model(m, s, &bump);
                if s == Scenario::Base {
                    assert_eq!(&b, m);
                } else {
                    assert_ne!(&b, m, "{m:?} unchanged by {s:?}");
                }
            }
        }
        // Rates model: spot scenarios are identity, vol/rate bumps act.
        let v = ModelSpec::by_name("Vasicek1dim").unwrap();
        assert_eq!(bump_model(&v, Scenario::SpotUp, &bump), v);
        assert_ne!(bump_model(&v, Scenario::VolUp, &bump), v);
        assert_ne!(bump_model(&v, Scenario::RateUp, &bump), v);
    }

    #[test]
    fn heston_vol_bump_is_symmetric_in_vol_space() {
        let m = ModelSpec::by_name("Heston1dim").unwrap();
        let bump = BumpSpec::default();
        let up = bump_model(&m, Scenario::VolUp, &bump);
        let dn = bump_model(&m, Scenario::VolDown, &bump);
        if let (ModelSpec::Heston(u), ModelSpec::Heston(d), ModelSpec::Heston(b)) = (&up, &dn, &m) {
            assert!((u.v0.sqrt() - b.v0.sqrt() - bump.vol_abs).abs() < 1e-12);
            assert!((b.v0.sqrt() - d.v0.sqrt() - bump.vol_abs).abs() < 1e-12);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn risk_jobs_survive_serialization() {
        // Risk jobs go through the same farm pipeline — XDR must carry
        // the bumped parameters exactly.
        let jobs = crate::portfolio::realistic_portfolio(PortfolioScale::Quick, 2000);
        let sweep = risk_sweep(&jobs, &BumpSpec::default());
        for j in sweep.iter().take(40) {
            let v = j.problem.to_value();
            let s = xdrser::serialize(&v);
            let back =
                pricing::PremiaProblem::from_value(&xdrser::unserialize(&s).unwrap()).unwrap();
            assert_eq!(back, j.problem);
        }
    }

    #[test]
    fn outcomes_to_prices_orders_by_job() {
        let outcomes = vec![
            JobOutcome {
                job: 2,
                slave: 1,
                price: 30.0,
                std_error: None,
            },
            JobOutcome {
                job: 0,
                slave: 2,
                price: 10.0,
                std_error: None,
            },
            JobOutcome {
                job: 1,
                slave: 1,
                price: 20.0,
                std_error: None,
            },
        ];
        assert_eq!(outcomes_to_prices(3, &outcomes), vec![10.0, 20.0, 30.0]);
    }
}
