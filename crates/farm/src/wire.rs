//! The farm's wire codec, in one place.
//!
//! Every master/slave message of the Robin Hood protocol — job
//! requests, batched requests, priced results, failure reports — used
//! to be encoded and decoded ad hoc inside each master loop
//! (`robin_hood::result_value`, `supervisor::failure_value`, batching's
//! per-batch variants). This module is now the single typed codec both
//! sides share; the encodings are bit-for-bit the legacy ones, so old
//! and new farms interoperate and recorded payload sizes are unchanged.
//!
//! Decoding is total: [`decode_answer`] never silently drops an
//! undecodable message — it returns [`FarmError::Protocol`] with the
//! offending value rendered, which the supervised master surfaces
//! instead of the old silent drop.

use crate::robin_hood::FarmError;
use nspval::{Hash, List, Value};
use pricing::PricingResult;

// ---------------------------------------------------------------------------
// Job requests (master → slave)
// ---------------------------------------------------------------------------

/// The one-at-a-time job request: a *name message* `[path, idx]`
/// (Fig. 4's file-name send), optionally followed on the wire by a
/// packed payload under the loaded strategies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobMsg {
    /// Index of the job in the submitted file list.
    pub idx: usize,
    /// Problem file path, as sent.
    pub name: String,
}

impl JobMsg {
    /// Encode as the legacy name message.
    pub fn to_value(&self) -> Value {
        Value::list(vec![
            Value::string(self.name.clone()),
            Value::scalar(self.idx as f64),
        ])
    }

    /// Decode a name message; `None` when the value has another shape.
    pub fn decode(v: &Value) -> Option<JobMsg> {
        let l = v.as_list()?;
        Some(JobMsg {
            name: l.get(0)?.as_str()?.to_string(),
            idx: l.get(1)?.as_scalar()? as usize,
        })
    }
}

/// One item of a batched request: `{idx, name, payload?}`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// Index of the job in the submitted file list.
    pub idx: usize,
    /// Problem file path, as sent.
    pub name: String,
    /// The materialised problem, for the loaded strategies.
    pub payload: Option<Value>,
}

impl BatchItem {
    /// Encode as the legacy batch-request item.
    pub fn to_value(&self) -> Value {
        let mut h = Hash::new();
        h.set("idx", Value::scalar(self.idx as f64));
        h.set("name", Value::string(self.name.clone()));
        if let Some(payload) = &self.payload {
            h.set("payload", payload.clone());
        }
        Value::Hash(h)
    }

    /// Decode one batch-request item, or [`FarmError::Protocol`].
    pub fn decode(v: &Value) -> Result<BatchItem, FarmError> {
        let parse = |v: &Value| -> Option<BatchItem> {
            let h = v.as_hash()?;
            Some(BatchItem {
                idx: h.get("idx")?.as_scalar()? as usize,
                name: h.get("name")?.as_str()?.to_string(),
                payload: h.get("payload").cloned(),
            })
        };
        parse(v).ok_or_else(|| FarmError::Protocol(format!("undecodable batch item: {v}")))
    }
}

// ---------------------------------------------------------------------------
// Answers (slave → master)
// ---------------------------------------------------------------------------

/// A slave's reply about one job: a priced result (the legacy
/// `{job, price, std_error?}` hash) or a supervised failure report (the
/// legacy `{job, failed}` hash).
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// The job priced successfully.
    Priced {
        /// The answered job.
        job: usize,
        /// Price estimate.
        price: f64,
        /// Monte-Carlo standard error, when the method reports one.
        std_error: Option<f64>,
    },
    /// The slave could not complete the job and says why.
    Failed {
        /// The failed job.
        job: usize,
        /// Human-readable reason.
        why: String,
    },
}

impl Answer {
    /// A priced answer from a [`PricingResult`].
    pub fn priced(job: usize, result: &PricingResult) -> Answer {
        Answer::Priced {
            job,
            price: result.price,
            std_error: result.std_error,
        }
    }

    /// A failure report.
    pub fn failed(job: usize, why: impl Into<String>) -> Answer {
        Answer::Failed {
            job,
            why: why.into(),
        }
    }

    /// The job this answer is about.
    pub fn job(&self) -> usize {
        match self {
            Answer::Priced { job, .. } | Answer::Failed { job, .. } => *job,
        }
    }

    /// Encode with the legacy layouts (`result_value` /
    /// `failure_value`), bit-for-bit.
    pub fn to_value(&self) -> Value {
        let mut h = Hash::new();
        match self {
            Answer::Priced {
                job,
                price,
                std_error,
            } => {
                h.set("job", Value::scalar(*job as f64));
                h.set("price", Value::scalar(*price));
                if let Some(se) = std_error {
                    h.set("std_error", Value::scalar(*se));
                }
            }
            Answer::Failed { job, why } => {
                h.set("job", Value::scalar(*job as f64));
                h.set("failed", Value::string(why.clone()));
            }
        }
        Value::Hash(h)
    }

    /// Decode either answer shape; `None` when the value is neither.
    pub fn decode(v: &Value) -> Option<Answer> {
        let h = v.as_hash()?;
        let job = h.get("job")?.as_scalar()? as usize;
        if let Some(price) = h.get("price").and_then(|x| x.as_scalar()) {
            return Some(Answer::Priced {
                job,
                price,
                std_error: h.get("std_error").and_then(|x| x.as_scalar()),
            });
        }
        let why = h.get("failed")?.as_str()?.to_string();
        Some(Answer::Failed { job, why })
    }
}

/// Decode an answer or fail loudly: an undecodable reply is a protocol
/// violation ([`FarmError::Protocol`] carrying the rendered value), not
/// something to drop on the floor.
pub fn decode_answer(v: &Value) -> Result<Answer, FarmError> {
    Answer::decode(v).ok_or_else(|| FarmError::Protocol(format!("undecodable answer: {v}")))
}

/// Encode a whole batch reply (one [`Answer::Priced`] item per job, in
/// compute order) with the legacy list-of-hashes layout.
pub fn batch_reply_value(answers: &[Answer]) -> Value {
    let mut list = List::new();
    for a in answers {
        list.add_last(a.to_value());
    }
    Value::List(list)
}

/// Decode a whole batch reply; any malformed item is a
/// [`FarmError::Protocol`].
pub fn decode_batch_reply(v: &Value) -> Result<Vec<Answer>, FarmError> {
    let list = v
        .as_list()
        .ok_or_else(|| FarmError::Protocol(format!("undecodable batch reply: {v}")))?;
    list.iter().map(decode_answer).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn answer_layouts_match_the_legacy_encodings() {
        // Priced: {job, price, std_error?} with scalar fields.
        let v = Answer::Priced {
            job: 3,
            price: 1.5,
            std_error: Some(0.25),
        }
        .to_value();
        let h = v.as_hash().unwrap();
        assert_eq!(h.get("job").unwrap().as_scalar(), Some(3.0));
        assert_eq!(h.get("price").unwrap().as_scalar(), Some(1.5));
        assert_eq!(h.get("std_error").unwrap().as_scalar(), Some(0.25));
        // Failure: {job, failed} with a string reason.
        let v = Answer::failed(7, "payload timeout").to_value();
        let h = v.as_hash().unwrap();
        assert_eq!(h.get("job").unwrap().as_scalar(), Some(7.0));
        assert_eq!(h.get("failed").unwrap().as_str(), Some("payload timeout"));
    }

    #[test]
    fn undecodable_answer_is_a_protocol_error_with_the_value_rendered() {
        let junk = Value::list(vec![Value::scalar(1.0)]);
        match decode_answer(&junk) {
            Err(FarmError::Protocol(msg)) => {
                assert!(msg.contains("undecodable answer"), "{msg}");
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
        // A hash with a job but neither price nor failure is junk too.
        let mut h = Hash::new();
        h.set("job", Value::scalar(1.0));
        assert!(matches!(
            decode_answer(&Value::Hash(h)),
            Err(FarmError::Protocol(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn answer_round_trips(
            job in 0usize..10_000,
            price in -1e9f64..1e9,
            has_se in any::<bool>(),
            se in 0f64..1e6,
            fail in any::<bool>(),
            why in "[a-z ]{0,40}",
        ) {
            let a = if fail {
                Answer::Failed { job, why: why.clone() }
            } else {
                Answer::Priced { job, price, std_error: has_se.then_some(se) }
            };
            // Value round trip.
            let decoded = Answer::decode(&a.to_value());
            prop_assert_eq!(decoded, Some(a.clone()));
            // Full XDR wire round trip (what actually crosses minimpi).
            let bytes = xdrser::serialize_to_bytes(&a.to_value());
            let back = xdrser::unserialize_bytes(&bytes).unwrap();
            prop_assert_eq!(decode_answer(&back).unwrap(), a);
        }

        #[test]
        fn job_and_batch_requests_round_trip(
            idx in 0usize..10_000,
            name in "[a-z0-9/_.-]{1,40}",
            with_payload in any::<bool>(),
        ) {
            let m = JobMsg { idx, name: name.clone() };
            let decoded = JobMsg::decode(&m.to_value());
            prop_assert_eq!(decoded, Some(m));
            let item = BatchItem {
                idx,
                name: name.clone(),
                payload: with_payload.then(|| Value::scalar(idx as f64)),
            };
            let back = BatchItem::decode(&item.to_value()).unwrap();
            prop_assert_eq!(back, item);
        }

        #[test]
        fn batch_replies_round_trip(
            jobs in proptest::collection::vec((0usize..1000, -1e6f64..1e6), 0..20),
        ) {
            let answers: Vec<Answer> = jobs
                .iter()
                .map(|&(j, p)| Answer::Priced { job: j, price: p, std_error: None })
                .collect();
            let back = decode_batch_reply(&batch_reply_value(&answers)).unwrap();
            prop_assert_eq!(back, answers);
        }
    }
}
