//! Cost calibration: measure what one pricing problem of each §4.3 class
//! actually costs with our kernels, so the cluster simulator can replay
//! the tables with empirically grounded job durations.
//!
//! Two cost sources are exposed:
//!
//! * [`measured_costs`] — wall-clock measurements of this crate's kernels
//!   at a chosen scale, useful for live-vs-simulated agreement tests;
//! * [`paper_costs`] — the §4.3 narrative costs (vanilla ≈ ms, European
//!   MC/PDE 10–30 s, American > 60 s), used to regenerate the tables at
//!   the paper's own magnitudes.

use crate::portfolio::{
    realistic_portfolio, representative_problem, JobClass, PortfolioJob, PortfolioScale,
};
use std::collections::HashMap;
use std::time::Instant;

/// Cost model: per-class compute-time interval `(lo, hi)` in seconds; the
/// simulator draws uniformly from the interval, reproducing the paper's
/// "the time needed to compute a single price varies a lot".
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    costs: HashMap<JobClass, (f64, f64)>,
    /// Serialized size in bytes of one problem file of each class, for
    /// the network/NFS model.
    sizes: HashMap<JobClass, usize>,
}

impl CostModel {
    /// Compute-time interval (seconds) for one problem of the class.
    pub fn cost_range(&self, class: JobClass) -> (f64, f64) {
        self.costs[&class]
    }

    /// Serialized size in bytes of one problem file of the class.
    pub fn message_bytes(&self, class: JobClass) -> usize {
        self.sizes[&class]
    }

    /// Scale every cost by `factor` (used to map Quick-scale measurements
    /// onto Full-scale magnitudes).
    pub fn scaled(&self, factor: f64) -> CostModel {
        CostModel {
            costs: self
                .costs
                .iter()
                .map(|(&k, &(lo, hi))| (k, (lo * factor, hi * factor)))
                .collect(),
            sizes: self.sizes.clone(),
        }
    }

    /// The class's point-estimate grain (midpoint of its cost interval) —
    /// the predicted per-job cost LPT dispatch sorts by.
    pub fn grain_seconds(&self, class: JobClass) -> f64 {
        let (lo, hi) = self.costs[&class];
        0.5 * (lo + hi)
    }

    /// Per-job predicted costs for a classed portfolio, in job order —
    /// the vector [`sched::DispatchPolicy::Lpt`] consumes. This is the
    /// bridge from the per-class cost model to the scheduler: with a
    /// heavy-tailed class mix LPT front-loads the American/Bermudan/BSDE
    /// grains instead of stranding one on the last dispatch.
    pub fn lpt_costs(&self, jobs: &[PortfolioJob]) -> Vec<f64> {
        jobs.iter().map(|j| self.grain_seconds(j.class)).collect()
    }
}

fn representative_sizes() -> HashMap<JobClass, usize> {
    // Serialize one representative problem of each class and record its
    // file size.
    JobClass::ALL
        .iter()
        .map(|&class| {
            let job = representative_problem(class, PortfolioScale::Quick);
            (
                class,
                xdrser::serialize_to_bytes(&job.problem.to_value()).len(),
            )
        })
        .collect()
}

/// The §4.3 narrative cost model at the paper's magnitudes.
pub fn paper_costs() -> CostModel {
    CostModel {
        costs: JobClass::ALL
            .iter()
            .map(|&c| (c, c.paper_cost_seconds()))
            .collect(),
        sizes: representative_sizes(),
    }
}

/// Measure the real compute time of one problem per class at the given
/// scale (runs `repeats` instances and averages; the interval is
/// mean ± half-spread of the observations, floored at 20 % of the mean).
pub fn measured_costs(scale: PortfolioScale, repeats: usize) -> CostModel {
    assert!(repeats >= 1);
    let jobs = realistic_portfolio(scale, 1);
    let mut costs = HashMap::new();
    for class in JobClass::ALL {
        // §4.3 classes sample the realistic portfolio's own spread of
        // specs; the extension classes (absent from the paper
        // composition) repeat their canonical representative.
        let class_jobs: Vec<_> = jobs.iter().filter(|j| j.class == class).cloned().collect();
        let class_jobs = if class_jobs.is_empty() {
            vec![representative_problem(class, scale)]
        } else {
            class_jobs
        };
        let mut times = Vec::with_capacity(repeats);
        for k in 0..repeats {
            let job = &class_jobs[k * 37 % class_jobs.len()];
            let t0 = Instant::now();
            job.problem.compute().expect("calibration problem computes");
            times.push(t0.elapsed().as_secs_f64());
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let spread = times
            .iter()
            .fold(0.0f64, |acc, &t| acc.max((t - mean).abs()))
            .max(0.2 * mean);
        costs.insert(class, ((mean - spread).max(mean * 0.1), mean + spread));
    }
    CostModel {
        costs,
        sizes: representative_sizes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs_cover_all_classes() {
        let m = paper_costs();
        for class in JobClass::ALL {
            let (lo, hi) = m.cost_range(class);
            assert!(lo > 0.0 && hi >= lo, "{class:?}");
            assert!(m.message_bytes(class) > 0);
        }
    }

    #[test]
    fn paper_costs_reflect_heterogeneity() {
        let m = paper_costs();
        assert!(
            m.cost_range(JobClass::AmericanPde).0
                > m.cost_range(JobClass::VanillaClosedForm).1 * 1000.0
        );
    }

    #[test]
    fn measured_costs_positive_and_ordered() {
        let m = measured_costs(PortfolioScale::Quick, 1);
        for class in JobClass::ALL {
            let (lo, hi) = m.cost_range(class);
            assert!(lo > 0.0 && hi >= lo, "{class:?}: ({lo}, {hi})");
        }
        // Even at Quick scale, closed form must be much cheaper than the
        // PDE/MC classes.
        assert!(
            m.cost_range(JobClass::VanillaClosedForm).1 < m.cost_range(JobClass::AmericanPde).1
        );
    }

    #[test]
    fn scaling_multiplies_costs() {
        let m = paper_costs();
        let s = m.scaled(2.0);
        for class in JobClass::ALL {
            assert!((s.cost_range(class).0 - 2.0 * m.cost_range(class).0).abs() < 1e-12);
            assert_eq!(s.message_bytes(class), m.message_bytes(class));
        }
    }

    #[test]
    fn bsde_rounds_dominate_vanilla_mc_grains() {
        // The Labart–Lelong sweep regresses *and* simulates: one Picard
        // round must cost more than any single European Monte-Carlo
        // grain, or the staged rounds would be scheduling noise.
        let m = paper_costs();
        assert!(
            m.cost_range(JobClass::BsdePicardMc).0 > m.cost_range(JobClass::LocalVolMc).1,
            "BSDE round {:?} does not dominate vanilla MC {:?}",
            m.cost_range(JobClass::BsdePicardMc),
            m.cost_range(JobClass::LocalVolMc)
        );
    }

    #[test]
    fn lpt_costs_follow_job_classes() {
        use crate::portfolio::mixed_portfolio;
        let m = paper_costs();
        let jobs = mixed_portfolio(PortfolioScale::Quick, 2);
        let costs = m.lpt_costs(&jobs);
        assert_eq!(costs.len(), jobs.len());
        for (job, &c) in jobs.iter().zip(&costs) {
            assert_eq!(c, m.grain_seconds(job.class));
        }
        // The heavy tail is visible to LPT: the top predicted grain
        // outweighs the entire bottom half of the portfolio.
        let mut sorted = costs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bottom_half: f64 = sorted[..sorted.len() / 2].iter().sum();
        assert!(sorted[sorted.len() - 1] > bottom_half);
    }

    #[test]
    fn message_sizes_are_problem_file_sizes() {
        let m = paper_costs();
        // XDR-encoded problems are small structured records: hundreds of
        // bytes, not kilobytes.
        for class in JobClass::ALL {
            let b = m.message_bytes(class);
            assert!(b > 100 && b < 4096, "{class:?}: {b} bytes");
        }
    }
}
