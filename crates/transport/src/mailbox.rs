//! The per-rank mailbox every backend delivers into: a condvar-guarded
//! deque supporting `(source, tag)` matching with wildcards, probe
//! without consumption, deadline waits and fault-delayed visibility.
//!
//! Keeping this structure backend-independent is what makes the process
//! backend behave like the historical in-process one: a socket reader
//! thread pushes frames here, and matching / wakeup semantics are shared
//! code rather than a reimplementation.

use crate::error::TransportError;
use crate::frame::Frame;
use crate::selector_matches;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Instant;

#[derive(Default)]
struct MailboxState {
    queue: VecDeque<Frame>,
    /// Set when the group is torn down (a peer panicked); wakes blockers.
    poisoned: bool,
    /// Set when this rank is dead (fault-plan kill or an administrative
    /// sever): sends to it and operations by it fail with
    /// [`TransportError::Dead`].
    dead: bool,
}

/// One rank's delivery queue.
pub(crate) struct Mailbox {
    /// The rank this mailbox belongs to, carried in `Dead` errors.
    owner: usize,
    state: Mutex<MailboxState>,
    cond: Condvar,
}

impl Mailbox {
    pub(crate) fn new(owner: usize) -> Self {
        Mailbox {
            owner,
            state: Mutex::new(MailboxState::default()),
            cond: Condvar::new(),
        }
    }

    /// Queue a frame for the owner, failing fast if the owner is dead or
    /// the group is poisoned.
    pub(crate) fn push(&self, frame: Frame) -> Result<(), TransportError> {
        let mut st = self.state.lock();
        if st.dead {
            // Fail fast instead of queueing into a mailbox nobody drains.
            return Err(TransportError::Dead(self.owner));
        }
        if st.poisoned {
            return Err(TransportError::Disconnected);
        }
        st.queue.push_back(frame);
        self.cond.notify_all();
        Ok(())
    }

    /// Mark the owner dead: pending messages are discarded and every
    /// blocked waiter is woken so it can observe [`TransportError::Dead`]
    /// instead of hanging forever.
    pub(crate) fn kill(&self) {
        let mut st = self.state.lock();
        st.dead = true;
        st.queue.clear();
        self.cond.notify_all();
    }

    /// Wake every blocked waiter with a poison flag; used when a peer
    /// panics so the rest don't deadlock.
    pub(crate) fn poison(&self) {
        self.state.lock().poisoned = true;
        self.cond.notify_all();
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.state.lock().dead
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }

    /// Wait-loop core shared by probe and receive — see
    /// [`crate::Transport::match_deadline`] for the contract.
    pub(crate) fn match_deadline(
        &self,
        src: i32,
        tag: i32,
        deadline: Option<Instant>,
        consume: bool,
    ) -> Result<Option<Frame>, TransportError> {
        let mut st = self.state.lock();
        loop {
            if st.dead {
                return Err(TransportError::Dead(self.owner));
            }
            let now = Instant::now();
            if let Some(pos) = st
                .queue
                .iter()
                .position(|m| selector_matches(m.src, m.tag, src, tag) && m.visible(now))
            {
                if consume {
                    if st.queue[pos].truncated() {
                        let m = &st.queue[pos];
                        return Err(TransportError::Truncated {
                            needed: m.full_len,
                            capacity: m.payload.len(),
                        });
                    }
                    return Ok(Some(st.queue.remove(pos).expect("position just found")));
                }
                // Probe: clone the metadata, leave the payload queued.
                return Ok(Some(st.queue[pos].meta()));
            }
            if st.poisoned {
                return Err(TransportError::Disconnected);
            }
            // Next wake-up: the earliest fault-delayed matching message, or
            // the caller's deadline, whichever comes first.
            let next_visible = st
                .queue
                .iter()
                .filter(|m| selector_matches(m.src, m.tag, src, tag))
                .filter_map(|m| m.visible_at)
                .min();
            let wake_at = match (next_visible, deadline) {
                (Some(v), Some(d)) => Some(v.min(d)),
                (Some(v), None) => Some(v),
                (None, Some(d)) => Some(d),
                (None, None) => None,
            };
            match wake_at {
                Some(t) => {
                    let now = Instant::now();
                    if t <= now {
                        if deadline.is_some_and(|d| d <= now)
                            && next_visible.is_none_or(|v| v > now)
                        {
                            return Ok(None);
                        }
                        // A delayed message just became visible: loop.
                        continue;
                    }
                    self.cond.wait_for(&mut st, t - now);
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            // One last scan before giving up.
                            let now = Instant::now();
                            if let Some(pos) = st
                                .queue
                                .iter()
                                .position(|m| selector_matches(m.src, m.tag, src, tag) && m.visible(now))
                            {
                                if !consume {
                                    return Ok(Some(st.queue[pos].meta()));
                                }
                                if st.queue[pos].truncated() {
                                    let m = &st.queue[pos];
                                    return Err(TransportError::Truncated {
                                        needed: m.full_len,
                                        capacity: m.payload.len(),
                                    });
                                }
                                return Ok(Some(
                                    st.queue.remove(pos).expect("position just found"),
                                ));
                            }
                            if st.dead {
                                return Err(TransportError::Dead(self.owner));
                            }
                            return Ok(None);
                        }
                    }
                }
                None => self.cond.wait(&mut st),
            }
        }
    }

    /// Non-blocking probe: metadata of the first visible matching frame.
    /// Checks poison *before* scanning — an `iprobe` on a torn-down group
    /// reports the teardown even if a frame is queued (historical
    /// `minimpi` semantics).
    pub(crate) fn try_match(&self, src: i32, tag: i32) -> Result<Option<Frame>, TransportError> {
        let st = self.state.lock();
        if st.dead {
            return Err(TransportError::Dead(self.owner));
        }
        if st.poisoned {
            return Err(TransportError::Disconnected);
        }
        let now = Instant::now();
        Ok(st
            .queue
            .iter()
            .find(|m| selector_matches(m.src, m.tag, src, tag) && m.visible(now))
            .map(|m| m.meta()))
    }

    /// Remove the next visible matching frame (even a truncated one).
    pub(crate) fn discard(&self, src: i32, tag: i32) -> Result<bool, TransportError> {
        let mut st = self.state.lock();
        if st.dead {
            return Err(TransportError::Dead(self.owner));
        }
        let now = Instant::now();
        match st
            .queue
            .iter()
            .position(|m| selector_matches(m.src, m.tag, src, tag) && m.visible(now))
        {
            Some(pos) => {
                st.queue.remove(pos);
                Ok(true)
            }
            None => Ok(false),
        }
    }
}
