//! The unit of transmission: a tagged byte frame.

use std::sync::Arc;
use std::time::Instant;

/// Frame payload storage. Plain sends own their bytes; shared sends
/// (broadcast fan-out on an in-process backend) put one allocation behind
/// an `Arc` so every destination queues the *same* bytes instead of a
/// per-destination clone.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A payload owned by this frame.
    Owned(Vec<u8>),
    /// A payload shared with other in-flight frames (zero-copy fan-out).
    Shared(Arc<Vec<u8>>),
}

impl Payload {
    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(a) => a,
        }
    }

    /// Number of bytes actually present (may be less than the advertised
    /// [`Frame::full_len`] after an in-flight truncation).
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` when no bytes are present.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Shrink to `keep` bytes (fault-injected truncation). A shared
    /// payload degrades to an owned copy so the other destinations keep
    /// their intact bytes.
    pub fn truncate(&mut self, keep: usize) {
        match self {
            Payload::Owned(v) => v.truncate(keep),
            Payload::Shared(a) => {
                *self = Payload::Owned(a[..keep.min(a.len())].to_vec());
            }
        }
    }

    /// Surrender the bytes. Owned payloads move for free; a shared
    /// payload is reclaimed without a copy when this was the last
    /// reference (the common case for the final broadcast receiver).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

/// One in-flight message: source, tag, payload, and fault metadata.
#[derive(Debug)]
pub struct Frame {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// The payload bytes (possibly truncated in flight).
    pub payload: Payload,
    /// Advertised length: equals `payload.len()` unless the fault layer
    /// truncated the payload in flight.
    pub full_len: usize,
    /// Fault-injected delivery time; `None` = immediately visible.
    pub visible_at: Option<Instant>,
}

impl Frame {
    /// A plain frame: owned payload, advertised length = actual length,
    /// immediately visible.
    pub fn new(src: usize, tag: i32, payload: Payload) -> Self {
        let full_len = payload.len();
        Frame {
            src,
            tag,
            payload,
            full_len,
            visible_at: None,
        }
    }

    /// Whether the frame is visible to the receiver at `now`.
    pub fn visible(&self, now: Instant) -> bool {
        self.visible_at.is_none_or(|t| t <= now)
    }

    /// Whether the payload was cut short of its advertised length.
    pub fn truncated(&self) -> bool {
        self.payload.len() < self.full_len
    }

    /// Metadata-only copy: same source/tag/length, empty payload. This is
    /// what a probe returns.
    pub fn meta(&self) -> Frame {
        Frame {
            src: self.src,
            tag: self.tag,
            payload: Payload::Owned(Vec::new()),
            full_len: self.full_len,
            visible_at: self.visible_at,
        }
    }
}
