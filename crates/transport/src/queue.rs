//! In-process command queues for service loops.
//!
//! This module is the workspace's **only** sanctioned site of raw
//! channel construction (a CI grep-gate enforces it): anything that
//! needs an unbounded MPSC hand-off — e.g. the `serve` session's
//! client-to-master command queue — goes through these wrappers, so a
//! future backend swap (bounded queues, cross-process queues) is a
//! one-crate change rather than a grep across the workspace.

use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// Sending half of an unbounded MPSC queue. Clonable; the queue
/// disconnects when every sender is dropped.
pub struct Sender<T>(mpsc::Sender<T>);

/// Receiving half of an unbounded MPSC queue.
pub struct Receiver<T>(mpsc::Receiver<T>);

/// The queue was disconnected: every [`Receiver`] (for sends) or every
/// [`Sender`] (for receives) is gone. For sends the unsent value is
/// returned.
#[derive(Debug, PartialEq, Eq)]
pub struct Disconnected<T>(pub T);

/// Why a non-blocking receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message queued right now; senders still exist.
    Empty,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// A fresh unbounded queue.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("queue::Sender")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("queue::Receiver")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Queue `value`; fails (returning it) once the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), Disconnected<T>> {
        self.0.send(value).map_err(|e| Disconnected(e.0))
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives; fails once every sender is gone
    /// and the queue is drained.
    pub fn recv(&self) -> Result<T, Disconnected<()>> {
        self.0.recv().map_err(|_| Disconnected(()))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocking receive with a timeout: `Ok(None)` when `timeout` passes
    /// with nothing queued, `Err` once every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<T>, Disconnected<()>> {
        match self.0.recv_timeout(timeout) {
            Ok(v) => Ok(Some(v)),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(Disconnected(())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = channel();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!((0..5).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_recv_empty_then_disconnected() {
        let (tx, rx) = channel::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_after_receiver_drop_returns_value() {
        let (tx, rx) = channel::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(Disconnected(9)));
    }

    #[test]
    fn clone_senders_feed_one_receiver() {
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_expires_quietly() {
        let (_tx, rx) = channel::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(None));
    }
}
