//! The multi-process backend: a full mesh of Unix-domain sockets.
//!
//! Rank *r* binds `dir/r.sock`, dials every lower rank (retrying until
//! the peer's listener exists) and accepts one connection from every
//! higher rank; a `HELLO` frame on each fresh stream identifies the
//! dialler. One blocking reader thread per peer stream decodes frames
//! and pushes them into the rank's single [`Mailbox`] — the same
//! structure the in-process backend uses — so matching, wildcards,
//! deadline waits and wakeups are shared code, and per-pair ordering
//! falls out of stream FIFO plus a per-stream write lock.
//!
//! Frames are XDR-style: big-endian words, payloads padded to 4 bytes.
//!
//! Faults are mapped onto the wire by the layer above: a dropped message
//! is simply never written, a truncation is written short with the true
//! advertised length, a delay travels as a nanosecond header the
//! receiver turns back into a visibility time, and kills/poisons are
//! broadcast as control frames so every process converges on the same
//! liveness map.
//!
//! The barrier is message-based (MatlabMPI style): every rank sends
//! `ARRIVE` to rank 0, which releases the generation with a `RELEASE`
//! fan-out once all peers have arrived.

use crate::error::TransportError;
use crate::frame::{Frame, Payload};
use crate::mailbox::Mailbox;
use crate::Transport;
use parking_lot::{Condvar, Mutex};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KIND_DATA: u32 = 0;
const KIND_KILL: u32 = 1;
const KIND_POISON: u32 = 2;
const KIND_BARRIER_ARRIVE: u32 = 3;
const KIND_BARRIER_RELEASE: u32 = 4;
const KIND_HELLO: u32 = 5;

/// How long a dialler keeps retrying a peer whose listener is not bound
/// yet (children racing through process startup).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(20);

#[derive(Default)]
struct BarrierCtl {
    /// Rank 0 only: peers that have arrived at the current generation.
    arrivals: usize,
    /// Non-zero ranks: release pulses received from rank 0.
    releases: u64,
    /// Non-zero ranks: release pulses already consumed by `barrier()`.
    taken: u64,
    /// Group teardown: barriers stop blocking.
    poisoned: bool,
}

struct Inner {
    rank: usize,
    size: usize,
    epoch: Instant,
    inbox: Mailbox,
    /// Group-wide liveness map (index = rank; own entry mirrors `inbox`).
    dead: Vec<AtomicBool>,
    /// Write half of each peer stream (`None` at our own index). The
    /// mutex keeps concurrent senders from interleaving frames, which
    /// preserves per-pair ordering on the wire.
    peers: Vec<Option<Mutex<UnixStream>>>,
    ctl: Mutex<BarrierCtl>,
    ctl_cond: Condvar,
    sock_path: PathBuf,
}

impl Inner {
    fn write_frame(&self, dest: usize, bytes: &[u8]) -> Result<(), TransportError> {
        let stream = self.peers[dest]
            .as_ref()
            .expect("no stream to self");
        let mut s = stream.lock();
        if let Err(e) = s.write_all(bytes) {
            drop(s);
            // A broken pipe means the peer process is gone: record the
            // death so subsequent sends fail fast without a syscall.
            self.dead[dest].store(true, Ordering::SeqCst);
            return Err(TransportError::Io(format!("write to rank {dest}: {e}")));
        }
        Ok(())
    }

    fn apply_kill(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::SeqCst);
        if rank == self.rank {
            self.inbox.kill();
        }
    }

    fn apply_poison(&self) {
        self.inbox.poison();
        let mut st = self.ctl.lock();
        st.poisoned = true;
        self.ctl_cond.notify_all();
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.sock_path);
    }
}

/// One rank's endpoint in a multi-process Unix-domain-socket group.
pub struct UdsTransport {
    inner: Arc<Inner>,
    readers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl UdsTransport {
    /// Join the mesh rooted at `dir` as `rank` of `size`. Blocks until
    /// fully connected to every peer: lower ranks are dialled (retrying
    /// while their listeners come up), higher ranks are accepted. All
    /// ranks must use the same `dir` and agree on `size`.
    pub fn connect(dir: &Path, rank: usize, size: usize) -> Result<UdsTransport, TransportError> {
        assert!(rank < size, "rank out of range");
        std::fs::create_dir_all(dir)?;
        let sock_path = Self::sock_path(dir, rank);
        let _ = std::fs::remove_file(&sock_path);
        let listener = UnixListener::bind(&sock_path)?;

        let mut streams: Vec<Option<UnixStream>> = (0..size).map(|_| None).collect();
        // Dial every lower rank, identifying ourselves with HELLO.
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let path = Self::sock_path(dir, peer);
            let start = Instant::now();
            let stream = loop {
                match UnixStream::connect(&path) {
                    Ok(s) => break s,
                    Err(e) => {
                        if start.elapsed() > CONNECT_TIMEOUT {
                            return Err(TransportError::Io(format!(
                                "rank {rank} failed to reach rank {peer}: {e}"
                            )));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            };
            let mut hello = Vec::with_capacity(8);
            put_u32(&mut hello, KIND_HELLO);
            put_u32(&mut hello, rank as u32);
            let mut s = stream;
            s.write_all(&hello)?;
            *slot = Some(s);
        }
        // Accept one connection from every higher rank.
        for _ in rank + 1..size {
            let (mut s, _) = listener.accept()?;
            let kind = read_u32(&mut s)?;
            if kind != KIND_HELLO {
                return Err(TransportError::Io(format!(
                    "expected HELLO, got frame kind {kind}"
                )));
            }
            let peer = read_u32(&mut s)? as usize;
            if peer <= rank || peer >= size || streams[peer].is_some() {
                return Err(TransportError::Io(format!("bad HELLO from rank {peer}")));
            }
            streams[peer] = Some(s);
        }
        drop(listener);

        let inner = Arc::new(Inner {
            rank,
            size,
            epoch: Instant::now(),
            inbox: Mailbox::new(rank),
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            peers: streams
                .iter()
                .map(|s| {
                    s.as_ref()
                        .map(|s| Mutex::new(s.try_clone().expect("dup stream")))
                })
                .collect(),
            ctl: Mutex::new(BarrierCtl::default()),
            ctl_cond: Condvar::new(),
            sock_path,
        });

        let mut readers = Vec::with_capacity(size.saturating_sub(1));
        for stream in streams.into_iter().flatten() {
            let inner = Arc::clone(&inner);
            readers.push(std::thread::spawn(move || reader_loop(stream, inner)));
        }
        Ok(UdsTransport {
            inner,
            readers: Mutex::new(readers),
        })
    }

    /// The socket path `rank` binds under `dir`.
    pub fn sock_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("{rank}.sock"))
    }
}

impl Drop for UdsTransport {
    fn drop(&mut self) {
        // Shut the sockets so the blocking reader threads see EOF, then
        // reap them.
        for peer in self.inner.peers.iter().flatten() {
            let _ = peer.lock().shutdown(std::net::Shutdown::Both);
        }
        for h in self.readers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Transport for UdsTransport {
    fn rank(&self) -> usize {
        self.inner.rank
    }

    fn size(&self) -> usize {
        self.inner.size
    }

    fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    fn send(&self, dest: usize, frame: Frame) -> Result<(), TransportError> {
        let inner = &self.inner;
        if dest == inner.rank {
            return inner.inbox.push(frame);
        }
        if inner.dead[dest].load(Ordering::SeqCst) {
            return Err(TransportError::Dead(dest));
        }
        if inner.inbox.is_poisoned() {
            return Err(TransportError::Disconnected);
        }
        let delay_ns = frame
            .visible_at
            .map(|t| t.saturating_duration_since(Instant::now()).as_nanos() as u64)
            .unwrap_or(0);
        let payload = frame.payload.as_slice();
        let mut buf = Vec::with_capacity(36 + payload.len() + 3);
        put_u32(&mut buf, KIND_DATA);
        put_u32(&mut buf, frame.src as u32);
        put_u32(&mut buf, frame.tag as u32);
        put_u64(&mut buf, frame.full_len as u64);
        put_u64(&mut buf, delay_ns);
        put_u64(&mut buf, payload.len() as u64);
        buf.extend_from_slice(payload);
        buf.resize(buf.len() + pad4(payload.len()), 0);
        match inner.write_frame(dest, &buf) {
            Ok(()) => Ok(()),
            // Peer process gone: surface the same fail-fast error the
            // in-process backend gives for a dead mailbox.
            Err(_) => Err(TransportError::Dead(dest)),
        }
    }

    fn match_deadline(
        &self,
        src: i32,
        tag: i32,
        deadline: Option<Instant>,
        consume: bool,
    ) -> Result<Option<Frame>, TransportError> {
        self.inner.inbox.match_deadline(src, tag, deadline, consume)
    }

    fn try_match(&self, src: i32, tag: i32) -> Result<Option<Frame>, TransportError> {
        self.inner.inbox.try_match(src, tag)
    }

    fn discard(&self, src: i32, tag: i32) -> Result<bool, TransportError> {
        self.inner.inbox.discard(src, tag)
    }

    fn kill(&self, rank: usize) {
        let inner = &self.inner;
        // Snapshot liveness *before* applying the kill: the victim must
        // still receive the broadcast (it is how its own blocked waits
        // learn to fail), only peers that were already gone are skipped.
        let was_dead: Vec<bool> = (0..inner.size)
            .map(|p| inner.dead[p].load(Ordering::SeqCst))
            .collect();
        inner.apply_kill(rank);
        let mut buf = Vec::with_capacity(8);
        put_u32(&mut buf, KIND_KILL);
        put_u32(&mut buf, rank as u32);
        for (peer, dead) in was_dead.iter().copied().enumerate() {
            if peer != inner.rank && !dead {
                let _ = inner.write_frame(peer, &buf);
            }
        }
    }

    fn is_dead(&self, rank: usize) -> bool {
        if rank == self.inner.rank {
            self.inner.inbox.is_dead()
        } else {
            self.inner.dead[rank].load(Ordering::SeqCst)
        }
    }

    fn poison(&self) {
        let inner = &self.inner;
        inner.apply_poison();
        let mut buf = Vec::with_capacity(4);
        put_u32(&mut buf, KIND_POISON);
        for peer in 0..inner.size {
            if peer != inner.rank {
                let _ = inner.write_frame(peer, &buf);
            }
        }
    }

    fn barrier(&self) {
        let inner = &self.inner;
        if inner.size == 1 {
            return;
        }
        if inner.rank == 0 {
            {
                let mut st = inner.ctl.lock();
                while st.arrivals < inner.size - 1 && !st.poisoned {
                    inner.ctl_cond.wait(&mut st);
                }
                if st.poisoned {
                    return;
                }
                st.arrivals -= inner.size - 1;
            }
            let mut buf = Vec::with_capacity(4);
            put_u32(&mut buf, KIND_BARRIER_RELEASE);
            for peer in 1..inner.size {
                let _ = inner.write_frame(peer, &buf);
            }
        } else {
            let mut buf = Vec::with_capacity(8);
            put_u32(&mut buf, KIND_BARRIER_ARRIVE);
            put_u32(&mut buf, inner.rank as u32);
            if inner.write_frame(0, &buf).is_err() {
                return;
            }
            let mut st = inner.ctl.lock();
            let target = st.taken + 1;
            while st.releases < target && !st.poisoned {
                inner.ctl_cond.wait(&mut st);
            }
            if !st.poisoned {
                st.taken = target;
            }
        }
    }
}

fn reader_loop(mut stream: UnixStream, inner: Arc<Inner>) {
    loop {
        let kind = match read_u32(&mut stream) {
            Ok(k) => k,
            Err(_) => return, // EOF: peer finished or tore down
        };
        let res: Result<(), TransportError> = (|| {
            match kind {
                KIND_DATA => {
                    let src = read_u32(&mut stream)? as usize;
                    let tag = read_u32(&mut stream)? as i32;
                    let full_len = read_u64(&mut stream)? as usize;
                    let delay_ns = read_u64(&mut stream)?;
                    let plen = read_u64(&mut stream)? as usize;
                    let mut payload = vec![0u8; plen];
                    stream.read_exact(&mut payload)?;
                    let mut pad = [0u8; 3];
                    stream.read_exact(&mut pad[..pad4(plen)])?;
                    let visible_at =
                        (delay_ns > 0).then(|| Instant::now() + Duration::from_nanos(delay_ns));
                    // A dead/poisoned inbox refuses the frame; that is
                    // fine — the sender observed a successful write, just
                    // as with the in-process backend's kill races.
                    let _ = inner.inbox.push(Frame {
                        src,
                        tag,
                        payload: Payload::Owned(payload),
                        full_len,
                        visible_at,
                    });
                }
                KIND_KILL => {
                    let rank = read_u32(&mut stream)? as usize;
                    if rank < inner.size {
                        inner.apply_kill(rank);
                    }
                }
                KIND_POISON => inner.apply_poison(),
                KIND_BARRIER_ARRIVE => {
                    let _from = read_u32(&mut stream)?;
                    let mut st = inner.ctl.lock();
                    st.arrivals += 1;
                    inner.ctl_cond.notify_all();
                }
                KIND_BARRIER_RELEASE => {
                    let mut st = inner.ctl.lock();
                    st.releases += 1;
                    inner.ctl_cond.notify_all();
                }
                other => {
                    return Err(TransportError::Io(format!("unknown frame kind {other}")));
                }
            }
            Ok(())
        })();
        if res.is_err() {
            return;
        }
    }
}

fn pad4(len: usize) -> usize {
    (4 - len % 4) % 4
}

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_be_bytes());
}

fn read_u32(s: &mut UnixStream) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    s.read_exact(&mut b)?;
    Ok(u32::from_be_bytes(b))
}

fn read_u64(s: &mut UnixStream) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    s.read_exact(&mut b)?;
    Ok(u64::from_be_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(dir: &Path, size: usize) -> Vec<UdsTransport> {
        // Stand the mesh up from threads of one process — the socket
        // layer neither knows nor cares that the ranks share an address
        // space, which is exactly what makes it testable here.
        let dir = dir.to_path_buf();
        let handles: Vec<_> = (0..size)
            .map(|r| {
                let dir = dir.clone();
                std::thread::spawn(move || UdsTransport::connect(&dir, r, size).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("transport_uds_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mesh_roundtrip_and_order() {
        let dir = tmp("order");
        let t = mesh(&dir, 2);
        for i in 0..50u8 {
            t[0].send(1, Frame::new(0, 7, Payload::Owned(vec![i; 3])))
                .unwrap();
        }
        for i in 0..50u8 {
            let m = t[1].match_deadline(0, 7, None, true).unwrap().unwrap();
            assert_eq!(m.payload.as_slice(), &[i; 3]);
        }
        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn barrier_synchronises_and_is_reusable() {
        let dir = tmp("barrier");
        let t = mesh(&dir, 3);
        let hs: Vec<_> = t
            .into_iter()
            .map(|tr| {
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        tr.barrier();
                    }
                    tr.rank()
                })
            })
            .collect();
        let mut ranks: Vec<_> = hs.into_iter().map(|h| h.join().unwrap()).collect();
        ranks.sort();
        assert_eq!(ranks, vec![0, 1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_broadcast_converges() {
        let dir = tmp("kill");
        let t = mesh(&dir, 3);
        t[0].kill(2);
        assert!(matches!(
            t[0].send(2, Frame::new(0, 0, Payload::Owned(vec![1]))),
            Err(TransportError::Dead(2))
        ));
        // The broadcast reaches rank 1 asynchronously.
        let start = Instant::now();
        while !t[1].is_dead(2) {
            assert!(start.elapsed() < Duration::from_secs(5), "kill never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        // The victim's own waits fail.
        assert!(matches!(
            t[2].match_deadline(-1, -1, None, true),
            Err(TransportError::Dead(2))
        ));
        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delay_header_defers_visibility() {
        let dir = tmp("delay");
        let t = mesh(&dir, 2);
        let mut f = Frame::new(0, 1, Payload::Owned(vec![5]));
        f.visible_at = Some(Instant::now() + Duration::from_millis(60));
        t[0].send(1, f).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(t[1].try_match(0, 1).unwrap().is_none(), "visible too early");
        let m = t[1].match_deadline(0, 1, None, true).unwrap().unwrap();
        assert_eq!(m.payload.as_slice(), &[5]);
        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn large_frame_roundtrip() {
        let dir = tmp("large");
        let t = mesh(&dir, 2);
        let big: Vec<u8> = (0..100_000usize).map(|i| (i * 31 % 251) as u8).collect();
        t[0].send(1, Frame::new(0, 2, Payload::Owned(big.clone())))
            .unwrap();
        let m = t[1].match_deadline(0, 2, None, true).unwrap().unwrap();
        assert_eq!(m.payload.as_slice(), &big[..]);
        drop(t);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
