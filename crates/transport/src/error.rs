//! Transport-level failures.

use std::fmt;

/// Failures surfaced by a [`crate::Transport`] backend. The communicator
/// layer above maps these onto its own error type.
#[derive(Debug)]
pub enum TransportError {
    /// The named rank is dead: a send to it fails fast, and every
    /// operation *by* it fails carrying its own rank.
    Dead(usize),
    /// The group was torn down while blocked (a peer panicked or the
    /// world is shutting down).
    Disconnected,
    /// The matched frame was truncated in flight: `needed` bytes
    /// advertised, only `capacity` delivered. The frame stays queued.
    Truncated {
        /// Advertised full length of the frame.
        needed: usize,
        /// Bytes actually available.
        capacity: usize,
    },
    /// An I/O failure on a wire-backed transport (socket setup, broken
    /// stream, child spawn).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Dead(rank) => write!(f, "rank {rank} is dead"),
            TransportError::Disconnected => write!(f, "transport torn down"),
            TransportError::Truncated { needed, capacity } => {
                write!(f, "frame truncated: {needed} bytes advertised, {capacity} delivered")
            }
            TransportError::Io(msg) => write!(f, "transport i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}
