//! Pluggable point-to-point message transport.
//!
//! The paper's farm ran over a single in-process message world; this crate
//! pulls the wire out from under `minimpi` so the same communicator API can
//! run over different media, the way MatlabMPI ran the same `MPI_Send` /
//! `MPI_Recv` contract over a shared file system. A [`Transport`] is one
//! rank's endpoint in a fixed-size group and promises exactly what the
//! Robin-Hood protocol needs:
//!
//! * **point-to-point** send / matched receive / probe on `(source, tag)`
//!   with `ANY_SOURCE` / `ANY_TAG` wildcards and optional deadlines;
//! * **ordered delivery per pair**: two messages from the same source to
//!   the same destination are matched in send order;
//! * **rank liveness**: a rank can be killed (fault plan or supervisor
//!   lever), after which sends to it fail fast and its own operations
//!   fail, instead of anyone hanging;
//! * **readiness-based timed waits**: a blocked receiver is woken by
//!   message arrival, death, poison or deadline — never by polling.
//!
//! Two backends ship today:
//!
//! * [`ChannelTransport`] — the in-process backend: every rank is a thread,
//!   every mailbox a condvar-guarded deque shared through an `Arc`. This
//!   preserves the historical `minimpi` semantics bit for bit, including
//!   zero-copy [`Payload::Shared`] fan-out.
//! * [`UdsTransport`] — the multi-process backend: ranks are OS processes
//!   connected by a full mesh of Unix-domain sockets exchanging
//!   length-prefixed big-endian (XDR-style) frames. Delivery feeds the
//!   *same* mailbox structure, so matching, wildcards, deadlines and
//!   wakeups behave identically; faults are mapped onto the wire (drops
//!   never sent, truncations sent short with the true advertised length,
//!   delays carried as a header the receiver honours, kills broadcast as
//!   control frames).
//!
//! The [`queue`] module hosts the workspace's only raw channel
//! construction; everything else goes through a transport.

#![warn(missing_docs)]

mod channel;
mod error;
mod frame;
mod mailbox;
pub mod queue;
mod uds;

pub use channel::{ChannelGroup, ChannelTransport};
pub use error::TransportError;
pub use frame::{Frame, Payload};
pub use uds::UdsTransport;

use std::time::Instant;

/// Wildcard source for matched receives and probes.
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag for matched receives and probes.
pub const ANY_TAG: i32 = -1;

/// One rank's endpoint in a fixed-size communicator group.
///
/// Implementations must provide ordered delivery per `(source,
/// destination)` pair and wake blocked [`Transport::match_deadline`]
/// callers on message arrival, death, poison or deadline expiry.
pub trait Transport: Send + Sync {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Number of ranks in the group.
    fn size(&self) -> usize;

    /// The instant the group was created (the `MPI_Wtime` origin).
    fn epoch(&self) -> Instant;

    /// Queue `frame` for delivery to `dest`. Fails fast with
    /// [`TransportError::Dead`] if `dest` is known dead and
    /// [`TransportError::Disconnected`] if the group is torn down.
    fn send(&self, dest: usize, frame: Frame) -> Result<(), TransportError>;

    /// Wait-loop core shared by probe and receive: block until a message
    /// matching `(src, tag)` (with [`ANY_SOURCE`] / [`ANY_TAG`]
    /// wildcards) is visible in this rank's mailbox, this rank dies, the
    /// group is poisoned, or `deadline` passes. `Ok(None)` means the
    /// deadline expired.
    ///
    /// With `consume == true` the matched frame is removed — unless it
    /// was truncated in flight, in which case
    /// [`TransportError::Truncated`] surfaces and the frame stays queued
    /// so the caller can [`Transport::discard`] it. With `consume ==
    /// false` the returned frame carries the metadata and an empty
    /// payload (a probe).
    fn match_deadline(
        &self,
        src: i32,
        tag: i32,
        deadline: Option<Instant>,
        consume: bool,
    ) -> Result<Option<Frame>, TransportError>;

    /// Non-blocking probe: metadata of the first visible matching frame,
    /// payload left queued.
    fn try_match(&self, src: i32, tag: i32) -> Result<Option<Frame>, TransportError>;

    /// Drop the next visible matching frame — even a truncated one that a
    /// consume refuses. Returns whether a frame was removed.
    fn discard(&self, src: i32, tag: i32) -> Result<bool, TransportError>;

    /// Administratively kill `rank` group-wide: pending messages to it
    /// are discarded, its blocked waits fail, and subsequent sends to it
    /// fail fast. Idempotent.
    fn kill(&self, rank: usize);

    /// Whether `rank` is known dead ([`Transport::kill`]ed).
    fn is_dead(&self, rank: usize) -> bool;

    /// Tear the whole group down: every blocked wait on every rank fails
    /// with [`TransportError::Disconnected`] instead of hanging.
    fn poison(&self);

    /// Block until every rank of the group has arrived. Reusable.
    fn barrier(&self);

    /// Whether a [`Payload::Shared`] send reaches the destination without
    /// copying the bytes (true only for in-process backends). Callers use
    /// this to account copy savings honestly.
    fn shares_memory(&self) -> bool {
        false
    }
}

/// `true` when `msg_src`/`msg_tag` match a `(src, tag)` selector with
/// wildcard support — the single matching rule every backend shares.
pub(crate) fn selector_matches(msg_src: usize, msg_tag: i32, src: i32, tag: i32) -> bool {
    (src == ANY_SOURCE || msg_src == src as usize) && (tag == ANY_TAG || msg_tag == tag)
}
