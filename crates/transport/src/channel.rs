//! The in-process backend: one mailbox per rank behind an `Arc`,
//! preserving the historical `minimpi` thread-world semantics bit for
//! bit — including zero-copy [`crate::Payload::Shared`] fan-out and the
//! group-state barrier that even severed ranks can pass.

use crate::error::TransportError;
use crate::frame::Frame;
use crate::mailbox::Mailbox;
use crate::Transport;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Instant;

struct BarrierState {
    arrived: usize,
    generation: u64,
}

/// Shared state of one in-process communicator group. Create one, then
/// hand each rank its [`ChannelTransport`] endpoint.
pub struct ChannelGroup {
    boxes: Vec<Arc<Mailbox>>,
    barrier: Mutex<BarrierState>,
    barrier_cond: Condvar,
    epoch: Instant,
}

impl ChannelGroup {
    /// A fresh group of `size` ranks.
    pub fn new(size: usize) -> Arc<Self> {
        Arc::new(ChannelGroup {
            boxes: (0..size).map(|r| Arc::new(Mailbox::new(r))).collect(),
            barrier: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            barrier_cond: Condvar::new(),
            epoch: Instant::now(),
        })
    }

    /// Tear the group down: wake every blocked receiver with a poison
    /// flag so nobody deadlocks when a rank panics.
    pub fn poison(&self) {
        for mb in &self.boxes {
            mb.poison();
        }
    }

    /// The endpoint for `rank`.
    pub fn endpoint(self: &Arc<Self>, rank: usize) -> ChannelTransport {
        assert!(rank < self.boxes.len(), "rank out of range");
        ChannelTransport {
            group: Arc::clone(self),
            rank,
        }
    }
}

/// One rank's endpoint in a [`ChannelGroup`].
pub struct ChannelTransport {
    group: Arc<ChannelGroup>,
    rank: usize,
}

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.group.boxes.len()
    }

    fn epoch(&self) -> Instant {
        self.group.epoch
    }

    fn send(&self, dest: usize, frame: Frame) -> Result<(), TransportError> {
        self.group.boxes[dest].push(frame)
    }

    fn match_deadline(
        &self,
        src: i32,
        tag: i32,
        deadline: Option<Instant>,
        consume: bool,
    ) -> Result<Option<Frame>, TransportError> {
        self.group.boxes[self.rank].match_deadline(src, tag, deadline, consume)
    }

    fn try_match(&self, src: i32, tag: i32) -> Result<Option<Frame>, TransportError> {
        self.group.boxes[self.rank].try_match(src, tag)
    }

    fn discard(&self, src: i32, tag: i32) -> Result<bool, TransportError> {
        self.group.boxes[self.rank].discard(src, tag)
    }

    fn kill(&self, rank: usize) {
        self.group.boxes[rank].kill();
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.group.boxes[rank].is_dead()
    }

    fn poison(&self) {
        self.group.poison();
    }

    fn barrier(&self) {
        let size = self.size();
        let mut st = self.group.barrier.lock();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == size {
            st.arrived = 0;
            st.generation += 1;
            self.group.barrier_cond.notify_all();
        } else {
            while st.generation == gen {
                self.group.barrier_cond.wait(&mut st);
            }
        }
    }

    fn shares_memory(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;
    use std::time::Duration;

    #[test]
    fn send_recv_ordered_per_pair() {
        let group = ChannelGroup::new(2);
        let a = group.endpoint(0);
        let b = group.endpoint(1);
        for i in 0..10u8 {
            a.send(1, Frame::new(0, 3, Payload::Owned(vec![i]))).unwrap();
        }
        for i in 0..10u8 {
            let m = b.match_deadline(0, 3, None, true).unwrap().unwrap();
            assert_eq!(m.payload.as_slice(), &[i]);
        }
    }

    #[test]
    fn deadline_expires_with_none() {
        let group = ChannelGroup::new(1);
        let t = group.endpoint(0);
        let got = t
            .match_deadline(-1, -1, Some(Instant::now() + Duration::from_millis(20)), true)
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn kill_fails_sends_fast_and_wakes_owner() {
        let group = ChannelGroup::new(2);
        let a = group.endpoint(0);
        let b = group.endpoint(1);
        a.kill(1);
        assert!(matches!(
            a.send(1, Frame::new(0, 0, Payload::Owned(vec![1]))),
            Err(TransportError::Dead(1))
        ));
        assert!(matches!(
            b.match_deadline(-1, -1, None, true),
            Err(TransportError::Dead(1))
        ));
        assert!(a.is_dead(1) && !a.is_dead(0));
    }

    #[test]
    fn poison_unblocks_receivers() {
        let group = ChannelGroup::new(1);
        let t = group.endpoint(0);
        t.poison();
        assert!(matches!(
            t.match_deadline(-1, -1, None, true),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn truncated_frame_surfaces_error_and_stays_queued() {
        let group = ChannelGroup::new(1);
        let t = group.endpoint(0);
        let mut f = Frame::new(0, 0, Payload::Owned(vec![9; 32]));
        f.payload.truncate(4);
        t.send(0, f).unwrap();
        for _ in 0..2 {
            assert!(matches!(
                t.match_deadline(0, 0, None, true),
                Err(TransportError::Truncated {
                    needed: 32,
                    capacity: 4
                })
            ));
        }
        assert!(t.discard(0, 0).unwrap());
        assert!(!t.discard(0, 0).unwrap());
    }
}
