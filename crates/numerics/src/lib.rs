//! Numerical substrate for the risk-management benchmark.
//!
//! This crate provides the low-level numerical building blocks that the
//! pricing library (`pricing`) is built on: dense and banded linear algebra,
//! the normal distribution (CDF, PDF, quantile), random-number generation
//! helpers (Gaussian variates, correlated vectors, antithetic streams,
//! low-discrepancy sequences), interpolation and polynomial bases for
//! regression, and streaming statistics.
//!
//! Everything is implemented from scratch (no LAPACK/BLAS) because the
//! reproduction must be self-contained; the algorithms are the classic
//! textbook ones (Thomas algorithm, Cholesky, Householder QR, Moro inverse
//! normal, Welford variance) with tests validating them against analytically
//! known cases.

// Numerical code idiom: published constants keep their full printed
// precision, and index loops over multiple coupled arrays stay explicit.
#![warn(missing_docs)]
#![allow(clippy::excessive_precision, clippy::needless_range_loop)]

pub mod dist;
pub mod interp;
pub mod linalg;
pub mod poly;
pub mod rng;
pub mod sobol;
pub mod stats;

pub use dist::{norm_cdf, norm_inv_cdf, norm_pdf};
pub use linalg::{cholesky, solve_dense, solve_tridiagonal, Tridiagonal};
pub use rng::{CorrelatedNormals, NormalGen};
pub use stats::RunningStats;
