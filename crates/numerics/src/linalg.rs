//! Dense and banded linear algebra.
//!
//! The PDE pricer needs a tridiagonal solver (Thomas algorithm) executed
//! thousands of times per option; the Monte-Carlo basket pricer needs a
//! Cholesky factor of the asset correlation matrix; the Longstaff–Schwartz
//! regression needs a least-squares solver (here: Householder QR with
//! column back-substitution, falling back to normal equations never).
//!
//! Matrices are stored row-major in flat `Vec<f64>`s; the sizes in this
//! benchmark are tiny (correlation matrices up to 40×40, regression bases
//! up to ~10 columns), so cache blocking is unnecessary — clarity wins.

/// A tridiagonal matrix `(sub, diag, sup)` of dimension `n`:
/// `sub` has length `n-1` (entries below the diagonal), `diag` length `n`,
/// `sup` length `n-1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonal {
    /// Entries below the diagonal (length n−1).
    pub sub: Vec<f64>,
    /// Diagonal entries (length n).
    pub diag: Vec<f64>,
    /// Entries above the diagonal (length n−1).
    pub sup: Vec<f64>,
}

impl Tridiagonal {
    /// Build a tridiagonal matrix; panics if the band lengths are
    /// inconsistent.
    pub fn new(sub: Vec<f64>, diag: Vec<f64>, sup: Vec<f64>) -> Self {
        let n = diag.len();
        assert!(n >= 1, "empty tridiagonal system");
        assert_eq!(sub.len(), n - 1, "sub-diagonal must have n-1 entries");
        assert_eq!(sup.len(), n - 1, "super-diagonal must have n-1 entries");
        Tridiagonal { sub, diag, sup }
    }

    /// Dimension of the system.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Matrix–vector product `A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(x.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = self.diag[i] * x[i];
            if i > 0 {
                acc += self.sub[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                acc += self.sup[i] * x[i + 1];
            }
            y[i] = acc;
        }
        y
    }
}

/// Solve the tridiagonal system `A x = d` with the Thomas algorithm.
///
/// The standard elimination without pivoting; valid for the diagonally
/// dominant systems produced by θ-scheme discretisations of the
/// Black–Scholes operator. Returns `None` when a pivot underflows (system
/// numerically singular).
pub fn solve_tridiagonal(a: &Tridiagonal, d: &[f64]) -> Option<Vec<f64>> {
    let n = a.n();
    assert_eq!(d.len(), n);
    let mut c_star = vec![0.0; n];
    let mut d_star = vec![0.0; n];
    let mut denom = a.diag[0];
    if denom.abs() < 1e-300 {
        return None;
    }
    c_star[0] = if n > 1 { a.sup[0] / denom } else { 0.0 };
    d_star[0] = d[0] / denom;
    for i in 1..n {
        denom = a.diag[i] - a.sub[i - 1] * c_star[i - 1];
        if denom.abs() < 1e-300 {
            return None;
        }
        if i + 1 < n {
            c_star[i] = a.sup[i] / denom;
        }
        d_star[i] = (d[i] - a.sub[i - 1] * d_star[i - 1]) / denom;
    }
    let mut x = d_star;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c_star[i] * next;
    }
    Some(x)
}

/// Solve a dense system `A x = b` by Gaussian elimination with partial
/// pivoting. `a` is row-major `n*n`; `a` and `b` are consumed. Returns
/// `None` for a singular matrix. Used for validation and for the small
/// regression systems where QR is overkill.
pub fn solve_dense(mut a: Vec<f64>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for row in col + 1..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                piv = row;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if piv != col {
            for k in 0..n {
                a.swap(col * n + k, piv * n + k);
            }
            b.swap(col, piv);
        }
        let inv = 1.0 / a[col * n + col];
        for row in col + 1..n {
            let f = a[row * n + col] * inv;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= f * a[col * n + k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

/// Cholesky factorisation of a symmetric positive-definite matrix.
///
/// `a` is row-major `n*n`; returns the lower-triangular factor `L`
/// (row-major, upper part zeroed) with `L Lᵀ = A`, or `None` if the matrix
/// is not positive definite. Used to correlate Gaussian draws for basket
/// options.
pub fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Least squares `min ‖A x − b‖₂` via Householder QR.
///
/// `a` is row-major `m*n` with `m ≥ n`; returns the coefficient vector of
/// length `n`. This is the solver behind the Longstaff–Schwartz regression;
/// QR keeps the conditioning of the polynomial basis manageable.
pub fn lstsq(a: &[f64], m: usize, n: usize, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), m);
    assert!(m >= n, "least squares needs m >= n");
    let mut r = a.to_vec();
    let mut qtb = b.to_vec();
    // Rank tolerance relative to the matrix scale: a column whose remaining
    // norm falls below this is treated as linearly dependent.
    let scale = a.iter().fold(0.0_f64, |mx, &x| mx.max(x.abs())).max(1e-300);
    let tol = scale * 1e-10 * m as f64;
    for k in 0..n {
        // Householder vector for column k.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[i * n + k] * r[i * n + k];
        }
        let norm = norm.sqrt();
        if norm < tol {
            return None;
        }
        let alpha = if r[k * n + k] > 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - k];
        v[0] = r[k * n + k] - alpha;
        for i in k + 1..m {
            v[i - k] = r[i * n + k];
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        if vtv < 1e-300 {
            continue;
        }
        r[k * n + k] = alpha;
        for i in k + 1..m {
            r[i * n + k] = 0.0;
        }
        // Apply H = I - 2 v vᵀ / vᵀv to remaining columns and to b.
        for j in k + 1..n {
            let mut dot = 0.0;
            for i in k..m {
                let vi = if i == k { v[0] } else { v[i - k] };
                dot += vi * r[i * n + j];
            }
            let f = 2.0 * dot / vtv;
            for i in k..m {
                let vi = if i == k { v[0] } else { v[i - k] };
                r[i * n + j] -= f * vi;
            }
        }
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * qtb[i];
        }
        let f = 2.0 * dot / vtv;
        for i in k..m {
            qtb[i] -= f * v[i - k];
        }
    }
    // Back substitution on the upper triangle of R.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = qtb[row];
        for k in row + 1..n {
            acc -= r[row * n + k] * x[k];
        }
        let d = r[row * n + row];
        if d.abs() < tol {
            return None;
        }
        x[row] = acc / d;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thomas_solves_known_system() {
        // A = [[2,1,0],[1,2,1],[0,1,2]], x = [1,2,3] -> d = [4,8,8]
        let a = Tridiagonal::new(vec![1.0, 1.0], vec![2.0, 2.0, 2.0], vec![1.0, 1.0]);
        let x = solve_tridiagonal(&a, &[4.0, 8.0, 8.0]).unwrap();
        for (xi, want) in x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((xi - want).abs() < 1e-12);
        }
    }

    #[test]
    fn thomas_matches_dense_solver() {
        let n = 64;
        let sub = vec![-0.4; n - 1];
        let diag = vec![2.2; n];
        let sup = vec![-0.7; n - 1];
        let tri = Tridiagonal::new(sub.clone(), diag.clone(), sup.clone());
        let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = solve_tridiagonal(&tri, &d).unwrap();
        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            dense[i * n + i] = diag[i];
            if i > 0 {
                dense[i * n + i - 1] = sub[i - 1];
            }
            if i + 1 < n {
                dense[i * n + i + 1] = sup[i];
            }
        }
        let xd = solve_dense(dense, d).unwrap();
        for (a, b) in x.iter().zip(&xd) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn thomas_single_element() {
        let a = Tridiagonal::new(vec![], vec![4.0], vec![]);
        let x = solve_tridiagonal(&a, &[8.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn thomas_residual_is_small() {
        let n = 200;
        let tri = Tridiagonal::new(vec![1.0; n - 1], vec![4.0; n], vec![1.5; n - 1]);
        let d: Vec<f64> = (0..n).map(|i| ((i * i) as f64).cos()).collect();
        let x = solve_tridiagonal(&tri, &d).unwrap();
        let r = tri.mul_vec(&x);
        for (ri, di) in r.iter().zip(&d) {
            assert!((ri - di).abs() < 1e-10);
        }
    }

    #[test]
    fn thomas_detects_singular() {
        let a = Tridiagonal::new(vec![0.0], vec![0.0, 1.0], vec![0.0]);
        assert!(solve_tridiagonal(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn dense_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_dense(a, vec![3.0, -7.0]).unwrap();
        assert_eq!(x, vec![3.0, -7.0]);
    }

    #[test]
    fn dense_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_dense(a, vec![2.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn dense_singular_returns_none() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]]
        let l = cholesky(&[4.0, 2.0, 2.0, 3.0], 2).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-14);
        assert!((l[2] - 1.0).abs() < 1e-14);
        assert!((l[3] - 2.0_f64.sqrt()).abs() < 1e-14);
        assert_eq!(l[1], 0.0);
    }

    #[test]
    fn cholesky_reconstructs() {
        // Correlation matrix with constant off-diagonal rho, like the
        // basket pricer uses.
        let n = 7;
        let rho = 0.3;
        let mut a = vec![rho; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let l = cholesky(&a, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += l[i * n + k] * l[j * n + k];
                }
                assert!((acc - a[i * n + j]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky(&a, 2).is_none());
    }

    #[test]
    fn lstsq_exact_fit() {
        // Fit y = 2 + 3x exactly with basis [1, x].
        let xs = [0.0, 1.0, 2.0, 3.0];
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &x in &xs {
            a.extend_from_slice(&[1.0, x]);
            b.push(2.0 + 3.0 * x);
        }
        let c = lstsq(&a, 4, 2, &b).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-12);
        assert!((c[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_overdetermined_matches_normal_equations() {
        // Noisy quadratic; compare with the normal-equation solution via
        // the dense solver.
        let m = 40;
        let n = 3;
        let mut a = Vec::with_capacity(m * n);
        let mut b = Vec::with_capacity(m);
        for i in 0..m {
            let x = i as f64 / m as f64 * 4.0 - 2.0;
            a.extend_from_slice(&[1.0, x, x * x]);
            b.push(1.0 - 0.5 * x + 0.25 * x * x + (i as f64 * 12.9898).sin() * 0.01);
        }
        let qr = lstsq(&a, m, n, &b).unwrap();
        // Normal equations AᵀA x = Aᵀ b
        let mut ata = vec![0.0; n * n];
        let mut atb = vec![0.0; n];
        for i in 0..m {
            for p in 0..n {
                atb[p] += a[i * n + p] * b[i];
                for q in 0..n {
                    ata[p * n + q] += a[i * n + p] * a[i * n + q];
                }
            }
        }
        let ne = solve_dense(ata, atb).unwrap();
        for (x, y) in qr.iter().zip(&ne) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn lstsq_rank_deficient_returns_none() {
        // Two identical columns.
        let a = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert!(lstsq(&a, 3, 2, &[1.0, 2.0, 3.0]).is_none());
    }
}
