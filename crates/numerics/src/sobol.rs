//! Low-discrepancy sequences for quasi-Monte-Carlo pricing.
//!
//! Two generators are provided:
//!
//! * [`Halton`] — the radical-inverse Halton sequence in arbitrary
//!   dimension (prime bases), adequate for the moderate dimensions used in
//!   the local-volatility pricer;
//! * [`Sobol`] — a Gray-code Sobol' generator with Joe–Kuo style direction
//!   numbers for the first 16 dimensions, used by the ablation benchmarks
//!   comparing pseudo- vs quasi-Monte-Carlo.
//!
//! Both return points in the open unit cube (0 is skipped / shifted) so the
//! points can be pushed through the inverse normal CDF safely.

/// First 64 primes, bases of the Halton sequence.
const PRIMES: [u32; 64] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311,
];

/// Radical inverse of `n` in base `b`.
fn radical_inverse(mut n: u64, b: u64) -> f64 {
    let inv = 1.0 / b as f64;
    let mut result = 0.0;
    let mut f = inv;
    while n > 0 {
        result += (n % b) as f64 * f;
        n /= b;
        f *= inv;
    }
    result
}

/// The Halton low-discrepancy sequence in `dim` dimensions (dim ≤ 64).
#[derive(Debug, Clone)]
pub struct Halton {
    dim: usize,
    index: u64,
}

impl Halton {
    /// Construct with validation; panics on invalid parameters.
    pub fn new(dim: usize) -> Self {
        assert!(
            dim >= 1 && dim <= PRIMES.len(),
            "Halton supports 1..=64 dims"
        );
        // Start at index 1 so no coordinate is exactly 0.
        Halton { dim, index: 1 }
    }

    /// Dimension of generated points/vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Write the next point into `out`.
    pub fn next_point(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim);
        for (d, x) in out.iter_mut().enumerate() {
            *x = radical_inverse(self.index, PRIMES[d] as u64);
        }
        self.index += 1;
    }
}

/// Primitive-polynomial data for Sobol dimensions 2..=16
/// (dimension 1 is the van der Corput sequence).
/// Format: (degree, coefficient bits a, initial direction numbers m).
const SOBOL_DATA: [(u32, u32, [u32; 8]); 15] = [
    (1, 0, [1, 0, 0, 0, 0, 0, 0, 0]),
    (2, 1, [1, 3, 0, 0, 0, 0, 0, 0]),
    (3, 1, [1, 3, 1, 0, 0, 0, 0, 0]),
    (3, 2, [1, 1, 1, 0, 0, 0, 0, 0]),
    (4, 1, [1, 1, 3, 3, 0, 0, 0, 0]),
    (4, 4, [1, 3, 5, 13, 0, 0, 0, 0]),
    (5, 2, [1, 1, 5, 5, 17, 0, 0, 0]),
    (5, 4, [1, 1, 5, 5, 5, 0, 0, 0]),
    (5, 7, [1, 1, 7, 11, 19, 0, 0, 0]),
    (5, 11, [1, 1, 5, 1, 1, 0, 0, 0]),
    (5, 13, [1, 1, 1, 3, 11, 0, 0, 0]),
    (5, 14, [1, 3, 5, 5, 31, 0, 0, 0]),
    (6, 1, [1, 3, 3, 9, 7, 49, 0, 0]),
    (6, 13, [1, 1, 1, 15, 21, 21, 0, 0]),
    (6, 16, [1, 3, 1, 13, 27, 49, 0, 0]),
];

const SOBOL_BITS: u32 = 52;

/// Gray-code Sobol' sequence generator, up to 16 dimensions.
#[derive(Debug, Clone)]
pub struct Sobol {
    dim: usize,
    /// Direction numbers `v[d][j]` scaled to 52-bit integers.
    directions: Vec<[u64; SOBOL_BITS as usize]>,
    state: Vec<u64>,
    index: u64,
}

impl Sobol {
    /// Largest supported dimension.
    pub fn max_dim() -> usize {
        SOBOL_DATA.len() + 1
    }

    /// Construct with validation; panics on invalid parameters.
    pub fn new(dim: usize) -> Self {
        assert!(
            dim >= 1 && dim <= Self::max_dim(),
            "Sobol supports 1..=16 dims"
        );
        let mut directions = Vec::with_capacity(dim);
        // Dimension 1: van der Corput, v_j = 2^(bits-j).
        let mut v0 = [0u64; SOBOL_BITS as usize];
        for (j, v) in v0.iter_mut().enumerate() {
            *v = 1u64 << (SOBOL_BITS as usize - 1 - j);
        }
        directions.push(v0);
        for d in 1..dim {
            let (s, a, m) = SOBOL_DATA[d - 1];
            let s = s as usize;
            let mut v = [0u64; SOBOL_BITS as usize];
            for j in 0..SOBOL_BITS as usize {
                if j < s {
                    v[j] = (m[j] as u64) << (SOBOL_BITS as usize - 1 - j);
                } else {
                    let mut val = v[j - s] ^ (v[j - s] >> s);
                    for k in 1..s {
                        if (a >> (s - 1 - k)) & 1 == 1 {
                            val ^= v[j - k];
                        }
                    }
                    v[j] = val;
                }
            }
            directions.push(v);
        }
        Sobol {
            dim,
            directions,
            state: vec![0; dim],
            index: 0,
        }
    }

    /// Dimension of generated points/vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Write the next point into `out`; coordinates lie in (0,1).
    pub fn next_point(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim);
        // Gray-code update: flip the direction number of the lowest zero
        // bit of the running index.
        let c = (!self.index).trailing_zeros().min(SOBOL_BITS - 1) as usize;
        for d in 0..self.dim {
            self.state[d] ^= self.directions[d][c];
        }
        self.index += 1;
        let scale = 1.0 / (1u64 << SOBOL_BITS) as f64;
        for d in 0..self.dim {
            // Shift by half an ulp so no coordinate is exactly 0.
            out[d] = (self.state[d] as f64 + 0.5) * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halton_first_points_base2_base3() {
        let mut h = Halton::new(2);
        let mut p = [0.0; 2];
        h.next_point(&mut p);
        assert!((p[0] - 0.5).abs() < 1e-15); // 1 in base 2
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-15); // 1 in base 3
        h.next_point(&mut p);
        assert!((p[0] - 0.25).abs() < 1e-15); // 2 in base 2
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-15);
        h.next_point(&mut p);
        assert!((p[0] - 0.75).abs() < 1e-15); // 3 in base 2
        assert!((p[1] - 1.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn halton_in_unit_cube() {
        let mut h = Halton::new(10);
        let mut p = vec![0.0; 10];
        for _ in 0..1000 {
            h.next_point(&mut p);
            for &x in &p {
                assert!(x > 0.0 && x < 1.0);
            }
        }
    }

    #[test]
    fn sobol_dimension_one_is_van_der_corput() {
        let mut s = Sobol::new(1);
        let mut p = [0.0];
        let mut seen = Vec::new();
        for _ in 0..8 {
            s.next_point(&mut p);
            seen.push(p[0]);
        }
        // First Sobol points in dim 1: 1/2, 3/4, 1/4, 3/8, 7/8, 5/8, 1/8, 3/16
        let expect = [0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125, 0.1875];
        for (a, b) in seen.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn sobol_points_distinct_and_in_cube() {
        let mut s = Sobol::new(16);
        let mut p = vec![0.0; 16];
        let mut prev = vec![-1.0; 16];
        for _ in 0..4096 {
            s.next_point(&mut p);
            assert_ne!(p, prev);
            for &x in &p {
                assert!(x > 0.0 && x < 1.0);
            }
            prev.copy_from_slice(&p);
        }
    }

    #[test]
    fn sobol_integrates_better_than_grid_average() {
        // Integrate f(x,y)=x*y over the unit square (exact 0.25) — Sobol
        // with 1024 points should be well within 1e-3.
        let mut s = Sobol::new(2);
        let mut p = [0.0; 2];
        let n = 1024;
        let mut acc = 0.0;
        for _ in 0..n {
            s.next_point(&mut p);
            acc += p[0] * p[1];
        }
        let est = acc / n as f64;
        assert!((est - 0.25).abs() < 1e-3, "est {est}");
    }

    #[test]
    fn halton_integration_converges() {
        let mut h = Halton::new(3);
        let mut p = [0.0; 3];
        let n = 4096;
        let mut acc = 0.0;
        for _ in 0..n {
            h.next_point(&mut p);
            acc += p.iter().sum::<f64>();
        }
        assert!((acc / n as f64 - 1.5).abs() < 5e-3);
    }

    #[test]
    #[should_panic]
    fn sobol_rejects_too_many_dims() {
        Sobol::new(17);
    }
}
