//! Interpolation utilities.
//!
//! The PDE pricer reads prices and deltas off a space grid that rarely has
//! a node exactly at the spot, so it interpolates; the local-volatility
//! model interpolates a volatility surface in (time, spot).

/// Piecewise-linear interpolation on a strictly increasing grid.
///
/// Outside the grid the value is clamped to the end values (flat
/// extrapolation), which is the conventional choice for reading
/// PDE solutions near the grid boundary.
pub fn linear(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(!xs.is_empty(), "empty interpolation grid");
    if x <= xs[0] {
        return ys[0];
    }
    let n = xs.len();
    if x >= xs[n - 1] {
        return ys[n - 1];
    }
    // Binary search for the bracketing interval.
    let mut lo = 0;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    ys[lo] + t * (ys[hi] - ys[lo])
}

/// Derivative estimate of tabulated data at `x`: central difference of the
/// linear interpolant with grid-scaled step. Used to read the delta off the
/// PDE grid.
pub fn derivative(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert!(xs.len() >= 2);
    let h = (xs[xs.len() - 1] - xs[0]) / (xs.len() as f64 - 1.0);
    (linear(xs, ys, x + h) - linear(xs, ys, x - h)) / (2.0 * h)
}

/// Bilinear interpolation on a rectangular grid.
///
/// `zs` is row-major with `zs[i * xs.len() + j] = f(ts[i], xs[j])`; flat
/// extrapolation outside the rectangle. Used for local-volatility surfaces.
pub fn bilinear(ts: &[f64], xs: &[f64], zs: &[f64], t: f64, x: f64) -> f64 {
    assert_eq!(zs.len(), ts.len() * xs.len());
    let row = |i: usize| &zs[i * xs.len()..(i + 1) * xs.len()];
    if ts.len() == 1 {
        return linear(xs, row(0), x);
    }
    if t <= ts[0] {
        return linear(xs, row(0), x);
    }
    let m = ts.len();
    if t >= ts[m - 1] {
        return linear(xs, row(m - 1), x);
    }
    let mut lo = 0;
    let mut hi = m - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if ts[mid] <= t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let a = linear(xs, row(lo), x);
    let b = linear(xs, row(hi), x);
    let w = (t - ts[lo]) / (ts[hi] - ts[lo]);
    a + w * (b - a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_nodes() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [2.0, 4.0, -1.0];
        for i in 0..3 {
            assert_eq!(linear(&xs, &ys, xs[i]), ys[i]);
        }
    }

    #[test]
    fn linear_interpolates_midpoints() {
        let xs = [0.0, 2.0];
        let ys = [0.0, 10.0];
        assert!((linear(&xs, &ys, 0.5) - 2.5).abs() < 1e-14);
        assert!((linear(&xs, &ys, 1.5) - 7.5).abs() < 1e-14);
    }

    #[test]
    fn linear_clamps_outside() {
        let xs = [1.0, 2.0];
        let ys = [5.0, 6.0];
        assert_eq!(linear(&xs, &ys, 0.0), 5.0);
        assert_eq!(linear(&xs, &ys, 9.0), 6.0);
    }

    #[test]
    fn linear_exact_on_affine_function() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        for i in 0..490 {
            let x = i as f64 * 0.01;
            assert!((linear(&xs, &ys, x) - (3.0 * x - 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_of_affine() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((derivative(&xs, &ys, 4.5) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn bilinear_exact_on_bilinear_function() {
        let ts: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let xs: Vec<f64> = (0..7).map(|j| j as f64 * 0.5).collect();
        let f = |t: f64, x: f64| 1.0 + 2.0 * t + 3.0 * x;
        let mut zs = Vec::new();
        for &t in &ts {
            for &x in &xs {
                zs.push(f(t, x));
            }
        }
        for i in 0..40 {
            for j in 0..30 {
                let t = i as f64 * 0.1;
                let x = j as f64 * 0.1;
                assert!((bilinear(&ts, &xs, &zs, t, x) - f(t, x)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bilinear_single_time_row() {
        let ts = [0.0];
        let xs = [0.0, 1.0];
        let zs = [1.0, 3.0];
        assert!((bilinear(&ts, &xs, &zs, 5.0, 0.5) - 2.0).abs() < 1e-14);
    }
}
