//! The standard normal distribution: density, cumulative distribution and
//! quantile (inverse CDF).
//!
//! `norm_cdf` uses the Cody rational-approximation of `erfc` (double
//! precision, relative error below 1e-15 on the whole axis), which is the
//! same accuracy class as the implementation shipped in Premia.  The
//! quantile uses Moro's refinement of the Beasley–Springer algorithm, the
//! de-facto standard in Monte-Carlo option pricing.

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// Density of the standard normal distribution.
#[inline]
pub fn norm_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * PI).sqrt()
}

/// Cumulative distribution function of the standard normal distribution.
#[inline]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * FRAC_1_SQRT_2)
}

/// Complementary error function, Cody's rational Chebyshev approximation
/// (W. J. Cody, "Rational Chebyshev approximation for the error function",
/// Math. Comp. 23 (1969)).
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let z = if ax < 0.5 {
        // erf via the first rational approximation.
        return 1.0 - erf(x);
    } else if ax < 4.0 {
        // erfc on [0.5, 4.0]
        const P: [f64; 9] = [
            5.64188496988670089e-1,
            8.88314979438837594,
            6.61191906371416295e1,
            2.98635138197400131e2,
            8.81952221241769090e2,
            1.71204761263407058e3,
            2.05107837782607147e3,
            1.23033935479799725e3,
            2.15311535474403846e-8,
        ];
        const Q: [f64; 8] = [
            1.57449261107098347e1,
            1.17693950891312499e2,
            5.37181101862009858e2,
            1.62138957456669019e3,
            3.29079923573345963e3,
            4.36261909014324716e3,
            3.43936767414372164e3,
            1.23033935480374942e3,
        ];
        let mut num = P[8] * ax;
        let mut den = ax;
        for i in 0..7 {
            num = (num + P[i]) * ax;
            den = (den + Q[i]) * ax;
        }
        ((num + P[7]) / (den + Q[7])) * (-ax * ax).exp()
    } else {
        // erfc on [4, inf)
        const P: [f64; 6] = [
            3.05326634961232344e-1,
            3.60344899949804439e-1,
            1.25781726111229246e-1,
            1.60837851487422766e-2,
            6.58749161529837803e-4,
            1.63153871373020978e-2,
        ];
        const Q: [f64; 5] = [
            2.56852019228982242,
            1.87295284992346047,
            5.27905102951428412e-1,
            6.05183413124413191e-2,
            2.33520497626869185e-3,
        ];
        let inv2 = 1.0 / (ax * ax);
        let mut num = P[5] * inv2;
        let mut den = inv2;
        for i in 0..4 {
            num = (num + P[i]) * inv2;
            den = (den + Q[i]) * inv2;
        }
        let r = inv2 * (num + P[4]) / (den + Q[4]);
        ((-ax * ax).exp() / ax) * (FRAC_1_SQRT_PI - r)
    };
    if x < 0.0 {
        2.0 - z
    } else {
        z
    }
}

const FRAC_1_SQRT_PI: f64 = 0.564189583547756287;

/// Error function for |x| < 0.5 (Cody), extended to the whole axis through
/// `erfc` for larger arguments.
pub fn erf(x: f64) -> f64 {
    let ax = x.abs();
    if ax >= 0.5 {
        let v = 1.0 - erfc(ax);
        return if x < 0.0 { -v } else { v };
    }
    // Maclaurin series: erf(x) = 2/sqrt(pi) * sum (-1)^n x^{2n+1} / (n! (2n+1)).
    // For |x| < 0.5 the terms decay like (x^2/n)^n; 20 terms give full
    // double precision.
    let z = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..24 {
        term *= -z / n as f64;
        sum += term / (2.0 * n as f64 + 1.0);
        if term.abs() < 1e-18 {
            break;
        }
    }
    2.0 * FRAC_1_SQRT_PI * sum
}

/// Inverse of the standard normal CDF (quantile function).
///
/// Moro's algorithm ("The full Monte", Risk 8(2), 1995): Beasley–Springer
/// rational approximation in the central region, a Chebyshev-fitted tail
/// expansion outside. Absolute error below 3e-9 everywhere, which is ample
/// for Monte-Carlo use.
pub fn norm_inv_cdf(u: f64) -> f64 {
    assert!(
        u > 0.0 && u < 1.0,
        "norm_inv_cdf argument must be in (0,1), got {u}"
    );
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = u - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        let num = y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0]);
        let den = (((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0;
        num / den
    } else {
        let r = if y > 0.0 { 1.0 - u } else { u };
        let s = (-(r.ln())).ln();
        let mut t = C[8];
        for i in (0..8).rev() {
            t = t * s + C[i];
        }
        if y < 0.0 {
            -t
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_at_zero_is_half() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn cdf_known_values() {
        // Values from standard tables (15 digits via mpmath).
        assert!((norm_cdf(1.0) - 0.841344746068543).abs() < 1e-12);
        assert!((norm_cdf(-1.0) - 0.158655253931457).abs() < 1e-12);
        assert!((norm_cdf(1.959963984540054) - 0.975).abs() < 1e-12);
        assert!((norm_cdf(3.0) - 0.998650101968370).abs() < 1e-12);
        assert!((norm_cdf(-3.0) - 0.001349898031630).abs() < 1e-12);
        assert!((norm_cdf(5.0) - 0.999999713348428).abs() < 1e-12);
    }

    #[test]
    fn cdf_symmetry() {
        for i in 0..200 {
            let x = -5.0 + i as f64 * 0.05;
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-14, "x={x}");
        }
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = norm_cdf(-8.0);
        for i in 1..=320 {
            let x = -8.0 + i as f64 * 0.05;
            let c = norm_cdf(x);
            assert!(c >= prev, "CDF not monotone at x={x}");
            prev = c;
        }
    }

    #[test]
    fn pdf_integrates_to_cdf_derivative() {
        // Central difference of the CDF should match the PDF.
        for i in 0..100 {
            let x = -4.0 + i as f64 * 0.08;
            let h = 1e-5;
            let d = (norm_cdf(x + h) - norm_cdf(x - h)) / (2.0 * h);
            assert!((d - norm_pdf(x)).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for i in 1..999 {
            let u = i as f64 / 1000.0;
            let x = norm_inv_cdf(u);
            assert!((norm_cdf(x) - u).abs() < 1e-8, "u={u} x={x}");
        }
    }

    #[test]
    fn quantile_tails() {
        for &u in &[1e-10, 1e-8, 1e-6, 1.0 - 1e-6, 1.0 - 1e-8] {
            let x = norm_inv_cdf(u);
            assert!(
                (norm_cdf(x) - u).abs() / u.min(1.0 - u) < 1e-4,
                "u={u} x={x}"
            );
        }
    }

    #[test]
    fn quantile_symmetry() {
        for i in 1..500 {
            let u = i as f64 / 1000.0;
            assert!((norm_inv_cdf(u) + norm_inv_cdf(1.0 - u)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        norm_inv_cdf(0.0);
    }

    #[test]
    fn erf_small_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(0.1) - 0.112462916018285).abs() < 1e-12);
        assert!((erf(0.4) - 0.428392355046668).abs() < 1e-12);
        assert!((erf(-0.4) + 0.428392355046668).abs() < 1e-12);
    }
}
