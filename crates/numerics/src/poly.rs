//! Polynomial bases for the Longstaff–Schwartz regression.
//!
//! Premia's American Monte-Carlo methods regress continuation values on a
//! small polynomial basis of the (possibly multi-dimensional) asset state.
//! We provide plain monomials and weighted Laguerre polynomials (the basis
//! used in the original Longstaff–Schwartz paper), plus a multi-dimensional
//! basis built from total-degree monomials of the basket average — the
//! standard dimension-reduction trick for high-dimensional American puts.

/// Which 1-D polynomial family to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisKind {
    /// 1, x, x², …
    Monomial,
    /// e^{-x/2} L_k(x) — Laguerre, as in Longstaff & Schwartz (2001).
    Laguerre,
}

/// Evaluate the first `count` basis functions at `x` into `out`.
pub fn eval_basis(kind: BasisKind, x: f64, out: &mut [f64]) {
    let count = out.len();
    if count == 0 {
        return;
    }
    match kind {
        BasisKind::Monomial => {
            out[0] = 1.0;
            for k in 1..count {
                out[k] = out[k - 1] * x;
            }
        }
        BasisKind::Laguerre => {
            // Recurrence L_{k+1}(x) = ((2k+1-x) L_k - k L_{k-1})/(k+1),
            // damped by exp(-x/2).
            let w = (-x / 2.0).exp();
            out[0] = w;
            if count > 1 {
                out[1] = w * (1.0 - x);
            }
            for k in 1..count.saturating_sub(1) {
                let kf = k as f64;
                let lk = out[k] / w;
                let lkm1 = out[k - 1] / w;
                out[k + 1] = w * (((2.0 * kf + 1.0 - x) * lk - kf * lkm1) / (kf + 1.0));
            }
        }
    }
}

/// A regression basis over a (possibly multi-dimensional) state vector.
///
/// For dimension 1 the state is the asset price itself; for dimension > 1
/// the basis is built from the arithmetic basket average — payoffs of the
/// paper's basket puts depend on the average, so this is the natural
/// projected state.
#[derive(Debug, Clone)]
pub struct RegressionBasis {
    /// Polynomial family.
    pub kind: BasisKind,
    /// Highest polynomial degree.
    pub degree: usize,
}

impl RegressionBasis {
    /// Construct with validation; panics on invalid parameters.
    pub fn new(kind: BasisKind, degree: usize) -> Self {
        assert!(degree >= 1, "regression basis needs at least degree 1");
        RegressionBasis { kind, degree }
    }

    /// Number of basis functions (degree + constant term).
    pub fn len(&self) -> usize {
        self.degree + 1
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluate at a state vector: the scalar feature is the mean of the
    /// coordinates (identity in 1-D), normalised by `scale` (typically the
    /// spot) to keep the basis well conditioned.
    pub fn eval(&self, state: &[f64], scale: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.len());
        let mean = state.iter().sum::<f64>() / state.len() as f64;
        eval_basis(self.kind, mean / scale, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomials_are_powers() {
        let mut out = [0.0; 5];
        eval_basis(BasisKind::Monomial, 2.0, &mut out);
        assert_eq!(out, [1.0, 2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn laguerre_first_three_match_formulas() {
        // L0=1, L1=1-x, L2=1-2x+x²/2, all damped by e^{-x/2}.
        let x = 0.7;
        let w = (-x / 2.0_f64).exp();
        let mut out = [0.0; 3];
        eval_basis(BasisKind::Laguerre, x, &mut out);
        assert!((out[0] - w).abs() < 1e-14);
        assert!((out[1] - w * (1.0 - x)).abs() < 1e-14);
        assert!((out[2] - w * (1.0 - 2.0 * x + x * x / 2.0)).abs() < 1e-13);
    }

    #[test]
    fn laguerre_recurrence_consistent_at_zero() {
        // L_k(0) = 1 for all k.
        let mut out = [0.0; 6];
        eval_basis(BasisKind::Laguerre, 0.0, &mut out);
        for &v in &out {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn regression_basis_uses_mean_state() {
        let basis = RegressionBasis::new(BasisKind::Monomial, 2);
        let mut out = [0.0; 3];
        basis.eval(&[2.0, 4.0], 1.0, &mut out); // mean = 3
        assert_eq!(out, [1.0, 3.0, 9.0]);
    }

    #[test]
    fn regression_basis_scaling() {
        let basis = RegressionBasis::new(BasisKind::Monomial, 1);
        let mut out = [0.0; 2];
        basis.eval(&[100.0], 100.0, &mut out);
        assert_eq!(out, [1.0, 1.0]);
    }

    #[test]
    fn empty_output_is_noop() {
        let mut out: [f64; 0] = [];
        eval_basis(BasisKind::Monomial, 1.0, &mut out);
    }
}
