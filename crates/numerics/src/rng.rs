//! Random-variate generation for Monte-Carlo pricing.
//!
//! Wraps any [`rand::RngCore`] source with the transforms the pricers need:
//! standard normal draws (Marsaglia polar method with a cached spare),
//! correlated Gaussian vectors through a Cholesky factor, and an antithetic
//! stream adapter used for variance reduction.

use crate::linalg::cholesky;
use rand::Rng;

/// Standard normal generator using the Marsaglia polar method.
///
/// The polar method produces pairs; the second draw is cached so every call
/// consumes on average one uniform pair per two normals — measurably faster
/// than inverse-CDF sampling for the plain pricers, while the inverse CDF is
/// kept for quasi-Monte-Carlo where the order of draws matters.
#[derive(Debug, Clone)]
pub struct NormalGen {
    spare: Option<f64>,
}

impl Default for NormalGen {
    fn default() -> Self {
        Self::new()
    }
}

impl NormalGen {
    /// Construct with validation; panics on invalid parameters.
    pub fn new() -> Self {
        NormalGen { spare: None }
    }

    /// Draw one standard normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Fill `out` with independent standard normals.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for x in out.iter_mut() {
            *x = self.sample(rng);
        }
    }
}

/// Generator of correlated Gaussian vectors `L Z`, where `L` is the
/// Cholesky factor of a correlation matrix and `Z` is a vector of
/// independent standard normals. This drives multi-asset (basket) paths.
#[derive(Debug, Clone)]
pub struct CorrelatedNormals {
    chol: Vec<f64>,
    dim: usize,
    normal: NormalGen,
    scratch: Vec<f64>,
}

impl CorrelatedNormals {
    /// Build from a full correlation matrix (row-major `dim*dim`).
    /// Returns `None` if the matrix is not positive definite.
    pub fn new(corr: &[f64], dim: usize) -> Option<Self> {
        let chol = cholesky(corr, dim)?;
        Some(CorrelatedNormals {
            chol,
            dim,
            normal: NormalGen::new(),
            scratch: vec![0.0; dim],
        })
    }

    /// Build for the equicorrelated case (all off-diagonal entries `rho`),
    /// the structure used by the paper's basket options.
    pub fn equicorrelated(dim: usize, rho: f64) -> Option<Self> {
        let mut corr = vec![rho; dim * dim];
        for i in 0..dim {
            corr[i * dim + i] = 1.0;
        }
        Self::new(&corr, dim)
    }

    /// Dimension of generated points/vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draw one correlated Gaussian vector into `out`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim);
        self.normal.fill(rng, &mut self.scratch);
        for i in 0..self.dim {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += self.chol[i * self.dim + k] * self.scratch[k];
            }
            out[i] = acc;
        }
    }

    /// Transform an already-drawn iid Gaussian vector in place
    /// (`z <- L z`), used by the antithetic path generator which needs to
    /// reuse the same `z` with flipped signs.
    pub fn correlate_in_place(&self, z: &mut [f64]) {
        assert_eq!(z.len(), self.dim);
        // Work backwards so each entry only reads not-yet-overwritten ones.
        for i in (0..self.dim).rev() {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += self.chol[i * self.dim + k] * z[k];
            }
            z[i] = acc;
        }
    }
}

/// A deterministic, seedable counter-based uniform source used by the
/// discrete-event simulator (so simulated runs are exactly reproducible and
/// independent of `rand` version details). SplitMix64.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Construct with validation; panics on invalid parameters.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut gen = NormalGen::new();
        let mut stats = RunningStats::new();
        for _ in 0..200_000 {
            stats.push(gen.sample(&mut rng));
        }
        assert!(stats.mean().abs() < 0.01, "mean {}", stats.mean());
        assert!(
            (stats.variance() - 1.0).abs() < 0.02,
            "var {}",
            stats.variance()
        );
    }

    #[test]
    fn normal_fill_uses_spare() {
        // Drawing an odd then even count must not lose the cached spare's
        // statistical properties; just check determinism with same seed.
        let mut a = NormalGen::new();
        let mut b = NormalGen::new();
        let mut ra = StdRng::seed_from_u64(7);
        let mut rb = StdRng::seed_from_u64(7);
        let mut xa = vec![0.0; 5];
        a.fill(&mut ra, &mut xa);
        let xb: Vec<f64> = (0..5).map(|_| b.sample(&mut rb)).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn correlated_normals_have_target_correlation() {
        let dim = 3;
        let rho = 0.5;
        let mut gen = CorrelatedNormals::equicorrelated(dim, rho).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = vec![0.0; dim];
        let mut cross = 0.0;
        let mut z = vec![0.0; dim];
        for _ in 0..n {
            gen.sample(&mut rng, &mut z);
            for i in 0..dim {
                sum[i] += z[i];
            }
            cross += z[0] * z[1];
        }
        let corr01 = cross / n as f64;
        assert!((corr01 - rho).abs() < 0.02, "corr {corr01}");
        for s in &sum {
            assert!((s / n as f64).abs() < 0.02);
        }
    }

    #[test]
    fn correlate_in_place_matches_sample_transform() {
        let dim = 4;
        let gen = CorrelatedNormals::equicorrelated(dim, 0.3).unwrap();
        let z0 = [0.3, -1.2, 0.7, 2.1];
        let mut z = z0;
        gen.correlate_in_place(&mut z);
        // Manual L * z0
        for i in 0..dim {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += gen.chol[i * dim + k] * z0[k];
            }
            assert!((z[i] - acc).abs() < 1e-14);
        }
    }

    #[test]
    fn equicorrelated_rejects_invalid_rho() {
        // rho must exceed -1/(d-1) for positive definiteness.
        assert!(CorrelatedNormals::equicorrelated(5, -0.5).is_none());
        assert!(CorrelatedNormals::equicorrelated(5, 0.99).is_some());
    }

    #[test]
    fn splitmix_reproducible_and_in_range() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn splitmix_uniform_mean() {
        let mut g = SplitMix64::new(5);
        let mut s = RunningStats::new();
        for _ in 0..100_000 {
            s.push(g.uniform(2.0, 4.0));
        }
        assert!((s.mean() - 3.0).abs() < 0.01);
    }
}
