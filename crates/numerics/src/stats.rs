//! Streaming statistics (Welford) and Monte-Carlo error estimates.

/// Numerically stable running mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Construct with validation; panics on invalid parameters.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean of the observations.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (biased, divides by n); 0 for fewer than two
    /// samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (unbiased, divides by n-1).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, the half-width driver of Monte-Carlo
    /// confidence intervals.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// Symmetric 95% confidence half-width around the mean (CLT, z=1.96).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_small_set() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.mean(), 3.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.77).sin() * 3.0 + 1.0)
            .collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e.mean(), before.mean());
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let mut s = RunningStats::new();
        for i in 0..10 {
            s.push(i as f64);
        }
        let se10 = s.std_error();
        for i in 0..990 {
            s.push((i % 10) as f64);
        }
        assert!(s.std_error() < se10);
        assert!(s.ci95_half_width() > 0.0);
    }
}
