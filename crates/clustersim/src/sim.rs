//! The Robin-Hood replay: event-driven simulation of Fig. 4's protocol
//! over the [`crate::params`] performance model.

use crate::params::SimConfig;
use crate::resource::Resource;
use farm::strategy::Transmission;
use farm::JobClass;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// One job as the simulator sees it: a class (for bookkeeping), the size
/// of its problem file on the wire, and a pre-drawn compute duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimJob {
    /// Stable job identifier.
    pub id: usize,
    /// §4.3 product class (the cost-model key).
    pub class: JobClass,
    /// Problem-file size on the wire.
    pub bytes: usize,
    /// Compute duration in seconds.
    pub compute: f64,
}

/// NFS server block cache, shared across consecutive simulated runs —
/// this is what makes the §4.2 "huge difference in computation time
/// between 2 and 4 nodes" reproducible: the first sweep point warms the
/// cache for the rest.
#[derive(Debug, Default, Clone)]
pub struct NfsCache {
    blocks: HashSet<usize>,
}

impl NfsCache {
    /// Construct with validation; panics on invalid parameters.
    pub fn new() -> Self {
        NfsCache::default()
    }

    /// Record an access; returns true if it was already cached.
    fn access(&mut self, file: usize) -> bool {
        !self.blocks.insert(file)
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Simulation result for one farm run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Wall-clock makespan in (simulated) seconds.
    pub makespan: f64,
    /// Jobs completed per slave.
    pub per_slave: Vec<usize>,
    /// Fraction of the run the master spent busy (the §4.2/§5 bottleneck
    /// diagnostic).
    pub master_utilisation: f64,
}

/// Total f64 ordering wrapper for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Replay one Robin-Hood farm run.
///
/// `slaves` is the number of worker ranks (the paper's tables count
/// `slaves + 1` CPUs). The NFS cache persists across calls when the same
/// `cache` is passed again — pass a fresh one for a cold run.
pub fn simulate_farm(
    jobs: &[SimJob],
    slaves: usize,
    strategy: Transmission,
    cfg: &SimConfig,
    cache: &mut NfsCache,
) -> SimOutcome {
    assert!(slaves >= 1, "need at least one slave");
    let mut master = Resource::new();
    let mut nfs = Resource::new();
    let mut slave_res: Vec<Resource> = (0..slaves).map(|_| Resource::new()).collect();
    let mut per_slave = vec![0usize; slaves];

    // (result-arrival-at-master, slave index) min-heap.
    let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();

    let master_prep = |strategy: Transmission| -> f64 {
        match strategy {
            Transmission::FullLoad => cfg.master.full_load_prep,
            Transmission::SerializedLoad => cfg.master.sload_prep,
            Transmission::Nfs => cfg.master.nfs_prep,
        }
    };
    // Name messages are tiny; loaded strategies ship the file bytes too.
    let wire_bytes = |strategy: Transmission, job: &SimJob| -> usize {
        match strategy {
            Transmission::Nfs => 64,
            Transmission::FullLoad | Transmission::SerializedLoad => 96 + job.bytes,
        }
    };
    // Result messages are small fixed-size records.
    const RESULT_BYTES: usize = 96;

    // Dispatch job to slave starting from master-ready time; returns the
    // time the result lands back at the master.
    let dispatch = |job: &SimJob,
                        s: usize,
                        ready: f64,
                        master: &mut Resource,
                        nfs: &mut Resource,
                        slave_res: &mut [Resource],
                        cache: &mut NfsCache|
     -> f64 {
        // Master: prep + NIC occupancy (serialised on the master).
        let send_done = master.acquire(
            ready,
            master_prep(strategy) + cfg.network.transfer_time(wire_bytes(strategy, job)),
        );
        // Slave receives and recovers the problem.
        let mut t = slave_res[s].acquire(send_done, 0.0);
        if strategy == Transmission::Nfs {
            // Slave reads the file from the NFS server (FIFO + cache).
            let service = if cache.access(job.id) {
                cfg.nfs.warm_read
            } else {
                cfg.nfs.cold_read
            };
            t = nfs.acquire(t, service);
        } else {
            t += cfg.slave.unpack;
        }
        // Compute + result send.
        let done = slave_res[s].acquire(t, job.compute + cfg.slave.result_prep);
        done + cfg.network.transfer_time(RESULT_BYTES)
    };

    let mut next = 0usize;
    // Prime one job per slave (Fig. 4's first loop).
    for s in 0..slaves {
        if next >= jobs.len() {
            break;
        }
        let arrival = dispatch(
            &jobs[next],
            s,
            0.0,
            &mut master,
            &mut nfs,
            &mut slave_res,
            cache,
        );
        heap.push(Reverse((Time(arrival), s)));
        next += 1;
    }

    let mut makespan: f64 = 0.0;
    while let Some(Reverse((Time(arrival), s))) = heap.pop() {
        // Master takes the result off the wire.
        let handled = master.acquire(arrival, cfg.master.result_handle);
        per_slave[s] += 1;
        makespan = makespan.max(handled);
        if next < jobs.len() {
            let next_arrival = dispatch(
                &jobs[next],
                s,
                handled,
                &mut master,
                &mut nfs,
                &mut slave_res,
                cache,
            );
            heap.push(Reverse((Time(next_arrival), s)));
            next += 1;
        }
    }

    let util = if makespan > 0.0 {
        master.busy_total() / makespan
    } else {
        0.0
    };
    SimOutcome {
        makespan,
        per_slave,
        master_utilisation: util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheap_jobs(n: usize, compute: f64) -> Vec<SimJob> {
        (0..n)
            .map(|id| SimJob {
                id,
                class: JobClass::VanillaClosedForm,
                bytes: 600,
                compute,
            })
            .collect()
    }

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn single_slave_time_is_roughly_serial_sum() {
        let jobs = cheap_jobs(1000, 1e-3);
        let out = simulate_farm(
            &jobs,
            1,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        // ≥ total compute, ≤ total compute + modest overhead.
        assert!(out.makespan >= 1.0, "makespan {}", out.makespan);
        assert!(out.makespan < 1.6, "makespan {}", out.makespan);
        assert_eq!(out.per_slave, vec![1000]);
    }

    #[test]
    fn compute_bound_workload_scales_nearly_linearly() {
        // 20 s jobs: communication is negligible → near-linear speedup.
        let jobs: Vec<SimJob> = (0..512)
            .map(|id| SimJob {
                id,
                class: JobClass::BarrierPde,
                bytes: 700,
                compute: 20.0,
            })
            .collect();
        let t1 = simulate_farm(&jobs, 1, Transmission::SerializedLoad, &cfg(), &mut NfsCache::new())
            .makespan;
        let t16 = simulate_farm(&jobs, 16, Transmission::SerializedLoad, &cfg(), &mut NfsCache::new())
            .makespan;
        let speedup = t1 / t16;
        assert!(speedup > 15.0, "speedup {speedup}");
    }

    #[test]
    fn communication_bound_workload_saturates() {
        // Sub-millisecond jobs: the master serialises all sends, so
        // adding slaves beyond a few must not help (§4.2's regime).
        let jobs = cheap_jobs(5000, 0.3e-3);
        let t4 = simulate_farm(&jobs, 4, Transmission::FullLoad, &cfg(), &mut NfsCache::new())
            .makespan;
        let t50 = simulate_farm(&jobs, 50, Transmission::FullLoad, &cfg(), &mut NfsCache::new())
            .makespan;
        assert!(
            t50 > 0.6 * t4,
            "full-load farm kept scaling implausibly: t4={t4} t50={t50}"
        );
    }

    #[test]
    fn full_load_costs_master_more_than_sload() {
        let jobs = cheap_jobs(5000, 0.3e-3);
        let full = simulate_farm(&jobs, 20, Transmission::FullLoad, &cfg(), &mut NfsCache::new());
        let sload = simulate_farm(
            &jobs,
            20,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        assert!(
            sload.makespan < full.makespan,
            "sload {} !< full {}",
            sload.makespan,
            full.makespan
        );
    }

    #[test]
    fn nfs_cache_warms_across_runs() {
        let jobs = cheap_jobs(2000, 0.3e-3);
        let mut cache = NfsCache::new();
        let cold = simulate_farm(&jobs, 1, Transmission::Nfs, &cfg(), &mut cache).makespan;
        let warm = simulate_farm(&jobs, 1, Transmission::Nfs, &cfg(), &mut cache).makespan;
        assert!(
            warm < cold * 0.7,
            "cache had no effect: cold {cold} warm {warm}"
        );
        assert_eq!(cache.len(), 2000);
    }

    #[test]
    fn work_is_balanced_for_homogeneous_jobs() {
        let jobs = cheap_jobs(1000, 5e-3);
        let out = simulate_farm(
            &jobs,
            10,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        let total: usize = out.per_slave.iter().sum();
        assert_eq!(total, 1000);
        for &c in &out.per_slave {
            assert!(c > 50, "starved slave: {:?}", out.per_slave);
        }
    }

    #[test]
    fn makespan_bounded_below_by_longest_job() {
        let mut jobs = cheap_jobs(50, 1e-3);
        jobs[17].compute = 33.0;
        let out = simulate_farm(
            &jobs,
            64,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        assert!(out.makespan >= 33.0);
        assert!(out.makespan < 34.0);
    }

    #[test]
    fn master_utilisation_reported() {
        let jobs = cheap_jobs(2000, 0.2e-3);
        let out = simulate_farm(&jobs, 40, Transmission::FullLoad, &cfg(), &mut NfsCache::new());
        assert!(out.master_utilisation > 0.5, "util {}", out.master_utilisation);
        let heavy: Vec<SimJob> = (0..100)
            .map(|id| SimJob {
                id,
                class: JobClass::AmericanPde,
                bytes: 700,
                compute: 30.0,
            })
            .collect();
        let out2 = simulate_farm(&heavy, 4, Transmission::SerializedLoad, &cfg(), &mut NfsCache::new());
        assert!(out2.master_utilisation < 0.05, "util {}", out2.master_utilisation);
    }

    #[test]
    fn empty_job_list_is_zero_makespan() {
        let out = simulate_farm(
            &[],
            5,
            Transmission::Nfs,
            &cfg(),
            &mut NfsCache::new(),
        );
        assert_eq!(out.makespan, 0.0);
    }
}
