//! The Robin-Hood replay: event-driven simulation of Fig. 4's protocol
//! over the [`crate::params`] performance model.
//!
//! The simulator holds **no scheduling logic of its own**: every
//! dispatch decision comes from the same pure [`sched::Scheduler`] state
//! machine the live `minimpi` masters drive. The simulator's job is the
//! *performance model* — what each decision costs in master CPU, NIC
//! occupancy, NFS queueing and slave compute — plus the event heap that
//! turns those costs back into the scheduler's event stream. A live run
//! and a simulated run of the same workload therefore render
//! byte-identical decision [`Trace`]s (`tests/sched_parity.rs`).

use crate::params::SimConfig;
use crate::resource::Resource;
use farm::strategy::Transmission;
use farm::JobClass;
use obs::{Event, EventKind, Recorder, NO_JOB};
use sched::{
    Action, DispatchPolicy, Event as SchedEvent, SchedConfig, SchedError, Scheduler, Supervision,
    Trace,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// One job as the simulator sees it: a class (for bookkeeping), the size
/// of its problem file on the wire, and a pre-drawn compute duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimJob {
    /// Stable job identifier.
    pub id: usize,
    /// §4.3 product class (the cost-model key).
    pub class: JobClass,
    /// Problem-file size on the wire.
    pub bytes: usize,
    /// Compute duration in seconds.
    pub compute: f64,
}

/// NFS server block cache, shared across consecutive simulated runs —
/// this is what makes the §4.2 "huge difference in computation time
/// between 2 and 4 nodes" reproducible: the first sweep point warms the
/// cache for the rest.
#[derive(Debug, Default, Clone)]
pub struct NfsCache {
    blocks: HashSet<usize>,
}

impl NfsCache {
    /// Construct with validation; panics on invalid parameters.
    pub fn new() -> Self {
        NfsCache::default()
    }

    /// Record an access; returns true if it was already cached.
    fn access(&mut self, file: usize) -> bool {
        !self.blocks.insert(file)
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// The client-side problem cache (the `store` crate's [`CachingStore`]
/// as the simulator models it): a set of problem files already resident
/// on the farm side. Unlike [`NfsCache`] — which lives on the *server*
/// and only accelerates the NFS strategy's reads — this one sits in
/// front of every fetch the farm makes, whichever strategy runs.
///
/// [`CachingStore`]: https://docs.rs/store
#[derive(Debug, Default, Clone)]
pub struct ClientCache {
    files: HashSet<usize>,
}

impl ClientCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        ClientCache::default()
    }

    /// Record an access; returns true if it was already cached.
    fn access(&mut self, file: usize) -> bool {
        !self.files.insert(file)
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// Both caches a simulated run can carry across calls: the NFS server's
/// block cache and the farm's client-side problem cache. Pass the same
/// value again to model a warm re-run; pass a fresh one for cold.
#[derive(Debug, Default, Clone)]
pub struct SimCaches {
    /// NFS server block cache (server side).
    pub nfs: NfsCache,
    /// Problem-store cache (client side).
    pub client: ClientCache,
}

impl SimCaches {
    /// Fresh cold caches.
    pub fn new() -> Self {
        SimCaches::default()
    }
}

/// Simulation result for one farm run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Wall-clock makespan in (simulated) seconds.
    pub makespan: f64,
    /// Jobs completed per slave.
    pub per_slave: Vec<usize>,
    /// Fraction of the run the master spent busy (the §4.2/§5 bottleneck
    /// diagnostic).
    pub master_utilisation: f64,
}

/// A scripted slave death for [`simulate_farm_sched`]: the simulated
/// counterpart of `minimpi`'s `FaultPlan::kill_rank_at_op`. The slave
/// computes its fatal job in full but dies *sending the result* — the
/// answer never reaches the master, whose liveness sweep notices the
/// death `detect_delay_s` simulated seconds later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimFault {
    /// Slave index, `0..slaves` (MPI rank `slave + 1`).
    pub slave: usize,
    /// Dies answering the `fatal_dispatch`-th dispatch it receives
    /// (0-based count of dispatches to this slave).
    pub fatal_dispatch: usize,
    /// Simulated master-side detection latency after the fatal send
    /// began (the live analogue is one supervisor poll interval).
    pub detect_delay_s: f64,
}

/// Scheduling options for [`simulate_farm_sched`]: which
/// [`DispatchPolicy`] orders the queue, whether the supervised master
/// (deadlines, retries, burial) runs, whether the decision [`Trace`] is
/// recorded, and any scripted [`SimFault`]s. The default — FIFO,
/// unsupervised, untraced, fault-free — is the plain Fig. 4 master that
/// [`simulate_farm_cached`] and friends replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSchedOpts {
    /// Dispatch order for queued jobs.
    pub policy: DispatchPolicy,
    /// `Some` runs the supervised master; required for `faults`.
    pub supervision: Option<Supervision>,
    /// Record the scheduler's timestamp-free decision trace.
    pub record_trace: bool,
    /// Scripted slave deaths (at most one can fire per slave).
    pub faults: Vec<SimFault>,
    /// `Some(r)` declares staged rounds (`r[job]` = round index): no
    /// job of round `k + 1` is dispatched before round `k` drains — the
    /// Picard-iteration shape of the BSDE workloads. `None` is the flat
    /// historical machine.
    pub rounds: Option<Vec<usize>>,
}

impl Default for SimSchedOpts {
    fn default() -> Self {
        SimSchedOpts {
            policy: DispatchPolicy::Fifo,
            supervision: None,
            record_trace: false,
            faults: Vec::new(),
            rounds: None,
        }
    }
}

/// Total f64 ordering wrapper for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Replay one Robin-Hood farm run.
///
/// `slaves` is the number of worker ranks (the paper's tables count
/// `slaves + 1` CPUs). The NFS cache persists across calls when the same
/// `cache` is passed again — pass a fresh one for a cold run.
pub fn simulate_farm(
    jobs: &[SimJob],
    slaves: usize,
    strategy: Transmission,
    cfg: &SimConfig,
    cache: &mut NfsCache,
) -> SimOutcome {
    simulate_farm_recorded(jobs, slaves, strategy, cfg, cache, None)
}

/// [`simulate_farm`] with phase-level observability: every simulated
/// phase lands in `recorder` as the *same* [`obs::EventKind`] stream the
/// live instrumented farm produces (master prep as `Serialize`/`Sload`,
/// NIC occupancy as `Send`, slave-side `Probe`/`Recv`/`Unpack` or
/// `NfsRead`, then `Compute` and the reply), with simulated seconds
/// mapped to nanosecond timestamps. This makes simulated and live runs
/// diffable per phase through one [`obs::Breakdown`] aggregator.
///
/// Rank convention matches the live farm: rank 0 is the master, slave
/// *s* is rank `s + 1` — size the recorder with at least `slaves + 1`
/// ranks.
pub fn simulate_farm_recorded(
    jobs: &[SimJob],
    slaves: usize,
    strategy: Transmission,
    cfg: &SimConfig,
    cache: &mut NfsCache,
    recorder: Option<&Recorder>,
) -> SimOutcome {
    let mut caches = SimCaches {
        nfs: std::mem::take(cache),
        client: ClientCache::new(),
    };
    let out = simulate_farm_cached(jobs, slaves, strategy, cfg, &mut caches, recorder);
    *cache = caches.nfs;
    out
}

/// [`simulate_farm_recorded`] with the full cache state: the NFS server
/// block cache *and* the client-side problem cache persist across calls
/// through `caches`, so warm-store re-runs (`SimConfig::store` with
/// `client_cache` on) and compressed-wire runs can be replayed at
/// cluster scale. With the default [`crate::params::StoreParams`] (both
/// knobs off) this is bit-identical to [`simulate_farm_recorded`].
///
/// When `client_cache` is on, every fetch additionally lands in the
/// recorder as a zero-duration `CacheHit`/`CacheMiss` mark on the rank
/// that fetched (master for loaded strategies, the slave for NFS) —
/// the same schema the live farm emits through a `CachingStore`.
pub fn simulate_farm_cached(
    jobs: &[SimJob],
    slaves: usize,
    strategy: Transmission,
    cfg: &SimConfig,
    caches: &mut SimCaches,
    recorder: Option<&Recorder>,
) -> SimOutcome {
    let (out, _) = simulate_farm_sched(
        jobs,
        slaves,
        strategy,
        cfg,
        caches,
        recorder,
        &SimSchedOpts::default(),
    )
    .expect("the default scheduling options are always valid");
    out
}

/// [`simulate_farm_cached`] with the scheduler exposed: the same
/// performance model, but the dispatch decisions — order, supervision,
/// scripted slave deaths — come from [`SimSchedOpts`], and the
/// scheduler's timestamp-free decision [`Trace`] is returned alongside
/// the outcome when `opts.record_trace` is set. With the default
/// options this is bit-identical to [`simulate_farm_cached`].
pub fn simulate_farm_sched(
    jobs: &[SimJob],
    slaves: usize,
    strategy: Transmission,
    cfg: &SimConfig,
    caches: &mut SimCaches,
    recorder: Option<&Recorder>,
    opts: &SimSchedOpts,
) -> Result<(SimOutcome, Option<Trace>), SchedError> {
    assert!(slaves >= 1, "need at least one slave");
    assert!(
        opts.faults.is_empty() || opts.supervision.is_some(),
        "scripted slave deaths require supervision (the plain master would hang)"
    );
    // Simulated-seconds → event-record adapter. All events funnel through
    // here so disabling the recorder costs exactly one branch.
    let emit = |kind: EventKind, rank: usize, job: i64, start_s: f64, dur_s: f64, bytes: usize| {
        if let Some(rec) = recorder {
            rec.record(Event {
                kind,
                rank: rank as u16,
                job,
                start_ns: (start_s * 1e9) as u64,
                dur_ns: (dur_s * 1e9) as u64,
                bytes: bytes as u64,
            });
        }
    };
    let mut master = Resource::new();
    let mut nfs = Resource::new();
    let mut slave_res: Vec<Resource> = (0..slaves).map(|_| Resource::new()).collect();
    let mut per_slave = vec![0usize; slaves];

    // (arrival-at-master, slave, ANSWER/DEAD, job) min-heap. The slave
    // index is the tie-breaker for simultaneous arrivals, exactly as in
    // the pre-scheduler replay loop.
    const ANSWER: u8 = 0;
    const DEAD: u8 = 1;
    let mut heap: BinaryHeap<Reverse<(Time, usize, u8, usize)>> = BinaryHeap::new();

    let master_prep = |strategy: Transmission| -> f64 {
        match strategy {
            Transmission::FullLoad => cfg.master.full_load_prep,
            Transmission::SerializedLoad => cfg.master.sload_prep,
            Transmission::Nfs => cfg.master.nfs_prep,
        }
    };
    // Name messages are tiny; loaded strategies ship the file bytes too.
    let wire_bytes = |strategy: Transmission, job: &SimJob| -> usize {
        match strategy {
            Transmission::Nfs => 64,
            Transmission::FullLoad | Transmission::SerializedLoad => 96 + job.bytes,
        }
    };
    // Result messages are small fixed-size records.
    const RESULT_BYTES: usize = 96;
    // Transport-backend overhead on top of the raw network time; zero
    // with the default [`crate::params::TransportParams`], keeping the
    // baseline model bit-identical.
    let result_wire = cfg.network.transfer_time(RESULT_BYTES) + cfg.transport.cost(RESULT_BYTES);

    let store = cfg.store;
    // Dispatch job to slave starting from master-ready time; returns the
    // time the result lands back at the master.
    let dispatch = |job: &SimJob,
                    s: usize,
                    ready: f64,
                    master: &mut Resource,
                    nfs: &mut Resource,
                    slave_res: &mut [Resource],
                    caches: &mut SimCaches|
     -> f64 {
        let jid = job.id as i64;
        let srank = s + 1;
        let base_prep = master_prep(strategy);
        let name_prep = cfg.master.nfs_prep.min(base_prep);
        // The strategy-specific fetch+materialise span beyond the tiny
        // name-message build.
        let uncached_span = base_prep - name_prep;
        // Client cache (loaded strategies, master side): a warm hit
        // shrinks the *fetch* part of the span to `hit_fetch`; full
        // load's materialisation (unserialize + rebuild + reserialize)
        // is CPU work the cache cannot skip and is paid either way.
        let (fetch_span, master_hit) = if store.client_cache && strategy != Transmission::Nfs {
            let hit = caches.client.access(job.id);
            let materialise = match strategy {
                Transmission::FullLoad => {
                    (cfg.master.full_load_prep - cfg.master.sload_prep).max(0.0)
                }
                _ => 0.0,
            };
            let fetch = if hit {
                store.hit_fetch
            } else {
                (uncached_span - materialise).max(0.0)
            };
            (materialise + fetch, Some(hit))
        } else {
            (uncached_span, None)
        };
        let prep = name_prep + fetch_span;
        // Wire compression (loaded strategies, payload over threshold):
        // the payload shrinks by `compress_ratio`, the master pays
        // per-byte compression CPU, the slave pays decompression.
        let raw_wire = wire_bytes(strategy, job);
        let (wire, compress_cpu, decompress_cpu) = if store.compress
            && strategy != Transmission::Nfs
            && job.bytes >= store.compress_threshold
        {
            let compressed = 96 + (job.bytes as f64 * store.compress_ratio).ceil() as usize;
            (
                compressed.min(raw_wire),
                store.compress_cpu * job.bytes as f64,
                store.decompress_cpu * job.bytes as f64,
            )
        } else {
            (raw_wire, 0.0, 0.0)
        };
        let transfer = cfg.network.transfer_time(wire) + cfg.transport.cost(wire);
        // Master: prep (+ compression) + NIC occupancy (serialised on
        // the master).
        let send_done = master.acquire(ready, prep + compress_cpu + transfer);
        // Master-side phases, mirroring the live farm's event stream:
        // strategy prep (Serialize / Sload), then the tiny name-message
        // Serialize, Pack (free: the payload is already serial bytes),
        // and the NIC occupancy as Send.
        let t0 = send_done - prep - compress_cpu - transfer;
        match strategy {
            Transmission::FullLoad => {
                emit(EventKind::Serialize, 0, jid, t0, fetch_span, job.bytes);
            }
            Transmission::SerializedLoad => {
                emit(EventKind::Sload, 0, jid, t0, fetch_span, job.bytes);
            }
            Transmission::Nfs => {}
        }
        if let Some(hit) = master_hit {
            let kind = if hit {
                EventKind::CacheHit
            } else {
                EventKind::CacheMiss
            };
            emit(kind, 0, jid, t0 + fetch_span, 0.0, job.bytes);
        }
        emit(EventKind::Serialize, 0, jid, t0 + fetch_span, name_prep, 64);
        if compress_cpu > 0.0 {
            emit(
                EventKind::Compress,
                0,
                jid,
                t0 + prep,
                compress_cpu,
                raw_wire - wire,
            );
        }
        if strategy != Transmission::Nfs {
            emit(
                EventKind::Pack,
                0,
                jid,
                t0 + prep + compress_cpu,
                0.0,
                job.bytes,
            );
        }
        emit(
            EventKind::Send,
            0,
            jid,
            t0 + prep + compress_cpu,
            transfer,
            wire,
        );
        // Slave receives and recovers the problem.
        let mut t = slave_res[s].acquire(send_done, 0.0);
        if strategy == Transmission::Nfs {
            if store.client_cache && caches.client.access(job.id) {
                // Warm client cache: the slave's fetch never leaves the
                // node — no NFS server trip, no FIFO queueing.
                t += store.hit_fetch;
                emit(
                    EventKind::NfsRead,
                    srank,
                    jid,
                    t - store.hit_fetch,
                    store.hit_fetch,
                    job.bytes,
                );
                emit(EventKind::CacheHit, srank, jid, t, 0.0, job.bytes);
            } else {
                // Slave reads the file from the NFS server (FIFO + cache).
                let service = if caches.nfs.access(job.id) {
                    cfg.nfs.warm_read
                } else {
                    cfg.nfs.cold_read
                };
                t = nfs.acquire(t, service);
                emit(
                    EventKind::NfsRead,
                    srank,
                    jid,
                    t - service,
                    service,
                    job.bytes,
                );
                if store.client_cache {
                    emit(EventKind::CacheMiss, srank, jid, t, 0.0, job.bytes);
                }
            }
        } else {
            emit(EventKind::Probe, srank, jid, t, 0.0, wire);
            emit(EventKind::Recv, srank, jid, t, 0.0, wire);
            if decompress_cpu > 0.0 {
                emit(
                    EventKind::Decompress,
                    srank,
                    jid,
                    t,
                    decompress_cpu,
                    job.bytes,
                );
                t += decompress_cpu;
            }
            emit(
                EventKind::Unpack,
                srank,
                jid,
                t,
                cfg.slave.unpack,
                job.bytes,
            );
            t += cfg.slave.unpack;
        }
        // Compute + result send. With `cfg.exec.threads >= 2` the drawn
        // compute cost shrinks by the intra-slave executor's Amdahl
        // speedup. A `SimJob` carries a pre-drawn duration, not a pricing
        // method, so the model applies uniformly — the *live* farm only
        // routes the path-chunked Monte-Carlo/LSM kernels through the
        // executor (`JobClass::chunked_kernel`), which is exactly the
        // compute the simulator's per-class costs stand in for.
        let (compute_wall, chunk_cpu) = cfg
            .exec
            .apply_classed(job.class.chunked_kernel(), job.compute);
        let done = slave_res[s].acquire(t, compute_wall + cfg.slave.result_prep);
        let compute_start = done - compute_wall - cfg.slave.result_prep;
        emit(
            EventKind::Compute,
            srank,
            jid,
            compute_start,
            compute_wall,
            0,
        );
        if chunk_cpu > 0.0 {
            // Mirror the live farm's post-join diagnostics: one
            // `ComputeChunk` span per worker thread covering its share of
            // the parallel worker-CPU seconds. Like the live stream these
            // overlap the `Compute` wall span and are excluded from
            // `Breakdown::total_s` (see `EventKind::DIAGNOSTIC`).
            let per_thread = chunk_cpu / cfg.exec.threads.max(1) as f64;
            for _ in 0..cfg.exec.threads.max(1) {
                emit(
                    EventKind::ComputeChunk,
                    srank,
                    jid,
                    compute_start,
                    per_thread,
                    0,
                );
            }
        }
        if cfg.exec.lanes > 1 {
            // Mirror the live executor's lane self-check mark: one
            // zero-duration `LaneBatch` per compute, bytes = lane width.
            emit(
                EventKind::LaneBatch,
                srank,
                jid,
                compute_start,
                0.0,
                cfg.exec.lanes,
            );
        }
        emit(
            EventKind::Serialize,
            srank,
            jid,
            compute_start + compute_wall,
            cfg.slave.result_prep,
            RESULT_BYTES,
        );
        emit(EventKind::Send, srank, jid, done, result_wire, RESULT_BYTES);
        done + result_wire
    };

    // The scheduler: the same pure state machine the live masters drive.
    let mut sched = Scheduler::new(SchedConfig {
        jobs: jobs.len(),
        slaves,
        batch: 1,
        policy: opts.policy.clone(),
        supervision: opts.supervision,
        rounds: opts.rounds.clone(),
        record_trace: opts.record_trace,
    })?;
    // Per-slave dispatch counter, for matching scripted faults.
    let mut dispatched = vec![0usize; slaves];
    let ns = |t: f64| -> u64 { (t * 1e9) as u64 };

    // Execute one action batch: dispatches run the performance model and
    // push their arrival (or scripted death) onto the heap; supervision
    // actions mirror the live driver's master-side marks.
    let run_actions = |actions: Vec<Action>,
                       now: f64,
                       master: &mut Resource,
                       nfs: &mut Resource,
                       slave_res: &mut [Resource],
                       caches: &mut SimCaches,
                       heap: &mut BinaryHeap<Reverse<(Time, usize, u8, usize)>>,
                       per_slave: &mut [usize],
                       dispatched: &mut [usize]| {
        for a in actions {
            match a {
                Action::Dispatch { job, slave, .. } => {
                    let s = slave - 1;
                    let nth = dispatched[s];
                    dispatched[s] += 1;
                    let arrival = dispatch(&jobs[job], s, now, master, nfs, slave_res, caches);
                    let fault = opts
                        .faults
                        .iter()
                        .find(|f| f.slave == s && f.fatal_dispatch == nth);
                    match fault {
                        Some(f) => {
                            // The slave dies *sending* this result: the
                            // answer never arrives, and the master's
                            // liveness sweep notices `detect_delay_s`
                            // after the fatal send began.
                            let death = arrival - result_wire;
                            heap.push(Reverse((Time(death + f.detect_delay_s), s, DEAD, job)));
                        }
                        None => heap.push(Reverse((Time(arrival), s, ANSWER, job))),
                    }
                }
                // Stop sentinels and terminal markers are free in the
                // performance model.
                Action::Stop { .. } | Action::AllSlavesDead | Action::Finish => {}
                Action::Accept { slave, .. } => per_slave[slave - 1] += 1,
                // The live supervised driver's master-side marks.
                Action::Expire { job, .. } => {
                    emit(EventKind::Deadline, 0, jobs[job].id as i64, now, 0.0, 0)
                }
                Action::Requeue { job } => {
                    emit(EventKind::Retry, 0, jobs[job].id as i64, now, 0.0, 0)
                }
                Action::Bury { slave } => emit(EventKind::SlaveDeath, 0, NO_JOB, now, 0.0, slave),
            }
        }
    };

    // Priming: one SlaveReady per slave, in rank order (Fig. 4).
    for s in 1..=slaves {
        let acts = sched.on(SchedEvent::SlaveReady { slave: s }, 0);
        run_actions(
            acts,
            0.0,
            &mut master,
            &mut nfs,
            &mut slave_res,
            caches,
            &mut heap,
            &mut per_slave,
            &mut dispatched,
        );
    }

    // Drain: pop arrivals and deaths, feed the scheduler, execute its
    // decisions. Under supervision a deadline tick rides on every pop
    // (the live master ticks before every receive); when the heap runs
    // dry with embargoed retries pending, simulated time skips forward
    // in doubling steps until a backoff or deadline fires.
    let mut makespan: f64 = 0.0;
    let mut now: f64 = 0.0;
    let mut idle_step = 1e-3;
    while !sched.is_terminal() {
        let Some(Reverse((Time(t), s, kind, job))) = heap.pop() else {
            if opts.supervision.is_none() {
                break; // plain runs finish through the answer stream alone
            }
            now += idle_step;
            idle_step *= 2.0;
            let acts = sched.on(SchedEvent::Deadline, ns(now));
            run_actions(
                acts,
                now,
                &mut master,
                &mut nfs,
                &mut slave_res,
                caches,
                &mut heap,
                &mut per_slave,
                &mut dispatched,
            );
            continue;
        };
        idle_step = 1e-3;
        now = now.max(t);
        if opts.supervision.is_some() {
            let acts = sched.on(SchedEvent::Deadline, ns(now));
            run_actions(
                acts,
                now,
                &mut master,
                &mut nfs,
                &mut slave_res,
                caches,
                &mut heap,
                &mut per_slave,
                &mut dispatched,
            );
            if sched.is_terminal() {
                break;
            }
        }
        if kind == ANSWER {
            // Master takes the result off the wire. Like the live
            // master's ANY_SOURCE result receive, this is not attributed
            // to a job.
            let handled = master.acquire(t, cfg.master.result_handle);
            emit(
                EventKind::Recv,
                0,
                NO_JOB,
                handled - cfg.master.result_handle,
                cfg.master.result_handle,
                RESULT_BYTES,
            );
            makespan = makespan.max(handled);
            now = now.max(handled);
            let acts = sched.on(SchedEvent::Answer { job, slave: s + 1 }, ns(handled));
            run_actions(
                acts,
                handled,
                &mut master,
                &mut nfs,
                &mut slave_res,
                caches,
                &mut heap,
                &mut per_slave,
                &mut dispatched,
            );
        } else {
            let acts = sched.on(SchedEvent::SlaveDead { slave: s + 1 }, ns(t));
            run_actions(
                acts,
                t,
                &mut master,
                &mut nfs,
                &mut slave_res,
                caches,
                &mut heap,
                &mut per_slave,
                &mut dispatched,
            );
        }
    }

    let util = if makespan > 0.0 {
        master.busy_total() / makespan
    } else {
        0.0
    };
    Ok((
        SimOutcome {
            makespan,
            per_slave,
            master_utilisation: util,
        },
        sched.take_trace(),
    ))
}

// ---------------------------------------------------------------------------
// Sharded peer masters: the simulated counterpart of `farm::shard`
// ---------------------------------------------------------------------------

/// Configuration of a sharded simulated run — the model-side mirror of
/// the live `farm::shard::ShardConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSimConfig {
    /// Number of peer masters, each with a private slave farm.
    pub shards: usize,
    /// Compute slaves per shard.
    pub slaves_per_shard: usize,
    /// Jobs a master leases per round; `0` leases the whole shard at
    /// once (which also leaves nothing to steal).
    pub lease: usize,
    /// Steal from the richest peer pool when the own pool drains.
    pub steal: bool,
}

/// What a sharded simulated run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSimOutcome {
    /// Wall-clock makespan: the last shard to drain, simulated seconds.
    pub makespan: f64,
    /// Jobs computed under each shard's master (stolen ones included).
    pub per_shard_jobs: Vec<usize>,
    /// Per-shard busy time (that shard's last round end).
    pub per_shard_time: Vec<f64>,
    /// Number of steal rounds performed.
    pub steals: usize,
}

/// Replay a sharded peer-master run against the performance model.
///
/// Each shard is an independent simulated farm (its own master, NIC,
/// slaves and caches) advancing on its own virtual clock; the *globally
/// earliest-free* master leases its next round, exactly mirroring the
/// live `farm::shard` round structure: lease from the own pool's front,
/// steal from the richest peer's back once dry. Deterministic — ties
/// break on the lowest shard index — so sweep tables are reproducible.
///
/// With `shards == 1` and `lease == 0` this is one plain farm run: the
/// outcome is bit-identical to [`simulate_farm_cached`] on the same
/// jobs. This is how Tables I–III extend to 512-core sharded runs (64
/// peer masters × 8 slaves) without a global master in the model.
pub fn simulate_sharded(
    jobs: &[SimJob],
    cfg: &ShardSimConfig,
    strategy: Transmission,
    sim: &SimConfig,
) -> ShardSimOutcome {
    assert!(cfg.shards >= 1, "need at least one shard");
    assert!(cfg.slaves_per_shard >= 1, "need at least one slave per shard");
    let shards = cfg.shards;
    // Contiguous pools, remainder spread over the first shards — the
    // same chunking the live seed_pools performs.
    let base = jobs.len() / shards;
    let rem = jobs.len() % shards;
    let mut begin = 0usize;
    let mut pools: Vec<std::collections::VecDeque<usize>> = (0..shards)
        .map(|s| {
            let len = base + usize::from(s < rem);
            let pool = (begin..begin + len).collect();
            begin += len;
            pool
        })
        .collect();

    let mut t = vec![0.0f64; shards];
    let mut caches: Vec<SimCaches> = (0..shards).map(|_| SimCaches::new()).collect();
    let mut out = ShardSimOutcome {
        makespan: 0.0,
        per_shard_jobs: vec![0; shards],
        per_shard_time: vec![0.0; shards],
        steals: 0,
    };
    let want = |pool_len: usize| if cfg.lease == 0 { pool_len } else { cfg.lease };

    loop {
        // The earliest-free master that can still obtain work leases the
        // next round (lowest index on clock ties).
        let next = (0..shards)
            .filter(|&s| {
                !pools[s].is_empty() || (cfg.steal && pools.iter().any(|p| !p.is_empty()))
            })
            .min_by(|&a, &b| t[a].total_cmp(&t[b]).then(a.cmp(&b)));
        let Some(s) = next else { break };
        let round: Vec<usize> = if !pools[s].is_empty() {
            let n = want(pools[s].len()).min(pools[s].len());
            pools[s].drain(..n).collect()
        } else {
            let victim = (0..shards)
                .filter(|&p| p != s && !pools[p].is_empty())
                .max_by(|&a, &b| pools[a].len().cmp(&pools[b].len()).then(b.cmp(&a)))
                .expect("steal filter guarantees a victim");
            let n = want(pools[victim].len()).min(pools[victim].len());
            let at = pools[victim].len() - n;
            out.steals += 1;
            pools[victim].drain(at..).collect()
        };
        let round_jobs: Vec<SimJob> = round.iter().map(|&i| jobs[i]).collect();
        let run = simulate_farm_cached(
            &round_jobs,
            cfg.slaves_per_shard,
            strategy,
            sim,
            &mut caches[s],
            None,
        );
        t[s] += run.makespan;
        out.per_shard_jobs[s] += round.len();
        out.per_shard_time[s] = t[s];
        out.makespan = out.makespan.max(t[s]);
    }
    out
}

// ---------------------------------------------------------------------------
// Open-loop serving: the simulated counterpart of `serve::Session`
// ---------------------------------------------------------------------------

/// One request arriving at the simulated pricing service: the open-loop
/// counterpart of a live `serve::Request`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// Arrival time in simulated seconds (requests are processed in
    /// arrival order; the slice must be sorted by this field).
    pub arrival_s: f64,
    /// The portfolio: job ids double as content fingerprints, so two
    /// jobs with the same id are "identical problems" for coalescing
    /// and memoisation.
    pub jobs: Vec<SimJob>,
    /// Priority class, 0 most urgent. Class `p` may hold at most
    /// `queue_depth >> p` queue slots (floored at one), mirroring the
    /// live admission control.
    pub priority: u8,
}

/// What happened to one open-loop serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSimOutcome {
    /// End-to-end latency per *answered* request, indexed by position
    /// in the input slice (`None` for shed requests).
    pub latency_s: Vec<Option<f64>>,
    /// Requests turned away at admission.
    pub shed: usize,
    /// Problems answered without a fresh compute (memo or coalescing).
    pub memo_hits: usize,
    /// Unique problems actually computed on the slaves.
    pub computed: usize,
    /// Time the last answer left the service.
    pub makespan_s: f64,
}

/// Replay an open-loop arrival stream against a resident simulated
/// farm, mirroring the live `serve::Session` front loop: requests that
/// arrive while a batch is in flight queue up (subject to per-priority
/// admission shares over `queue_depth`) and are served as the next
/// coalesced batch; job ids already computed are memo hits and cost no
/// slave time.
///
/// With a `recorder`, every request lands in the same `obs` schema the
/// live session emits — an `Enqueue` span for queue residency, an
/// `Admit` span for end-to-end latency, `Shed` and `MemoHit` marks —
/// so one [`obs::Breakdown`] reports p50/p99 for either world. Batch
/// compute events are *not* re-emitted per batch (the inner farm replay
/// restarts its clock per run); the request-level SLO stream is the
/// parity surface.
pub fn simulate_serve(
    requests: &[SimRequest],
    slaves: usize,
    strategy: Transmission,
    cfg: &SimConfig,
    queue_depth: usize,
    recorder: Option<&Recorder>,
) -> ServeSimOutcome {
    assert!(slaves >= 1, "need at least one slave");
    assert!(queue_depth >= 1, "need at least one queue slot");
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s),
        "requests must be sorted by arrival time"
    );
    let emit = |kind: EventKind, job: i64, start_s: f64, dur_s: f64, bytes: usize| {
        if let Some(rec) = recorder {
            rec.record(Event {
                kind,
                rank: 0,
                job,
                start_ns: (start_s * 1e9) as u64,
                dur_ns: (dur_s * 1e9) as u64,
                bytes: bytes as u64,
            });
        }
    };
    let depth_limit =
        |priority: u8| -> usize { (queue_depth >> (priority as usize).min(63)).max(1) };

    let mut out = ServeSimOutcome {
        latency_s: vec![None; requests.len()],
        shed: 0,
        memo_hits: 0,
        computed: 0,
        makespan_s: 0.0,
    };
    // The resident world's caches persist across batches, exactly as a
    // live session's slaves keep their NFS client state warm.
    let mut caches = SimCaches::new();
    let mut memo: HashSet<usize> = HashSet::new();

    let mut clock = 0.0f64;
    let mut queued: Vec<usize> = Vec::new(); // request indices
    let mut class_load = vec![0usize; 256];
    let mut next = 0usize;

    loop {
        // Admit every arrival up to the current clock (they arrived
        // while the previous batch was in flight).
        while next < requests.len() && requests[next].arrival_s <= clock {
            let r = &requests[next];
            let class = r.priority as usize;
            if class_load[class] + 1 > depth_limit(r.priority) {
                emit(EventKind::Shed, NO_JOB, r.arrival_s, 0.0, r.jobs.len());
                out.shed += 1;
            } else {
                class_load[class] += 1;
                queued.push(next);
            }
            next += 1;
        }
        if queued.is_empty() {
            // Idle: jump to the next arrival, or finish.
            match requests.get(next) {
                Some(r) => {
                    clock = clock.max(r.arrival_s);
                    continue;
                }
                None => break,
            }
        }

        // Serve the queue as one coalesced batch.
        let batch = std::mem::take(&mut queued);
        let batch_start = clock;
        let mut unique: Vec<SimJob> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        for &ri in &batch {
            let r = &requests[ri];
            for job in &r.jobs {
                if memo.contains(&job.id) || !seen.insert(job.id) {
                    emit(EventKind::MemoHit, job.id as i64, batch_start, 0.0, 1);
                    out.memo_hits += 1;
                } else {
                    unique.push(*job);
                }
            }
        }
        if !unique.is_empty() {
            let (batch_out, _) = simulate_farm_sched(
                &unique,
                slaves,
                strategy,
                cfg,
                &mut caches,
                None,
                &SimSchedOpts::default(),
            )
            .expect("default scheduling options are always valid");
            clock += batch_out.makespan;
            out.computed += unique.len();
            for job in &unique {
                memo.insert(job.id);
            }
        }
        for &ri in &batch {
            let r = &requests[ri];
            class_load[r.priority as usize] -= 1;
            let latency = clock - r.arrival_s;
            emit(
                EventKind::Enqueue,
                NO_JOB,
                r.arrival_s,
                batch_start - r.arrival_s,
                r.jobs.iter().map(|j| j.bytes).sum(),
            );
            emit(EventKind::Admit, NO_JOB, r.arrival_s, latency, r.jobs.len());
            out.latency_s[ri] = Some(latency);
        }
        out.makespan_s = clock;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheap_jobs(n: usize, compute: f64) -> Vec<SimJob> {
        (0..n)
            .map(|id| SimJob {
                id,
                class: JobClass::VanillaClosedForm,
                bytes: 600,
                compute,
            })
            .collect()
    }

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn single_slave_time_is_roughly_serial_sum() {
        let jobs = cheap_jobs(1000, 1e-3);
        let out = simulate_farm(
            &jobs,
            1,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        // ≥ total compute, ≤ total compute + modest overhead.
        assert!(out.makespan >= 1.0, "makespan {}", out.makespan);
        assert!(out.makespan < 1.6, "makespan {}", out.makespan);
        assert_eq!(out.per_slave, vec![1000]);
    }

    #[test]
    fn compute_bound_workload_scales_nearly_linearly() {
        // 20 s jobs: communication is negligible → near-linear speedup.
        let jobs: Vec<SimJob> = (0..512)
            .map(|id| SimJob {
                id,
                class: JobClass::BarrierPde,
                bytes: 700,
                compute: 20.0,
            })
            .collect();
        let t1 = simulate_farm(
            &jobs,
            1,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        )
        .makespan;
        let t16 = simulate_farm(
            &jobs,
            16,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        )
        .makespan;
        let speedup = t1 / t16;
        assert!(speedup > 15.0, "speedup {speedup}");
    }

    #[test]
    fn communication_bound_workload_saturates() {
        // Sub-millisecond jobs: the master serialises all sends, so
        // adding slaves beyond a few must not help (§4.2's regime).
        let jobs = cheap_jobs(5000, 0.3e-3);
        let t4 = simulate_farm(
            &jobs,
            4,
            Transmission::FullLoad,
            &cfg(),
            &mut NfsCache::new(),
        )
        .makespan;
        let t50 = simulate_farm(
            &jobs,
            50,
            Transmission::FullLoad,
            &cfg(),
            &mut NfsCache::new(),
        )
        .makespan;
        assert!(
            t50 > 0.6 * t4,
            "full-load farm kept scaling implausibly: t4={t4} t50={t50}"
        );
    }

    #[test]
    fn full_load_costs_master_more_than_sload() {
        let jobs = cheap_jobs(5000, 0.3e-3);
        let full = simulate_farm(
            &jobs,
            20,
            Transmission::FullLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        let sload = simulate_farm(
            &jobs,
            20,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        assert!(
            sload.makespan < full.makespan,
            "sload {} !< full {}",
            sload.makespan,
            full.makespan
        );
    }

    #[test]
    fn nfs_cache_warms_across_runs() {
        let jobs = cheap_jobs(2000, 0.3e-3);
        let mut cache = NfsCache::new();
        let cold = simulate_farm(&jobs, 1, Transmission::Nfs, &cfg(), &mut cache).makespan;
        let warm = simulate_farm(&jobs, 1, Transmission::Nfs, &cfg(), &mut cache).makespan;
        assert!(
            warm < cold * 0.7,
            "cache had no effect: cold {cold} warm {warm}"
        );
        assert_eq!(cache.len(), 2000);
    }

    #[test]
    fn work_is_balanced_for_homogeneous_jobs() {
        let jobs = cheap_jobs(1000, 5e-3);
        let out = simulate_farm(
            &jobs,
            10,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        let total: usize = out.per_slave.iter().sum();
        assert_eq!(total, 1000);
        for &c in &out.per_slave {
            assert!(c > 50, "starved slave: {:?}", out.per_slave);
        }
    }

    #[test]
    fn makespan_bounded_below_by_longest_job() {
        let mut jobs = cheap_jobs(50, 1e-3);
        jobs[17].compute = 33.0;
        let out = simulate_farm(
            &jobs,
            64,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        assert!(out.makespan >= 33.0);
        assert!(out.makespan < 34.0);
    }

    #[test]
    fn master_utilisation_reported() {
        let jobs = cheap_jobs(2000, 0.2e-3);
        let out = simulate_farm(
            &jobs,
            40,
            Transmission::FullLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        assert!(
            out.master_utilisation > 0.5,
            "util {}",
            out.master_utilisation
        );
        let heavy: Vec<SimJob> = (0..100)
            .map(|id| SimJob {
                id,
                class: JobClass::AmericanPde,
                bytes: 700,
                compute: 30.0,
            })
            .collect();
        let out2 = simulate_farm(
            &heavy,
            4,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        assert!(
            out2.master_utilisation < 0.05,
            "util {}",
            out2.master_utilisation
        );
    }

    #[test]
    fn recorded_replay_matches_unrecorded_and_emits_live_schema() {
        use std::collections::BTreeSet;
        let jobs = cheap_jobs(12, 2e-3);
        for strategy in Transmission::ALL {
            let plain = simulate_farm(&jobs, 2, strategy, &cfg(), &mut NfsCache::new());
            let rec = Recorder::new(3);
            let recorded = simulate_farm_recorded(
                &jobs,
                2,
                strategy,
                &cfg(),
                &mut NfsCache::new(),
                Some(&rec),
            );
            // Observability must not perturb the simulated schedule.
            assert_eq!(plain, recorded, "{strategy}");
            let events = rec.events();
            assert_eq!(rec.dropped(), 0);
            // Per-job kind sets match the live instrumented farm schema.
            let expect: BTreeSet<EventKind> = match strategy {
                Transmission::FullLoad => [
                    EventKind::Serialize,
                    EventKind::Pack,
                    EventKind::Send,
                    EventKind::Probe,
                    EventKind::Recv,
                    EventKind::Unpack,
                    EventKind::Compute,
                ]
                .into_iter()
                .collect(),
                Transmission::SerializedLoad => [
                    EventKind::Sload,
                    EventKind::Serialize,
                    EventKind::Pack,
                    EventKind::Send,
                    EventKind::Probe,
                    EventKind::Recv,
                    EventKind::Unpack,
                    EventKind::Compute,
                ]
                .into_iter()
                .collect(),
                Transmission::Nfs => [
                    EventKind::Serialize,
                    EventKind::Send,
                    EventKind::NfsRead,
                    EventKind::Compute,
                ]
                .into_iter()
                .collect(),
            };
            for job in 0..jobs.len() as i64 {
                let kinds: BTreeSet<EventKind> = events
                    .iter()
                    .filter(|e| e.job == job)
                    .map(|e| e.kind)
                    .collect();
                assert_eq!(kinds, expect, "{strategy} job {job}");
            }
            // Compute seconds aggregate exactly to the drawn costs.
            let compute_s: f64 = events
                .iter()
                .filter(|e| e.kind == EventKind::Compute)
                .map(|e| e.dur_s())
                .sum();
            assert!(
                (compute_s - 12.0 * 2e-3).abs() < 1e-9,
                "{strategy}: {compute_s}"
            );
        }
    }

    #[test]
    fn store_knobs_off_is_bit_identical_to_base_model() {
        let jobs = cheap_jobs(500, 0.5e-3);
        for strategy in Transmission::ALL {
            let base = simulate_farm(&jobs, 4, strategy, &cfg(), &mut NfsCache::new());
            let via_cached =
                simulate_farm_cached(&jobs, 4, strategy, &cfg(), &mut SimCaches::new(), None);
            assert_eq!(base, via_cached, "{strategy}");
        }
    }

    #[test]
    fn warm_client_cache_cuts_prepare_not_compute() {
        use obs::Breakdown;
        let jobs = cheap_jobs(800, 0.5e-3);
        let mut config = cfg();
        config.store.client_cache = true;
        for strategy in Transmission::ALL {
            let mut caches = SimCaches::new();
            let rec_cold = Recorder::with_capacity(3, 1 << 16);
            let cold =
                simulate_farm_cached(&jobs, 2, strategy, &config, &mut caches, Some(&rec_cold));
            let rec_warm = Recorder::with_capacity(3, 1 << 16);
            let warm =
                simulate_farm_cached(&jobs, 2, strategy, &config, &mut caches, Some(&rec_warm));
            let bd_cold = Breakdown::from_events(&rec_cold.events());
            let bd_warm = Breakdown::from_events(&rec_warm.events());
            assert!(
                bd_warm.prepare_s() < bd_cold.prepare_s(),
                "{strategy}: warm prepare {} !< cold {}",
                bd_warm.prepare_s(),
                bd_cold.prepare_s()
            );
            assert!(
                (bd_warm.compute_s() - bd_cold.compute_s()).abs() < 1e-9,
                "{strategy}: compute changed"
            );
            assert!(warm.makespan <= cold.makespan, "{strategy}");
            // The cold pass misses every file, the warm pass hits it.
            assert_eq!(bd_cold.cache_hit_rate(), 0.0, "{strategy}");
            assert_eq!(bd_warm.cache_hit_rate(), 1.0, "{strategy}");
            assert_eq!(rec_cold.dropped() + rec_warm.dropped(), 0);
        }
    }

    #[test]
    fn compressed_wire_trades_bandwidth_for_cpu() {
        use obs::Breakdown;
        // Big payloads on a slow link: halving the bytes must shorten
        // the wire phase; the codec CPU shows up under store_s.
        let jobs: Vec<SimJob> = (0..600)
            .map(|id| SimJob {
                id,
                class: JobClass::VanillaClosedForm,
                bytes: 60_000,
                compute: 0.5e-3,
            })
            .collect();
        let mut config = cfg();
        config.network.bandwidth = 10e6; // stress the link
        let record = |c: &SimConfig| {
            let rec = Recorder::with_capacity(3, 1 << 16);
            let out = simulate_farm_cached(
                &jobs,
                2,
                Transmission::SerializedLoad,
                c,
                &mut SimCaches::new(),
                Some(&rec),
            );
            (out, Breakdown::from_events(&rec.events()))
        };
        let (raw_out, raw_bd) = record(&config);
        config.store.compress = true;
        let (z_out, z_bd) = record(&config);
        assert!(
            z_bd.wire_s() < 0.7 * raw_bd.wire_s(),
            "compression did not shrink wire: {} vs {}",
            z_bd.wire_s(),
            raw_bd.wire_s()
        );
        assert!(z_bd.store_s() > 0.0, "no codec time recorded");
        assert_eq!(raw_bd.store_s(), 0.0);
        assert!(
            z_out.makespan < raw_out.makespan,
            "compression should win on a slow link: {} vs {}",
            z_out.makespan,
            raw_out.makespan
        );
        // Compute untouched.
        assert!((z_bd.compute_s() - raw_bd.compute_s()).abs() < 1e-9);
    }

    #[test]
    fn small_payloads_below_threshold_stay_raw() {
        let jobs = cheap_jobs(200, 0.3e-3); // 600-byte files
        let mut config = cfg();
        config.store.compress = true;
        config.store.compress_threshold = 4096; // above the payloads
        let plain = simulate_farm(
            &jobs,
            2,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        let gated = simulate_farm_cached(
            &jobs,
            2,
            Transmission::SerializedLoad,
            &config,
            &mut SimCaches::new(),
            None,
        );
        assert_eq!(plain, gated, "threshold gate leaked compression");
    }

    #[test]
    fn exec_threads_one_is_bit_identical_to_base_model() {
        let mut mixed: Vec<SimJob> = cheap_jobs(300, 0.5e-3);
        for (i, j) in mixed.iter_mut().enumerate() {
            if i % 3 == 0 {
                j.class = JobClass::LocalVolMc;
                j.compute = 5e-3;
            }
        }
        let mut config = cfg();
        config.exec = crate::params::ExecParams::default(); // threads = 1
        for strategy in Transmission::ALL {
            let base = simulate_farm(&mixed, 4, strategy, &cfg(), &mut NfsCache::new());
            let with_exec = simulate_farm(&mixed, 4, strategy, &config, &mut NfsCache::new());
            assert_eq!(base, with_exec, "{strategy}");
        }
    }

    #[test]
    fn intra_slave_threads_cut_compute_not_prepare() {
        use obs::Breakdown;
        // Heavy MC jobs: compute dominates, so the Amdahl speedup must
        // show up in compute_s and the makespan while the comm phases
        // stay put.
        let jobs: Vec<SimJob> = (0..64)
            .map(|id| SimJob {
                id,
                class: JobClass::BasketMc,
                bytes: 700,
                compute: 20.0,
            })
            .collect();
        let record = |c: &SimConfig| {
            let rec = Recorder::with_capacity(5, 1 << 16);
            let out = simulate_farm_recorded(
                &jobs,
                4,
                Transmission::SerializedLoad,
                c,
                &mut NfsCache::new(),
                Some(&rec),
            );
            assert_eq!(rec.dropped(), 0);
            (out, Breakdown::from_events(&rec.events()))
        };
        let (seq_out, seq_bd) = record(&cfg());
        let mut config = cfg();
        config.exec.threads = 8;
        let (par_out, par_bd) = record(&config);
        let speedup = seq_bd.compute_s() / par_bd.compute_s();
        assert!(
            speedup > 4.0 && speedup < 8.0,
            "compute speedup {speedup} outside the Amdahl window"
        );
        assert!(par_out.makespan < seq_out.makespan / 4.0);
        // Communication phases untouched by intra-slave threads.
        assert!((par_bd.prepare_s() - seq_bd.prepare_s()).abs() < 1e-9);
        assert!((par_bd.wire_s() - seq_bd.wire_s()).abs() < 1e-9);
        // Diagnostics: worker-CPU chunk seconds appear and never inflate
        // the wall-clock phase budget.
        assert_eq!(seq_bd.parallel_s(), 0.0);
        assert!(par_bd.parallel_s() > 0.0);
        assert!(par_bd.parallelism() > 4.0, "x{}", par_bd.parallelism());
        assert!(par_bd.total_s() < seq_bd.total_s());
    }

    #[test]
    fn thread_speedup_is_amdahl_bounded() {
        // Doubling threads can never double throughput: the serial
        // fraction and the spawn overhead both bite.
        let jobs = cheap_jobs(100, 10e-3);
        let makespan = |threads: usize| {
            let mut config = cfg();
            config.exec.threads = threads;
            simulate_farm(
                &jobs,
                2,
                Transmission::SerializedLoad,
                &config,
                &mut NfsCache::new(),
            )
            .makespan
        };
        let t1 = makespan(1);
        let t8 = makespan(8);
        let speedup = t1 / t8;
        assert!(speedup > 1.0, "threads did nothing: {speedup}");
        assert!(speedup < 8.0, "superlinear compute speedup: {speedup}");
    }

    #[test]
    fn scripted_death_requeues_onto_survivors() {
        let jobs = cheap_jobs(10, 5e-3);
        let opts = SimSchedOpts {
            supervision: Some(Supervision {
                deadline_ns: 10_000_000_000,
                max_attempts: 4,
                backoff_base_ns: 0,
            }),
            record_trace: true,
            faults: vec![SimFault {
                slave: 1,
                fatal_dispatch: 0,
                detect_delay_s: 0.02,
            }],
            ..Default::default()
        };
        let (out, trace) = simulate_farm_sched(
            &jobs,
            2,
            Transmission::SerializedLoad,
            &cfg(),
            &mut SimCaches::new(),
            None,
            &opts,
        )
        .unwrap();
        // Every job completes despite the death; the dead slave (which
        // perished sending its first answer) contributes nothing.
        assert_eq!(out.per_slave.iter().sum::<usize>(), 10);
        assert_eq!(out.per_slave[1], 0, "{:?}", out.per_slave);
        let text = trace.unwrap().render();
        assert!(
            text.contains("dead(2) -> bury(2) requeue("),
            "no burial decision in:\n{text}"
        );
    }

    #[test]
    fn lpt_dispatches_longest_job_first_and_beats_fifo_on_a_straggler() {
        let mut jobs = cheap_jobs(6, 1e-3);
        jobs[5].compute = 1.0; // the straggler FIFO leaves for last
        let costs: Vec<f64> = jobs.iter().map(|j| j.compute).collect();
        let opts = SimSchedOpts {
            policy: DispatchPolicy::Lpt { costs },
            record_trace: true,
            ..Default::default()
        };
        let (lpt, trace) = simulate_farm_sched(
            &jobs,
            2,
            Transmission::SerializedLoad,
            &cfg(),
            &mut SimCaches::new(),
            None,
            &opts,
        )
        .unwrap();
        let text = trace.unwrap().render();
        assert!(
            text.starts_with("ready(1) -> dispatch(5->1)\n"),
            "LPT did not lead with the straggler:\n{text}"
        );
        let fifo = simulate_farm(
            &jobs,
            2,
            Transmission::SerializedLoad,
            &cfg(),
            &mut NfsCache::new(),
        );
        assert!(
            lpt.makespan < fifo.makespan,
            "LPT {} !< FIFO {}",
            lpt.makespan,
            fifo.makespan
        );
    }

    #[test]
    fn empty_job_list_is_zero_makespan() {
        let out = simulate_farm(&[], 5, Transmission::Nfs, &cfg(), &mut NfsCache::new());
        assert_eq!(out.makespan, 0.0);
    }

    // -- sharded peer masters ------------------------------------------------

    #[test]
    fn one_shard_whole_lease_is_bit_identical_to_the_plain_farm() {
        let jobs = cheap_jobs(200, 2e-3);
        let plain = simulate_farm_cached(
            &jobs,
            4,
            Transmission::SerializedLoad,
            &cfg(),
            &mut SimCaches::new(),
            None,
        );
        let sharded = simulate_sharded(
            &jobs,
            &ShardSimConfig {
                shards: 1,
                slaves_per_shard: 4,
                lease: 0,
                steal: false,
            },
            Transmission::SerializedLoad,
            &cfg(),
        );
        assert_eq!(sharded.makespan.to_bits(), plain.makespan.to_bits());
        assert_eq!(sharded.per_shard_jobs, vec![200]);
        assert_eq!(sharded.steals, 0);
    }

    #[test]
    fn stealing_rebalances_a_heavy_tailed_split() {
        // All the heavy jobs land in shard 0's contiguous chunk: without
        // stealing shard 1 idles; with stealing it takes over the tail.
        let mut jobs = cheap_jobs(64, 1e-3);
        for j in jobs.iter_mut().take(32) {
            j.compute = 0.25;
        }
        let base = ShardSimConfig {
            shards: 2,
            slaves_per_shard: 2,
            lease: 4,
            steal: false,
        };
        let no_steal = simulate_sharded(&jobs, &base, Transmission::SerializedLoad, &cfg());
        let steal = simulate_sharded(
            &jobs,
            &ShardSimConfig {
                steal: true,
                ..base
            },
            Transmission::SerializedLoad,
            &cfg(),
        );
        assert_eq!(no_steal.steals, 0);
        assert!(steal.steals > 0, "heavy tail must trigger steals");
        assert!(
            steal.makespan < no_steal.makespan,
            "stealing must shorten the run: {} !< {}",
            steal.makespan,
            no_steal.makespan
        );
        assert_eq!(steal.per_shard_jobs.iter().sum::<usize>(), 64);
    }

    #[test]
    fn more_shards_never_slow_the_sharded_model() {
        let mut jobs = cheap_jobs(256, 5e-3);
        for (i, j) in jobs.iter_mut().enumerate() {
            if i % 7 == 0 {
                j.compute = 0.1;
            }
        }
        let mut prev = f64::INFINITY;
        for shards in [1usize, 2, 4, 8] {
            let out = simulate_sharded(
                &jobs,
                &ShardSimConfig {
                    shards,
                    slaves_per_shard: 4,
                    lease: 8,
                    steal: true,
                },
                Transmission::SerializedLoad,
                &cfg(),
            );
            assert!(
                out.makespan <= prev,
                "{shards} shards slower: {} > {prev}",
                out.makespan
            );
            prev = out.makespan;
        }
    }

    #[test]
    fn sharded_512_core_run_completes_and_transport_cost_shows() {
        // The paper's 512-core scale as 64 peer masters × 8 slaves.
        let jobs = cheap_jobs(4096, 10e-3);
        let shape = ShardSimConfig {
            shards: 64,
            slaves_per_shard: 8,
            lease: 16,
            steal: true,
        };
        let free = simulate_sharded(&jobs, &shape, Transmission::SerializedLoad, &cfg());
        assert_eq!(free.per_shard_jobs.iter().sum::<usize>(), 4096);
        let mut socket = cfg();
        socket.transport = crate::params::TransportParams::socket();
        let priced = simulate_sharded(&jobs, &shape, Transmission::SerializedLoad, &socket);
        assert!(
            priced.makespan > free.makespan,
            "socket transport overhead must surface: {} !> {}",
            priced.makespan,
            free.makespan
        );
    }

    #[test]
    fn transport_params_zero_keeps_the_flat_model_bit_identical() {
        let jobs = cheap_jobs(300, 1e-3);
        for strategy in Transmission::ALL {
            let base = simulate_farm(&jobs, 4, strategy, &cfg(), &mut NfsCache::new());
            let mut explicit = cfg();
            explicit.transport = crate::params::TransportParams::default();
            let with_zero = simulate_farm(&jobs, 4, strategy, &explicit, &mut NfsCache::new());
            assert_eq!(base, with_zero, "{strategy}");
            let mut channel = cfg();
            channel.transport = crate::params::TransportParams::channel();
            let with_channel = simulate_farm(&jobs, 4, strategy, &channel, &mut NfsCache::new());
            assert!(with_channel.makespan > base.makespan, "{strategy}");
        }
    }

    // -- open-loop serving ---------------------------------------------------

    fn request(arrival_s: f64, ids: std::ops::Range<usize>, priority: u8) -> SimRequest {
        SimRequest {
            arrival_s,
            jobs: ids
                .map(|id| SimJob {
                    id,
                    class: JobClass::VanillaClosedForm,
                    bytes: 600,
                    compute: 0.05,
                })
                .collect(),
            priority,
        }
    }

    #[test]
    fn serve_answers_every_admitted_request_and_memoises_repeats() {
        let requests = vec![
            request(0.0, 0..8, 0),
            request(0.0, 0..8, 0),  // identical: fully coalesced/memoised
            request(10.0, 0..8, 0), // repeat much later: memo hit
        ];
        let out = simulate_serve(&requests, 2, Transmission::SerializedLoad, &cfg(), 8, None);
        assert_eq!(out.shed, 0);
        assert!(out.latency_s.iter().all(Option::is_some));
        assert_eq!(out.computed, 8, "each unique problem computes once");
        assert_eq!(out.memo_hits, 16, "both repeats served without compute");
        // The late repeat is answered instantly: nothing to compute.
        assert_eq!(out.latency_s[2], Some(0.0));
    }

    #[test]
    fn serve_sheds_over_admission_share_and_prefers_urgent_class() {
        // queue_depth 4: class 0 keeps 4 slots, class 1 only 2. A burst
        // of five class-1 arrivals while the first batch runs must shed.
        let mut requests = vec![request(0.0, 0..64, 1)];
        for i in 0..5 {
            requests.push(request(0.001 + i as f64 * 1e-4, 100..132, 1));
        }
        let out = simulate_serve(&requests, 2, Transmission::SerializedLoad, &cfg(), 4, None);
        assert!(out.shed >= 3, "class 1 holds 2 slots, 5 arrived: {out:?}");
        // Shed requests carry no latency; admitted ones all do.
        let answered = out.latency_s.iter().flatten().count();
        assert_eq!(answered + out.shed, requests.len());
    }

    #[test]
    fn serve_emits_the_live_session_slo_schema() {
        let rec = Recorder::new(1);
        let requests = vec![
            request(0.0, 0..4, 0),
            request(0.0, 0..4, 0),
            request(5.0, 0..4, 0),
        ];
        simulate_serve(
            &requests,
            2,
            Transmission::SerializedLoad,
            &cfg(),
            8,
            Some(&rec),
        );
        let b = obs::Breakdown::from_events(&rec.events());
        assert_eq!(b.request_count(), 3);
        assert!(b.request_p99_s() >= b.request_p50_s());
        assert!(b.memo_hits() >= 8, "repeats must surface as MemoHit");
        // Queue residency (Enqueue) spans exist for every request.
        let enq = rec
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Enqueue)
            .count();
        assert_eq!(enq, 3);
    }

    #[test]
    fn serve_latency_includes_queue_wait_behind_a_running_batch() {
        // A huge first batch, then a tiny request arriving just after it
        // starts: the tiny one waits for the batch and its latency shows
        // it (open-loop queueing delay).
        let requests = vec![request(0.0, 0..512, 0), request(0.01, 1000..1001, 0)];
        let out = simulate_serve(&requests, 2, Transmission::SerializedLoad, &cfg(), 8, None);
        let first = out.latency_s[0].unwrap();
        let second = out.latency_s[1].unwrap();
        assert!(
            second > first * 0.5,
            "queued request must wait out the big batch: {second} vs {first}"
        );
    }
}
