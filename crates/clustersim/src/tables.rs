//! Table generators: the harnesses that regenerate Tables I, II and III.
//!
//! Each generator builds the paper's workload, attaches per-job compute
//! costs (heterogeneous within each §4.3 class, deterministic given the
//! job id), normalises the serial total to the paper's measured
//! 2-CPU time, and sweeps the paper's CPU counts through the replay
//! simulator.

use crate::params::SimConfig;
use crate::sim::{simulate_farm, NfsCache, SimJob};
use farm::portfolio::{
    realistic_portfolio, regression_portfolio, toy_portfolio, PortfolioJob, PortfolioScale,
};
use farm::strategy::Transmission;
use farm::JobClass;
use numerics::rng::SplitMix64;

/// One row of a speedup table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableRow {
    /// "number of CPUs" — master + slaves, as the paper counts.
    pub cpus: usize,
    /// Wall-clock seconds.
    pub time: f64,
    /// Speedup ratio, `T(2) / ((n-1)·T(n))` (verified against the paper's
    /// printed columns).
    pub ratio: f64,
}

/// The paper's speedup-ratio definition: the 2-CPU run (one slave) is the
/// serial baseline.
pub fn speedup_ratio(t2: f64, cpus: usize, tn: f64) -> f64 {
    assert!(cpus >= 2);
    t2 / ((cpus - 1) as f64 * tn)
}

/// Per-class cost ranges for Table I's regression suite. The absolute
/// scale is then normalised to the paper's T(2); the *relative* weights
/// follow the method families (closed form ≈ free, trees/PDE medium,
/// LSM the longest — which caps the asymptotic makespan just as the
/// paper's Table I flattens near its longest test).
fn table1_class_range(class: JobClass) -> (f64, f64) {
    match class {
        JobClass::VanillaClosedForm => (0.002, 0.01),
        JobClass::BarrierPde => (3.0, 9.0),
        JobClass::BasketMc => (8.0, 16.0),
        JobClass::LocalVolMc => (5.0, 12.0),
        JobClass::AmericanPde => (10.0, 20.0),
        JobClass::AmericanBasketLsm => (25.0, 40.0),
        // Extension classes (absent from the paper's regression suite,
        // present in mixed workloads): keep the paper's relative
        // ordering — Bermudan max-call heaviest, one BSDE Picard round
        // above any European MC grain, XVA aggregation mid-weight.
        JobClass::BermudanMaxLsm => (30.0, 50.0),
        JobClass::BsdePicardMc => (18.0, 30.0),
        JobClass::XvaCvaMc => (5.0, 12.0),
    }
}

/// Table III per-class ranges: the §4.3 narrative shape (vanilla
/// instantaneous, European MC/PDE medium, American heaviest), before
/// normalisation to the measured T(2) = 5776 s.
fn table3_class_range(class: JobClass) -> (f64, f64) {
    match class {
        JobClass::VanillaClosedForm => (0.001, 0.005),
        JobClass::BarrierPde => (10.0, 30.0),
        JobClass::BasketMc => (10.0, 30.0),
        JobClass::LocalVolMc => (10.0, 30.0),
        JobClass::AmericanPde => (60.0, 100.0),
        JobClass::AmericanBasketLsm => (60.0, 120.0),
        // Extension classes, at §4.3 narrative magnitudes (matches
        // `farm::calibrate::paper_costs`).
        JobClass::BermudanMaxLsm => (60.0, 150.0),
        JobClass::BsdePicardMc => (40.0, 90.0),
        JobClass::XvaCvaMc => (10.0, 40.0),
    }
}

/// Build `SimJob`s from portfolio jobs: deterministic per-job cost drawn
/// uniformly from the class range, wire size from the real XDR encoding,
/// total serial cost normalised to `serial_total` seconds.
fn build_sim_jobs(
    jobs: &[PortfolioJob],
    range: fn(JobClass) -> (f64, f64),
    serial_total: f64,
    seed: u64,
) -> Vec<SimJob> {
    let mut rng = SplitMix64::new(seed);
    let mut sim: Vec<SimJob> = jobs
        .iter()
        .map(|j| {
            let (lo, hi) = range(j.class);
            SimJob {
                id: j.id,
                class: j.class,
                bytes: xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
                compute: rng.uniform(lo, hi),
            }
        })
        .collect();
    let sum: f64 = sim.iter().map(|j| j.compute).sum();
    let scale = serial_total / sum;
    for j in sim.iter_mut() {
        j.compute *= scale;
    }
    sim
}

/// The paper's Table I CPU counts.
pub const TABLE1_CPUS: [usize; 14] = [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256];
/// The paper's Table II CPU counts.
pub const TABLE2_CPUS: [usize; 16] = [2, 4, 8, 10, 12, 14, 16, 18, 20, 24, 28, 32, 36, 40, 45, 50];
/// The paper's Table III CPU counts.
pub const TABLE3_CPUS: [usize; 17] = [
    2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512,
];

/// Paper-measured 2-CPU totals used for normalisation.
pub const TABLE1_T2: f64 = 838.004;
/// Paper-measured Table III 2-CPU time (seconds).
pub const TABLE3_T2: f64 = 5776.33;
/// §4.2's per-vanilla compute cost implied by the serialized-load 2-CPU
/// point (7.18 s / 10 000 options ≈ 0.55 ms once master costs are
/// subtracted).
pub const TABLE2_VANILLA_COST: f64 = 0.55e-3;

/// The Table I workload as simulator jobs: the regression portfolio
/// replicated twice, per-class costs normalised to the paper's T(2).
pub fn table1_sim_jobs() -> Vec<SimJob> {
    // The paper runs "several sets of these tests … with different
    // parameters"; our regression portfolio (69 problems) is replicated
    // to the same order of magnitude of jobs.
    let base = regression_portfolio(PortfolioScale::Quick);
    let mut jobs = Vec::with_capacity(base.len() * 2);
    for rep in 0..2 {
        for j in &base {
            let mut job = j.clone();
            job.id = rep * base.len() + j.id;
            jobs.push(job);
        }
    }
    build_sim_jobs(&jobs, table1_class_range, TABLE1_T2, 0x7AB1E1)
}

/// Table I: speedup of the Premia non-regression tests, `sload`
/// transmission ("the pricing problems are sent using the sload method").
pub fn table1_rows(cpus: &[usize], cfg: &SimConfig) -> Vec<TableRow> {
    let sim_jobs = table1_sim_jobs();
    sweep(&sim_jobs, cpus, Transmission::SerializedLoad, cfg, false)
}

/// The Table II workload as simulator jobs: `count` closed-form
/// vanillas with ±30 % jitter around the implied per-vanilla cost.
pub fn table2_sim_jobs(count: usize) -> Vec<SimJob> {
    let jobs = toy_portfolio(count);
    let mut rng = SplitMix64::new(0x7AB1E2);
    jobs.iter()
        .map(|j| SimJob {
            id: j.id,
            class: j.class,
            bytes: xdrser::serialize_to_bytes(&j.problem.to_value()).len(),
            // ±30 % jitter around the implied per-vanilla cost.
            compute: TABLE2_VANILLA_COST * rng.uniform(0.7, 1.3),
        })
        .collect()
}

/// Table II: the 10 000-vanilla toy portfolio under all three
/// transmission strategies. Returns rows per strategy in
/// [`Transmission::ALL`] order. The NFS sweep shares a server cache
/// across CPU counts, reproducing the §4.2 caching bias the paper calls
/// out ("the comparison with the NFS file system may be highly biased").
pub fn table2_rows(cpus: &[usize], cfg: &SimConfig) -> Vec<(Transmission, Vec<TableRow>)> {
    let sim_jobs = table2_sim_jobs(10_000);
    Transmission::ALL
        .iter()
        .map(|&strategy| {
            let shared_cache = strategy == Transmission::Nfs;
            (
                strategy,
                sweep(&sim_jobs, cpus, strategy, cfg, shared_cache),
            )
        })
        .collect()
}

/// The Table III workload as simulator jobs: the realistic portfolio,
/// per-class costs normalised to the paper's T(2).
pub fn table3_sim_jobs() -> Vec<SimJob> {
    let jobs = realistic_portfolio(PortfolioScale::Quick, 1);
    build_sim_jobs(&jobs, table3_class_range, TABLE3_T2, 0x7AB1E3)
}

/// Table III: the 7 931-claim realistic portfolio under all three
/// strategies, up to 512 CPUs.
pub fn table3_rows(cpus: &[usize], cfg: &SimConfig) -> Vec<(Transmission, Vec<TableRow>)> {
    let sim_jobs = table3_sim_jobs();
    Transmission::ALL
        .iter()
        .map(|&strategy| {
            let shared_cache = strategy == Transmission::Nfs;
            (
                strategy,
                sweep(&sim_jobs, cpus, strategy, cfg, shared_cache),
            )
        })
        .collect()
}

/// Sweep CPU counts; `shared_cache` keeps the NFS block cache warm across
/// sweep points (the paper's runs did exactly that on the real cluster).
fn sweep(
    jobs: &[SimJob],
    cpus: &[usize],
    strategy: Transmission,
    cfg: &SimConfig,
    shared_cache: bool,
) -> Vec<TableRow> {
    let mut cache = NfsCache::new();
    let mut rows = Vec::with_capacity(cpus.len());
    let mut t2 = None;
    for &n in cpus {
        assert!(n >= 2, "tables start at 2 CPUs");
        if !shared_cache {
            cache = NfsCache::new();
        }
        let out = simulate_farm(jobs, n - 1, strategy, cfg, &mut cache);
        let t2v = *t2.get_or_insert(out.makespan);
        rows.push(TableRow {
            cpus: n,
            time: out.makespan,
            ratio: speedup_ratio(t2v, n, out.makespan),
        });
    }
    rows
}

/// Render rows in the paper's two-column format.
pub fn format_table(title: &str, rows: &[TableRow]) -> String {
    let mut s = format!(
        "{title}\n{:>8} {:>12} {:>14}\n",
        "CPUs", "Time", "Speedup ratio"
    );
    for r in rows {
        s.push_str(&format!(
            "{:>8} {:>12.4} {:>14.6}\n",
            r.cpus, r.time, r.ratio
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn ratio_definition_matches_paper_numbers() {
        // Table I row: n=4, T=285.356, ratio 0.9789.
        let r = speedup_ratio(838.004, 4, 285.356);
        assert!((r - 0.9789).abs() < 1e-3, "ratio {r}");
        // Table III serialized: n=4, T=1925.29, ratio 1.00008.
        let r = speedup_ratio(5776.33, 4, 1925.29);
        assert!((r - 1.00008).abs() < 1e-4, "ratio {r}");
    }

    #[test]
    fn table1_shape_near_linear_then_degrading() {
        let rows = table1_rows(&TABLE1_CPUS, &cfg());
        assert_eq!(rows.len(), TABLE1_CPUS.len());
        // T(2) is the normalisation target.
        assert!(
            (rows[0].time - TABLE1_T2).abs() / TABLE1_T2 < 0.2,
            "T(2) = {}",
            rows[0].time
        );
        // Near-linear for n ≤ 16 (paper: ratio ≥ 0.82 up to 16 CPUs).
        for r in rows.iter().take_while(|r| r.cpus <= 16) {
            assert!(r.ratio > 0.75, "cpus {} ratio {}", r.cpus, r.ratio);
        }
        // Clearly degraded at 256 CPUs (paper: 0.105).
        let last = rows.last().unwrap();
        assert!(last.ratio < 0.4, "ratio at 256 = {}", last.ratio);
        // Time floors near the longest single problem, not at zero.
        assert!(last.time > 5.0, "T(256) = {}", last.time);
        // Monotone non-increasing times (within tolerance).
        for w in rows.windows(2) {
            assert!(w[1].time <= w[0].time * 1.05, "time increased: {w:?}");
        }
    }

    #[test]
    fn table2_shape_sload_beats_full_nfs_wins_at_scale() {
        let all = table2_rows(&TABLE2_CPUS, &cfg());
        let get = |s: Transmission| {
            all.iter()
                .find(|(st, _)| *st == s)
                .map(|(_, rows)| rows.clone())
                .unwrap()
        };
        let full = get(Transmission::FullLoad);
        let nfs = get(Transmission::Nfs);
        let sload = get(Transmission::SerializedLoad);
        // §4.2: "the only objective comparison is between the full load
        // and serialized load, the latter is always the faster."
        for (f, s) in full.iter().zip(&sload) {
            assert!(
                s.time <= f.time * 1.02,
                "cpus {}: sload {} !<= full {}",
                f.cpus,
                s.time,
                f.time
            );
        }
        // §4.2: NFS slowest at 2 CPUs (cold cache)...
        assert!(
            nfs[0].time > sload[0].time,
            "NFS(2) {} sload(2) {}",
            nfs[0].time,
            sload[0].time
        );
        // ...but fastest at 50 CPUs (tiny name messages, warm cache).
        let last = TABLE2_CPUS.len() - 1;
        assert!(
            nfs[last].time < sload[last].time,
            "NFS(50) {} !< sload(50) {}",
            nfs[last].time,
            sload[last].time
        );
        // Full load saturates: T(50) barely better than T(8) (paper:
        // 4.19 vs 3.86 — actually worse).
        let t8 = full.iter().find(|r| r.cpus == 8).unwrap().time;
        let t50 = full.iter().find(|r| r.cpus == 50).unwrap().time;
        assert!(t50 > 0.5 * t8, "full load kept scaling: {t8} -> {t50}");
    }

    #[test]
    fn table2_nfs_cache_anomaly_between_2_and_4() {
        // Paper: NFS T(2)=16.4, T(4)=4.91 — super-linear because the
        // first sweep point warmed the cache (ratio 1.11 > 1).
        let all = table2_rows(&TABLE2_CPUS, &cfg());
        let nfs = &all.iter().find(|(s, _)| *s == Transmission::Nfs).unwrap().1;
        assert!(
            nfs[1].ratio > 1.0,
            "no super-linear NFS artefact: ratio(4) = {}",
            nfs[1].ratio
        );
    }

    #[test]
    fn table3_shape_near_linear_to_256() {
        let cpus = [2usize, 4, 16, 64, 128, 256, 512];
        let all = table3_rows(&cpus, &cfg());
        for (strategy, rows) in &all {
            assert!(
                (rows[0].time - TABLE3_T2).abs() / TABLE3_T2 < 0.2,
                "{strategy}: T(2) = {}",
                rows[0].time
            );
            // Paper: "with 256 nodes, the speedup ratio is still better
            // than 0.8".
            let r256 = rows.iter().find(|r| r.cpus == 256).unwrap();
            assert!(r256.ratio > 0.7, "{strategy}: ratio(256) = {}", r256.ratio);
            // And it drops noticeably by 512 (paper: ≈ 0.56-0.57).
            let r512 = rows.iter().find(|r| r.cpus == 512).unwrap();
            assert!(
                r512.ratio < r256.ratio,
                "{strategy}: ratio did not degrade at 512"
            );
        }
        // Strategies are within a few percent of each other (§4.3: "fairly
        // the same no matter how the objects are sent").
        let times: Vec<f64> = all
            .iter()
            .map(|(_, rows)| rows.iter().find(|r| r.cpus == 256).unwrap().time)
            .collect();
        let max = times.iter().cloned().fold(f64::MIN, f64::max);
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.25, "strategies diverged at 256: {times:?}");
    }

    #[test]
    fn format_table_contains_rows() {
        let rows = vec![TableRow {
            cpus: 2,
            time: 838.004,
            ratio: 1.0,
        }];
        let s = format_table("Table I", &rows);
        assert!(s.contains("Table I"));
        assert!(s.contains("838.0040"));
    }
}
