//! Serial resources — the building block of the replay simulator.
//!
//! Every contended entity (the master CPU+NIC, each slave, the NFS
//! server) is a FIFO serial resource: work submitted at `ready` starts at
//! `max(ready, free_at)` and holds the resource for `duration`.

/// A serially used resource with FIFO semantics.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    free_at: f64,
    busy_total: f64,
}

impl Resource {
    /// Construct with validation; panics on invalid parameters.
    pub fn new() -> Self {
        Resource {
            free_at: 0.0,
            busy_total: 0.0,
        }
    }

    /// Occupy the resource for `duration` starting no earlier than
    /// `ready`; returns the completion time.
    pub fn acquire(&mut self, ready: f64, duration: f64) -> f64 {
        debug_assert!(duration >= 0.0, "negative duration");
        let start = self.free_at.max(ready);
        self.free_at = start + duration;
        self.busy_total += duration;
        self.free_at
    }

    /// Earliest time new work could start.
    pub fn free_at(&self) -> f64 {
        self.free_at
    }

    /// Total busy time accumulated (utilisation numerator).
    pub fn busy_total(&self) -> f64 {
        self.busy_total
    }

    /// Clear all accumulated state.
    pub fn reset(&mut self) {
        self.free_at = 0.0;
        self.busy_total = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_acquisitions_queue() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0.0, 2.0), 2.0);
        // Submitted at t=1 while busy until 2 → starts at 2.
        assert_eq!(r.acquire(1.0, 3.0), 5.0);
        // Submitted after the resource is idle → starts immediately.
        assert_eq!(r.acquire(10.0, 1.0), 11.0);
        assert_eq!(r.busy_total(), 6.0);
    }

    #[test]
    fn zero_duration_is_allowed() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(5.0, 0.0), 5.0);
        assert_eq!(r.free_at(), 5.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new();
        r.acquire(0.0, 7.0);
        r.reset();
        assert_eq!(r.free_at(), 0.0);
        assert_eq!(r.busy_total(), 0.0);
    }
}
