//! Performance-model parameters, calibrated to the paper's testbed:
//! dual-core Xeon 3075 nodes on Gigabit Ethernet with NFS storage
//! (§4: "interconnected using a Gigabit Ethernet network", "the cluster …
//! use[s] a NFS file system").

/// Network model: fixed per-message latency plus size/bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// One-way per-message latency in seconds (MPI over GigE ≈ 50–100 µs).
    pub latency: f64,
    /// Link bandwidth in bytes/second (GigE ≈ 125 MB/s).
    pub bandwidth: f64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            latency: 60e-6,
            bandwidth: 125e6,
        }
    }
}

impl NetworkParams {
    /// Wire time of one message of `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// NFS server model: FIFO service with a block cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfsParams {
    /// Service time of a cold (disk) read of one small problem file.
    pub cold_read: f64,
    /// Service time once the file is in the server's block cache.
    pub warm_read: f64,
}

impl Default for NfsParams {
    fn default() -> Self {
        NfsParams {
            cold_read: 1.2e-3,
            warm_read: 0.08e-3,
        }
    }
}

/// Master-side per-job CPU costs by transmission strategy (§4.2's
/// comparison is precisely about these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterCosts {
    /// full load: read file + materialise the `PremiaModel` + serialize +
    /// pack. The §4.2 numbers put the master's full-load cycle near
    /// 0.4 ms/job at saturation.
    pub full_load_prep: f64,
    /// serialized load: one raw file read (the file cache makes repeat
    /// sweeps cheap; we charge the steady-state cost).
    pub sload_prep: f64,
    /// NFS: build the tiny name message only.
    pub nfs_prep: f64,
    /// Handling one returned result (recv + bookkeeping).
    pub result_handle: f64,
}

impl Default for MasterCosts {
    fn default() -> Self {
        MasterCosts {
            full_load_prep: 0.40e-3,
            sload_prep: 0.12e-3,
            nfs_prep: 0.02e-3,
            result_handle: 0.02e-3,
        }
    }
}

/// Slave-side per-job overheads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaveCosts {
    /// Unpack + unserialize a received problem (loaded strategies).
    pub unpack: f64,
    /// Pack + send a result (before wire time).
    pub result_prep: f64,
}

impl Default for SlaveCosts {
    fn default() -> Self {
        SlaveCosts {
            unpack: 0.05e-3,
            result_prep: 0.02e-3,
        }
    }
}

/// Client-side problem-store model: the `store` crate's byte-budgeted
/// cache in front of the master's fetches (and the slaves' NFS reads),
/// plus the compressed-wire option for loaded payloads. Both knobs are
/// **off** by default so the baseline model reproduces the paper's
/// Tables I–III unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreParams {
    /// Model a warm client-side problem cache: repeat fetches of the
    /// same file skip the backend.
    pub client_cache: bool,
    /// Service time of a cache hit (a memory lookup plus an `Arc`
    /// clone — far below any disk or NFS read).
    pub hit_fetch: f64,
    /// Compress loaded payloads on the wire.
    pub compress: bool,
    /// Minimum payload size worth compressing, bytes (mirrors
    /// `WirePolicy::compressed(threshold)` in the live farm).
    pub compress_threshold: usize,
    /// Compressed/raw size ratio for XDR problem files (LZSS on the
    /// highly repetitive Premia descriptors lands near one half).
    pub compress_ratio: f64,
    /// Master-side compression CPU, seconds per input byte.
    pub compress_cpu: f64,
    /// Slave-side decompression CPU, seconds per input byte.
    pub decompress_cpu: f64,
}

impl Default for StoreParams {
    fn default() -> Self {
        StoreParams {
            client_cache: false,
            hit_fetch: 0.01e-3,
            compress: false,
            compress_threshold: 256,
            compress_ratio: 0.5,
            compress_cpu: 5e-9,
            decompress_cpu: 2e-9,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimConfig {
    /// Network model.
    pub network: NetworkParams,
    /// NFS server model.
    pub nfs: NfsParams,
    /// Master-side per-job costs.
    pub master: MasterCosts,
    /// Slave-side per-job overheads.
    pub slave: SlaveCosts,
    /// Problem-store model (client cache + wire compression).
    pub store: StoreParams,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let n = NetworkParams::default();
        let small = n.transfer_time(100);
        let big = n.transfer_time(1_000_000);
        assert!(small < big);
        assert!(small >= n.latency);
        // 1 MB over GigE ≈ 8 ms plus latency.
        assert!((big - (n.latency + 0.008)).abs() < 1e-9);
    }

    #[test]
    fn defaults_are_ordered_sensibly() {
        let m = MasterCosts::default();
        assert!(m.full_load_prep > m.sload_prep);
        assert!(m.sload_prep > m.nfs_prep);
        let nfs = NfsParams::default();
        assert!(nfs.cold_read > nfs.warm_read);
    }

    #[test]
    fn store_model_is_off_by_default_and_hits_beat_every_read() {
        let s = StoreParams::default();
        assert!(!s.client_cache && !s.compress);
        // A cache hit must be cheaper than even a warm NFS read and any
        // master-side fetch span — otherwise caching could never help.
        let nfs = NfsParams::default();
        let m = MasterCosts::default();
        assert!(s.hit_fetch < nfs.warm_read);
        assert!(s.hit_fetch < m.sload_prep - m.nfs_prep);
        assert!(s.compress_ratio > 0.0 && s.compress_ratio < 1.0);
    }
}
