//! Performance-model parameters, calibrated to the paper's testbed:
//! dual-core Xeon 3075 nodes on Gigabit Ethernet with NFS storage
//! (§4: "interconnected using a Gigabit Ethernet network", "the cluster …
//! use[s] a NFS file system").

/// Network model: fixed per-message latency plus size/bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// One-way per-message latency in seconds (MPI over GigE ≈ 50–100 µs).
    pub latency: f64,
    /// Link bandwidth in bytes/second (GigE ≈ 125 MB/s).
    pub bandwidth: f64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            latency: 60e-6,
            bandwidth: 125e6,
        }
    }
}

impl NetworkParams {
    /// Wire time of one message of `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// NFS server model: FIFO service with a block cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfsParams {
    /// Service time of a cold (disk) read of one small problem file.
    pub cold_read: f64,
    /// Service time once the file is in the server's block cache.
    pub warm_read: f64,
}

impl Default for NfsParams {
    fn default() -> Self {
        NfsParams {
            cold_read: 1.2e-3,
            warm_read: 0.08e-3,
        }
    }
}

/// Master-side per-job CPU costs by transmission strategy (§4.2's
/// comparison is precisely about these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterCosts {
    /// full load: read file + materialise the `PremiaModel` + serialize +
    /// pack. The §4.2 numbers put the master's full-load cycle near
    /// 0.4 ms/job at saturation.
    pub full_load_prep: f64,
    /// serialized load: one raw file read (the file cache makes repeat
    /// sweeps cheap; we charge the steady-state cost).
    pub sload_prep: f64,
    /// NFS: build the tiny name message only.
    pub nfs_prep: f64,
    /// Handling one returned result (recv + bookkeeping).
    pub result_handle: f64,
}

impl Default for MasterCosts {
    fn default() -> Self {
        MasterCosts {
            full_load_prep: 0.40e-3,
            sload_prep: 0.12e-3,
            nfs_prep: 0.02e-3,
            result_handle: 0.02e-3,
        }
    }
}

/// Slave-side per-job overheads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaveCosts {
    /// Unpack + unserialize a received problem (loaded strategies).
    pub unpack: f64,
    /// Pack + send a result (before wire time).
    pub result_prep: f64,
}

impl Default for SlaveCosts {
    fn default() -> Self {
        SlaveCosts {
            unpack: 0.05e-3,
            result_prep: 0.02e-3,
        }
    }
}

/// Client-side problem-store model: the `store` crate's byte-budgeted
/// cache in front of the master's fetches (and the slaves' NFS reads),
/// plus the compressed-wire option for loaded payloads. Both knobs are
/// **off** by default so the baseline model reproduces the paper's
/// Tables I–III unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreParams {
    /// Model a warm client-side problem cache: repeat fetches of the
    /// same file skip the backend.
    pub client_cache: bool,
    /// Service time of a cache hit (a memory lookup plus an `Arc`
    /// clone — far below any disk or NFS read).
    pub hit_fetch: f64,
    /// Compress loaded payloads on the wire.
    pub compress: bool,
    /// Minimum payload size worth compressing, bytes (mirrors
    /// `WirePolicy::compressed(threshold)` in the live farm).
    pub compress_threshold: usize,
    /// Compressed/raw size ratio for XDR problem files (LZSS on the
    /// highly repetitive Premia descriptors lands near one half).
    pub compress_ratio: f64,
    /// Master-side compression CPU, seconds per input byte.
    pub compress_cpu: f64,
    /// Slave-side decompression CPU, seconds per input byte.
    pub decompress_cpu: f64,
}

impl Default for StoreParams {
    fn default() -> Self {
        StoreParams {
            client_cache: false,
            hit_fetch: 0.01e-3,
            compress: false,
            compress_threshold: 256,
            compress_ratio: 0.5,
            compress_cpu: 5e-9,
            decompress_cpu: 2e-9,
        }
    }
}

/// Intra-slave compute-parallelism model: the `exec` crate's chunked
/// executor as the simulator sees it. **Off** by default (`threads == 1`)
/// so the baseline model reproduces the paper's Tables I–III unchanged —
/// exactly like [`StoreParams`].
///
/// The model applies to every job's pre-drawn compute cost: a `SimJob`
/// carries a duration, not a pricing method, so the per-class drawn cost
/// stands in for the path-chunked kernel work the live farm routes
/// through the executor (`JobClass::chunked_kernel` documents which
/// methods those are on the live side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecParams {
    /// Worker threads per slave rank (1 = today's sequential kernels).
    pub threads: usize,
    /// Amdahl serial fraction of a chunked-kernel job: path generation
    /// parallelises, the LSM backward regression and the final reduction
    /// do not.
    pub serial_fraction: f64,
    /// Fixed per-job cost of spinning up the chunk queues and joining
    /// the scope, seconds (a scoped spawn of a handful of workers on
    /// Linux lands in the tens of microseconds). Charged only when
    /// `threads >= 2`.
    pub spawn_overhead: f64,
    /// SIMD lane width of the batched kernels (1 = scalar kernels, the
    /// pre-lane default). Like `threads`, **off** by default so the
    /// baseline model is unchanged.
    pub lanes: usize,
    /// Fraction of a job's parallelisable work that vectorises across
    /// lanes: the per-path exp/fma arithmetic batches, the RNG draw and
    /// the payoff branch stay scalar.
    pub lane_fraction: f64,
    /// Fixed per-job cost when lane batching is on, seconds. The
    /// workspace pool removes every hot-loop allocation, so the per-job
    /// setup collapses to popping pooled buffers — far below the
    /// allocating `spawn_overhead`, which it *replaces* when
    /// `lanes >= 2`.
    pub workspace_overhead: f64,
    /// When `true`, the executor model applies **per class**: only jobs
    /// whose class routes through a path-chunked kernel on the live
    /// farm (`JobClass::chunked_kernel`) get the thread/lane speedup;
    /// closed-form, PDE and tree jobs keep their sequential cost. This
    /// is the honest model for heterogeneous mixed-class workloads.
    /// **Off** by default so the historical uniform model (and every
    /// committed table) is unchanged bit for bit.
    pub per_class: bool,
}

impl Default for ExecParams {
    fn default() -> Self {
        ExecParams {
            threads: 1,
            serial_fraction: 0.05,
            spawn_overhead: 0.02e-3,
            lanes: 1,
            lane_fraction: 0.9,
            workspace_overhead: 0.005e-3,
            per_class: false,
        }
    }
}

impl ExecParams {
    /// Amdahl speedup of one chunked-kernel job at this thread count:
    /// `1 / (s + (1 - s)/T)`. Exactly 1.0 when `threads <= 1`.
    pub fn speedup(&self) -> f64 {
        if self.threads <= 1 {
            return 1.0;
        }
        let t = self.threads as f64;
        1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / t)
    }

    /// Amdahl-style speedup of the parallelisable region from SIMD lane
    /// batching: `1 / ((1 - f) + f/L)` with `f = lane_fraction`. Exactly
    /// 1.0 when `lanes <= 1`.
    pub fn lane_speedup(&self) -> f64 {
        if self.lanes <= 1 {
            return 1.0;
        }
        let l = self.lanes as f64;
        1.0 / ((1.0 - self.lane_fraction) + self.lane_fraction / l)
    }

    /// Wall seconds of a chunked-kernel job that costs `compute`
    /// sequential seconds, plus the worker-CPU seconds spent inside
    /// parallel chunks (what the live farm's `ComputeChunk` diagnostics
    /// sum to). Returns `(compute, 0.0)` untouched when both knobs are
    /// off (threads ≤ 1 and lanes ≤ 1). Lane batching shrinks the
    /// parallelisable region *before* it is divided across threads —
    /// lanes compose multiplicatively with threads, and the pooled
    /// workspaces replace the allocating spawn overhead.
    pub fn apply(&self, compute: f64) -> (f64, f64) {
        if self.threads <= 1 && self.lanes <= 1 {
            return (compute, 0.0);
        }
        let parallel = compute * (1.0 - self.serial_fraction);
        let laned = parallel / self.lane_speedup();
        let overhead = if self.lanes > 1 {
            self.workspace_overhead
        } else {
            self.spawn_overhead
        };
        let wall = compute - parallel + laned / self.threads.max(1) as f64 + overhead;
        (wall, laned)
    }

    /// [`Self::apply`] gated by the job's class: with `per_class` set,
    /// only chunked-kernel jobs (`chunked == true`) see the executor
    /// speedup; otherwise every job does, as the uniform model always
    /// did.
    pub fn apply_classed(&self, chunked: bool, compute: f64) -> (f64, f64) {
        if self.per_class && !chunked {
            return (compute, 0.0);
        }
        self.apply(compute)
    }
}

/// Transport-layer cost model: what the pluggable `transport` backend
/// adds *on top of* the raw [`NetworkParams`] wire time, per message and
/// per byte. **Zero by default**, so the baseline model reproduces the
/// paper's Tables I–III bit for bit; the presets carry the calibrated
/// overheads of the two live backends (`bench/shard_smoke` re-measures
/// them with a ping-pong on every run).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransportParams {
    /// Fixed per-message overhead in seconds (frame header build/parse,
    /// mailbox wake-up; for the socket backend also the syscall pair).
    pub per_message: f64,
    /// Per-byte overhead in seconds (copy into/out of the frame; for the
    /// socket backend the kernel buffer crossings).
    pub per_byte: f64,
}

impl TransportParams {
    /// Calibrated in-process channel backend: an enqueue, a condvar
    /// wake-up and (for owned payloads) one memcpy.
    pub fn channel() -> Self {
        TransportParams {
            per_message: 1.5e-6,
            per_byte: 0.1e-9,
        }
    }

    /// Calibrated Unix-domain-socket backend: a write/read syscall pair
    /// and two kernel buffer crossings per message.
    pub fn socket() -> Self {
        TransportParams {
            per_message: 8e-6,
            per_byte: 0.6e-9,
        }
    }

    /// Transport overhead of one message of `bytes`.
    pub fn cost(&self, bytes: usize) -> f64 {
        self.per_message + bytes as f64 * self.per_byte
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimConfig {
    /// Network model.
    pub network: NetworkParams,
    /// NFS server model.
    pub nfs: NfsParams,
    /// Master-side per-job costs.
    pub master: MasterCosts,
    /// Slave-side per-job overheads.
    pub slave: SlaveCosts,
    /// Problem-store model (client cache + wire compression).
    pub store: StoreParams,
    /// Intra-slave compute-parallelism model (chunked executor).
    pub exec: ExecParams,
    /// Transport-layer overhead model (pluggable backend costs).
    pub transport: TransportParams,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let n = NetworkParams::default();
        let small = n.transfer_time(100);
        let big = n.transfer_time(1_000_000);
        assert!(small < big);
        assert!(small >= n.latency);
        // 1 MB over GigE ≈ 8 ms plus latency.
        assert!((big - (n.latency + 0.008)).abs() < 1e-9);
    }

    #[test]
    fn defaults_are_ordered_sensibly() {
        let m = MasterCosts::default();
        assert!(m.full_load_prep > m.sload_prep);
        assert!(m.sload_prep > m.nfs_prep);
        let nfs = NfsParams::default();
        assert!(nfs.cold_read > nfs.warm_read);
    }

    #[test]
    fn store_model_is_off_by_default_and_hits_beat_every_read() {
        let s = StoreParams::default();
        assert!(!s.client_cache && !s.compress);
        // A cache hit must be cheaper than even a warm NFS read and any
        // master-side fetch span — otherwise caching could never help.
        let nfs = NfsParams::default();
        let m = MasterCosts::default();
        assert!(s.hit_fetch < nfs.warm_read);
        assert!(s.hit_fetch < m.sload_prep - m.nfs_prep);
        assert!(s.compress_ratio > 0.0 && s.compress_ratio < 1.0);
    }

    #[test]
    fn exec_model_off_by_default_and_speedup_is_sane() {
        let e = ExecParams::default();
        assert_eq!(e.threads, 1);
        assert_eq!(e.speedup(), 1.0);
        assert_eq!(e.apply(20.0), (20.0, 0.0));
        // More threads always help, but sublinearly (Amdahl).
        let mut prev = 1.0;
        for threads in [2, 4, 8, 16] {
            let e = ExecParams {
                threads,
                ..ExecParams::default()
            };
            let s = e.speedup();
            assert!(s > prev, "threads {threads}: {s} !> {prev}");
            assert!(s < threads as f64, "threads {threads}: superlinear {s}");
            prev = s;
        }
        // apply() is consistent with speedup() up to the fixed overhead.
        let e = ExecParams {
            threads: 8,
            ..ExecParams::default()
        };
        let (wall, parallel) = e.apply(20.0);
        assert!((wall - e.spawn_overhead - 20.0 / e.speedup()).abs() < 1e-12);
        assert!((parallel - 20.0 * (1.0 - e.serial_fraction)).abs() < 1e-12);
    }

    #[test]
    fn lane_model_off_by_default_and_bit_identical_when_scalar() {
        let e = ExecParams::default();
        assert_eq!(e.lanes, 1);
        assert_eq!(e.lane_speedup(), 1.0);
        // threads > 1 with lanes = 1 must reproduce the pre-lane model
        // bit for bit (the lane terms must be exact no-ops).
        for threads in [2, 4, 8] {
            let e = ExecParams {
                threads,
                ..ExecParams::default()
            };
            let parallel = 20.0 * (1.0 - e.serial_fraction);
            let want_wall = 20.0 - parallel + parallel / threads as f64 + e.spawn_overhead;
            assert_eq!(e.apply(20.0), (want_wall, parallel));
        }
    }

    #[test]
    fn per_class_gating_spares_sequential_classes_only() {
        // Off by default: classed apply is the uniform apply.
        let uniform = ExecParams {
            threads: 8,
            lanes: 4,
            ..ExecParams::default()
        };
        assert!(!uniform.per_class);
        for chunked in [false, true] {
            assert_eq!(uniform.apply_classed(chunked, 3.0), uniform.apply(3.0));
        }
        // On: sequential classes keep their cost, chunked classes speed up.
        let classed = ExecParams {
            per_class: true,
            ..uniform
        };
        assert_eq!(classed.apply_classed(false, 3.0), (3.0, 0.0));
        assert_eq!(classed.apply_classed(true, 3.0), uniform.apply(3.0));
        assert!(classed.apply_classed(true, 3.0).0 < 3.0);
    }

    #[test]
    fn transport_model_is_zero_by_default_and_socket_costs_more() {
        let off = TransportParams::default();
        assert_eq!(off.cost(0), 0.0);
        assert_eq!(off.cost(1 << 20), 0.0);
        let ch = TransportParams::channel();
        let so = TransportParams::socket();
        for bytes in [0usize, 96, 600, 1 << 16] {
            assert!(ch.cost(bytes) > 0.0);
            assert!(
                so.cost(bytes) > ch.cost(bytes),
                "sockets must cost more than channels at {bytes} B"
            );
        }
        // Overheads stay far below the modelled network wire time — the
        // transport refines the cost model, it must not dominate it.
        let n = NetworkParams::default();
        assert!(so.cost(600) < n.transfer_time(600));
    }

    #[test]
    fn lane_model_compounds_with_threads_and_cuts_overhead() {
        // Lanes alone help, lanes + threads help more, and wider lanes
        // help sublinearly (the scalar RNG/payoff fraction caps it).
        let base = ExecParams::default().apply(1.0).0;
        let l8 = ExecParams {
            lanes: 8,
            ..ExecParams::default()
        };
        let l4 = ExecParams {
            lanes: 4,
            ..ExecParams::default()
        };
        assert!(l8.lane_speedup() > l4.lane_speedup());
        assert!(l8.lane_speedup() < 8.0);
        let (lane_wall, laned) = l8.apply(1.0);
        assert!(lane_wall < base);
        assert!(laned < 1.0 * (1.0 - l8.serial_fraction));
        let both = ExecParams {
            threads: 8,
            lanes: 8,
            ..ExecParams::default()
        };
        let t8 = ExecParams {
            threads: 8,
            ..ExecParams::default()
        };
        assert!(both.apply(1.0).0 < t8.apply(1.0).0);
        assert!(both.apply(1.0).0 < lane_wall);
        // The pooled-workspace overhead undercuts the allocating spawn.
        assert!(both.workspace_overhead < both.spawn_overhead);
    }
}
