//! A discrete-event cluster simulator for the Robin-Hood portfolio
//! pricer.
//!
//! The paper's measurements were taken on a 256-node (512-core) SUPELEC
//! cluster — hardware we do not have. Per the reproduction's substitution
//! rule, this crate replays the *exact* master/slave protocol of Figs. 4–5
//! against a calibrated performance model instead:
//!
//! * **master** — a serial resource that, per job, pays the strategy's
//!   preparation cost (read + materialise + serialize + pack for *full
//!   load*; a raw file read for *serialized load*; nothing but the name
//!   for *NFS*) and then occupies its NIC for `latency + bytes/bandwidth`;
//! * **network** — Gigabit-Ethernet-like per-message latency and
//!   bandwidth;
//! * **NFS server** — a FIFO resource with a block cache: the first read
//!   of a file is a disk-speed access, later reads (from any client, and
//!   across consecutive sweep runs — exactly the §4.2 caching bias) are
//!   served from memory;
//! * **slaves** — one resource each, paying unpack/unserialize overheads
//!   and the job's compute cost, drawn per §4.3 class from a calibrated
//!   [`farm::calibrate::CostModel`].
//!
//! [`tables`] assembles this into the generators for Tables I, II and III.
//!
//! [`simulate_serve`] layers the live `serve::Session` front loop on
//! top: an open-loop arrival stream with per-priority admission shares,
//! request coalescing, result memoisation, and the same request-level
//! `Enqueue`/`Admit`/`Shed`/`MemoHit` event schema, so one
//! `obs::Breakdown` reports p50/p99 for simulated and live service
//! alike.

#![warn(missing_docs)]
#![allow(clippy::too_many_arguments)]

pub mod params;
pub mod resource;
pub mod sim;
pub mod tables;

pub use params::{
    ExecParams, MasterCosts, NetworkParams, NfsParams, SimConfig, SlaveCosts, StoreParams,
    TransportParams,
};
pub use sched::{DispatchPolicy, SchedError, Supervision, Trace};
pub use sim::{
    simulate_farm, simulate_farm_cached, simulate_farm_recorded, simulate_farm_sched,
    simulate_serve, simulate_sharded, ClientCache, NfsCache, ServeSimOutcome, ShardSimConfig,
    ShardSimOutcome, SimCaches, SimFault, SimJob, SimOutcome, SimRequest, SimSchedOpts,
};
pub use tables::{
    format_table, speedup_ratio, table1_rows, table1_sim_jobs, table2_rows, table2_sim_jobs,
    table3_rows, table3_sim_jobs, TableRow, TABLE1_CPUS, TABLE1_T2, TABLE2_CPUS,
    TABLE2_VANILLA_COST, TABLE3_CPUS, TABLE3_T2,
};
