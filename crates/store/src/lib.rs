//! The tiered problem store — the storage subsystem behind the farm's
//! three transmission strategies (§4 of the paper).
//!
//! The §4 strategy comparison is really a storage story: NFS wins or
//! loses on *client-side caching effects*, and serialized load wins
//! because it ships unmaterialised `Serial` bytes straight off disk.
//! This crate makes that story explicit:
//!
//! * [`ProblemStore`] — the one trait through which the farm acquires
//!   problem bytes. Every byte-path (full load, the NFS slave-side read,
//!   serialized load) fetches through it; `crates/farm` contains no
//!   direct `std::fs` reads on its job paths.
//! * [`DirStore`] — the base backend: a shared directory (the paper's
//!   NFS export) read via [`xdrser::sload`], returning the raw on-disk
//!   XDR image as an unmaterialised [`nspval::Serial`].
//! * [`CachingStore`] — a byte-budgeted LRU decorator holding `Serial`
//!   buffers, content-addressed by path + file fingerprint (length +
//!   mtime), with explicit invalidation and full hit/miss/eviction
//!   accounting ([`StoreStats`]).
//! * [`Prefetcher`] — a bounded master-side pipeline that pulls the next
//!   `depth` problems into the store while earlier sends are still in
//!   flight, so a warm cache greets every dispatch.
//! * [`ResultCache`] — the fingerprint idea extended from problem bytes
//!   to computed *answers*: a byte-budgeted LRU memo keyed by
//!   [`ContentFingerprint`] × execution parameters ([`MemoKey`]), used
//!   by the serving session to coalesce identical requests.
//!
//! See `docs/STORE.md` and `docs/SERVICE.md` for the design discussion.

#![warn(missing_docs)]

mod backend;
mod cache;
mod memo;
mod prefetch;

pub use backend::{DirStore, Fetched, ProblemStore, StoreStats};
pub use cache::CachingStore;
pub use memo::{ContentFingerprint, MemoKey, MemoStats, ResultCache};
pub use prefetch::Prefetcher;
