//! A bounded master-side prefetch pipeline.
//!
//! The Robin-Hood master prepares each problem on the critical path: the
//! slave that just answered waits while the master reads the next file.
//! The [`Prefetcher`] overlaps that read with the in-flight sends: a
//! background thread pulls problems into the (shared, caching)
//! [`ProblemStore`] at most `depth` jobs ahead of the dispatch
//! watermark, so by the time the master fetches job *i* the bytes are
//! already resident.
//!
//! The window is advanced by the master via [`Prefetcher::advance`];
//! dropping the prefetcher stops the thread and joins it, so a run can
//! never leak the worker.

use crate::backend::ProblemStore;
use obs::{EventKind, Recorder};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

#[derive(Debug, Default)]
struct Gate {
    /// Jobs the master has dispatched so far (the window base).
    dispatched: usize,
    /// Shutdown flag (set on drop).
    stop: bool,
}

#[derive(Debug, Default)]
struct Shared {
    gate: Mutex<Gate>,
    cv: Condvar,
}

/// Handle to the background prefetch thread. See the module docs.
#[derive(Debug)]
pub struct Prefetcher {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Start prefetching `files` through `store`, staying at most
    /// `depth` jobs ahead of the dispatch watermark ([`advance`]).
    ///
    /// When `recorder` is given, every prefetch is timed as an
    /// [`EventKind::Prefetch`] span attributed to its job id on the
    /// supplied *virtual rank* (use `slaves + 1`, a rank no live thread
    /// records on, so the single-writer-per-rank contract holds).
    ///
    /// Fetch errors are swallowed here: the master fetches the same path
    /// itself at dispatch time and reports the failure with full
    /// context.
    ///
    /// [`advance`]: Prefetcher::advance
    pub fn spawn(
        store: Arc<dyn ProblemStore>,
        files: Vec<PathBuf>,
        depth: usize,
        recorder: Option<(Arc<Recorder>, usize)>,
    ) -> Self {
        assert!(depth >= 1, "prefetch depth must be at least 1");
        let shared = Arc::new(Shared::default());
        let worker_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("store-prefetch".into())
            .spawn(move || {
                for (i, path) in files.iter().enumerate() {
                    {
                        let mut gate = worker_shared.gate.lock().expect("prefetch gate");
                        while !gate.stop && i >= gate.dispatched + depth {
                            gate = worker_shared.cv.wait(gate).expect("prefetch gate");
                        }
                        if gate.stop {
                            return;
                        }
                    }
                    match &recorder {
                        Some((rec, rank)) => {
                            let t0 = rec.now_ns();
                            let bytes = store.fetch(path).map_or(0, |f| f.serial.len() as u64);
                            rec.record_span(*rank, EventKind::Prefetch, i as i64, t0, bytes);
                        }
                        None => {
                            let _ = store.fetch(path);
                        }
                    }
                }
            })
            .expect("spawn prefetch thread");
        Prefetcher {
            shared,
            handle: Some(handle),
        }
    }

    /// Tell the prefetcher the master has dispatched `n` jobs: the
    /// window slides to `[n, n + depth)`. Monotonic — a smaller `n`
    /// than previously reported is ignored.
    pub fn advance(&self, n: usize) {
        let mut gate = self.shared.gate.lock().expect("prefetch gate");
        if n > gate.dispatched {
            gate.dispatched = n;
            self.shared.cv.notify_all();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        {
            let mut gate = self.shared.gate.lock().expect("prefetch gate");
            gate.stop = true;
            self.shared.cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CachingStore, DirStore};
    use nspval::Value;
    use std::time::{Duration, Instant};

    fn save_files(tag: &str, count: usize) -> (Vec<PathBuf>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("store_prefetch_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let paths = (0..count)
            .map(|i| {
                let p = dir.join(format!("p{i}.bin"));
                xdrser::save(&p, &Value::scalar(i as f64)).unwrap();
                p
            })
            .collect();
        (paths, dir)
    }

    /// Poll `cond` until true or panic after 5 s.
    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn prefetch_warms_the_cache_ahead_of_fetches() {
        let (paths, dir) = save_files("warm", 6);
        let store: Arc<CachingStore> = Arc::new(CachingStore::over_dir(1 << 20));
        {
            let pf = Prefetcher::spawn(store.clone(), paths.clone(), paths.len(), None);
            wait_for(|| store.stats().misses >= 6, "all files prefetched");
            drop(pf);
        }
        for p in &paths {
            assert_eq!(store.fetch(p).unwrap().cached, Some(true), "{p:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_is_bounded_until_advanced() {
        let (paths, dir) = save_files("bounded", 8);
        let store: Arc<CachingStore> = Arc::new(CachingStore::over_dir(1 << 20));
        let pf = Prefetcher::spawn(store.clone(), paths.clone(), 2, None);
        wait_for(|| store.stats().fetches == 2, "initial window");
        // Hold: no advance, no further fetches.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(store.stats().fetches, 2, "window overran without advance");
        pf.advance(3);
        wait_for(|| store.stats().fetches == 5, "window slid to 3+2");
        // Advancing backwards is a no-op.
        pf.advance(1);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(store.stats().fetches, 5);
        pf.advance(paths.len());
        wait_for(|| store.stats().fetches == 8, "drain");
        drop(pf);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_while_blocked_joins_cleanly() {
        let (paths, dir) = save_files("drop", 50);
        let store: Arc<CachingStore> = Arc::new(CachingStore::over_dir(1 << 20));
        let pf = Prefetcher::spawn(store.clone(), paths, 1, None);
        // Drop immediately: the worker is blocked on the gate and must
        // wake, observe stop, and exit (Drop joins — a hang fails CI).
        drop(pf);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_sees_prefetch_spans_on_the_virtual_rank() {
        let (paths, dir) = save_files("recorded", 4);
        let store: Arc<dyn ProblemStore> = Arc::new(DirStore::new());
        let rec = Arc::new(Recorder::new(5));
        {
            let pf = Prefetcher::spawn(store, paths.clone(), 4, Some((rec.clone(), 4)));
            wait_for(
                || {
                    rec.events()
                        .iter()
                        .filter(|e| e.kind == EventKind::Prefetch)
                        .count()
                        == 4
                },
                "prefetch events",
            );
            drop(pf);
        }
        let events = rec.events();
        let jobs: Vec<i64> = events
            .iter()
            .filter(|e| e.kind == EventKind::Prefetch)
            .map(|e| e.job)
            .collect();
        assert_eq!(jobs.len(), 4);
        for (i, e) in events
            .iter()
            .filter(|e| e.kind == EventKind::Prefetch)
            .enumerate()
        {
            assert_eq!(e.rank, 4, "virtual rank");
            assert!(e.bytes > 0, "prefetch {i} recorded its payload size");
        }
        assert_eq!(rec.dropped(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fetch_errors_are_swallowed() {
        let (mut paths, dir) = save_files("errors", 2);
        paths.insert(1, dir.join("missing.bin"));
        let store: Arc<CachingStore> = Arc::new(CachingStore::over_dir(1 << 20));
        let pf = Prefetcher::spawn(store.clone(), paths.clone(), paths.len(), None);
        wait_for(|| store.stats().fetches >= 2, "good files fetched");
        drop(pf);
        assert_eq!(store.fetch(&paths[0]).unwrap().cached, Some(true));
        assert_eq!(store.fetch(&paths[2]).unwrap().cached, Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }
}
