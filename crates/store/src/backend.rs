//! The [`ProblemStore`] trait and the directory-backed base store.

use nspval::Serial;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xdrser::XdrError;

/// What one [`ProblemStore::fetch`] hands back.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// The unmaterialised serialized problem — the raw on-disk XDR
    /// image, shared so cache hits never copy the payload.
    pub serial: Arc<Serial>,
    /// Cache disposition: `None` means the backend has no cache layer
    /// (a plain [`DirStore`]), `Some(true)` a cache hit, `Some(false)`
    /// a miss that went to the backend.
    pub cached: Option<bool>,
    /// Bytes the store evicted to make room for this entry (0 unless a
    /// budgeted cache had to reclaim space on this fetch).
    pub evicted_bytes: u64,
}

impl Fetched {
    /// Wrap a backend read with no cache disposition.
    pub fn uncached(serial: Serial) -> Self {
        Fetched {
            serial: Arc::new(serial),
            cached: None,
            evicted_bytes: 0,
        }
    }
}

/// Aggregate counters a store keeps about itself. All zero for
/// cache-less backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total fetches served.
    pub fetches: u64,
    /// Fetches answered from a cache layer.
    pub hits: u64,
    /// Fetches that had to go to the backend.
    pub misses: u64,
    /// Entries evicted to respect a byte budget.
    pub evictions: u64,
    /// Bytes reclaimed by those evictions.
    pub evicted_bytes: u64,
    /// Entries dropped because their on-disk fingerprint changed or an
    /// explicit [`ProblemStore::invalidate`] was issued.
    pub invalidations: u64,
    /// Entries currently resident in the cache.
    pub resident_entries: u64,
    /// Bytes currently resident in the cache.
    pub resident_bytes: u64,
}

impl StoreStats {
    /// Hit fraction over all fetches (0 when nothing was fetched).
    pub fn hit_rate(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.hits as f64 / self.fetches as f64
        }
    }
}

/// The one way problem bytes reach the farm.
///
/// A store maps a problem-file path to its serialized (`sload`-style,
/// unmaterialised) byte image. Implementations must be shareable across
/// the master, the slaves and the prefetcher (`Send + Sync`), because a
/// live farm run is a thread-world.
pub trait ProblemStore: Send + Sync + std::fmt::Debug {
    /// Fetch the serialized image of the problem at `path`.
    fn fetch(&self, path: &Path) -> Result<Fetched, XdrError>;

    /// Drop any cached state for `path` (no-op for cache-less stores).
    /// The next [`fetch`](ProblemStore::fetch) re-reads the backend.
    fn invalidate(&self, _path: &Path) {}

    /// Current counters (all-zero default for stores that keep none).
    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }
}

/// Blanket passthrough so `Arc<dyn ProblemStore>` (and `Arc<DirStore>`
/// etc.) are themselves stores — decorators take `Arc<S>` freely.
impl<S: ProblemStore + ?Sized> ProblemStore for Arc<S> {
    fn fetch(&self, path: &Path) -> Result<Fetched, XdrError> {
        (**self).fetch(path)
    }
    fn invalidate(&self, path: &Path) {
        (**self).invalidate(path)
    }
    fn stats(&self) -> StoreStats {
        (**self).stats()
    }
}

/// The base backend: problems live as XDR files in a shared directory
/// (the paper's NFS export). Every fetch is a real disk read through
/// [`xdrser::sload`] — header-validated, unmaterialised.
#[derive(Debug, Default)]
pub struct DirStore {
    fetches: AtomicU64,
}

impl DirStore {
    /// A fresh directory store.
    pub fn new() -> Self {
        DirStore::default()
    }
}

impl ProblemStore for DirStore {
    fn fetch(&self, path: &Path) -> Result<Fetched, XdrError> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Ok(Fetched::uncached(xdrser::sload(path)?))
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            fetches: self.fetches.load(Ordering::Relaxed),
            misses: self.fetches.load(Ordering::Relaxed),
            ..StoreStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nspval::Value;

    fn save(dir: &str, name: &str, v: &Value) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        xdrser::save(&path, v).unwrap();
        path
    }

    #[test]
    fn dir_store_returns_raw_file_bytes() {
        let path = save("store_backend_raw", "a.bin", &Value::scalar(42.0));
        let store = DirStore::new();
        let f = store.fetch(&path).unwrap();
        assert_eq!(f.serial.bytes(), std::fs::read(&path).unwrap().as_slice());
        assert_eq!(f.cached, None);
        assert_eq!(f.evicted_bytes, 0);
        assert_eq!(store.stats().fetches, 1);
        assert_eq!(store.stats().hits, 0);
        assert_eq!(store.stats().hit_rate(), 0.0);
    }

    #[test]
    fn dir_store_rejects_non_xdr_files() {
        let dir = std::env::temp_dir().join("store_backend_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"definitely not XDR").unwrap();
        assert!(DirStore::new().fetch(&path).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = DirStore::new()
            .fetch(Path::new("/nonexistent/definitely/missing.bin"))
            .unwrap_err();
        assert!(matches!(err, XdrError::Io(_)));
    }

    #[test]
    fn arc_passthrough_is_a_store() {
        let path = save("store_backend_arc", "a.bin", &Value::scalar(1.0));
        let store: Arc<dyn ProblemStore> = Arc::new(DirStore::new());
        let f = store.fetch(&path).unwrap();
        assert!(!f.serial.bytes().is_empty());
        store.invalidate(&path); // no-op, but callable
        assert_eq!(store.stats().fetches, 1);
    }
}
