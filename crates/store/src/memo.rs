//! Result memoisation: the [`CachingStore`](crate::CachingStore)
//! fingerprint idea extended from problem *bytes* to computed *answers*.
//!
//! The path cache keys entries by `(path, length, mtime)` because its
//! identity is "the file I would re-read". A serving session has no
//! paths — requests carry serialized problems — so the memo keys by the
//! *content* of the serialized problem plus the execution parameters
//! that are part of the result contract: chunk size and SIMD lane width
//! change the summation order of the kernels (see `docs/PARALLEL.md` /
//! `docs/SIMD.md`), so two computes only produce bit-identical answers
//! when fingerprint **and** chunk **and** lanes all match. Thread count
//! is deliberately *not* part of the key — results are bit-identical
//! across worker counts by the executor's contract.
//!
//! [`ResultCache`] is value-generic (the store crate stays ignorant of
//! pricing types); the serving layer instantiates it with its answer
//! type and a per-entry byte estimate, and the same byte-budgeted LRU
//! discipline as the path cache keeps memory bounded.

use std::collections::{BTreeMap, HashMap};

/// A content fingerprint of a serialized problem: FNV-1a 64 over the
/// bytes plus the exact length. Two problems with equal fingerprints are
/// treated as the same problem for coalescing and memoisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentFingerprint {
    /// FNV-1a 64-bit hash of the serialized bytes.
    pub hash: u64,
    /// Exact byte length (cheap second factor against collisions).
    pub len: u64,
}

impl ContentFingerprint {
    /// Fingerprint a byte slice.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(PRIME);
        }
        ContentFingerprint {
            hash,
            len: bytes.len() as u64,
        }
    }
}

/// Full memo key: problem content × the execution parameters that are
/// part of the result contract. `chunk = 0, lanes = 0` encodes the
/// legacy sequential kernel (no executor policy), which produces
/// different bits from any chunked run and must never share entries
/// with one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemoKey {
    /// Content fingerprint of the serialized problem.
    pub fp: ContentFingerprint,
    /// Executor chunk size (0 = sequential legacy kernel).
    pub chunk: u32,
    /// SIMD lane width (0 = sequential legacy kernel, 1 = scalar
    /// chunked, 4/8 = lane-batched).
    pub lanes: u32,
}

/// Overhead charged per entry on top of the caller-supplied value size:
/// the key itself plus map bookkeeping.
const ENTRY_OVERHEAD: usize = 64;

/// Counters for memo traffic (mirrors [`StoreStats`](crate::StoreStats)
/// for the path cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups served from the memo.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently charged against the budget.
    pub bytes_used: usize,
}

impl MemoStats {
    /// Hit fraction over all lookups (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    bytes: usize,
    tick: u64,
}

/// A byte-budgeted LRU memo from [`MemoKey`] to computed answers.
///
/// Same discipline as [`CachingStore`](crate::CachingStore): every
/// entry charges its value size plus a fixed overhead against the
/// budget, lookups refresh recency, and inserts evict
/// least-recently-used entries until the new entry fits. A value larger
/// than the whole budget is simply not cached.
///
/// Unlike the path cache the memo is single-owner (the serving front
/// loop), so it is not internally locked.
pub struct ResultCache<V> {
    budget: usize,
    entries: HashMap<MemoKey, Entry<V>>,
    lru: BTreeMap<u64, MemoKey>,
    tick: u64,
    stats: MemoStats,
}

impl<V: Clone> ResultCache<V> {
    /// New memo with a byte budget. A zero budget disables caching
    /// entirely (every lookup misses, nothing is stored).
    pub fn new(budget: usize) -> Self {
        ResultCache {
            budget,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            stats: MemoStats::default(),
        }
    }

    /// Look up a memoised answer, refreshing its recency on hit.
    pub fn get(&mut self, key: &MemoKey) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(e) => {
                self.lru.remove(&e.tick);
                e.tick = self.tick;
                self.lru.insert(self.tick, *key);
                self.stats.hits += 1;
                Some(e.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert an answer, charging `value_bytes` (plus a fixed per-entry
    /// overhead) against the budget and evicting LRU entries to make
    /// room. Re-inserting an existing key refreshes its value and
    /// recency.
    pub fn insert(&mut self, key: MemoKey, value: V, value_bytes: usize) {
        let cost = value_bytes + ENTRY_OVERHEAD;
        if cost > self.budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.tick);
            self.stats.bytes_used -= old.bytes;
        }
        while self.stats.bytes_used + cost > self.budget {
            let (&oldest, &victim) = self.lru.iter().next().expect("budget accounting broke");
            let gone = self.entries.remove(&victim).expect("lru points at entry");
            self.lru.remove(&oldest);
            self.stats.bytes_used -= gone.bytes;
            self.stats.evictions += 1;
        }
        self.entries.insert(
            key,
            Entry {
                value,
                bytes: cost,
                tick: self.tick,
            },
        );
        self.lru.insert(self.tick, key);
        self.stats.bytes_used += cost;
        self.stats.insertions += 1;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the memo holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Traffic counters.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8, chunk: u32, lanes: u32) -> MemoKey {
        MemoKey {
            fp: ContentFingerprint::of_bytes(&[tag; 16]),
            chunk,
            lanes,
        }
    }

    #[test]
    fn fingerprint_separates_content_and_length() {
        let a = ContentFingerprint::of_bytes(b"hello");
        let b = ContentFingerprint::of_bytes(b"hellp");
        let c = ContentFingerprint::of_bytes(b"hell");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, ContentFingerprint::of_bytes(b"hello"));
        assert_eq!(a.len, 5);
    }

    #[test]
    fn exec_params_are_part_of_the_key() {
        let mut memo: ResultCache<u64> = ResultCache::new(1 << 16);
        memo.insert(key(1, 0, 0), 10, 8);
        memo.insert(key(1, 1024, 1), 20, 8);
        memo.insert(key(1, 1024, 8), 30, 8);
        assert_eq!(memo.get(&key(1, 0, 0)), Some(10));
        assert_eq!(memo.get(&key(1, 1024, 1)), Some(20));
        assert_eq!(memo.get(&key(1, 1024, 8)), Some(30));
        assert_eq!(memo.get(&key(1, 512, 1)), None);
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn memoised_value_is_the_inserted_value_bit_for_bit() {
        let mut memo: ResultCache<f64> = ResultCache::new(1 << 16);
        let v = 1.000000000000004_f64;
        memo.insert(key(2, 1024, 4), v, 8);
        assert_eq!(memo.get(&key(2, 1024, 4)).unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn budget_evicts_lru_first() {
        // Budget fits exactly two entries of cost 100 + 64.
        let mut memo: ResultCache<u32> = ResultCache::new(2 * (100 + ENTRY_OVERHEAD));
        memo.insert(key(1, 0, 0), 1, 100);
        memo.insert(key(2, 0, 0), 2, 100);
        // Touch 1 so 2 becomes LRU, then overflow.
        assert_eq!(memo.get(&key(1, 0, 0)), Some(1));
        memo.insert(key(3, 0, 0), 3, 100);
        assert_eq!(memo.get(&key(2, 0, 0)), None, "LRU entry evicted");
        assert_eq!(memo.get(&key(1, 0, 0)), Some(1));
        assert_eq!(memo.get(&key(3, 0, 0)), Some(3));
        let s = memo.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 3);
        assert!(s.bytes_used <= 2 * (100 + ENTRY_OVERHEAD));
    }

    #[test]
    fn oversized_value_and_zero_budget_are_never_cached() {
        let mut memo: ResultCache<u32> = ResultCache::new(128);
        memo.insert(key(1, 0, 0), 1, 1024);
        assert!(memo.is_empty());
        let mut off: ResultCache<u32> = ResultCache::new(0);
        off.insert(key(1, 0, 0), 1, 0);
        assert!(off.is_empty());
        assert_eq!(off.get(&key(1, 0, 0)), None);
        assert_eq!(off.stats().misses, 1);
    }

    #[test]
    fn reinsert_refreshes_value_without_leaking_budget() {
        let mut memo: ResultCache<u32> = ResultCache::new(1 << 12);
        memo.insert(key(1, 0, 0), 1, 100);
        let used = memo.stats().bytes_used;
        memo.insert(key(1, 0, 0), 9, 100);
        assert_eq!(memo.stats().bytes_used, used);
        assert_eq!(memo.get(&key(1, 0, 0)), Some(9));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn stats_hit_rate() {
        let mut memo: ResultCache<u32> = ResultCache::new(1 << 12);
        memo.insert(key(1, 0, 0), 1, 8);
        assert!(memo.get(&key(1, 0, 0)).is_some());
        assert!(memo.get(&key(2, 0, 0)).is_none());
        assert!(memo.get(&key(1, 0, 0)).is_some());
        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
